PYTHONPATH := src

.PHONY: test bench bench-update perf-tests

# Functional suite only; the perf gate is machine-sensitive, run it via
# `make bench` / `make perf-tests`.
test:
	PYTHONPATH=$(PYTHONPATH) python -m pytest -x -q -m "not perf"

# Gate the tracked microbenchmarks against the committed BENCH_perf.json
# baseline (fails on a >2x regression).
bench:
	PYTHONPATH=$(PYTHONPATH) python benchmarks/perf/run_perf.py --check

# Re-measure and rewrite the committed baseline.
bench-update:
	PYTHONPATH=$(PYTHONPATH) python benchmarks/perf/run_perf.py --update

# Just the perf-marked pytest gate.
perf-tests:
	PYTHONPATH=$(PYTHONPATH) python -m pytest -q -m perf benchmarks/perf
