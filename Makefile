PYTHONPATH := src

.PHONY: test test-fast coverage bench bench-update perf-tests formal chaos service-smoke

# Functional suite only; the perf gate is machine-sensitive, run it via
# `make bench` / `make perf-tests`.
test:
	PYTHONPATH=$(PYTHONPATH) python -m pytest -x -q -m "not perf"

# Quick inner-loop run: unit/property suites only (skips the perf marker, the
# slower formal SAT proofs and the paper-reproduction suites under benchmarks/).
test-fast:
	PYTHONPATH=$(PYTHONPATH) python -m pytest -x -q -m "not perf and not formal" tests

# The slower SAT equivalence proofs only (also part of `make test` and CI).
formal:
	PYTHONPATH=$(PYTHONPATH) python -m pytest -x -q -m formal

# Fault-injection suite only: worker crashes, non-cooperative hangs, deadline
# enforcement and quarantine/resume semantics (also part of `make test` and CI).
chaos:
	PYTHONPATH=$(PYTHONPATH) python -m pytest -x -q -m chaos tests/chaos

# Evaluation-service smoke: real server + worker processes over HTTP, a
# SIGKILLed worker mid-lease, exact requeue accounting and live /metrics
# (also CI's `service-smoke` job).
service-smoke:
	PYTHONPATH=$(PYTHONPATH) python tools/service_smoke.py

# Line-coverage report over src/repro (uses the `coverage` package when
# installed, a stdlib settrace collector otherwise).
coverage:
	PYTHONPATH=$(PYTHONPATH) python tools/coverage_report.py

# Gate the tracked microbenchmarks against the committed BENCH_perf.json
# baseline (fails on a >2x regression).
bench:
	PYTHONPATH=$(PYTHONPATH) python benchmarks/perf/run_perf.py --check

# Re-measure and rewrite the committed baseline.
bench-update:
	PYTHONPATH=$(PYTHONPATH) python benchmarks/perf/run_perf.py --update

# Just the perf-marked pytest gate.
perf-tests:
	PYTHONPATH=$(PYTHONPATH) python -m pytest -q -m perf benchmarks/perf
