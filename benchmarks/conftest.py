"""Shared fixtures for the benchmark harness.

Every benchmark reproduces one table or figure of the paper.  By default the
experiments run at ``ExperimentScale.quick()`` (scaled-down suites, n = 5, single
temperature) so that ``pytest benchmarks/ --benchmark-only`` finishes in minutes;
set the environment variable ``REPRO_SCALE=paper`` to run at the paper's full
scale (143/156/29 tasks, n = 10, three temperatures — takes hours).

Each benchmark also writes its rendered table/figure into
``benchmarks/results/*.txt`` so the numbers can be inspected and copied into
EXPERIMENTS.md.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments import ExperimentScale

RESULTS_DIR = Path(__file__).parent / "results"


def _scale_from_env() -> ExperimentScale:
    if os.environ.get("REPRO_SCALE", "quick").lower() == "paper":
        return ExperimentScale.paper()
    scale = ExperimentScale.quick()
    scale.num_samples = 5
    return scale


@pytest.fixture(scope="session")
def scale() -> ExperimentScale:
    """The experiment scale used by every benchmark in this session."""
    return _scale_from_env()


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def save_result(results_dir):
    """Write a rendered report to benchmarks/results/<name>.txt."""

    def _save(name: str, text: str) -> None:
        (results_dir / f"{name}.txt").write_text(text + "\n")

    return _save
