"""Microbenchmark harness for the bit-parallel engines.

Times the tracked hot paths and reports before/after numbers:

* ``truth_table_8var``  — full truth-table extraction (minterms) of an
  8-variable expression: legacy per-assignment ``evaluate`` walk vs one
  bit-parallel compile (caches cleared inside the timed region, so the
  compile cost is really measured).
* ``qm_minimize_8var``  — Quine–McCluskey prime implicants + cover on an
  8-variable on-set: the seed all-pairs/per-minterm algorithm (kept here
  verbatim as the timing baseline) vs the bitset implementation in
  :mod:`repro.logic.minimize`.
* ``batch_sim``         — batched functional-equivalence checking of a
  combinational ALU against its golden model over 256 stimuli: the scalar
  per-vector ``TestbenchRunner`` loop vs one column-parallel
  ``BatchTestbenchRunner`` pass (the differential check that both agree runs
  before timing, so ``make bench`` always exercises the batch engine against
  the scalar oracle).
* ``ldataset_quick_build`` — a quick-scale end-to-end L-dataset build, the
  workload every layer above the engine feeds into.

``collect_results`` returns the dict committed as ``BENCH_perf.json``; see
``run_perf.py`` for the CLI and the regression gate.
"""

from __future__ import annotations

import platform
import random
import time
from typing import Callable

from repro.bench.golden import VectorFunctionGolden
from repro.core.dataset.ldataset import LDatasetConfig, LDatasetGenerator
from repro.logic import bittable
from repro.logic.bittable import BitTable
from repro.logic.expr import RandomExpressionGenerator, reference_minterms
from repro.logic.minimize import Implicant, minimal_cover, prime_implicants, _cover_mask
from repro.verilog.simulator.testbench import BatchTestbenchRunner, TestbenchRunner

#: Benchmark keys whose timings the regression gate tracks (seconds, lower is better).
TRACKED = (
    ("truth_table_8var", "bit_parallel_s"),
    ("qm_minimize_8var", "bitset_s"),
    ("batch_sim", "batch_s"),
    ("ldataset_quick_build", "seconds"),
)

#: Stimulus count for the batched functional-equivalence benchmark (the
#: acceptance bar is a >=4x speedup at 64+ stimuli; 256 shows the scaling).
BATCH_SIM_STIMULI = 256

#: Combinational ALU used as the equivalence-check DUT (case statement, adders,
#: comparisons, concatenation — the constructs the bench families exercise).
BATCH_SIM_SOURCE = """
module top_module (
    input [7:0] a,
    input [7:0] b,
    input [1:0] op,
    output reg [7:0] result,
    output reg [3:0] flags
);
    always @(*) begin
        case (op)
            2'b00: result = a + b;
            2'b01: result = a - b;
            2'b10: result = a ^ b;
            2'b11: result = ~a;
            default: result = 8'd0;
        endcase
        flags = {result == 8'd0, result[7], a > b, a == b};
    end
endmodule
"""

_EIGHT_VARS = ["a", "b", "c", "d", "e", "f", "g", "h"]


def expression_8var():
    """A deterministic 8-variable expression used by the truth-table benchmark."""
    generator = RandomExpressionGenerator(seed=11)
    for _ in range(100):
        candidate = generator.generate(_EIGHT_VARS, max_depth=7)
        if len(candidate.variables()) == len(_EIGHT_VARS):
            return candidate
    raise RuntimeError("seed search failed to produce an 8-variable expression")


def onset_8var() -> list[int]:
    """A deterministic 120-minterm on-set over 8 variables."""
    return sorted(random.Random(2025).sample(range(256), 120))


def measure(fn: Callable[[], object], repeat: int = 5, min_time: float = 0.02) -> float:
    """Best per-call seconds over ``repeat`` rounds of adaptively batched calls."""
    number = 1
    while True:
        start = time.perf_counter()
        for _ in range(number):
            fn()
        elapsed = time.perf_counter() - start
        if elapsed >= min_time or number >= 1 << 20:
            break
        number *= 2
    best = elapsed / number
    for _ in range(repeat - 1):
        start = time.perf_counter()
        for _ in range(number):
            fn()
        best = min(best, (time.perf_counter() - start) / number)
    return best


# --------------------------------------------------------------------------- legacy QM
# Verbatim copy of the seed (pre-bitset) Quine–McCluskey inner loops, kept only
# as the timing baseline for the "before" column of BENCH_perf.json.
def _legacy_combine(a: Implicant, b: Implicant) -> Implicant | None:
    if a.mask != b.mask:
        return None
    differing = (a.values ^ b.values) & ~a.mask
    if differing == 0 or (differing & (differing - 1)) != 0:
        return None
    return Implicant(values=a.values & ~differing, mask=a.mask | differing, width=a.width)


def legacy_prime_implicants(minterms, num_variables):
    current = {Implicant(values=m, mask=0, width=num_variables) for m in set(minterms)}
    primes = set()
    while current:
        combined = set()
        used = set()
        current_list = sorted(current, key=lambda imp: (imp.mask, imp.values))
        for i, a in enumerate(current_list):
            for b in current_list[i + 1 :]:
                merged = _legacy_combine(a, b)
                if merged is not None:
                    combined.add(merged)
                    used.add(a)
                    used.add(b)
        primes.update(current - used)
        current = combined
    return sorted(primes, key=lambda imp: (imp.mask, imp.values))


def legacy_minimal_cover(minterms, primes):
    remaining = set(minterms)
    if not remaining:
        return []
    chosen = []
    coverage = {m: [p for p in primes if p.covers(m)] for m in remaining}
    for minterm, covering in sorted(coverage.items()):
        if len(covering) == 1 and covering[0] not in chosen:
            chosen.append(covering[0])
    for prime in chosen:
        remaining = {m for m in remaining if not prime.covers(m)}
    while remaining:
        best = max(
            primes,
            key=lambda p: (sum(1 for m in remaining if p.covers(m)), -p.literal_count()),
        )
        covered = {m for m in remaining if best.covers(m)}
        if not covered:
            break
        chosen.append(best)
        remaining -= covered
    return chosen


# --------------------------------------------------------------------------- benchmarks
def bench_truth_table(repeat: int = 5) -> dict[str, float]:
    expression = expression_8var()

    def fast() -> list[int]:
        bittable.clear_caches()
        return BitTable.from_expr(expression).minterms()

    assert fast() == reference_minterms(expression), "bit-parallel path diverged from oracle"
    legacy_s = measure(lambda: reference_minterms(expression), repeat=repeat)
    bit_parallel_s = measure(fast, repeat=repeat)
    return {
        "legacy_s": legacy_s,
        "bit_parallel_s": bit_parallel_s,
        "speedup": legacy_s / bit_parallel_s,
    }


def bench_qm(repeat: int = 5) -> dict[str, float]:
    onset = onset_8var()

    def legacy() -> list[Implicant]:
        primes = legacy_prime_implicants(onset, 8)
        return legacy_minimal_cover(onset, primes)

    def fast() -> list[Implicant]:
        _cover_mask.cache_clear()
        bittable.clear_caches()
        primes = prime_implicants(onset, 8)
        return minimal_cover(onset, primes)

    assert fast() == legacy(), "bitset QM diverged from legacy cover"
    legacy_s = measure(legacy, repeat=repeat)
    bitset_s = measure(fast, repeat=repeat)
    return {"legacy_s": legacy_s, "bitset_s": bitset_s, "speedup": legacy_s / bitset_s}


def _batch_sim_workload() -> tuple[VectorFunctionGolden, list[dict[str, int]]]:
    rng = random.Random(77)

    def alu(inputs):
        a, b, op = inputs["a"], inputs["b"], inputs["op"]
        result = {0: a + b, 1: a - b, 2: a ^ b, 3: ~a}[op] & 0xFF
        flags = ((result == 0) << 3) | ((result >> 7) << 2) | ((a > b) << 1) | (a == b)
        return {"result": result, "flags": flags}

    stimulus = [
        {"a": rng.randrange(256), "b": rng.randrange(256), "op": rng.randrange(4)}
        for _ in range(BATCH_SIM_STIMULI)
    ]
    return VectorFunctionGolden(alu), stimulus


def bench_batch_sim(repeat: int = 5) -> dict[str, float]:
    """Scalar per-vector equivalence checking vs one column-parallel pass."""
    golden, stimulus = _batch_sim_workload()
    scalar_runner = TestbenchRunner()
    batch_runner = BatchTestbenchRunner()

    def scalar() -> bool:
        return scalar_runner.run(BATCH_SIM_SOURCE, golden, stimulus).passed

    def batched() -> bool:
        return batch_runner.run(BATCH_SIM_SOURCE, golden, stimulus).passed

    # Differential gate: the batch engine must agree with the scalar oracle
    # (and both must pass) before any timing is recorded.
    assert BatchTestbenchRunner(differential=True).run(BATCH_SIM_SOURCE, golden, stimulus).passed, (
        "batch_sim workload failed its own functional check"
    )
    scalar_s = measure(scalar, repeat=repeat)
    batch_s = measure(batched, repeat=repeat)
    return {
        "stimuli": float(BATCH_SIM_STIMULI),
        "scalar_s": scalar_s,
        "batch_s": batch_s,
        "speedup": scalar_s / batch_s,
    }


def bench_ldataset(repeat: int = 3) -> dict[str, float]:
    config = LDatasetConfig(num_concise=12, num_faithful=8, seed=7)

    def build() -> int:
        return len(LDatasetGenerator(config).generate().l_dataset)

    assert build() > 0
    return {"seconds": measure(build, repeat=repeat, min_time=0.0)}


def collect_results(repeat: int = 5) -> dict:
    """Run every benchmark and assemble the BENCH_perf.json payload."""
    return {
        "schema": 1,
        "host": {
            "python": platform.python_version(),
            "machine": platform.machine(),
            "system": platform.system(),
        },
        "benchmarks": {
            "truth_table_8var": bench_truth_table(repeat=repeat),
            "qm_minimize_8var": bench_qm(repeat=repeat),
            "batch_sim": bench_batch_sim(repeat=repeat),
            "ldataset_quick_build": bench_ldataset(),
        },
    }


def regressions(current: dict, baseline: dict, threshold: float = 2.0) -> list[str]:
    """Tracked metrics that regressed more than ``threshold``x versus baseline."""
    problems = []
    for bench, key in TRACKED:
        base = baseline.get("benchmarks", {}).get(bench, {}).get(key)
        now = current.get("benchmarks", {}).get(bench, {}).get(key)
        if base is None or now is None:
            problems.append(f"{bench}.{key}: missing from baseline or current run")
            continue
        if now > base * threshold:
            problems.append(
                f"{bench}.{key}: {now:.6f}s vs baseline {base:.6f}s (>{threshold:g}x)"
            )
    return problems
