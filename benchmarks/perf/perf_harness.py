"""Microbenchmark harness for the bit-parallel engines.

Times the tracked hot paths and reports before/after numbers:

* ``truth_table_8var``  — full truth-table extraction (minterms) of an
  8-variable expression: legacy per-assignment ``evaluate`` walk vs one
  bit-parallel compile (caches cleared inside the timed region, so the
  compile cost is really measured).
* ``qm_minimize_8var``  — Quine–McCluskey prime implicants + cover on an
  8-variable on-set: the seed all-pairs/per-minterm algorithm (kept here
  verbatim as the timing baseline) vs the bitset implementation in
  :mod:`repro.logic.minimize`.
* ``batch_sim``         — batched functional-equivalence checking of a
  combinational ALU against its golden model over 256 stimuli: the scalar
  per-vector ``TestbenchRunner`` loop vs one column-parallel
  ``BatchTestbenchRunner`` pass (the differential check that both agree runs
  before timing, so ``make bench`` always exercises the batch engine against
  the scalar oracle).
* ``codegen_sim``       — the same ALU workload on the code-generating back
  end vs the batch AST interpreter.  A three-way differential gate (codegen
  vs interpreter vs scalar, on the passing workload *and* on a mutated DUT
  whose per-lane mismatches must agree exactly) runs before timing; the
  acceptance bar is a >=5x speedup over the interpreted ``batch_sim`` path.
* ``ldataset_quick_build`` — a quick-scale end-to-end L-dataset build, the
  workload every layer above the engine feeds into.
* ``formal_incremental`` — a 50-candidate pass@k sweep (10 unique codes, two
  of them buggy) proven on one persistent :class:`EquivalenceSession` vs a
  fresh solver per candidate.  A verdict-parity gate (bit-identical verdicts,
  counterexamples on every refutation) runs before timing; the acceptance bar
  is a >=5x speedup over the fresh-solver baseline.
* ``formal_eq``         — complete SAT equivalence proof of a 24-input
  combinational miter (carry-select adder vs behavioural ``a + b``), where the
  exhaustive ``2**24``-lane sweep is infeasible for the simulation engines; the
  sampled 1024-lane batch sweep is recorded as the (incomplete) comparison
  column.  Differential gates run before timing: the proof must be a real SAT
  verdict, a mutated DUT must be refuted, and the refutation's counterexample
  must replay as an actual mismatch on the batched simulator.

* ``compile_cache``     — cold vs warm evaluation of a 50-candidate pass@k
  sweep (10 unique codes, the shape temperature sampling produces): caching
  disabled vs the compile-once ``DesignDatabase`` + content-addressed verdict
  memo.  A differential gate asserts per-candidate verdicts agree before
  timing; the acceptance bar is a >=3x warm-vs-cold speedup.

``collect_results`` returns the dict committed as ``BENCH_perf.json``; see
``run_perf.py`` for the CLI and the regression gate.
"""

from __future__ import annotations

import platform
import random
import subprocess
import time
from datetime import datetime, timezone
from pathlib import Path
from typing import Callable

from repro.bench.golden import VectorFunctionGolden
from repro.core.dataset.ldataset import LDatasetConfig, LDatasetGenerator
from repro.logic import bittable
from repro.logic.bittable import BitTable
from repro.logic.expr import RandomExpressionGenerator, reference_minterms
from repro.logic.minimize import Implicant, minimal_cover, prime_implicants, _cover_mask
from repro.verilog.simulator.testbench import BatchTestbenchRunner, TestbenchRunner

#: Benchmark keys whose timings the regression gate tracks (seconds, lower is better).
TRACKED = (
    ("truth_table_8var", "bit_parallel_s"),
    ("qm_minimize_8var", "bitset_s"),
    ("batch_sim", "batch_s"),
    ("codegen_sim", "codegen_s"),
    ("ldataset_quick_build", "seconds"),
    ("formal_eq", "prove_s"),
    ("formal_incremental", "incremental_s"),
    ("compile_cache", "warm_s"),
)

#: Stimulus count for the batched functional-equivalence benchmark (the
#: acceptance bar is a >=4x speedup at 64+ stimuli; 256 shows the scaling).
BATCH_SIM_STIMULI = 256

#: Combinational ALU used as the equivalence-check DUT (case statement, adders,
#: comparisons, concatenation — the constructs the bench families exercise).
BATCH_SIM_SOURCE = """
module top_module (
    input [7:0] a,
    input [7:0] b,
    input [1:0] op,
    output reg [7:0] result,
    output reg [3:0] flags
);
    always @(*) begin
        case (op)
            2'b00: result = a + b;
            2'b01: result = a - b;
            2'b10: result = a ^ b;
            2'b11: result = ~a;
            default: result = 8'd0;
        endcase
        flags = {result == 8'd0, result[7], a > b, a == b};
    end
endmodule
"""

_EIGHT_VARS = ["a", "b", "c", "d", "e", "f", "g", "h"]


def expression_8var():
    """A deterministic 8-variable expression used by the truth-table benchmark."""
    generator = RandomExpressionGenerator(seed=11)
    for _ in range(100):
        candidate = generator.generate(_EIGHT_VARS, max_depth=7)
        if len(candidate.variables()) == len(_EIGHT_VARS):
            return candidate
    raise RuntimeError("seed search failed to produce an 8-variable expression")


def onset_8var() -> list[int]:
    """A deterministic 120-minterm on-set over 8 variables."""
    return sorted(random.Random(2025).sample(range(256), 120))


def measure(fn: Callable[[], object], repeat: int = 5, min_time: float = 0.02) -> float:
    """Best per-call seconds over ``repeat`` rounds of adaptively batched calls."""
    number = 1
    while True:
        start = time.perf_counter()
        for _ in range(number):
            fn()
        elapsed = time.perf_counter() - start
        if elapsed >= min_time or number >= 1 << 20:
            break
        number *= 2
    best = elapsed / number
    for _ in range(repeat - 1):
        start = time.perf_counter()
        for _ in range(number):
            fn()
        best = min(best, (time.perf_counter() - start) / number)
    return best


# --------------------------------------------------------------------------- legacy QM
# Verbatim copy of the seed (pre-bitset) Quine–McCluskey inner loops, kept only
# as the timing baseline for the "before" column of BENCH_perf.json.
def _legacy_combine(a: Implicant, b: Implicant) -> Implicant | None:
    if a.mask != b.mask:
        return None
    differing = (a.values ^ b.values) & ~a.mask
    if differing == 0 or (differing & (differing - 1)) != 0:
        return None
    return Implicant(values=a.values & ~differing, mask=a.mask | differing, width=a.width)


def legacy_prime_implicants(minterms, num_variables):
    current = {Implicant(values=m, mask=0, width=num_variables) for m in set(minterms)}
    primes = set()
    while current:
        combined = set()
        used = set()
        current_list = sorted(current, key=lambda imp: (imp.mask, imp.values))
        for i, a in enumerate(current_list):
            for b in current_list[i + 1 :]:
                merged = _legacy_combine(a, b)
                if merged is not None:
                    combined.add(merged)
                    used.add(a)
                    used.add(b)
        primes.update(current - used)
        current = combined
    return sorted(primes, key=lambda imp: (imp.mask, imp.values))


def legacy_minimal_cover(minterms, primes):
    remaining = set(minterms)
    if not remaining:
        return []
    chosen = []
    coverage = {m: [p for p in primes if p.covers(m)] for m in remaining}
    for minterm, covering in sorted(coverage.items()):
        if len(covering) == 1 and covering[0] not in chosen:
            chosen.append(covering[0])
    for prime in chosen:
        remaining = {m for m in remaining if not prime.covers(m)}
    while remaining:
        best = max(
            primes,
            key=lambda p: (sum(1 for m in remaining if p.covers(m)), -p.literal_count()),
        )
        covered = {m for m in remaining if best.covers(m)}
        if not covered:
            break
        chosen.append(best)
        remaining -= covered
    return chosen


# --------------------------------------------------------------------------- benchmarks
def bench_truth_table(repeat: int = 5) -> dict[str, float]:
    expression = expression_8var()

    def fast() -> list[int]:
        bittable.clear_caches()
        return BitTable.from_expr(expression).minterms()

    assert fast() == reference_minterms(expression), "bit-parallel path diverged from oracle"
    legacy_s = measure(lambda: reference_minterms(expression), repeat=repeat)
    bit_parallel_s = measure(fast, repeat=repeat)
    return {
        "legacy_s": legacy_s,
        "bit_parallel_s": bit_parallel_s,
        "speedup": legacy_s / bit_parallel_s,
    }


def bench_qm(repeat: int = 5) -> dict[str, float]:
    onset = onset_8var()

    def legacy() -> list[Implicant]:
        primes = legacy_prime_implicants(onset, 8)
        return legacy_minimal_cover(onset, primes)

    def fast() -> list[Implicant]:
        _cover_mask.cache_clear()
        bittable.clear_caches()
        primes = prime_implicants(onset, 8)
        return minimal_cover(onset, primes)

    assert fast() == legacy(), "bitset QM diverged from legacy cover"
    legacy_s = measure(legacy, repeat=repeat)
    bitset_s = measure(fast, repeat=repeat)
    return {"legacy_s": legacy_s, "bitset_s": bitset_s, "speedup": legacy_s / bitset_s}


def _batch_sim_workload() -> tuple[VectorFunctionGolden, list[dict[str, int]]]:
    rng = random.Random(77)

    def alu(inputs):
        a, b, op = inputs["a"], inputs["b"], inputs["op"]
        result = {0: a + b, 1: a - b, 2: a ^ b, 3: ~a}[op] & 0xFF
        flags = ((result == 0) << 3) | ((result >> 7) << 2) | ((a > b) << 1) | (a == b)
        return {"result": result, "flags": flags}

    stimulus = [
        {"a": rng.randrange(256), "b": rng.randrange(256), "op": rng.randrange(4)}
        for _ in range(BATCH_SIM_STIMULI)
    ]
    return VectorFunctionGolden(alu), stimulus


def bench_batch_sim(repeat: int = 5) -> dict[str, float]:
    """Scalar per-vector equivalence checking vs one column-parallel pass."""
    golden, stimulus = _batch_sim_workload()
    scalar_runner = TestbenchRunner()
    batch_runner = BatchTestbenchRunner()

    def scalar() -> bool:
        return scalar_runner.run(BATCH_SIM_SOURCE, golden, stimulus).passed

    def batched() -> bool:
        return batch_runner.run(BATCH_SIM_SOURCE, golden, stimulus).passed

    # Differential gate: the batch engine must agree with the scalar oracle
    # (and both must pass) before any timing is recorded.
    assert BatchTestbenchRunner(differential=True).run(BATCH_SIM_SOURCE, golden, stimulus).passed, (
        "batch_sim workload failed its own functional check"
    )
    scalar_s = measure(scalar, repeat=repeat)
    batch_s = measure(batched, repeat=repeat)
    return {
        "stimuli": float(BATCH_SIM_STIMULI),
        "scalar_s": scalar_s,
        "batch_s": batch_s,
        "speedup": scalar_s / batch_s,
    }


def bench_codegen_sim(repeat: int = 5) -> dict[str, float]:
    """Code-generated vs interpreted execution of the batched ALU workload.

    Both columns run the identical column-parallel ``BatchTestbenchRunner``
    pass; only the execution engine differs, so the speedup isolates the
    AST-walking tax the code generator removes.
    """
    golden, stimulus = _batch_sim_workload()
    interpret_runner = BatchTestbenchRunner(backend="interpret")
    codegen_runner = BatchTestbenchRunner(backend="codegen")

    # Three-way differential gate before timing.  The passing workload:
    # codegen with differential=True re-runs the scalar oracle internally, and
    # the interpreter must also pass.
    assert BatchTestbenchRunner(backend="codegen", differential=True).run(
        BATCH_SIM_SOURCE, golden, stimulus
    ).passed, "codegen back end disagreed with the scalar oracle"
    assert interpret_runner.run(BATCH_SIM_SOURCE, golden, stimulus).passed
    # And a mutated DUT: all three engines must report the identical per-lane
    # mismatches, not merely the same pass/fail bit.
    buggy = BATCH_SIM_SOURCE.replace("result = a - b;", "result = a + b;")
    scalar_fail = TestbenchRunner().run(buggy, golden, stimulus)
    interpret_fail = interpret_runner.run(buggy, golden, stimulus)
    codegen_fail = codegen_runner.run(buggy, golden, stimulus)
    assert not scalar_fail.passed and not interpret_fail.passed and not codegen_fail.passed
    assert (
        [str(m) for m in codegen_fail.mismatches]
        == [str(m) for m in interpret_fail.mismatches]
        == [str(m) for m in scalar_fail.mismatches]
    ), "engines disagreed on the mutated DUT's mismatches"

    # Timed region: the column-parallel sweep itself (apply + settle over all
    # 256 lanes).  The runner's per-lane golden-model comparison is identical
    # Python on both sides and would drown the engine delta being tracked.
    from repro.verilog.design import compile_design
    from repro.verilog.simulator.batch import BatchSimulator
    from repro.verilog.simulator.values import BatchVector, LogicVector

    compiled = compile_design(BATCH_SIM_SOURCE)
    lanes = BATCH_SIM_STIMULI
    widths = compiled.input_widths()
    columns = {
        name: [vector[name] for vector in stimulus] for name in ("a", "b", "op")
    }
    # A second stimulus set, so every timed application propagates real value
    # changes instead of settling an already-settled state.  Both sets are
    # packed up front: list→column packing is identical work on either engine
    # and would otherwise drown the delta being tracked.
    def pack(plain: dict) -> dict:
        return {
            name: BatchVector.from_vectors(
                [LogicVector.from_int(value, widths[name]) for value in values],
                widths[name],
            )
            for name, values in plain.items()
        }

    stimuli = [
        pack(columns),
        pack(
            {
                "a": [value ^ 0xFF for value in columns["a"]],
                "b": [value ^ 0x55 for value in columns["b"]],
                "op": [value ^ 0x3 for value in columns["op"]],
            }
        ),
    ]

    def sweeper(backend: str):
        simulator = BatchSimulator(compiled, lanes=lanes, backend=backend)
        simulator.apply_inputs(stimuli[0])  # defined state: the x/z gate passes
        state = {"flip": False}

        def sweep():
            state["flip"] = not state["flip"]
            simulator.apply_inputs(stimuli[state["flip"]])

        return simulator, sweep

    fast, fast_sweep = sweeper("codegen")
    slow, slow_sweep = sweeper("interpret")
    for name in ("result", "flags"):
        assert fast.get(name).value_cols == slow.get(name).value_cols, (
            "engine sweeps diverged on the timing workload"
        )
    interpret_s = measure(slow_sweep, repeat=repeat)
    codegen_s = measure(fast_sweep, repeat=repeat)
    return {
        "stimuli": float(BATCH_SIM_STIMULI),
        "interpret_s": interpret_s,
        "codegen_s": codegen_s,
        "speedup": interpret_s / codegen_s,
    }


#: 24 primary inputs: a carry-select adder vs the behavioural `a + b`.  The
#: exhaustive sweep would need 2**24 (~16.7M) lanes — gated out of the
#: simulation engines — while the SAT miter proves equivalence outright.
FORMAL_EQ_INPUT_BITS = 24

FORMAL_EQ_DUT = """
module top_module(input [11:0] a, input [11:0] b, output [12:0] s);
    wire [6:0] lo_sum;
    wire [6:0] hi_sum0, hi_sum1;
    assign lo_sum = a[5:0] + b[5:0];
    assign hi_sum0 = a[11:6] + b[11:6];
    assign hi_sum1 = a[11:6] + b[11:6] + 6'd1;
    assign s = {(lo_sum[6] ? hi_sum1 : hi_sum0), lo_sum[5:0]};
endmodule
"""

FORMAL_EQ_REFERENCE = """
module top_module(input [11:0] a, input [11:0] b, output [12:0] s);
    assign s = a + b;
endmodule
"""

#: Lanes for the sampled-sweep comparison column (covers 1024 of the 2**24
#: assignments — fast but incomplete, which is exactly the gap `formal_eq`
#: closes).
FORMAL_EQ_SWEEP_LANES = 1024


def bench_formal_eq(repeat: int = 3) -> dict[str, float]:
    """Complete SAT equivalence proof of a 24-input miter vs a sampled sweep."""
    from repro.bench.golden import (
        batch_equivalence_check,
        batch_equivalence_mismatches,
        random_vectors,
    )
    from repro.formal import prove_combinational_equivalence

    # Differential gates before timing: the proof must go through the SAT
    # engine (not a structural fold), a mutated DUT must be refuted, and its
    # counterexample must replay as a real mismatch on the batched simulator.
    proof = prove_combinational_equivalence(FORMAL_EQ_DUT, FORMAL_EQ_REFERENCE)
    assert proof.equivalent and proof.method == "sat", (
        "formal_eq workload no longer exercises the SAT engine"
    )
    buggy = FORMAL_EQ_DUT.replace("+ 6'd1", "+ 6'd2")
    refutation = prove_combinational_equivalence(buggy, FORMAL_EQ_REFERENCE)
    assert not refutation.equivalent
    assert batch_equivalence_mismatches(
        buggy, FORMAL_EQ_REFERENCE, [refutation.counterexample.inputs]
    ), "SAT counterexample failed to replay on the batched simulator"

    stimulus = random_vectors({"a": 12, "b": 12}, FORMAL_EQ_SWEEP_LANES, seed=5)
    sweep_s = measure(
        lambda: batch_equivalence_check(FORMAL_EQ_DUT, FORMAL_EQ_REFERENCE, stimulus),
        repeat=repeat,
    )
    prove_s = measure(
        lambda: prove_combinational_equivalence(FORMAL_EQ_DUT, FORMAL_EQ_REFERENCE),
        repeat=repeat,
    )
    return {
        "input_bits": float(FORMAL_EQ_INPUT_BITS),
        "sweep_lanes": float(FORMAL_EQ_SWEEP_LANES),
        "sampled_sweep_s": sweep_s,
        "prove_s": prove_s,
        # Complete proof vs the (incomplete!) 1024-lane sampled sweep — how
        # much faster the proof is than even a 1/16384th-coverage simulation.
        "speedup": sweep_s / prove_s,
        "conflicts": float(proof.stats.conflicts),
    }


# --------------------------------------------------------------------------- incremental formal
#: Candidate count for the incremental-session sweep benchmark: 50 candidates
#: with 10 unique codes (8 correct variants + 2 buggy), the shape a pass@k
#: temperature sweep produces.
FORMAL_INC_CANDIDATES = 50
FORMAL_INC_UNIQUE = 10


def _formal_inc_candidates() -> list[str]:
    """10 unique candidate codes (last two buggy), cycled to 50 submissions."""
    unique = []
    for index in range(FORMAL_INC_UNIQUE):
        code = FORMAL_EQ_DUT + f"\n// candidate variant {index}\n"
        if index >= FORMAL_INC_UNIQUE - 2:
            code = code.replace("+ 6'd1", "+ 6'd2")  # broken carry select
        unique.append(code)
    return [unique[i % FORMAL_INC_UNIQUE] for i in range(FORMAL_INC_CANDIDATES)]


def bench_formal_incremental(repeat: int = 3) -> dict[str, float]:
    """Incremental equivalence session vs a fresh solver per candidate.

    The workload is a 50-candidate pass@k sweep against one reference: the
    baseline rebuilds the reference cone, the Tseitin CNF and a cold CDCL
    instance for every candidate; the session encodes the reference once and
    proves each candidate under an activation literal on one persistent solver
    (learned clauses, VSIDS activity and saved phases survive the sweep).

    A verdict-parity gate runs before timing: both engines must agree on every
    candidate, bit for bit, and every refutation must carry a counterexample.
    """
    from repro.formal import EquivalenceSession, prove_combinational_equivalence

    candidates = _formal_inc_candidates()

    def fresh_sweep() -> list[bool]:
        return [
            prove_combinational_equivalence(code, FORMAL_EQ_REFERENCE).equivalent
            for code in candidates
        ]

    def incremental_sweep() -> list[bool]:
        session = EquivalenceSession(FORMAL_EQ_REFERENCE)
        return [session.prove(code).equivalent for code in candidates]

    # Verdict-parity gate: the incremental engine must be bit-identical to the
    # fresh-solver baseline on the whole sweep (and actually refute the buggy
    # candidates) before its timing means anything.
    fresh_verdicts = fresh_sweep()
    incremental_verdicts = incremental_sweep()
    assert fresh_verdicts == incremental_verdicts, (
        "incremental session diverged from the fresh-solver prover"
    )
    assert not all(fresh_verdicts), "sweep no longer exercises refutations"
    session = EquivalenceSession(FORMAL_EQ_REFERENCE)
    for code, expected in zip(candidates, fresh_verdicts):
        result = session.prove(code)
        assert result.equivalent == expected
        assert result.equivalent or result.counterexample is not None

    fresh_s = measure(fresh_sweep, repeat=repeat)
    incremental_s = measure(incremental_sweep, repeat=repeat)
    return {
        "candidates": float(FORMAL_INC_CANDIDATES),
        "unique_codes": float(FORMAL_INC_UNIQUE),
        "fresh_s": fresh_s,
        "incremental_s": incremental_s,
        "speedup": fresh_s / incremental_s,
    }


def bench_ldataset(repeat: int = 3) -> dict[str, float]:
    config = LDatasetConfig(num_concise=12, num_faithful=8, seed=7)

    def build() -> int:
        return len(LDatasetGenerator(config).generate().l_dataset)

    assert build() > 0
    return {"seconds": measure(build, repeat=repeat, min_time=0.0)}


# --------------------------------------------------------------------------- compile cache
#: Candidate count for the pass@k-sweep caching benchmark: 50 candidates with
#: 10 unique codes, the shape low-temperature sampling produces.
COMPILE_CACHE_CANDIDATES = 50
COMPILE_CACHE_UNIQUE = 10
COMPILE_CACHE_STIMULI = 32


def _alu_golden() -> VectorFunctionGolden:
    """Golden model of the benchmark ALU (module-level: picklable for workers)."""

    def alu(inputs):
        a, b, op = inputs["a"], inputs["b"], inputs["op"]
        result = {0: a + b, 1: a - b, 2: a ^ b, 3: ~a}[op] & 0xFF
        flags = ((result == 0) << 3) | ((result >> 7) << 2) | ((a > b) << 1) | (a == b)
        return {"result": result, "flags": flags}

    return VectorFunctionGolden(alu)


def _compile_cache_candidates() -> list[str]:
    """50 candidate codes over 10 unique variants; the last two variants are buggy."""
    variants = []
    for index in range(COMPILE_CACHE_UNIQUE):
        source = BATCH_SIM_SOURCE + f"\n// candidate variant {index}\n"
        if index >= COMPILE_CACHE_UNIQUE - 2:
            source = source.replace("result = a - b;", "result = a + b;")
        variants.append(source)
    return [variants[i % COMPILE_CACHE_UNIQUE] for i in range(COMPILE_CACHE_CANDIDATES)]


def bench_compile_cache(repeat: int = 3) -> dict[str, float]:
    """Cold vs warm evaluation of a 50-candidate pass@k sweep.

    * **cold** — the pre-database behaviour: every candidate pays the full
      front end (caching disabled via a zero-capacity default
      ``DesignDatabase``, per-candidate salted keys so nothing memoises);
    * **warm** — the steady state of the compile-once orchestrator: the memo
      and database are primed, re-evaluating the sweep (the repeated-candidate
      workload of temperature sweeps and re-runs) is content-addressed lookups.

    A differential gate runs before timing: the per-candidate verdicts of both
    paths must agree exactly, and the sweep must contain real failures (the
    two buggy variants) alongside real passes.
    """
    from repro.bench.jobs import (
        CheckRequest,
        ResultKey,
        design_key,
        mode_key,
        run_checks,
        stimulus_key,
    )
    from repro.verilog import codegen as codegen_mod
    from repro.verilog.design import DesignDatabase, set_default_database

    fallbacks_before = codegen_mod.fallback_stats()["total"]
    candidates = _compile_cache_candidates()
    rng = random.Random(99)
    stimulus = [
        {"a": rng.randrange(256), "b": rng.randrange(256), "op": rng.randrange(4)}
        for _ in range(COMPILE_CACHE_STIMULI)
    ]
    mode = mode_key("simulation", True, False, None)

    def requests_for(salted: bool) -> list:
        requests = []
        for index, code in enumerate(candidates):
            key = ResultKey(
                design_key=design_key(code),
                stimulus_key=stimulus_key(
                    "compile_cache",
                    stimulus,
                    None,
                    "clk",
                    None,
                    salt=str(index) if salted else "",
                ),
                mode=mode,
            )
            requests.append(
                CheckRequest(
                    key=key,
                    code=code,
                    task_id=f"compile_cache{index}" if salted else "compile_cache",
                    golden_factory=_alu_golden,
                    stimulus=stimulus,
                )
            )
        return requests

    def cold() -> list[bool]:
        previous = set_default_database(DesignDatabase(max_entries=0))
        try:
            requests = requests_for(salted=True)
            results = run_checks(requests).results()
            return [results[request.key].passed for request in requests]
        finally:
            set_default_database(previous)

    previous_db = set_default_database(DesignDatabase())
    try:
        memo = run_checks(requests_for(salted=False)).results()  # prime database + memo

        def warm() -> list[bool]:
            verdicts = dict(memo)
            pending = [r for r in requests_for(salted=False) if r.key not in verdicts]
            verdicts.update(run_checks(pending).results())
            return [verdicts[request.key].passed for request in requests_for(salted=False)]

        cold_verdicts = cold()
        warm_verdicts = warm()
        assert cold_verdicts == warm_verdicts, (
            "cached and uncached sweeps disagreed on per-candidate verdicts"
        )
        assert any(cold_verdicts) and not all(cold_verdicts), (
            "compile_cache sweep must mix passing and failing candidates"
        )

        cold_s = measure(cold, repeat=repeat)
        warm_s = measure(warm, repeat=repeat)
    finally:
        set_default_database(previous_db)
    return {
        "candidates": float(COMPILE_CACHE_CANDIDATES),
        "unique_codes": float(COMPILE_CACHE_UNIQUE),
        "stimuli": float(COMPILE_CACHE_STIMULI),
        "cold_s": cold_s,
        "warm_s": warm_s,
        "speedup": cold_s / warm_s,
        # The sweep now runs codegen-warm (backend="auto" is the default):
        # interpreter fallbacks recorded while it ran, construction-time
        # x-state settles included.  A jump here means codegen coverage of the
        # candidate workload regressed.
        "codegen_fallbacks": float(
            codegen_mod.fallback_stats()["total"] - fallbacks_before
        ),
    }


def _git_sha() -> str:
    """The checked-out commit, so baselines are attributable across commits."""
    try:
        return (
            subprocess.run(
                ["git", "rev-parse", "HEAD"],
                cwd=Path(__file__).resolve().parents[2],
                capture_output=True,
                text=True,
                timeout=10,
                check=True,
            ).stdout.strip()
            or "unknown"
        )
    except Exception:
        return "unknown"


def collect_results(repeat: int = 5) -> dict:
    """Run every benchmark and assemble the BENCH_perf.json payload."""
    return {
        "schema": 1,
        "host": {
            "python": platform.python_version(),
            "machine": platform.machine(),
            "system": platform.system(),
            "hostname": platform.node(),
            "git_sha": _git_sha(),
            "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        },
        "benchmarks": {
            "truth_table_8var": bench_truth_table(repeat=repeat),
            "qm_minimize_8var": bench_qm(repeat=repeat),
            "batch_sim": bench_batch_sim(repeat=repeat),
            "codegen_sim": bench_codegen_sim(repeat=repeat),
            "ldataset_quick_build": bench_ldataset(),
            "formal_eq": bench_formal_eq(),
            "formal_incremental": bench_formal_incremental(),
            "compile_cache": bench_compile_cache(repeat=repeat),
        },
    }


def regressions(current: dict, baseline: dict, threshold: float = 2.0) -> list[str]:
    """Tracked metrics that regressed more than ``threshold``x versus baseline."""
    problems = []
    for bench, key in TRACKED:
        base = baseline.get("benchmarks", {}).get(bench, {}).get(key)
        now = current.get("benchmarks", {}).get(bench, {}).get(key)
        if base is None or now is None:
            problems.append(f"{bench}.{key}: missing from baseline or current run")
            continue
        if now > base * threshold:
            problems.append(
                f"{bench}.{key}: {now:.6f}s vs baseline {base:.6f}s (>{threshold:g}x)"
            )
    return problems
