"""Microbenchmark harness for the bit-parallel truth-table engine.

Times the three tracked hot paths and reports before/after numbers:

* ``truth_table_8var``  — full truth-table extraction (minterms) of an
  8-variable expression: legacy per-assignment ``evaluate`` walk vs one
  bit-parallel compile (caches cleared inside the timed region, so the
  compile cost is really measured).
* ``qm_minimize_8var``  — Quine–McCluskey prime implicants + cover on an
  8-variable on-set: the seed all-pairs/per-minterm algorithm (kept here
  verbatim as the timing baseline) vs the bitset implementation in
  :mod:`repro.logic.minimize`.
* ``ldataset_quick_build`` — a quick-scale end-to-end L-dataset build, the
  workload every layer above the engine feeds into.

``collect_results`` returns the dict committed as ``BENCH_perf.json``; see
``run_perf.py`` for the CLI and the regression gate.
"""

from __future__ import annotations

import platform
import random
import time
from typing import Callable

from repro.core.dataset.ldataset import LDatasetConfig, LDatasetGenerator
from repro.logic import bittable
from repro.logic.bittable import BitTable
from repro.logic.expr import RandomExpressionGenerator, reference_minterms
from repro.logic.minimize import Implicant, minimal_cover, prime_implicants, _cover_mask

#: Benchmark keys whose timings the regression gate tracks (seconds, lower is better).
TRACKED = (
    ("truth_table_8var", "bit_parallel_s"),
    ("qm_minimize_8var", "bitset_s"),
    ("ldataset_quick_build", "seconds"),
)

_EIGHT_VARS = ["a", "b", "c", "d", "e", "f", "g", "h"]


def expression_8var():
    """A deterministic 8-variable expression used by the truth-table benchmark."""
    generator = RandomExpressionGenerator(seed=11)
    for _ in range(100):
        candidate = generator.generate(_EIGHT_VARS, max_depth=7)
        if len(candidate.variables()) == len(_EIGHT_VARS):
            return candidate
    raise RuntimeError("seed search failed to produce an 8-variable expression")


def onset_8var() -> list[int]:
    """A deterministic 120-minterm on-set over 8 variables."""
    return sorted(random.Random(2025).sample(range(256), 120))


def measure(fn: Callable[[], object], repeat: int = 5, min_time: float = 0.02) -> float:
    """Best per-call seconds over ``repeat`` rounds of adaptively batched calls."""
    number = 1
    while True:
        start = time.perf_counter()
        for _ in range(number):
            fn()
        elapsed = time.perf_counter() - start
        if elapsed >= min_time or number >= 1 << 20:
            break
        number *= 2
    best = elapsed / number
    for _ in range(repeat - 1):
        start = time.perf_counter()
        for _ in range(number):
            fn()
        best = min(best, (time.perf_counter() - start) / number)
    return best


# --------------------------------------------------------------------------- legacy QM
# Verbatim copy of the seed (pre-bitset) Quine–McCluskey inner loops, kept only
# as the timing baseline for the "before" column of BENCH_perf.json.
def _legacy_combine(a: Implicant, b: Implicant) -> Implicant | None:
    if a.mask != b.mask:
        return None
    differing = (a.values ^ b.values) & ~a.mask
    if differing == 0 or (differing & (differing - 1)) != 0:
        return None
    return Implicant(values=a.values & ~differing, mask=a.mask | differing, width=a.width)


def legacy_prime_implicants(minterms, num_variables):
    current = {Implicant(values=m, mask=0, width=num_variables) for m in set(minterms)}
    primes = set()
    while current:
        combined = set()
        used = set()
        current_list = sorted(current, key=lambda imp: (imp.mask, imp.values))
        for i, a in enumerate(current_list):
            for b in current_list[i + 1 :]:
                merged = _legacy_combine(a, b)
                if merged is not None:
                    combined.add(merged)
                    used.add(a)
                    used.add(b)
        primes.update(current - used)
        current = combined
    return sorted(primes, key=lambda imp: (imp.mask, imp.values))


def legacy_minimal_cover(minterms, primes):
    remaining = set(minterms)
    if not remaining:
        return []
    chosen = []
    coverage = {m: [p for p in primes if p.covers(m)] for m in remaining}
    for minterm, covering in sorted(coverage.items()):
        if len(covering) == 1 and covering[0] not in chosen:
            chosen.append(covering[0])
    for prime in chosen:
        remaining = {m for m in remaining if not prime.covers(m)}
    while remaining:
        best = max(
            primes,
            key=lambda p: (sum(1 for m in remaining if p.covers(m)), -p.literal_count()),
        )
        covered = {m for m in remaining if best.covers(m)}
        if not covered:
            break
        chosen.append(best)
        remaining -= covered
    return chosen


# --------------------------------------------------------------------------- benchmarks
def bench_truth_table(repeat: int = 5) -> dict[str, float]:
    expression = expression_8var()

    def fast() -> list[int]:
        bittable.clear_caches()
        return BitTable.from_expr(expression).minterms()

    assert fast() == reference_minterms(expression), "bit-parallel path diverged from oracle"
    legacy_s = measure(lambda: reference_minterms(expression), repeat=repeat)
    bit_parallel_s = measure(fast, repeat=repeat)
    return {
        "legacy_s": legacy_s,
        "bit_parallel_s": bit_parallel_s,
        "speedup": legacy_s / bit_parallel_s,
    }


def bench_qm(repeat: int = 5) -> dict[str, float]:
    onset = onset_8var()

    def legacy() -> list[Implicant]:
        primes = legacy_prime_implicants(onset, 8)
        return legacy_minimal_cover(onset, primes)

    def fast() -> list[Implicant]:
        _cover_mask.cache_clear()
        bittable.clear_caches()
        primes = prime_implicants(onset, 8)
        return minimal_cover(onset, primes)

    assert fast() == legacy(), "bitset QM diverged from legacy cover"
    legacy_s = measure(legacy, repeat=repeat)
    bitset_s = measure(fast, repeat=repeat)
    return {"legacy_s": legacy_s, "bitset_s": bitset_s, "speedup": legacy_s / bitset_s}


def bench_ldataset(repeat: int = 3) -> dict[str, float]:
    config = LDatasetConfig(num_concise=12, num_faithful=8, seed=7)

    def build() -> int:
        return len(LDatasetGenerator(config).generate().l_dataset)

    assert build() > 0
    return {"seconds": measure(build, repeat=repeat, min_time=0.0)}


def collect_results(repeat: int = 5) -> dict:
    """Run every benchmark and assemble the BENCH_perf.json payload."""
    return {
        "schema": 1,
        "host": {
            "python": platform.python_version(),
            "machine": platform.machine(),
            "system": platform.system(),
        },
        "benchmarks": {
            "truth_table_8var": bench_truth_table(repeat=repeat),
            "qm_minimize_8var": bench_qm(repeat=repeat),
            "ldataset_quick_build": bench_ldataset(),
        },
    }


def regressions(current: dict, baseline: dict, threshold: float = 2.0) -> list[str]:
    """Tracked metrics that regressed more than ``threshold``x versus baseline."""
    problems = []
    for bench, key in TRACKED:
        base = baseline.get("benchmarks", {}).get(bench, {}).get(key)
        now = current.get("benchmarks", {}).get(bench, {}).get(key)
        if base is None or now is None:
            problems.append(f"{bench}.{key}: missing from baseline or current run")
            continue
        if now > base * threshold:
            problems.append(
                f"{bench}.{key}: {now:.6f}s vs baseline {base:.6f}s (>{threshold:g}x)"
            )
    return problems
