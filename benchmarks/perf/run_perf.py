"""Perf runner: record or gate the tracked microbenchmarks.

Usage (from the repository root, ``PYTHONPATH=src``):

    python benchmarks/perf/run_perf.py            # print current numbers
    python benchmarks/perf/run_perf.py --update   # rewrite BENCH_perf.json
    python benchmarks/perf/run_perf.py --check    # exit 1 on a >2x regression

``make bench`` runs ``--check``; ``make bench-update`` refreshes the baseline.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from perf_harness import collect_results, regressions

BASELINE_PATH = Path(__file__).resolve().parents[2] / "BENCH_perf.json"


def _render(results: dict) -> str:
    lines = ["benchmark                 before (s)    after (s)     speedup"]
    benches = results["benchmarks"]
    tt = benches["truth_table_8var"]
    qm = benches["qm_minimize_8var"]
    bs = benches["batch_sim"]
    ld = benches["ldataset_quick_build"]
    lines.append(
        f"truth_table_8var          {tt['legacy_s']:<13.6f} {tt['bit_parallel_s']:<13.6f} {tt['speedup']:.1f}x"
    )
    lines.append(
        f"qm_minimize_8var          {qm['legacy_s']:<13.6f} {qm['bitset_s']:<13.6f} {qm['speedup']:.1f}x"
    )
    lines.append(
        f"batch_sim                 {bs['scalar_s']:<13.6f} {bs['batch_s']:<13.6f} {bs['speedup']:.1f}x"
        f"  ({int(bs['stimuli'])} stimuli)"
    )
    lines.append(f"ldataset_quick_build      {'-':<13} {ld['seconds']:<13.6f}")
    fe = benches.get("formal_eq")
    if fe is not None:
        speedup = f"{fe['speedup']:.1f}x  " if "speedup" in fe else ""
        lines.append(
            f"formal_eq                 {fe['sampled_sweep_s']:<13.6f} {fe['prove_s']:<13.6f} "
            f"{speedup}({int(fe['input_bits'])}-input miter: sampled {int(fe['sweep_lanes'])}-lane "
            f"sweep vs complete SAT proof)"
        )
    fi = benches.get("formal_incremental")
    if fi is not None:
        lines.append(
            f"formal_incremental        {fi['fresh_s']:<13.6f} {fi['incremental_s']:<13.6f} {fi['speedup']:.1f}x"
            f"  ({int(fi['candidates'])}-candidate sweep, {int(fi['unique_codes'])} unique, "
            f"shared solver vs fresh per candidate)"
        )
    cs = benches.get("codegen_sim")
    if cs is not None:
        lines.append(
            f"codegen_sim               {cs['interpret_s']:<13.6f} {cs['codegen_s']:<13.6f} {cs['speedup']:.1f}x"
            f"  ({int(cs['stimuli'])} stimuli)"
        )
    cc = benches.get("compile_cache")
    if cc is not None:
        lines.append(
            f"compile_cache             {cc['cold_s']:<13.6f} {cc['warm_s']:<13.6f} {cc['speedup']:.1f}x"
            f"  ({int(cc['candidates'])}-candidate sweep, {int(cc['unique_codes'])} unique)"
        )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--update", action="store_true", help="rewrite the committed baseline")
    parser.add_argument("--check", action="store_true", help="fail on >threshold regression vs baseline")
    parser.add_argument("--threshold", type=float, default=2.0, help="regression factor (default 2.0)")
    parser.add_argument("--repeat", type=int, default=5, help="measurement rounds per benchmark")
    args = parser.parse_args(argv)

    results = collect_results(repeat=args.repeat)
    print(_render(results))

    if args.update:
        BASELINE_PATH.write_text(json.dumps(results, indent=2) + "\n")
        print(f"baseline written to {BASELINE_PATH}")
        return 0
    if args.check:
        if not BASELINE_PATH.exists():
            print(f"no baseline at {BASELINE_PATH}; run with --update first", file=sys.stderr)
            return 2
        try:
            baseline = json.loads(BASELINE_PATH.read_text())
        except json.JSONDecodeError as error:
            print(f"unreadable baseline {BASELINE_PATH}: {error}; rerun --update", file=sys.stderr)
            return 2
        problems = regressions(results, baseline, threshold=args.threshold)
        if problems:
            print("PERF REGRESSION:", file=sys.stderr)
            for problem in problems:
                print(f"  {problem}", file=sys.stderr)
            return 1
        print(f"no regression vs baseline (threshold {args.threshold:g}x)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
