"""Perf regression gate: tracked microbenchmarks vs the committed baseline.

Marked ``perf`` so the gate can be selected (``-m perf``) or skipped
(``-m "not perf"``) independently of the functional suite.  Two kinds of
assertion:

* machine-independent: the bit-parallel engine must keep its speedup over the
  legacy per-assignment path measured on the *same* machine in the same run
  (>=10x on 8-variable truth-table extraction, >=3x on QM minimisation, >=4x on
  batched functional-equivalence checking at 64+ stimuli, >=5x for generated
  straight-line code over the AST-walking batch interpreter at 256 stimuli);
* baseline-relative: no tracked timing may regress more than 2x versus the
  committed ``BENCH_perf.json``.

The ``batch_sim`` fixture runs the batched testbench with the differential
oracle enabled, so every ``make bench`` / ``make perf-tests`` invocation also
re-validates the batch engine against the scalar simulator.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from perf_harness import (
    bench_batch_sim,
    bench_codegen_sim,
    bench_compile_cache,
    bench_formal_eq,
    bench_formal_incremental,
    bench_qm,
    bench_truth_table,
    regressions,
)

BASELINE_PATH = Path(__file__).resolve().parents[2] / "BENCH_perf.json"


@pytest.fixture(scope="module")
def current():
    return {
        "benchmarks": {
            "truth_table_8var": bench_truth_table(repeat=3),
            "qm_minimize_8var": bench_qm(repeat=3),
            "batch_sim": bench_batch_sim(repeat=3),
            "codegen_sim": bench_codegen_sim(repeat=3),
            "formal_eq": bench_formal_eq(repeat=3),
            "formal_incremental": bench_formal_incremental(repeat=3),
            "compile_cache": bench_compile_cache(repeat=3),
        }
    }


@pytest.fixture(scope="module")
def baseline():
    assert BASELINE_PATH.exists(), "BENCH_perf.json baseline missing; run make bench-update"
    return json.loads(BASELINE_PATH.read_text())


@pytest.mark.perf
def test_truth_table_speedup_holds(current):
    result = current["benchmarks"]["truth_table_8var"]
    assert result["speedup"] >= 10.0, (
        f"bit-parallel truth-table extraction only {result['speedup']:.1f}x "
        f"faster than the legacy evaluate walk (need >=10x)"
    )


@pytest.mark.perf
def test_qm_speedup_holds(current):
    result = current["benchmarks"]["qm_minimize_8var"]
    assert result["speedup"] >= 3.0, (
        f"bitset QM only {result['speedup']:.1f}x faster than the legacy "
        f"per-minterm cover (need >=3x)"
    )


@pytest.mark.perf
def test_batch_sim_speedup_holds(current):
    result = current["benchmarks"]["batch_sim"]
    assert result["stimuli"] >= 64, "batch_sim must measure at 64+ stimuli"
    assert result["speedup"] >= 4.0, (
        f"batched equivalence checking only {result['speedup']:.1f}x faster than "
        f"the scalar per-vector loop at {int(result['stimuli'])} stimuli (need >=4x)"
    )


@pytest.mark.perf
def test_codegen_sim_speedup_holds(current):
    result = current["benchmarks"]["codegen_sim"]
    assert result["stimuli"] >= 256, "codegen_sim must measure at 256+ stimuli"
    assert result["speedup"] >= 5.0, (
        f"generated straight-line code only {result['speedup']:.1f}x faster than "
        f"the AST-walking batch interpreter at {int(result['stimuli'])} stimuli "
        f"(need >=5x)"
    )


@pytest.mark.perf
def test_formal_eq_proves_wide_miter(current):
    result = current["benchmarks"]["formal_eq"]
    assert result["input_bits"] >= 20, "formal_eq must prove a >=20-input miter"
    # A complete proof of a space 16384x larger than the sampled sweep must
    # stay within interactive budgets (the gate vs baseline bounds drift).
    assert result["prove_s"] < 5.0, (
        f"SAT proof of the {int(result['input_bits'])}-input miter took "
        f"{result['prove_s']:.2f}s"
    )


@pytest.mark.perf
def test_formal_incremental_speedup_holds(current):
    result = current["benchmarks"]["formal_incremental"]
    assert result["candidates"] >= 50, "must measure a 50+ candidate sweep"
    assert result["speedup"] >= 5.0, (
        f"incremental equivalence session only {result['speedup']:.1f}x faster "
        f"than a fresh solver per candidate on the "
        f"{int(result['candidates'])}-candidate sweep (need >=5x)"
    )


@pytest.mark.perf
def test_compile_cache_speedup_holds(current):
    result = current["benchmarks"]["compile_cache"]
    assert result["candidates"] >= 50, "compile_cache must sweep 50+ candidates"
    assert result["speedup"] >= 3.0, (
        f"warm (compile-once) evaluation only {result['speedup']:.1f}x faster than "
        f"cold over a {int(result['candidates'])}-candidate sweep (need >=3x)"
    )


@pytest.mark.perf
def test_no_regression_vs_committed_baseline(current, baseline):
    tracked_now = {
        "benchmarks": {
            name: dict(values) for name, values in current["benchmarks"].items()
        }
    }
    # The dataset build is tracked by the runner script, not re-timed here: it
    # is too coarse for a quick per-test measurement.  Copy the baseline value
    # through so `regressions` only gates what this test measured.
    tracked_now["benchmarks"]["ldataset_quick_build"] = baseline["benchmarks"][
        "ldataset_quick_build"
    ]
    problems = regressions(tracked_now, baseline, threshold=2.0)
    assert not problems, "; ".join(problems)
