"""Dataset-generation pipeline benchmark (§III-C/D counts and filtering ablation).

The paper reports ~550k corpus files → ~43k valid vanilla pairs → ~14k K-dataset
pairs plus ~5k L-dataset pairs.  At reproduction scale the absolute counts are
smaller, but the funnel shape (lossy verification, exemplar-driven expansion) and
the effect of the compile-verification gate (step 8) are reproduced here.
"""

from __future__ import annotations

from repro.bench.reporting import format_table
from repro.core.dataset.corpus import CorpusConfig, CorpusGenerator
from repro.core.dataset.kdataset import KDatasetGenerator
from repro.core.dataset.ldataset import LDatasetConfig, LDatasetGenerator
from repro.core.dataset.vanilla import VanillaDatasetGenerator
from repro.verilog.syntax_checker import SyntaxChecker


def _run_pipeline(corpus_size: int, l_concise: int, l_faithful: int, seed: int):
    corpus = CorpusGenerator(CorpusConfig(num_samples=corpus_size, seed=seed)).generate()
    vanilla = VanillaDatasetGenerator(seed=seed).generate(corpus)
    k_result = KDatasetGenerator(seed=seed).generate(vanilla)
    l_result = LDatasetGenerator(
        LDatasetConfig(num_concise=l_concise, num_faithful=l_faithful, seed=seed)
    ).generate()
    return corpus, vanilla, k_result, l_result


def test_dataset_pipeline(benchmark, scale, save_result):
    corpus, vanilla, k_result, l_result = benchmark.pedantic(
        _run_pipeline,
        kwargs={
            "corpus_size": scale.corpus_size,
            "l_concise": scale.l_dataset_concise,
            "l_faithful": scale.l_dataset_faithful,
            "seed": scale.seed + 2025,
        },
        rounds=1,
        iterations=1,
    )
    stats = k_result.stats

    rows = [
        ["corpus files (paper: ~550k)", len(corpus)],
        ["vanilla instruction-code pairs", len(vanilla)],
        ["valid vanilla pairs (paper: ~43k)", stats.valid_vanilla_pairs],
        ["topic-matched pairs", stats.topic_matched_pairs],
        ["K-dataset pairs (paper: ~14k)", len(k_result.k_dataset)],
        ["L-dataset pairs (paper: ~5k)", len(l_result.l_dataset)],
        ["KL-dataset pairs", len(k_result.k_dataset) + len(l_result.l_dataset)],
    ]
    save_result(
        "dataset_pipeline",
        format_table(["Stage", "Count"], rows, title="Dataset generation funnel (scaled)"),
    )

    # Funnel shape: verification filters out part of the corpus, exactly like the
    # paper's 550k → 43k step; the compile gate keeps only clean pairs.
    assert stats.valid_vanilla_pairs < len(corpus)
    checker = SyntaxChecker()
    assert all(checker.check(pair.code).ok for pair in k_result.k_dataset)
    assert all(pair.verified for pair in l_result.l_dataset)

    # K : L ratio stays in the same regime as the paper (14k : 5k ≈ 2.8 : 1).
    ratio = len(k_result.k_dataset) / max(1, len(l_result.l_dataset))
    assert 1.0 <= ratio <= 8.0

    # Ablation of the verification gate: without it, flawed corpus samples would
    # leak into the dataset (the gate removes a non-trivial fraction).
    removed = len(vanilla) - stats.valid_vanilla_pairs
    assert removed >= len(corpus) * 0.05
