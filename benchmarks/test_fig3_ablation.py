"""Fig. 3 — ablation of the techniques adopted in HaVen.

For each of the three base models (CodeLlama, DeepSeek-Coder, CodeQwen) the five
settings are evaluated on VerilogEval-Human:

* base                — the pre-trained model;
* vanilla             — fine-tuned on the vanilla dataset only;
* vanilla+CoT         — vanilla fine-tune + SI-CoT prompting;
* vanilla+KL          — fine-tuned on vanilla + KL-dataset;
* vanilla+CoT+KL      — the full HaVen configuration.

The shape check asserts the paper's finding that each added technique improves
pass@1 (and that SI-CoT and the KL-dataset are complementary).
"""

from __future__ import annotations

from repro.bench.reporting import render_fig3
from repro.experiments import run_fig3


def test_fig3_ablation(benchmark, scale, save_result):
    series = benchmark.pedantic(run_fig3, kwargs={"scale": scale}, rounds=1, iterations=1)
    save_result("fig3_ablation", render_fig3(series))

    assert len(series) == 3
    for entry in series:
        pass1 = entry.pass1
        # Monotone improvement across the technique stack (small tolerance for
        # sampling noise at reduced scale).
        assert pass1["vanilla"] >= pass1["base"] - 2.0
        assert pass1["vanilla+CoT"] >= pass1["vanilla"] - 2.0
        assert pass1["vanilla+KL"] >= pass1["vanilla"]
        assert pass1["vanilla+CoT+KL"] >= pass1["vanilla+KL"] - 2.0
        # The full configuration clearly beats the base model.
        assert pass1["vanilla+CoT+KL"] > pass1["base"]
        # pass@5 is at least pass@1 for every setting.
        for setting, value in entry.pass5.items():
            assert value >= pass1[setting] - 1e-6
