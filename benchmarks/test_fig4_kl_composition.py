"""Fig. 4 — ablation of the KL-dataset composition.

Fine-tunes CodeQwen on {0%, 50%, 100%} portions of the K-dataset crossed with
{0%, 50%, 100%} portions of the L-dataset (always on top of the vanilla
dataset + SI-CoT, as in the paper) and reports the pass@1 / pass@5 grids on
VerilogEval-Human.

Shape checks: pass rates increase along both axes of the grid, and the K-dataset
axis contributes at least as much as the L-dataset axis (the paper attributes
this to the K-dataset being larger).
"""

from __future__ import annotations

from repro.bench.reporting import render_fig4
from repro.experiments import run_fig4

PORTIONS = (0, 50, 100)


def test_fig4_kl_composition(benchmark, scale, save_result):
    grid_pass1, grid_pass5 = benchmark.pedantic(
        run_fig4, kwargs={"scale": scale, "portions": PORTIONS}, rounds=1, iterations=1
    )
    save_result("fig4_kl_composition", render_fig4(grid_pass1, grid_pass5, PORTIONS))

    # Monotone along the K axis for every L portion (2-point tolerance for noise).
    for l_portion in PORTIONS:
        assert grid_pass1[(100, l_portion)] >= grid_pass1[(0, l_portion)] - 2.0
    # Monotone along the L axis for every K portion.
    for k_portion in PORTIONS:
        assert grid_pass1[(k_portion, 100)] >= grid_pass1[(k_portion, 0)] - 2.0

    # The fully-loaded corner is the best cell (paper: 61.1 / 64.8).
    assert grid_pass1[(100, 100)] >= max(grid_pass1.values()) - 2.0

    # The K-dataset contributes more than the L-dataset (paper observation).
    k_gain = grid_pass1[(100, 0)] - grid_pass1[(0, 0)]
    l_gain = grid_pass1[(0, 100)] - grid_pass1[(0, 0)]
    assert k_gain >= l_gain - 2.0

    # pass@5 dominates pass@1 cell-wise.
    for key, value in grid_pass5.items():
        assert value >= grid_pass1[key] - 1e-6
