"""Table II — hallucination taxonomy.

Reproduces the taxonomy table: for every canonical example (prompt + incorrect
code + error analysis) the hallucination detector must recover the paper's
sub-type classification.  The benchmark reports classification accuracy and the
time taken to classify the full example set.
"""

from __future__ import annotations

from repro.bench.reporting import format_table
from repro.core.hallucination_detector import HallucinationDetector
from repro.core.taxonomy import TABLE_II_EXAMPLES, HallucinationSubtype, type_of


def _classify_all() -> list[tuple[str, str, str, bool]]:
    detector = HallucinationDetector()
    rows = []
    for example in TABLE_II_EXAMPLES:
        functional = (
            None
            if example.subtype is HallucinationSubtype.VERILOG_SYNTAX_MISAPPLICATION
            else False
        )
        report = detector.classify(example.prompt, example.incorrect_code, functional_passed=functional)
        predicted = report.primary.subtype if report.primary else None
        rows.append(
            (
                type_of(example.subtype).value,
                example.subtype.value,
                predicted.value if predicted else "none",
                predicted is example.subtype,
            )
        )
    return rows


def test_table2_taxonomy(benchmark, save_result):
    rows = benchmark.pedantic(_classify_all, rounds=1, iterations=1)
    correct = sum(1 for row in rows if row[3])

    table = format_table(
        ["Type", "Sub-type (paper)", "Detector classification", "Match"],
        [[r[0], r[1], r[2], "yes" if r[3] else "NO"] for r in rows],
        title="Table II reproduction: taxonomy classification of the canonical examples",
    )
    summary = f"\nClassification accuracy: {correct}/{len(rows)}"
    save_result("table2_taxonomy", table + summary)

    # Every Table II example must be recovered with its exact sub-type.
    assert correct == len(rows)
