"""Table III — SI-CoT interpretation examples.

Reproduces the three interpretation examples (state diagram, truth table,
waveform chart): the SI-CoT pipeline must translate each symbolic block into the
uniform natural-language instruction format, and the interpretation must be
semantically faithful (the reconstructed behaviour matches the original block).
"""

from __future__ import annotations

from repro.bench.reporting import format_table
from repro.core.sicot import refine_prompt
from repro.symbolic.detector import SymbolicModality

STATE_DIAGRAM = """A[out=0]--[x=0]->B
A[out=0]--[x=1]->A
B[out=1]--[x=0]->A
B[out=1]--[x=1]->B"""

TRUTH_TABLE = """a | b | out
0 | 0 | 0
0 | 1 | 0
1 | 0 | 0
1 | 1 | 1"""

WAVEFORM = """a: 0 1 1 0
b: 1 0 1 0
out: 0 0 1 0
time(ns): 0 10 20 30"""

EXPECTED_FRAGMENTS = {
    "state_diagram": ["States&Outputs:", "state A(out=0)", "If x=0, then transit to state B"],
    "truth_table": ["Variables: 1. a(input); 2. b(input); 3. out(output)", "If a=1, b=1, then out=1;"],
    "waveform": ["When time is 0ns", "When time is 30ns"],
}


def _interpret_all():
    results = {}
    for name, block in (
        ("state_diagram", STATE_DIAGRAM),
        ("truth_table", TRUTH_TABLE),
        ("waveform", WAVEFORM),
    ):
        refined = refine_prompt(f"Implement the logic below.\n{block}")
        results[name] = refined
    return results


def test_table3_sicot_examples(benchmark, save_result):
    results = benchmark.pedantic(_interpret_all, rounds=1, iterations=1)

    rows = []
    all_ok = True
    for name, refined in results.items():
        fragments_ok = all(fragment in refined.text for fragment in EXPECTED_FRAGMENTS[name])
        all_ok &= fragments_ok
        rows.append([name, refined.modality.value, "yes" if fragments_ok else "NO"])

    table = format_table(
        ["Modality", "Detected as", "Uniform-format interpretation present"],
        rows,
        title="Table III reproduction: SI-CoT interpretation examples",
    )
    details = "\n\n".join(
        f"--- {name} ---\n{refined.text}" for name, refined in results.items()
    )
    save_result("table3_sicot_examples", table + "\n\n" + details)

    assert results["state_diagram"].modality is SymbolicModality.STATE_DIAGRAM
    assert results["truth_table"].modality is SymbolicModality.TRUTH_TABLE
    assert results["waveform"].modality is SymbolicModality.WAVEFORM
    assert all_ok
