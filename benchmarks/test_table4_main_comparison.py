"""Table IV — main comparison against baseline models.

Evaluates the baseline profiles and the three HaVen models (fine-tuned through
the real dataset → fine-tune → SI-CoT pipeline) on the four benchmarks:
VerilogEval v1 Machine/Human (functional pass@1/5), RTLLM v1.1 (syntax and
functional pass@5) and VerilogEval v2 (pass@1/5).

By default a representative subset of the 17 baseline rows is evaluated to keep
the run time reasonable; set ``REPRO_TABLE4_FULL=1`` to evaluate every row.
The shape checks assert the paper's headline findings: the HaVen models lead on
functional correctness, ahead of OriGen, which is ahead of RTLCoder and the
general-purpose LLMs.
"""

from __future__ import annotations

import os

from repro.bench.reporting import render_table4
from repro.experiments import TABLE4_BASELINES, run_table4

#: Representative subset evaluated by default (one model per group tier).
DEFAULT_BASELINES = [
    "gpt-3.5",
    "gpt-4",
    "codellama-7b",
    "deepseek-coder-6.7b",
    "codeqwen-7b",
    "rtlcoder-deepseek",
    "betterv-codeqwen",
    "autovcoder-codeqwen",
    "origen-deepseek",
]


def test_table4_main_comparison(benchmark, scale, save_result):
    baseline_keys = (
        list(TABLE4_BASELINES) if os.environ.get("REPRO_TABLE4_FULL") == "1" else DEFAULT_BASELINES
    )
    rows = benchmark.pedantic(
        run_table4,
        kwargs={"scale": scale, "baseline_keys": baseline_keys, "include_haven": True},
        rounds=1,
        iterations=1,
    )
    save_result("table4_main_comparison", render_table4(rows))

    by_name = {row.model: row for row in rows}
    haven_rows = [row for row in rows if row.model.startswith("HaVen")]
    assert len(haven_rows) == 3

    # Headline shape checks (paper: HaVen leads, OriGen next, then the rest).
    best_haven_human = max(row.human_pass1 for row in haven_rows)
    origen_human = by_name["OriGen-DeepSeek-7B-v1.5"].human_pass1
    rtlcoder_human = by_name["RTLCoder-DeepSeek"].human_pass1
    base_models_human = max(
        by_name["CodeLlama-7b-Instruct"].human_pass1,
        by_name["DeepSeek-Coder-6.7b-Instruct"].human_pass1,
        by_name["CodeQwen1.5-7B-Chat"].human_pass1,
    )
    assert best_haven_human >= origen_human
    assert origen_human >= rtlcoder_human
    assert rtlcoder_human >= base_models_human

    # Machine split: HaVen models beat their own base models (Table IV rows).
    assert max(row.machine_pass1 for row in haven_rows) > base_models_human

    # Syntax pass@5 on RTLLM stays high for every evaluated model (>= 80%).
    for row in rows:
        if row.rtllm_syntax_pass5 is not None:
            assert row.rtllm_syntax_pass5 >= 80.0
