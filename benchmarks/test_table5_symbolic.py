"""Table V — evaluation on symbolic modalities.

Evaluates RTLCoder, OriGen, GPT-4, DeepSeek-Coder-V2 and HaVen-CodeQwen on the
44-task symbolic subset of VerilogEval-Human (10 truth tables, 13 waveform
charts, 21 state diagrams), reporting pass cases / total cases per modality —
the same layout as the paper's Table V.
"""

from __future__ import annotations

from repro.bench.reporting import render_table5
from repro.experiments import run_table5


def test_table5_symbolic_modalities(benchmark, scale, save_result):
    rows = benchmark.pedantic(run_table5, kwargs={"scale": scale}, rounds=1, iterations=1)
    save_result("table5_symbolic", render_table5(rows))

    by_model = {row.model: row for row in rows}
    haven = by_model["HaVen-CodeQwen"]

    # Task counts follow the paper's composition.
    assert haven.truth_table[1] == 10
    assert haven.waveform[1] == 13
    assert haven.state_diagram[1] == 21

    # Shape: HaVen-CodeQwen has the best overall pass rate on symbolic tasks,
    # and DeepSeek-Coder-V2 is the best of the non-HaVen models (paper finding).
    others = [row for row in rows if row.model != "HaVen-CodeQwen"]
    assert haven.overall >= max(row.overall for row in others)
    deepseek_v2 = by_model["DeepSeek-Coder-V2"]
    rtlcoder = by_model["RTLCoder-DeepSeek"]
    assert deepseek_v2.overall >= rtlcoder.overall
