"""Table VI — effect of SI-CoT prompting on commercial LLMs.

Evaluates GPT-4o mini, GPT-4 and DeepSeek-Coder-V2 on the 44-task symbolic
subset with and without SI-CoT refinement (interpretations produced by the same
deterministic SI-CoT stage, mirroring the paper's use of CodeQwen-produced
SI-CoT instructions for all models).

Note: the paper's Table VI rows appear with the with/without labels swapped
relative to its own prose; we follow the prose ("SI-CoT directly helps with
CodeGen LLM even without fine-tuning"), i.e. the with-SI-CoT column is the
higher one.
"""

from __future__ import annotations

from repro.bench.reporting import render_table6
from repro.experiments import run_table6


def test_table6_sicot_on_commercial_llms(benchmark, scale, save_result):
    rows = benchmark.pedantic(run_table6, kwargs={"scale": scale}, rounds=1, iterations=1)
    save_result("table6_sicot_commercial", render_table6(rows))

    assert set(rows) == {"GPT-4o mini", "GPT-4", "DeepSeek-Coder-V2"}
    for model, (with_cot, without_cot) in rows.items():
        # SI-CoT helps (or at worst is neutral) for every commercial model.
        assert with_cot >= without_cot, model

    # DeepSeek-Coder-V2 is the strongest commercial model on symbolic tasks even
    # without SI-CoT (paper: 34.1% vs 22.7%).
    assert rows["DeepSeek-Coder-V2"][1] >= rows["GPT-4"][1]
