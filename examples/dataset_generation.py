"""Build the vanilla, K- and L-datasets exactly as Fig. 2 describes.

The script runs the full dataset-generation flow at a small scale and prints the
funnel statistics (corpus → valid vanilla → topic-matched → K-dataset) plus a few
sample pairs so you can see the HDL-engineer-style rewriting and the logic
templates.  Optionally writes the datasets to JSON-lines files.

Run with::

    python examples/dataset_generation.py [output_dir]
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro.core.dataset.corpus import CorpusConfig, CorpusGenerator
from repro.core.dataset.kdataset import KDatasetGenerator
from repro.core.dataset.ldataset import LDatasetConfig, LDatasetGenerator, generate_kl_dataset
from repro.core.dataset.vanilla import VanillaDatasetGenerator


def main(output_dir: str | None = None) -> None:
    # Step 5: corpus + vanilla instructions (GPT-3.5 stand-in).
    corpus = CorpusGenerator(CorpusConfig(num_samples=200, seed=2025)).generate()
    vanilla = VanillaDatasetGenerator(seed=0).generate(corpus)

    # Steps 6-8: topic matching, augmentation, verification.
    k_result = KDatasetGenerator(seed=0).generate(vanilla)

    # Steps 9-12: logic expressions, templates, instruction evolution.
    l_result = LDatasetGenerator(LDatasetConfig(num_concise=40, num_faithful=25, seed=7)).generate()

    kl = generate_kl_dataset(k_result.k_dataset, l_result.l_dataset)

    print("Dataset generation funnel (scaled-down reproduction of Fig. 2)")
    print("-" * 64)
    print(f"corpus files                : {len(corpus):5d}   (paper: ~550,000)")
    print(f"valid vanilla pairs         : {k_result.stats.valid_vanilla_pairs:5d}   (paper: ~43,000)")
    print(f"topic-matched pairs         : {k_result.stats.topic_matched_pairs:5d}")
    print(f"K-dataset pairs             : {len(k_result.k_dataset):5d}   (paper: ~14,000)")
    print(f"L-dataset pairs             : {len(l_result.l_dataset):5d}   (paper: ~5,000)")
    print(f"KL-dataset pairs            : {len(kl):5d}")
    print()

    print("Example vanilla instruction (trivial, misaligned — Table I left column):")
    print(f"  {k_result.vanilla_dataset.pairs[0].instruction}")
    print()
    sample_k = k_result.k_dataset.pairs[0]
    print(f"Example K-dataset instruction (exemplar: {sample_k.exemplar_name}):")
    print(f"  {sample_k.instruction}")
    print()
    sample_l = l_result.l_dataset.pairs[0]
    print(f"Example L-dataset instruction ({sample_l.metadata['category']}):")
    for line in sample_l.instruction.splitlines()[:6]:
        print(f"  {line}")
    print()

    stats = kl.stats()
    print("KL-dataset topic coverage:", ", ".join(sorted(stats.by_topic)))
    print("KL-dataset attribute coverage:", ", ".join(sorted(stats.by_attribute)))

    if output_dir is not None:
        directory = Path(output_dir)
        directory.mkdir(parents=True, exist_ok=True)
        (directory / "vanilla.jsonl").write_text(k_result.vanilla_dataset.to_jsonl())
        (directory / "k_dataset.jsonl").write_text(k_result.k_dataset.to_jsonl())
        (directory / "l_dataset.jsonl").write_text(l_result.l_dataset.to_jsonl())
        (directory / "kl_dataset.jsonl").write_text(kl.to_jsonl())
        print(f"\nDatasets written to {directory}/")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else None)
