"""Evaluate a model (with and without SI-CoT) on a VerilogEval-Human style suite.

Builds a scaled-down VerilogEval-Human suite, fine-tunes the CodeQwen base
profile on freshly generated vanilla + KL datasets, and compares four
configurations, printing per-benchmark pass@1/pass@5 and a per-category
breakdown — i.e. a miniature version of Table IV plus Fig. 3 for one model.

Run with::

    python examples/evaluate_model.py
"""

from __future__ import annotations

from repro.bench.evaluator import BenchmarkEvaluator, EvaluationConfig
from repro.bench.reporting import format_table
from repro.bench.verilogeval import SuiteConfig, build_verilogeval_human
from repro.core.llm.finetune import DatasetMix, FineTuner
from repro.core.llm.profiles import BASE_MODEL_PROFILES
from repro.core.llm.simulated import SimulatedCodeGenLLM
from repro.core.pipeline import HaVenPipeline
from repro.experiments import ExperimentScale, build_datasets


def main() -> None:
    scale = ExperimentScale.quick()
    suite = build_verilogeval_human(SuiteConfig(num_tasks=40, seed=11))
    evaluator = BenchmarkEvaluator(EvaluationConfig(num_samples=5, ks=(1, 5), temperatures=(0.2,)))

    print(f"Suite: {suite.name} ({len(suite)} tasks), categories: {suite.categories()}")
    print("Generating datasets and fine-tuning CodeQwen (behavioural model)...")
    datasets = build_datasets(scale)
    base = BASE_MODEL_PROFILES["codeqwen-7b"]
    tuned, report = FineTuner().finetune(
        base,
        DatasetMix(vanilla=datasets.vanilla, k_dataset=datasets.k_dataset, l_dataset=datasets.l_dataset),
        tuned_name="HaVen-CodeQwen",
    )
    print("Skill changes:", {k: f"{report.skill_before[k]:.2f}→{report.skill_after[k]:.2f}" for k in report.skill_after})

    configurations = {
        "CodeQwen (base)": HaVenPipeline(SimulatedCodeGenLLM(base), use_sicot=False),
        "CodeQwen + SI-CoT": HaVenPipeline(SimulatedCodeGenLLM(base), use_sicot=True),
        "HaVen-CodeQwen (no CoT)": HaVenPipeline(SimulatedCodeGenLLM(tuned), use_sicot=False),
        "HaVen-CodeQwen (full)": HaVenPipeline(SimulatedCodeGenLLM(tuned), use_sicot=True),
    }

    rows = []
    detailed = {}
    for name, pipeline in configurations.items():
        result = evaluator.evaluate(pipeline, suite)
        functional = result.functional_percentages()
        syntax = result.syntax_percentages()
        rows.append([name, functional.get(1), functional.get(5), syntax.get(1)])
        detailed[name] = result

    print()
    print(format_table(
        ["Configuration", "func pass@1 (%)", "func pass@5 (%)", "syntax pass@1 (%)"],
        rows,
        title="VerilogEval-Human (scaled) — effect of fine-tuning and SI-CoT",
    ))

    print()
    full = detailed["HaVen-CodeQwen (full)"]
    category_rows = [
        [category, f"{100.0 * value:.1f}"] for category, value in sorted(full.category_pass_at_1().items())
    ]
    print(format_table(["Task category", "pass@1 (%)"], category_rows, title="HaVen-CodeQwen (full): per-category pass@1"))


if __name__ == "__main__":
    main()
