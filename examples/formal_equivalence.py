"""Formal equivalence end to end: prove, refute, replay, classify.

This example walks the `repro.formal` user journey:

1. prove two structurally different combinational designs equivalent with a
   complete SAT miter proof (no stimulus sweep, every input assignment);
2. refute a buggy variant and extract the concrete counterexample;
3. replay the counterexample on the batched simulator (the differential
   oracle) and minimise the failing logic with Quine–McCluskey;
4. classify the hallucination behind the bug, letting the counterexample
   sharpen the Table II subtype split;
5. bounded sequential equivalence: unroll two counters from reset and find
   the first input sequence on which they diverge.

Run with::

    python examples/formal_equivalence.py
"""

from __future__ import annotations

from repro.bench.golden import batch_equivalence_mismatches, formal_equivalence_check
from repro.core.hallucination_detector import classify_generation
from repro.formal import prove_sequential_equivalence
from repro.logic.expr import And, Not, Or, Var
from repro.logic.minimize import minimize_expression

# --------------------------------------------------------------------------- designs
REFERENCE = """
module majority(input a, input b, input c, output out);
    assign out = (a & b) | (a & c) | (b & c);
endmodule
"""

# A different implementation of the same function: sum the bits, compare.
RESTRUCTURED = """
module majority(input a, input b, input c, output out);
    wire [1:0] ones;
    assign ones = a + b + c;
    assign out = ones >= 2'd2;
endmodule
"""

# A hallucinated variant: drops the (b & c) product term.
BUGGY = """
module majority(input a, input b, input c, output out);
    assign out = (a & b) | (a & c);
endmodule
"""

PROMPT = """Implement a 3-input majority voter matching this truth table:

a | b | c | out
0 | 0 | 0 | 0
0 | 0 | 1 | 0
0 | 1 | 0 | 0
0 | 1 | 1 | 1
1 | 0 | 0 | 0
1 | 0 | 1 | 1
1 | 1 | 0 | 1
1 | 1 | 1 | 1
"""


def main() -> None:
    # ------------------------------------------------------------- 1. prove
    proof = formal_equivalence_check(RESTRUCTURED, REFERENCE)
    print("== Complete combinational proof ==")
    print(f"equivalent: {proof.equivalent} (method: {proof.method})")
    print(
        f"solver work: {proof.stats.decisions} decisions, "
        f"{proof.stats.conflicts} conflicts, {proof.stats.propagations} propagations"
    )

    # ------------------------------------------------------------- 2. refute
    refutation = formal_equivalence_check(BUGGY, REFERENCE)
    counterexample = refutation.counterexample
    print("\n== Refutation of the buggy variant ==")
    print(f"equivalent: {refutation.equivalent}")
    print(f"counterexample: {counterexample.describe()}")

    # ------------------------------------------------------------- 3. replay + minimise
    # formal_equivalence_check already replayed the counterexample on the
    # batched simulator before returning it; doing it again explicitly shows
    # the differential-oracle loop.
    (replayed,) = batch_equivalence_mismatches(
        BUGGY, REFERENCE, [counterexample.inputs]
    )
    print("\n== Replay on the batched simulator ==")
    print(f"simulator confirms: {replayed}")

    a, b, c = Var("a"), Var("b"), Var("c")
    missing_term = And(
        Not(Or(And(a, b), And(a, c))),  # not covered by the buggy code...
        Or(And(a, b), Or(And(a, c), And(b, c))),  # ...but required by majority
    )
    print(f"minimised missing cover: {minimize_expression(missing_term).to_verilog()}")

    # ------------------------------------------------------------- 4. classify
    report = classify_generation(PROMPT, BUGGY, counterexample=counterexample)
    print("\n== Hallucination classification ==")
    print(f"subtype: {report.primary.subtype.value}")
    print(f"evidence: {report.primary.evidence}")

    # ------------------------------------------------------------- 5. sequential
    counter = """
    module counter(input clk, input rst, input en, output reg [3:0] count);
        always @(posedge clk) begin
            if (rst)
                count <= 4'd0;
            else if (en)
                count <= count + 4'd1;
        end
    endmodule
    """
    saturating = counter.replace(
        "count <= count + 4'd1;",
        "count <= (count == 4'd15) ? 4'd15 : (count + 4'd1);",
    )
    print("\n== Bounded sequential equivalence (unrolled from reset) ==")
    shallow = prove_sequential_equivalence(saturating, counter, steps=8)
    print(f"wrap-vs-saturate @ 8 steps:  equivalent={shallow.equivalent}")
    deep = prove_sequential_equivalence(saturating, counter, steps=16)
    print(f"wrap-vs-saturate @ 16 steps: equivalent={deep.equivalent}")
    if not deep.equivalent:
        enables = sum(step.get("en", 0) for step in deep.counterexample.steps)
        print(
            f"divergence needs {enables} enabled cycles "
            f"(found automatically by the SAT search)"
        )


if __name__ == "__main__":
    main()
