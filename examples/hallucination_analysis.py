"""Break down a model's failures by hallucination type (Table II lens).

Runs two configurations of the same base model (with and without SI-CoT) over a
VerilogEval-Human style suite, classifies every failing generation with the
hallucination detector and prints the per-type / per-category breakdown — showing
how SI-CoT specifically removes *symbolic* hallucinations while knowledge/logical
ones are left for the KL-dataset to address.

Run with::

    python examples/hallucination_analysis.py
"""

from __future__ import annotations

from repro.analysis import analyze_hallucinations
from repro.bench.verilogeval import SuiteConfig, build_verilogeval_human
from repro.core.llm.profiles import BASELINE_PROFILES
from repro.core.llm.simulated import SimulatedCodeGenLLM
from repro.core.pipeline import HaVenPipeline
from repro.core.taxonomy import HallucinationType


def main() -> None:
    suite = build_verilogeval_human(SuiteConfig(num_tasks=40, seed=21))
    profile = BASELINE_PROFILES["deepseek-coder-v2"]

    reports = {}
    for label, use_sicot in (("without SI-CoT", False), ("with SI-CoT", True)):
        pipeline = HaVenPipeline(SimulatedCodeGenLLM(profile, seed=5), use_sicot=use_sicot)
        reports[label] = analyze_hallucinations(pipeline, suite, samples_per_task=2, seed=5)

    for label, report in reports.items():
        print("#" * 72)
        print(f"{profile.name} {label}")
        print("#" * 72)
        print(report.render())
        print()

    without_cot = reports["without SI-CoT"].counts_by_type()
    with_cot = reports["with SI-CoT"].counts_by_type()
    print("Symbolic hallucinations without SI-CoT:", without_cot[HallucinationType.SYMBOLIC])
    print("Symbolic hallucinations with SI-CoT:   ", with_cot[HallucinationType.SYMBOLIC])
    print("(Knowledge / logical hallucinations are addressed by the KL-dataset instead —")
    print(" see examples/evaluate_model.py for the fine-tuning side of the story.)")


if __name__ == "__main__":
    main()
