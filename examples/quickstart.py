"""Quickstart: the HaVen pipeline end to end on a single symbolic prompt.

This example walks through the core user journey:

1. a raw HDL-engineer prompt embedding a state diagram;
2. SI-CoT refinement (symbolic interpretation + module-header completion);
3. code generation with a behavioural CodeGen backend;
4. compile checking and functional simulation against a golden model;
5. hallucination classification of any failing sample.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.core.hallucination_detector import HallucinationDetector
from repro.core.llm.base import GenerationConfig, TaskDemands
from repro.core.llm.profiles import BASELINE_PROFILES
from repro.core.llm.simulated import SimulatedCodeGenLLM
from repro.core.pipeline import HaVenPipeline
from repro.core.prompt import DesignPrompt, ModuleInterface, PortSpec
from repro.symbolic.detector import SymbolicModality
from repro.symbolic.state_diagram import parse_state_diagram
from repro.verilog.simulator.testbench import ResetSpec, run_functional_check
from repro.verilog.syntax_checker import check_source

PROMPT_TEXT = """Implement this finite state machine. Reset is active high.
A[out=0]--[x=0]->B
A[out=0]--[x=1]->A
B[out=1]--[x=0]->A
B[out=1]--[x=1]->B"""


def main() -> None:
    # ------------------------------------------------------------------ the task
    interface = ModuleInterface(
        name="top_module",
        ports=[
            PortSpec("clk", "input"),
            PortSpec("rst", "input"),
            PortSpec("x", "input"),
            PortSpec("out", "output"),
        ],
    )
    prompt = DesignPrompt(text=PROMPT_TEXT, interface=interface)

    # The diagram doubles as the golden model and reference implementation.
    diagram = parse_state_diagram(PROMPT_TEXT)
    reference = diagram.to_verilog(module_name="top_module")

    # ------------------------------------------------------------------ the pipeline
    backend = SimulatedCodeGenLLM(BASELINE_PROFILES["deepseek-coder-v2"], seed=0)
    pipeline = HaVenPipeline(backend, use_sicot=True)

    result = pipeline.generate(
        prompt=prompt,
        interface=interface,
        reference_source=reference,
        demands=TaskDemands(modality=SymbolicModality.STATE_DIAGRAM, knowledge=0.4, logic=0.4, difficulty=0.4),
        config=GenerationConfig(num_samples=5, temperature=0.2),
        task_id="quickstart",
    )

    print("=" * 72)
    print("SI-CoT refined prompt")
    print("=" * 72)
    print(result.refined_prompt.text)
    print()

    # ------------------------------------------------------------------ scoring
    detector = HallucinationDetector()
    stimulus = [{"x": bit, "rst": 0} for bit in [0, 1, 1, 0, 0, 1, 0, 1]]
    for index, sample in enumerate(result.samples):
        compile_result = check_source(sample.code)
        if not compile_result.ok:
            verdict = "SYNTAX ERROR"
            functional = False
        else:
            check = run_functional_check(
                sample.code, diagram.to_golden_model(), stimulus, reset=ResetSpec(signal="rst")
            )
            functional = check.passed
            verdict = "PASS" if check.passed else f"FUNCTIONAL FAIL ({check.failure_summary})"
        print(f"sample {index}: {verdict}")
        if not functional:
            report = detector.classify(PROMPT_TEXT, sample.code, functional_passed=functional)
            if report.primary is not None:
                print(f"          hallucination: {report.primary.subtype.value}")
    print()
    print("Reference implementation:")
    print(reference)


if __name__ == "__main__":
    main()
