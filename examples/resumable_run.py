"""A crash-tolerant, sharded Table IV sweep through ``repro.runs``.

Walks the manifest → store → report flow end to end:

1. plan a tiny Table IV sweep and persist its manifest to a run directory;
2. execute part of it, then "crash" (stop early) — the journal keeps what
   finished;
3. resume: a fresh engine skips every journaled unit and completes the rest;
4. re-run the same sweep as two disjoint shards into a second store and check
   the merged journal aggregates bit-for-bit to the serial result;
5. render the Table IV report from the journal (works mid-run too).

Run with::

    python examples/resumable_run.py

The run directory defaults to ``./runs/example-table4`` (override with the
``REPRO_RUN_DIR`` environment variable); the same flow is available from the
shell via ``python -m repro.runs plan|run|status|report``.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.bench.reporting import render_table4
from repro.experiments import ExperimentScale
from repro.runs import RunEngine, RunStore, StreamingAggregator
from repro.runs.presets import table4_manifest


def main() -> None:
    base_dir = Path(os.environ.get("REPRO_RUN_DIR", "runs/example-table4"))
    manifest = table4_manifest(
        ExperimentScale.tiny(),
        baseline_keys=["gpt-4", "rtlcoder-deepseek"],
        include_haven=False,
    )

    # --- 1. plan ----------------------------------------------------------
    serial_dir = base_dir / "serial"
    store = RunStore(serial_dir)
    engine = RunEngine(manifest, store)
    total = len(engine.units())
    print(f"manifest {manifest.manifest_hash[:12]}: {total} work units -> {serial_dir}")

    # --- 2. run a slice, then 'crash' -------------------------------------
    partial = engine.run(max_units=total // 3)
    print(f"executed {partial.executed} units, then stopped (simulated crash)")

    # --- 3. resume from the journal ---------------------------------------
    resumed_store = RunStore(serial_dir)  # reopen: the journal is the state
    resumed = RunEngine(manifest, resumed_store).run()
    print(
        f"resume: skipped {resumed.skipped} journaled units, "
        f"executed the remaining {resumed.executed}"
    )
    serial_rows = StreamingAggregator(manifest).feed_store(resumed_store).table4_rows()

    # --- 4. the same sweep, two disjoint shards into one store ------------
    shard_dir = base_dir / "sharded"
    for shard_index in range(2):
        stats = RunEngine(manifest, RunStore(shard_dir)).run(
            shard_index=shard_index, shard_count=2
        )
        print(f"shard {shard_index}/2: executed {stats.executed} units")
    shard_rows = StreamingAggregator(manifest).feed_store(RunStore(shard_dir)).table4_rows()
    assert shard_rows == serial_rows, "sharded and serial runs must agree bit-for-bit"
    print("sharded == serial: identical Table IV rows")

    # --- 5. report --------------------------------------------------------
    print()
    print(render_table4(serial_rows))


if __name__ == "__main__":
    main()
