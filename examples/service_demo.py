"""The evaluation service end to end, in one process.

Boots the HTTP API over a fresh broker directory, starts a two-member worker
fleet as background threads, submits a tiny Table IV manifest **over HTTP**,
polls the run to completion, then prints the rendered report and a metrics
excerpt.  The same topology runs as real processes via::

    python -m repro.service serve  --broker /tmp/fleet --port 8080
    python -m repro.service worker --broker /tmp/fleet
    python -m repro.service submit --broker /tmp/fleet --experiment table4 --scale tiny

Run with::

    python examples/service_demo.py

The broker directory defaults to ``./runs/example-service`` (override with
the ``REPRO_BROKER_DIR`` environment variable).
"""

from __future__ import annotations

import json
import os
import threading
import time
import urllib.request
from pathlib import Path

from repro.experiments import ExperimentScale
from repro.runs.presets import table4_manifest
from repro.service import FileBroker, ServiceWorker
from repro.service.api import ReproServiceServer, ServiceConfig


def main() -> None:
    broker_dir = Path(os.environ.get("REPRO_BROKER_DIR", "runs/example-service"))
    broker = FileBroker(broker_dir, lease_ttl_s=10.0)

    # --- 1. boot the API and a two-member fleet ---------------------------
    server = ReproServiceServer(ServiceConfig(), broker)
    threading.Thread(target=server.serve_forever, daemon=True).start()
    print(f"service listening on {server.url}")

    workers = [
        ServiceWorker(broker, f"demo-worker-{index}", lease_limit=8, exit_when_idle=True)
        for index in range(2)
    ]
    threads = [
        threading.Thread(target=worker.run_forever, daemon=True) for worker in workers
    ]

    # --- 2. submit a manifest over HTTP -----------------------------------
    manifest = table4_manifest(
        ExperimentScale.tiny(),
        baseline_keys=["gpt-4", "rtlcoder-deepseek"],
        include_haven=False,
    )
    request = urllib.request.Request(
        server.url + "/runs",
        data=json.dumps(manifest.to_dict()).encode(),
        headers={"X-Client-Id": "demo"},
    )
    with urllib.request.urlopen(request) as response:
        receipt = json.load(response)
    print(
        f"submitted run {receipt['run_id'][:12]}: {receipt['total_units']} units"
        f" (HTTP {response.status})"
    )

    # --- 3. let the fleet drain it, polling status over HTTP --------------
    for thread in threads:
        thread.start()
    while True:
        with urllib.request.urlopen(server.url + receipt["status_url"]) as response:
            status = json.load(response)
        print(
            f"  {status['completed_units']}/{status['total_units']} units"
            f" ({status['percent_complete']}%), {status['leased_units']} leased"
        )
        if status["complete"]:
            break
        time.sleep(0.5)
    for thread in threads:
        thread.join()
    print(f"run complete; healthy={status['healthy']}")

    # --- 4. the report and the metrics, both served over HTTP -------------
    with urllib.request.urlopen(server.url + receipt["report_url"]) as response:
        print("\n" + response.read().decode())
    with urllib.request.urlopen(server.url + "/metrics") as response:
        metrics = response.read().decode()
    print("metrics excerpt:")
    for line in metrics.splitlines():
        if line.startswith(
            ("repro_units_completed_total", "repro_units_per_second",
             "repro_check_latency_seconds{", "repro_queue_depth")
        ):
            print(f"  {line}")
    server.shutdown()


if __name__ == "__main__":
    main()
