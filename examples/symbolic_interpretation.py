"""Interpret symbolic modalities (truth tables, waveforms, state diagrams).

Demonstrates the SI-CoT building blocks on the three modalities of Table III:
detection, parsing, natural-language interpretation, and conversion into
executable artefacts (boolean expressions, golden models and Verilog).

Run with::

    python examples/symbolic_interpretation.py
"""

from __future__ import annotations

from repro.core.sicot import refine_prompt
from repro.logic.kmap import KarnaughMap
from repro.symbolic.detector import detect_symbolic
from repro.symbolic.state_diagram import parse_state_diagram
from repro.symbolic.truth_table import parse_truth_table
from repro.symbolic.waveform import parse_waveform
from repro.verilog.syntax_checker import check_source

TRUTH_TABLE_PROMPT = """Implement the truth table below.
a | b | c | out
0 | 0 | 0 | 0
0 | 0 | 1 | 1
0 | 1 | 0 | 0
0 | 1 | 1 | 1
1 | 0 | 0 | 0
1 | 0 | 1 | 1
1 | 1 | 0 | 1
1 | 1 | 1 | 1"""

WAVEFORM_PROMPT = """Implement combinational logic matching the waveforms.
a:   0 1 0 1
b:   0 0 1 1
out: 0 0 0 1
time(ns): 0 10 20 30"""

STATE_DIAGRAM_PROMPT = """Implement this FSM.
IDLE[busy=0]--[start=1]->RUN
IDLE[busy=0]--[start=0]->IDLE
RUN[busy=1]--[start=0]->DONE
RUN[busy=1]--[start=1]->RUN
DONE[busy=0]--[start=0]->IDLE
DONE[busy=0]--[start=1]->RUN"""


def show(title: str) -> None:
    print("=" * 72)
    print(title)
    print("=" * 72)


def main() -> None:
    # ------------------------------------------------------------------ truth table
    show("Truth table → minimal expression → Karnaugh map")
    table = parse_truth_table(TRUTH_TABLE_PROMPT)
    expression = table.to_expression()
    print("Detected modality:", detect_symbolic(TRUTH_TABLE_PROMPT).modality.value)
    print("Minterms:", table.minterms())
    print("Minimal expression:", expression.to_verilog())
    print("\nKarnaugh map:")
    print(KarnaughMap.from_minterms(table.inputs, table.minterms()).render())
    print("\nSI-CoT interpretation:")
    print(table.interpret())
    print()

    # ------------------------------------------------------------------ waveform
    show("Waveform chart → sampled rules → truth table")
    waveform = parse_waveform(WAVEFORM_PROMPT)
    print("Inputs:", waveform.input_names, "outputs:", waveform.output_names)
    print(waveform.interpret())
    collapsed = waveform.to_truth_table()
    print("\nAs a truth table:", collapsed.minterms(), "→", collapsed.to_expression().to_verilog())
    print()

    # ------------------------------------------------------------------ state diagram
    show("State diagram → interpretation → conventional FSM Verilog")
    diagram = parse_state_diagram(STATE_DIAGRAM_PROMPT)
    print(diagram.interpret())
    verilog = diagram.to_verilog(module_name="handshake_fsm")
    assert check_source(verilog).ok
    print("\nGenerated three-block FSM (compiles cleanly):\n")
    print(verilog)

    # ------------------------------------------------------------------ full SI-CoT
    show("Full SI-CoT refinement of the state-diagram prompt")
    refined = refine_prompt(STATE_DIAGRAM_PROMPT)
    print(refined.text)
    print("\nCoT steps:", " → ".join(refined.reasoning_steps))


if __name__ == "__main__":
    main()
