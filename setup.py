"""Setup shim so that editable installs work on offline machines without wheel."""
from setuptools import setup

setup()
