"""Reproduction of HaVen: Hallucination-Mitigated LLM for Verilog Code Generation.

Top-level packages:

* :mod:`repro.verilog`  — Verilog lexer/parser/AST, syntax checker, topic analyzer
  and functional simulator (the toolchain substrate).
* :mod:`repro.logic`    — boolean expressions, Quine–McCluskey minimisation,
  Karnaugh maps and expression→Verilog synthesis.
* :mod:`repro.symbolic` — truth-table / waveform / state-diagram modalities and
  their detection inside prompts.
* :mod:`repro.core`     — the HaVen contribution: hallucination taxonomy, SI-CoT,
  exemplar library, K/L dataset generation, behavioural CodeGen LLMs,
  fine-tuning and the end-to-end pipeline.
* :mod:`repro.bench`    — VerilogEval v1/v2 and RTLLM style benchmark suites,
  pass@k evaluation and report rendering.
* :mod:`repro.experiments` — one driver per paper table/figure.
"""

from . import analysis, bench, core, logic, symbolic, verilog

__version__ = "1.0.0"

__all__ = ["analysis", "bench", "core", "logic", "symbolic", "verilog", "__version__"]
