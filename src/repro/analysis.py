"""Post-evaluation hallucination analysis.

The paper's taxonomy is not only a design tool: it is also the lens through which
failing generations should be understood.  This module connects the benchmark
evaluator with the hallucination detector: given a pipeline and a suite, it
re-generates a sample per task, scores it, classifies every failing sample with
the Table II taxonomy and aggregates the counts per hallucination type/sub-type
and per task category.

This is the machinery behind the "error analysis" column of Table II and provides
the breakdown HDL engineers would use to decide which mitigation (SI-CoT,
K-dataset, L-dataset) to invest in next.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .bench.task import BenchmarkSuite, BenchmarkTask
from .core.hallucination_detector import HallucinationDetector
from .core.llm.base import GenerationConfig
from .core.pipeline import HaVenPipeline
from .core.taxonomy import HallucinationSubtype, HallucinationType, TaxonomySummary, type_of
from .verilog.simulator.testbench import TestbenchRunner
from .verilog.syntax_checker import SyntaxChecker


@dataclass
class SampleDiagnosis:
    """Diagnosis of one generated sample."""

    task_id: str
    category: str
    compiled: bool
    functional_pass: bool
    subtype: HallucinationSubtype | None = None

    @property
    def hallucination_type(self) -> HallucinationType | None:
        return type_of(self.subtype) if self.subtype is not None else None


@dataclass
class HallucinationReport:
    """Aggregated hallucination statistics for one pipeline on one suite."""

    model_name: str
    suite_name: str
    diagnoses: list[SampleDiagnosis] = field(default_factory=list)

    @property
    def total_samples(self) -> int:
        return len(self.diagnoses)

    @property
    def failing_samples(self) -> int:
        return sum(1 for diagnosis in self.diagnoses if not diagnosis.functional_pass)

    def summary(self) -> TaxonomySummary:
        """Counts per sub-type over all failing, classified samples."""
        summary = TaxonomySummary()
        for diagnosis in self.diagnoses:
            if diagnosis.subtype is not None:
                from .core.taxonomy import HallucinationRecord

                summary.add(HallucinationRecord(subtype=diagnosis.subtype))
        return summary

    def counts_by_type(self) -> dict[HallucinationType, int]:
        """Failing-sample counts per top-level hallucination type."""
        summary = self.summary()
        return {kind: summary.count(kind) for kind in HallucinationType}

    def counts_by_category(self) -> dict[str, tuple[int, int]]:
        """Per task category: (failing samples, total samples)."""
        result: dict[str, tuple[int, int]] = {}
        for diagnosis in self.diagnoses:
            failing, total = result.get(diagnosis.category, (0, 0))
            result[diagnosis.category] = (
                failing + (0 if diagnosis.functional_pass else 1),
                total + 1,
            )
        return result

    def render(self) -> str:
        """Human-readable report."""
        from .bench.reporting import format_table

        type_rows = [
            [kind.value, count] for kind, count in sorted(
                self.counts_by_type().items(), key=lambda item: item[0].value
            )
        ]
        subtype_rows = [
            [subtype.value, count]
            for subtype, count in sorted(
                self.summary().by_subtype.items(), key=lambda item: item[0].value
            )
        ]
        category_rows = [
            [category, failing, total]
            for category, (failing, total) in sorted(self.counts_by_category().items())
        ]
        sections = [
            f"Hallucination analysis: {self.model_name} on {self.suite_name}",
            f"samples: {self.total_samples}, failing: {self.failing_samples}",
            format_table(["Hallucination type", "count"], type_rows),
            format_table(["Sub-type", "count"], subtype_rows) if subtype_rows else "(no classified failures)",
            format_table(["Task category", "failing", "total"], category_rows),
        ]
        return "\n\n".join(sections)


class HallucinationAnalyzer:
    """Generate, score and classify samples across a benchmark suite."""

    def __init__(self, samples_per_task: int = 1, temperature: float = 0.2, seed: int = 0):
        self.samples_per_task = samples_per_task
        self.temperature = temperature
        self.seed = seed
        self.checker = SyntaxChecker()
        self.detector = HallucinationDetector()

    def analyze(self, pipeline: HaVenPipeline, suite: BenchmarkSuite) -> HallucinationReport:
        """Run the pipeline over the suite and classify every failing sample."""
        report = HallucinationReport(model_name=pipeline.name, suite_name=suite.name)
        for task in suite:
            report.diagnoses.extend(self._analyze_task(pipeline, task))
        return report

    def _analyze_task(self, pipeline: HaVenPipeline, task: BenchmarkTask) -> list[SampleDiagnosis]:
        generation = pipeline.generate(
            prompt=task.prompt,
            interface=task.interface,
            reference_source=task.reference_source,
            demands=task.demands,
            config=GenerationConfig(
                num_samples=self.samples_per_task, temperature=self.temperature, seed=self.seed
            ),
            prompt_style=task.prompt_style,
            task_id=task.task_id,
        )
        runner = TestbenchRunner(clock=task.clock, reset=task.reset)
        stimulus = task.stimulus(self.seed)
        diagnoses: list[SampleDiagnosis] = []
        for sample in generation.samples:
            compile_result = self.checker.check(sample.code)
            functional = False
            if compile_result.ok:
                functional = runner.run(
                    sample.code, task.golden(), stimulus, check_outputs=task.check_outputs
                ).passed
            diagnosis = SampleDiagnosis(
                task_id=task.task_id,
                category=task.category,
                compiled=compile_result.ok,
                functional_pass=functional,
            )
            if not functional:
                classification = self.detector.classify(
                    task.prompt.text, sample.code, functional_passed=False
                )
                if classification.primary is not None:
                    diagnosis.subtype = classification.primary.subtype
            diagnoses.append(diagnosis)
        return diagnoses


def analyze_hallucinations(
    pipeline: HaVenPipeline,
    suite: BenchmarkSuite,
    samples_per_task: int = 1,
    seed: int = 0,
) -> HallucinationReport:
    """One-call helper for :class:`HallucinationAnalyzer`."""
    analyzer = HallucinationAnalyzer(samples_per_task=samples_per_task, seed=seed)
    return analyzer.analyze(pipeline, suite)
