"""Benchmark suites, evaluation harness, pass@k and report rendering."""

from .evaluator import (
    BenchmarkEvaluator,
    EvaluationConfig,
    SuiteResult,
    TaskResult,
    check_reference_designs,
    evaluate_models,
)
from .golden import GoldenCache, VerilogGolden, batch_equivalence_check
from .jobs import (
    CheckExecution,
    CheckRequest,
    ExecutionPolicy,
    ExecutionReport,
    ResultKey,
    run_checks,
)
from .passk import PassAtKResult, compute_pass_at_k, mean_pass_at_k, pass_at_k
from .reporting import (
    AblationSeries,
    FIG3_SETTINGS,
    Table4Row,
    Table5Row,
    format_table,
    render_fig3,
    render_fig4,
    render_table4,
    render_table5,
    render_table6,
    table4_row_from_results,
)
from .rtllm import RTLLMConfig, RTLLM_TASK_COUNT, build_rtllm
from .symbolic_suite import SYMBOLIC_TOTAL, build_symbolic_suite, modality_counts
from .task import BenchmarkSuite, BenchmarkTask
from .verilogeval import (
    HUMAN_TASK_COUNT,
    MACHINE_TASK_COUNT,
    SuiteConfig,
    build_symbolic_subset,
    build_verilogeval_human,
    build_verilogeval_machine,
)
from .verilogeval_v2 import V2Config, build_verilogeval_v2

__all__ = [
    "BenchmarkEvaluator",
    "EvaluationConfig",
    "SuiteResult",
    "TaskResult",
    "check_reference_designs",
    "evaluate_models",
    "GoldenCache",
    "VerilogGolden",
    "batch_equivalence_check",
    "CheckExecution",
    "CheckRequest",
    "ExecutionPolicy",
    "ExecutionReport",
    "ResultKey",
    "run_checks",
    "PassAtKResult",
    "compute_pass_at_k",
    "mean_pass_at_k",
    "pass_at_k",
    "AblationSeries",
    "FIG3_SETTINGS",
    "Table4Row",
    "Table5Row",
    "format_table",
    "render_fig3",
    "render_fig4",
    "render_table4",
    "render_table5",
    "render_table6",
    "table4_row_from_results",
    "RTLLMConfig",
    "RTLLM_TASK_COUNT",
    "build_rtllm",
    "SYMBOLIC_TOTAL",
    "build_symbolic_suite",
    "modality_counts",
    "BenchmarkSuite",
    "BenchmarkTask",
    "HUMAN_TASK_COUNT",
    "MACHINE_TASK_COUNT",
    "SuiteConfig",
    "build_symbolic_subset",
    "build_verilogeval_human",
    "build_verilogeval_machine",
    "V2Config",
    "build_verilogeval_v2",
]
