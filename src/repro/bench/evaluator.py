"""Benchmark evaluation orchestrator: generate → compile → check jobs → pass@k.

The evaluator scores a generation pipeline (backend + optional SI-CoT) on a
benchmark suite the same way the paper does:

* ``n`` samples are drawn per task (default 10) at each configured temperature,
  and — following RTLCoder and the paper's setup — the best functional result
  over the temperature sweep is reported;
* every sample is compiled with the syntax checker (syntax correctness) and, if
  it compiles, simulated against the task's golden model (functional
  correctness);
* per-task (n, c) counts are aggregated with the unbiased pass@k estimator.

Since the compile-once refactor the evaluation is *job-based*: each unique
``(candidate design, stimulus, mode)`` triple becomes one
:class:`~repro.bench.jobs.CheckRequest`, executed exactly once and memoised by
its content-addressed :class:`~repro.bench.jobs.ResultKey`.  Repeated
candidates — across samples, temperatures, whole ``evaluate`` calls — cost a
dict lookup; syntax checking and DUT elaboration ride the shared
:class:`~repro.verilog.design.DesignDatabase`.  With
``EvaluationConfig(max_workers=N)`` independent checks execute concurrently on
a process pool (with a transparent serial fallback), since tasks share no
state beyond the memo.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from ..core.llm.base import GenerationConfig
from ..core.pipeline import HaVenPipeline
from ..verilog.syntax_checker import SyntaxChecker
from ..verilog.simulator.testbench import TestbenchResult
from .golden import GoldenCache
from .jobs import (
    CheckRequest,
    ExecutionPolicy,
    ResultKey,
    design_key,
    mode_key,
    run_checks,
    stimulus_key,
)
from .passk import compute_pass_at_k
from .task import BenchmarkSuite, BenchmarkTask


@dataclass
class EvaluationConfig:
    """How a suite evaluation is run."""

    num_samples: int = 10
    ks: tuple[int, ...] = (1, 5)
    temperatures: tuple[float, ...] = (0.2, 0.5, 0.8)
    seed: int = 0
    stimulus_seed: int = 1234
    max_tasks: int | None = None
    #: Batch combinational functional checks into one column-parallel pass
    #: (sequential designs always keep the cycle-serial scalar oracle).
    use_batch_simulator: bool = True
    #: Re-check every batched run against the scalar oracle (slow; CI use).
    differential_oracle: bool = False
    #: Batched-runner execution engine: ``auto`` compiles designs to
    #: straight-line Python and falls back to the AST interpreter per design,
    #: ``codegen`` requires generated code, ``interpret`` pins the interpreter.
    simulator_backend: str = "auto"
    #: ``"simulation"`` scores with stimulus sweeps; ``"formal"`` upgrades
    #: combinational tasks to complete SAT equivalence proofs against the
    #: reference design (sequential tasks and unprovable constructs fall back
    #: to the simulation path transparently).
    mode: str = "simulation"
    #: Conflict budget per SAT proof in formal mode (None = unbounded); an
    #: exhausted budget falls back to the simulation path for that sample.
    #: The budget is charged *per proof* even on the shared incremental
    #: session — every candidate of a sweep gets the full limit.
    formal_conflict_limit: int | None = 50_000
    #: Prove combinational formal checks on a persistent per-worker
    #: :class:`~repro.formal.incremental.EquivalenceSession` (one solver per
    #: reference design across the sweep).  Verdict-identical to the
    #: fresh-solver prover, just faster.
    formal_incremental: bool = True
    #: k-induction depth for sequential tasks in formal mode — unbounded
    #: equivalence proofs instead of a silent simulation fallback.  ``0``
    #: disables induction (every sequential task simulates, as before).
    induction_depth: int = 4
    #: Worker processes for functional checks (1 = serial in-process).  Checks
    #: whose golden factories cannot be pickled, and any pool failure, fall
    #: back to serial execution automatically.
    max_workers: int = 1
    #: Memoise check verdicts by ``(design, stimulus, mode)`` across samples,
    #: temperatures and ``evaluate`` calls.  Disable to force every check cold
    #: (the differential-testing and benchmark-baseline configuration).
    memoize_results: bool = True
    #: Wall-clock budget per functional-check attempt (None = no deadline).
    #: Cooperative: the simulators and the SAT search tick the deadline; pool
    #: workers additionally get a hard per-future deadline with a grace period.
    check_timeout_s: float | None = None
    #: Execution attempts per check before it is quarantined (1 = no retries).
    max_attempts: int = 3
    #: First-retry backoff delay; doubles per attempt with deterministic jitter.
    retry_backoff_s: float = 0.05
    #: Ceiling on any single backoff delay.
    retry_backoff_cap_s: float = 2.0

    def single_temperature(self) -> "EvaluationConfig":
        """A copy that only evaluates the first temperature (for quick runs)."""
        return EvaluationConfig(
            num_samples=self.num_samples,
            ks=self.ks,
            temperatures=(self.temperatures[0],),
            seed=self.seed,
            stimulus_seed=self.stimulus_seed,
            max_tasks=self.max_tasks,
            use_batch_simulator=self.use_batch_simulator,
            differential_oracle=self.differential_oracle,
            simulator_backend=self.simulator_backend,
            mode=self.mode,
            formal_conflict_limit=self.formal_conflict_limit,
            formal_incremental=self.formal_incremental,
            induction_depth=self.induction_depth,
            max_workers=self.max_workers,
            memoize_results=self.memoize_results,
            check_timeout_s=self.check_timeout_s,
            max_attempts=self.max_attempts,
            retry_backoff_s=self.retry_backoff_s,
            retry_backoff_cap_s=self.retry_backoff_cap_s,
        )

    def to_dict(self) -> dict:
        """JSON-safe serialization (run manifests persist this verbatim)."""
        return {
            "num_samples": self.num_samples,
            "ks": list(self.ks),
            "temperatures": list(self.temperatures),
            "seed": self.seed,
            "stimulus_seed": self.stimulus_seed,
            "max_tasks": self.max_tasks,
            "use_batch_simulator": self.use_batch_simulator,
            "differential_oracle": self.differential_oracle,
            "simulator_backend": self.simulator_backend,
            "mode": self.mode,
            "formal_conflict_limit": self.formal_conflict_limit,
            "formal_incremental": self.formal_incremental,
            "induction_depth": self.induction_depth,
            "max_workers": self.max_workers,
            "memoize_results": self.memoize_results,
            "check_timeout_s": self.check_timeout_s,
            "max_attempts": self.max_attempts,
            "retry_backoff_s": self.retry_backoff_s,
            "retry_backoff_cap_s": self.retry_backoff_cap_s,
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "EvaluationConfig":
        return cls(
            num_samples=int(payload["num_samples"]),
            ks=tuple(int(k) for k in payload["ks"]),
            temperatures=tuple(float(t) for t in payload["temperatures"]),
            seed=int(payload.get("seed", 0)),
            stimulus_seed=int(payload.get("stimulus_seed", 1234)),
            max_tasks=payload.get("max_tasks"),
            use_batch_simulator=bool(payload.get("use_batch_simulator", True)),
            differential_oracle=bool(payload.get("differential_oracle", False)),
            simulator_backend=str(payload.get("simulator_backend", "auto")),
            mode=str(payload.get("mode", "simulation")),
            formal_conflict_limit=payload.get("formal_conflict_limit"),
            formal_incremental=bool(payload.get("formal_incremental", True)),
            induction_depth=int(payload.get("induction_depth", 4)),
            max_workers=int(payload.get("max_workers", 1)),
            memoize_results=bool(payload.get("memoize_results", True)),
            check_timeout_s=(
                float(payload["check_timeout_s"])
                if payload.get("check_timeout_s") is not None
                else None
            ),
            max_attempts=int(payload.get("max_attempts", 3)),
            retry_backoff_s=float(payload.get("retry_backoff_s", 0.05)),
            retry_backoff_cap_s=float(payload.get("retry_backoff_cap_s", 2.0)),
        )


@dataclass
class TaskResult:
    """Per-task scoring outcome (at the best temperature)."""

    task_id: str
    category: str
    num_samples: int
    num_functional_passes: int
    num_syntax_passes: int
    temperature: float
    failure_examples: list[str] = field(default_factory=list)
    #: Samples whose checks were quarantined (burned every execution attempt).
    #: They count as non-passes in this result, but their verdicts are infra
    #: faults, not candidate failures — they are never memoized, so a later
    #: ``evaluate`` call re-attempts them.
    num_quarantined: int = 0

    @property
    def passed_at_least_once(self) -> bool:
        return self.num_functional_passes > 0

    def to_dict(self) -> dict:
        payload = {
            "task_id": self.task_id,
            "category": self.category,
            "num_samples": self.num_samples,
            "num_functional_passes": self.num_functional_passes,
            "num_syntax_passes": self.num_syntax_passes,
            "temperature": self.temperature,
            "failure_examples": list(self.failure_examples),
        }
        if self.num_quarantined:
            payload["num_quarantined"] = self.num_quarantined
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping) -> "TaskResult":
        return cls(
            task_id=str(payload["task_id"]),
            category=str(payload["category"]),
            num_samples=int(payload["num_samples"]),
            num_functional_passes=int(payload["num_functional_passes"]),
            num_syntax_passes=int(payload["num_syntax_passes"]),
            temperature=float(payload["temperature"]),
            failure_examples=[str(entry) for entry in payload.get("failure_examples", [])],
            num_quarantined=int(payload.get("num_quarantined", 0)),
        )


@dataclass
class SuiteResult:
    """Aggregate scoring outcome for one model on one suite."""

    suite_name: str
    model_name: str
    task_results: list[TaskResult] = field(default_factory=list)
    ks: tuple[int, ...] = (1, 5)

    def functional_pass_at_k(self) -> dict[int, float]:
        counts = [(r.num_samples, r.num_functional_passes) for r in self.task_results]
        return compute_pass_at_k(counts, self.ks).values

    def syntax_pass_at_k(self) -> dict[int, float]:
        counts = [(r.num_samples, r.num_syntax_passes) for r in self.task_results]
        return compute_pass_at_k(counts, self.ks).values

    def functional_percentages(self) -> dict[int, float]:
        return {k: round(100.0 * v, 1) for k, v in self.functional_pass_at_k().items()}

    def syntax_percentages(self) -> dict[int, float]:
        return {k: round(100.0 * v, 1) for k, v in self.syntax_pass_at_k().items()}

    def by_category(self) -> dict[str, tuple[int, int]]:
        """category → (tasks passed at least once, total tasks)."""
        summary: dict[str, tuple[int, int]] = {}
        for result in self.task_results:
            passed, total = summary.get(result.category, (0, 0))
            summary[result.category] = (passed + (1 if result.passed_at_least_once else 0), total + 1)
        return summary

    def category_pass_at_1(self) -> dict[str, float]:
        """Per-category pass@1 (used for the Table V modality breakdown)."""
        by_category: dict[str, list[tuple[int, int]]] = {}
        for result in self.task_results:
            by_category.setdefault(result.category, []).append(
                (result.num_samples, result.num_functional_passes)
            )
        return {
            category: compute_pass_at_k(counts, (1,)).values[1]
            for category, counts in by_category.items()
        }

    def to_dict(self) -> dict:
        return {
            "suite_name": self.suite_name,
            "model_name": self.model_name,
            "ks": list(self.ks),
            "task_results": [result.to_dict() for result in self.task_results],
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "SuiteResult":
        return cls(
            suite_name=str(payload["suite_name"]),
            model_name=str(payload["model_name"]),
            ks=tuple(int(k) for k in payload.get("ks", (1, 5))),
            task_results=[TaskResult.from_dict(entry) for entry in payload.get("task_results", [])],
        )


def task_check_keys(
    task: BenchmarkTask, config: EvaluationConfig, temperature: float
) -> tuple[list[dict[str, int]], str, str]:
    """Stimulus plus the (stimulus, mode) halves of every :class:`ResultKey`.

    This is the single definition of how a task's checking side is
    content-addressed; the in-memory evaluator and the resumable run engine
    both build their keys here so their verdicts land on the same addresses.
    With memoisation off, the key is salted per temperature so nothing is
    shared between temperature sweeps (the guaranteed-cold baseline).
    """
    stimulus = task.stimulus(config.stimulus_seed)
    salt = "" if config.memoize_results else f"T{temperature}"
    task_stimulus_key = stimulus_key(
        task.task_id,
        stimulus,
        task.check_outputs,
        task.clock,
        task.reset,
        reference_source=task.reference_source,
        salt=salt,
    )
    task_mode_key = mode_key(
        config.mode,
        config.use_batch_simulator,
        config.differential_oracle,
        config.formal_conflict_limit,
        backend=config.simulator_backend,
        formal_incremental=config.formal_incremental,
        induction_depth=config.induction_depth,
    )
    return stimulus, task_stimulus_key, task_mode_key


def check_request_for(
    task: BenchmarkTask,
    code: str,
    key: ResultKey,
    stimulus: list[dict[str, int]],
    config: EvaluationConfig,
    database=None,
) -> CheckRequest:
    """Build the self-contained check request for one compiled candidate."""
    return CheckRequest(
        key=key,
        code=code,
        task_id=task.task_id,
        golden_factory=task.golden_factory,
        stimulus=stimulus,
        reference_source=task.reference_source,
        check_outputs=task.check_outputs,
        clock=task.clock,
        reset=task.reset,
        mode=config.mode,
        use_batch=config.use_batch_simulator,
        differential=config.differential_oracle,
        backend=config.simulator_backend,
        formal_conflict_limit=config.formal_conflict_limit,
        formal_incremental=config.formal_incremental,
        induction_depth=config.induction_depth,
        database=database,
        timeout_s=config.check_timeout_s,
    )


@dataclass
class _TemperaturePlan:
    """Generated samples for one (task, temperature) evaluation job."""

    task: BenchmarkTask
    temperature: float
    codes: list[str]
    syntax_ok: list[bool]
    syntax_errors: list[str]
    keys: list[ResultKey | None]


class BenchmarkEvaluator:
    """Run a pipeline over a suite and score it (job-based orchestration).

    Args:
        config: sampling/scoring plan.
        database: :class:`~repro.verilog.design.DesignDatabase` shared by the
            syntax checker and the simulation-path runners (defaults to the
            process-wide database).  Setting one pins functional checks to
            in-parent execution (databases do not cross process boundaries);
            the formal prover always rides the process-wide database.
    """

    def __init__(self, config: EvaluationConfig | None = None, database=None):
        self.config = config or EvaluationConfig()
        self.database = database
        self.checker = SyntaxChecker(database=database)
        #: Cross-run verdict memo: content-addressed, so repeated candidates
        #: (across temperatures, runs, pipelines) are scored exactly once.
        #: Only *settled* verdicts enter it — quarantined checks (transient
        #: infra faults that burned every attempt) are deliberately excluded,
        #: so they are re-attempted instead of permanently scored as failures.
        self.memo: dict[ResultKey, TestbenchResult] = {}
        #: Structured execution warnings (serial fallback, pool degradation)
        #: accumulated across ``evaluate`` calls; callers may drain this.
        self.warnings: list[dict] = []

    def codegen_coverage(self) -> dict:
        """Process-wide codegen adoption: fallback totals and per-design reasons.

        Mirrors what ``GET /metrics`` exports — an empty ``designs`` map means
        every design this process simulated ran on generated code.
        """
        from ..verilog import codegen

        return codegen.fallback_stats()

    # ------------------------------------------------------------------ public API
    def evaluate(self, pipeline: HaVenPipeline, suite: BenchmarkSuite) -> SuiteResult:
        """Evaluate ``pipeline`` on ``suite`` with the configured sampling plan."""
        tasks = list(suite)
        if self.config.max_tasks is not None:
            tasks = tasks[: self.config.max_tasks]
        if not self.config.memoize_results:
            self.memo.clear()

        # Phase 1+2: draw samples and syntax-check them (both deterministic and
        # cheap relative to simulation), building one check request per unique
        # compiled candidate not already in the memo.
        plans: list[_TemperaturePlan] = []
        pending: dict[ResultKey, CheckRequest] = {}
        for task in tasks:
            for temperature in self.config.temperatures:
                plans.append(self._plan_temperature(pipeline, task, temperature, pending))

        # Phase 3: execute the deduplicated checks (worker pool when
        # configured) under the configured fault-tolerance policy.  Settled
        # verdicts enter the cross-run memo; quarantined ones (transient infra
        # faults, not candidate failures) stay local to this call, so the next
        # evaluate() re-attempts them instead of replaying a synthetic failure.
        quarantined: dict[ResultKey, TestbenchResult] = {}
        if pending:
            report = run_checks(
                list(pending.values()),
                max_workers=self.config.max_workers,
                policy=ExecutionPolicy.from_config(self.config),
            )
            for key, execution in report.executions.items():
                if execution.quarantined:
                    quarantined[key] = execution.result
                else:
                    self.memo[key] = execution.result
            self.warnings.extend(report.warnings)
            for key, execution in report.quarantined().items():
                self.warnings.append(
                    {
                        "category": "quarantined",
                        "message": (
                            f"check for task {pending[key].task_id!r} quarantined "
                            f"after {execution.attempts} attempt(s): {execution.error}"
                        ),
                        "detail": {
                            "task_id": pending[key].task_id,
                            "design_key": key.design_key,
                            "attempts": execution.attempts,
                            "error": execution.error,
                        },
                    }
                )

        # Phase 4: assemble per-task results, best temperature first.
        result = SuiteResult(suite_name=suite.name, model_name=pipeline.name, ks=self.config.ks)
        index = 0
        for task in tasks:
            best: TaskResult | None = None
            for _ in self.config.temperatures:
                candidate = self._assemble(plans[index], quarantined)
                index += 1
                if best is None or candidate.num_functional_passes > best.num_functional_passes:
                    best = candidate
            assert best is not None
            result.task_results.append(best)
        if not self.config.memoize_results:
            self.memo.clear()
        return result

    # ------------------------------------------------------------------ planning
    def _plan_temperature(
        self,
        pipeline: HaVenPipeline,
        task: BenchmarkTask,
        temperature: float,
        pending: dict[ResultKey, CheckRequest],
    ) -> _TemperaturePlan:
        config = GenerationConfig(
            temperature=temperature,
            num_samples=self.config.num_samples,
            seed=self.config.seed,
        )
        generation = pipeline.generate(
            prompt=task.prompt,
            interface=task.interface,
            reference_source=task.reference_source,
            demands=task.demands,
            config=config,
            prompt_style=task.prompt_style,
            task_id=task.task_id,
        )
        stimulus, task_stimulus_key, task_mode_key = task_check_keys(
            task, self.config, temperature
        )

        plan = _TemperaturePlan(
            task=task,
            temperature=temperature,
            codes=[],
            syntax_ok=[],
            syntax_errors=[],
            keys=[],
        )
        for sample in generation.samples:
            plan.codes.append(sample.code)
            compile_result = self.checker.check(sample.code)
            plan.syntax_ok.append(compile_result.ok)
            plan.syntax_errors.append(
                "" if compile_result.ok else "; ".join(compile_result.error_messages[:1])
            )
            if not compile_result.ok:
                plan.keys.append(None)
                continue
            key = ResultKey(
                design_key=design_key(sample.code),
                stimulus_key=task_stimulus_key,
                mode=task_mode_key,
            )
            plan.keys.append(key)
            if key not in self.memo and key not in pending:
                pending[key] = check_request_for(
                    task, sample.code, key, stimulus, self.config, database=self.database
                )
        return plan

    # ------------------------------------------------------------------ assembly
    def _assemble(
        self,
        plan: _TemperaturePlan,
        quarantined: Mapping[ResultKey, TestbenchResult],
    ) -> TaskResult:
        functional_passes = 0
        syntax_passes = 0
        num_quarantined = 0
        failures: list[str] = []
        for index in range(len(plan.codes)):
            if not plan.syntax_ok[index]:
                if len(failures) < 3:
                    failures.append(plan.syntax_errors[index])
                continue
            syntax_passes += 1
            key = plan.keys[index]
            assert key is not None
            check = self.memo.get(key)
            if check is None:
                # Quarantined this call: counted as a non-pass, surfaced
                # distinctly, and never memoized as a candidate failure.
                check = quarantined[key]
                num_quarantined += 1
            if check.passed:
                functional_passes += 1
            elif len(failures) < 3:
                failures.append(check.failure_summary)
        return TaskResult(
            task_id=plan.task.task_id,
            category=plan.task.category,
            num_samples=len(plan.codes),
            num_functional_passes=functional_passes,
            num_syntax_passes=syntax_passes,
            temperature=plan.temperature,
            failure_examples=failures,
            num_quarantined=num_quarantined,
        )


def evaluate_models(
    pipelines: Sequence[HaVenPipeline],
    suites: Sequence[BenchmarkSuite],
    config: EvaluationConfig | None = None,
) -> dict[tuple[str, str], SuiteResult]:
    """Evaluate several pipelines on several suites; keys are (model, suite) names.

    One evaluator (and therefore one verdict memo) is shared across the whole
    grid, so a candidate produced by several pipelines is checked once.
    """
    evaluator = BenchmarkEvaluator(config)
    results: dict[tuple[str, str], SuiteResult] = {}
    for pipeline in pipelines:
        for suite in suites:
            results[(pipeline.name, suite.name)] = evaluator.evaluate(pipeline, suite)
    return results


def check_reference_designs(
    suite: BenchmarkSuite,
    stimulus_seed: int = 1234,
    max_tasks: int | None = None,
    use_batch: bool = True,
    differential: bool = False,
    backend: str = "auto",
) -> dict[str, str]:
    """Check every task's golden Verilog reference against its Python golden model.

    This is the suite self-consistency sweep the benchmark builders expose
    (``verilogeval.validate_references`` etc.): the reference design must pass
    its own functional testbench.  Combinational tasks run column-parallel via
    :class:`BatchTestbenchRunner`; pass ``differential=True`` to re-check every
    batched run against the scalar oracle.  Reference designs and golden
    models are cached (design database + :class:`~repro.bench.golden.GoldenCache`),
    so repeated sweeps stop rebuilding them.

    Returns:
        task_id → failure summary for every failing task (empty == all passed).
    """
    from ..verilog.simulator.testbench import BatchTestbenchRunner, TestbenchRunner

    goldens = GoldenCache()
    failures: dict[str, str] = {}
    tasks = list(suite)
    if max_tasks is not None:
        tasks = tasks[:max_tasks]
    for task in tasks:
        if use_batch:
            runner: TestbenchRunner = BatchTestbenchRunner(
                clock=task.clock, reset=task.reset, differential=differential, backend=backend
            )
        else:
            runner = TestbenchRunner(clock=task.clock, reset=task.reset)
        result = runner.run(
            task.reference_source,
            goldens.get(task),
            task.stimulus(stimulus_seed),
            check_outputs=task.check_outputs,
        )
        if not result.passed:
            failures[task.task_id] = result.failure_summary or "no checks executed"
    return failures
