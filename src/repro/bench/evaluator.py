"""Benchmark evaluation harness: generate → compile → simulate → pass@k.

The evaluator scores a generation pipeline (backend + optional SI-CoT) on a
benchmark suite the same way the paper does:

* ``n`` samples are drawn per task (default 10) at each configured temperature,
  and — following RTLCoder and the paper's setup — the best functional result
  over the temperature sweep is reported;
* every sample is compiled with the syntax checker (syntax correctness) and, if
  it compiles, simulated against the task's golden model (functional
  correctness);
* per-task (n, c) counts are aggregated with the unbiased pass@k estimator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..core.llm.base import GenerationConfig
from ..core.pipeline import HaVenPipeline
from ..verilog.syntax_checker import SyntaxChecker
from ..verilog.simulator.testbench import BatchTestbenchRunner, TestbenchResult
from .passk import compute_pass_at_k
from .task import BenchmarkSuite, BenchmarkTask


@dataclass
class EvaluationConfig:
    """How a suite evaluation is run."""

    num_samples: int = 10
    ks: tuple[int, ...] = (1, 5)
    temperatures: tuple[float, ...] = (0.2, 0.5, 0.8)
    seed: int = 0
    stimulus_seed: int = 1234
    max_tasks: int | None = None
    #: Batch combinational functional checks into one column-parallel pass
    #: (sequential designs always keep the cycle-serial scalar oracle).
    use_batch_simulator: bool = True
    #: Re-check every batched run against the scalar oracle (slow; CI use).
    differential_oracle: bool = False
    #: ``"simulation"`` scores with stimulus sweeps; ``"formal"`` upgrades
    #: combinational tasks to complete SAT equivalence proofs against the
    #: reference design (sequential tasks and unprovable constructs fall back
    #: to the simulation path transparently).
    mode: str = "simulation"
    #: Conflict budget per SAT proof in formal mode (None = unbounded); an
    #: exhausted budget falls back to the simulation path for that sample.
    formal_conflict_limit: int | None = 50_000

    def single_temperature(self) -> "EvaluationConfig":
        """A copy that only evaluates the first temperature (for quick runs)."""
        return EvaluationConfig(
            num_samples=self.num_samples,
            ks=self.ks,
            temperatures=(self.temperatures[0],),
            seed=self.seed,
            stimulus_seed=self.stimulus_seed,
            max_tasks=self.max_tasks,
            use_batch_simulator=self.use_batch_simulator,
            differential_oracle=self.differential_oracle,
            mode=self.mode,
            formal_conflict_limit=self.formal_conflict_limit,
        )


@dataclass
class TaskResult:
    """Per-task scoring outcome (at the best temperature)."""

    task_id: str
    category: str
    num_samples: int
    num_functional_passes: int
    num_syntax_passes: int
    temperature: float
    failure_examples: list[str] = field(default_factory=list)

    @property
    def passed_at_least_once(self) -> bool:
        return self.num_functional_passes > 0


@dataclass
class SuiteResult:
    """Aggregate scoring outcome for one model on one suite."""

    suite_name: str
    model_name: str
    task_results: list[TaskResult] = field(default_factory=list)
    ks: tuple[int, ...] = (1, 5)

    def functional_pass_at_k(self) -> dict[int, float]:
        counts = [(r.num_samples, r.num_functional_passes) for r in self.task_results]
        return compute_pass_at_k(counts, self.ks).values

    def syntax_pass_at_k(self) -> dict[int, float]:
        counts = [(r.num_samples, r.num_syntax_passes) for r in self.task_results]
        return compute_pass_at_k(counts, self.ks).values

    def functional_percentages(self) -> dict[int, float]:
        return {k: round(100.0 * v, 1) for k, v in self.functional_pass_at_k().items()}

    def syntax_percentages(self) -> dict[int, float]:
        return {k: round(100.0 * v, 1) for k, v in self.syntax_pass_at_k().items()}

    def by_category(self) -> dict[str, tuple[int, int]]:
        """category → (tasks passed at least once, total tasks)."""
        summary: dict[str, tuple[int, int]] = {}
        for result in self.task_results:
            passed, total = summary.get(result.category, (0, 0))
            summary[result.category] = (passed + (1 if result.passed_at_least_once else 0), total + 1)
        return summary

    def category_pass_at_1(self) -> dict[str, float]:
        """Per-category pass@1 (used for the Table V modality breakdown)."""
        by_category: dict[str, list[tuple[int, int]]] = {}
        for result in self.task_results:
            by_category.setdefault(result.category, []).append(
                (result.num_samples, result.num_functional_passes)
            )
        return {
            category: compute_pass_at_k(counts, (1,)).values[1]
            for category, counts in by_category.items()
        }


class BenchmarkEvaluator:
    """Run a pipeline over a suite and score it."""

    def __init__(self, config: EvaluationConfig | None = None):
        self.config = config or EvaluationConfig()
        self.checker = SyntaxChecker()

    def _make_runner(self, task: BenchmarkTask) -> BatchTestbenchRunner:
        """Build the functional-check runner for one task.

        The batched runner sweeps combinational checks column-parallel and
        transparently falls back to the scalar cycle-serial path for sequential
        designs, so it is safe as the single entry point.
        """
        if not self.config.use_batch_simulator:
            from ..verilog.simulator.testbench import TestbenchRunner

            return TestbenchRunner(clock=task.clock, reset=task.reset)  # type: ignore[return-value]
        return BatchTestbenchRunner(
            clock=task.clock,
            reset=task.reset,
            differential=self.config.differential_oracle,
        )

    # ------------------------------------------------------------------ public API
    def evaluate(self, pipeline: HaVenPipeline, suite: BenchmarkSuite) -> SuiteResult:
        """Evaluate ``pipeline`` on ``suite`` with the configured sampling plan."""
        tasks = list(suite)
        if self.config.max_tasks is not None:
            tasks = tasks[: self.config.max_tasks]
        result = SuiteResult(suite_name=suite.name, model_name=pipeline.name, ks=self.config.ks)
        for task in tasks:
            result.task_results.append(self._evaluate_task(pipeline, task))
        return result

    def _evaluate_task(self, pipeline: HaVenPipeline, task: BenchmarkTask) -> TaskResult:
        best: TaskResult | None = None
        for temperature in self.config.temperatures:
            candidate = self._evaluate_task_at_temperature(pipeline, task, temperature)
            if best is None or candidate.num_functional_passes > best.num_functional_passes:
                best = candidate
        assert best is not None
        return best

    def _evaluate_task_at_temperature(
        self, pipeline: HaVenPipeline, task: BenchmarkTask, temperature: float
    ) -> TaskResult:
        config = GenerationConfig(
            temperature=temperature,
            num_samples=self.config.num_samples,
            seed=self.config.seed,
        )
        generation = pipeline.generate(
            prompt=task.prompt,
            interface=task.interface,
            reference_source=task.reference_source,
            demands=task.demands,
            config=config,
            prompt_style=task.prompt_style,
            task_id=task.task_id,
        )
        stimulus = task.stimulus(self.config.stimulus_seed)
        runner = self._make_runner(task)

        functional_passes = 0
        syntax_passes = 0
        failures: list[str] = []
        # Identical samples (common at low temperature) are checked once: the
        # golden model is rebuilt per run, so results are deterministic per code.
        checked: dict[str, TestbenchResult] = {}
        for sample in generation.samples:
            compile_result = self.checker.check(sample.code)
            if compile_result.ok:
                syntax_passes += 1
            else:
                if len(failures) < 3:
                    failures.append("; ".join(compile_result.error_messages[:1]))
                continue
            if sample.code in checked:
                check = checked[sample.code]
            else:
                check = self._functional_check(runner, task, sample.code, stimulus)
                checked[sample.code] = check
            if check.passed:
                functional_passes += 1
            elif len(failures) < 3:
                failures.append(check.failure_summary)
        return TaskResult(
            task_id=task.task_id,
            category=task.category,
            num_samples=len(generation.samples),
            num_functional_passes=functional_passes,
            num_syntax_passes=syntax_passes,
            temperature=temperature,
            failure_examples=failures,
        )

    # ------------------------------------------------------------------ functional checks
    def _functional_check(
        self,
        runner: BatchTestbenchRunner,
        task: BenchmarkTask,
        code: str,
        stimulus: list[dict[str, int]],
    ) -> TestbenchResult:
        """Score one compiled sample: formal proof when configured, else sweep."""
        if self.config.mode == "formal":
            result = self._formal_check(task, code)
            if result is not None:
                return result
        return runner.run(code, task.golden(), stimulus, check_outputs=task.check_outputs)

    def _formal_check(self, task: BenchmarkTask, code: str) -> TestbenchResult | None:
        """Complete SAT equivalence proof against the task's reference design.

        Returns ``None`` (→ simulation fallback) for sequential tasks, designs
        outside the provable subset, or an exhausted SAT conflict budget.
        """
        from ..formal import ConflictLimitExceeded, FormalEncodingError, FormalError
        from ..verilog.errors import VerilogError
        from .golden import formal_equivalence_check

        if task.golden().is_sequential:
            return None
        try:
            proof = formal_equivalence_check(
                code,
                task.reference_source,
                outputs=task.check_outputs,
                conflict_limit=self.config.formal_conflict_limit,
            )
        except (FormalEncodingError, ConflictLimitExceeded):
            return None  # outside the provable subset / budget: simulate instead
        except (FormalError, VerilogError) as exc:
            return TestbenchResult(passed=False, error=str(exc))
        if proof.equivalent:
            return TestbenchResult(passed=True, total_checks=len(proof.checked_outputs))
        counterexample = proof.counterexample
        mismatches = []
        if counterexample is not None:
            from ..verilog.simulator.testbench import Mismatch

            for name in counterexample.missing_outputs:
                mismatches.append(
                    Mismatch(
                        step_index=0,
                        output=name,
                        expected=0,
                        actual="<missing>",
                        inputs=dict(counterexample.inputs),
                    )
                )
            for step, name in counterexample.mismatching_outputs:
                mismatches.append(
                    Mismatch(
                        step_index=step,
                        output=name,
                        expected=counterexample.reference_outputs[step][name],
                        actual=str(counterexample.dut_outputs[step][name]),
                        inputs=dict(counterexample.steps[step]),
                    )
                )
        return TestbenchResult(
            passed=False,
            total_checks=len(proof.checked_outputs),
            mismatches=mismatches,
        )


def evaluate_models(
    pipelines: Sequence[HaVenPipeline],
    suites: Sequence[BenchmarkSuite],
    config: EvaluationConfig | None = None,
) -> dict[tuple[str, str], SuiteResult]:
    """Evaluate several pipelines on several suites; keys are (model, suite) names."""
    evaluator = BenchmarkEvaluator(config)
    results: dict[tuple[str, str], SuiteResult] = {}
    for pipeline in pipelines:
        for suite in suites:
            results[(pipeline.name, suite.name)] = evaluator.evaluate(pipeline, suite)
    return results


def check_reference_designs(
    suite: BenchmarkSuite,
    stimulus_seed: int = 1234,
    max_tasks: int | None = None,
    use_batch: bool = True,
    differential: bool = False,
) -> dict[str, str]:
    """Check every task's golden Verilog reference against its Python golden model.

    This is the suite self-consistency sweep the benchmark builders expose
    (``verilogeval.validate_references`` etc.): the reference design must pass
    its own functional testbench.  Combinational tasks run column-parallel via
    :class:`BatchTestbenchRunner`; pass ``differential=True`` to re-check every
    batched run against the scalar oracle.

    Returns:
        task_id → failure summary for every failing task (empty == all passed).
    """
    from ..verilog.simulator.testbench import TestbenchRunner

    failures: dict[str, str] = {}
    tasks = list(suite)
    if max_tasks is not None:
        tasks = tasks[:max_tasks]
    for task in tasks:
        if use_batch:
            runner: TestbenchRunner = BatchTestbenchRunner(
                clock=task.clock, reset=task.reset, differential=differential
            )
        else:
            runner = TestbenchRunner(clock=task.clock, reset=task.reset)
        result = runner.run(
            task.reference_source,
            task.golden(),
            task.stimulus(stimulus_seed),
            check_outputs=task.check_outputs,
        )
        if not result.passed:
            failures[task.task_id] = result.failure_summary or "no checks executed"
    return failures
