"""Task-family builders for the benchmark suites.

Each function builds one :class:`~repro.bench.task.BenchmarkTask` of a particular
hardware family (combinational logic, truth-table/waveform/state-diagram symbolic
tasks, counters, shift registers, registers, ALUs, multiplexers, decoders, adders,
comparators, clock dividers, sequence/edge detectors).  The suite generators in
:mod:`repro.bench.verilogeval`, :mod:`repro.bench.rtllm` and
:mod:`repro.bench.verilogeval_v2` compose these families with the task-count and
category mix of the corresponding paper benchmark.

Prompts come in three styles, selected by the ``style`` argument:

* ``"machine"`` — verbose, generic, LLM-generated phrasing (VerilogEval-Machine);
* ``"human"``  — concise HDL-engineer phrasing, usually with the module interface
  spelled out (VerilogEval-Human, RTLLM);
* ``"spec_to_rtl"`` — chat-style Question/Answer phrasing (VerilogEval v2).
"""

from __future__ import annotations

import random

from ..core.llm.base import TaskDemands
from ..core.prompt import DesignPrompt, ModuleInterface, PortSpec
from ..logic.expr import BoolExpr, RandomExpressionGenerator
from ..logic.minimize import literal_cost, minimize_expression
from ..logic.synth import SynthesisRequest, expression_to_module, truth_table_to_module
from ..symbolic.detector import SymbolicModality
from ..symbolic.state_diagram import random_state_diagram
from ..symbolic.truth_table import TruthTable
from ..symbolic.waveform import Waveform
from ..verilog.analyzer import Attribute
from ..verilog.simulator.testbench import ResetSpec
from .golden import (
    ClockDividerGolden,
    CounterGolden,
    EdgeDetectorGolden,
    ExpressionGolden,
    InvertedInputsGolden,
    RegisterGolden,
    SequenceDetectorGolden,
    ShiftRegisterGolden,
    TableGolden,
    VectorFunctionGolden,
    exhaustive_vectors,
    random_vectors,
)
from .task import BenchmarkTask

_DEFAULT_MODULE = "top_module"


def _wrap_style(text: str, style: str, interface: ModuleInterface | None = None) -> str:
    """Apply the per-suite prompt phrasing conventions."""
    if style == "machine":
        return (
            "You are given the following design requirement. "
            f"{text} Please write the complete Verilog module implementing this behaviour."
        )
    if style == "spec_to_rtl":
        header = f"\n\n{interface.to_module_header()}" if interface is not None else ""
        return (
            "Question: Implement the Verilog module described by the following "
            f"specification. {text}{header}\n\nAnswer:"
        )
    # "human": terse engineer phrasing, interface included when available.
    header = f"\n\n{interface.to_module_header()}" if interface is not None else ""
    return f"{text}{header}"


# --------------------------------------------------------------------------- combinational
def make_expression_task(
    task_id: str,
    suite: str,
    seed: int,
    style: str = "human",
    num_variables: int = 3,
    expression: BoolExpr | None = None,
) -> BenchmarkTask:
    """A plain combinational-logic task described in natural language."""
    rng = random.Random(seed)
    variables = ["a", "b", "c", "d", "e"][:num_variables]
    if expression is None:
        generator = RandomExpressionGenerator(seed=seed)
        expression = generator.generate_nontrivial(variables, max_depth=3)
    expression = minimize_expression(expression)
    variables = expression.variables() or variables[:1]

    interface = ModuleInterface(
        name=_DEFAULT_MODULE,
        ports=[PortSpec(name, "input") for name in variables] + [PortSpec("out", "output")],
    )
    reference = expression_to_module(
        expression, SynthesisRequest(module_name=_DEFAULT_MODULE, style=rng.choice(["assign", "case"]))
    )
    description = (
        f"Write a combinational module whose output out equals {expression.to_text()} "
        f"of the inputs {', '.join(variables)}."
    )
    cost = literal_cost(expression)
    demands = TaskDemands(
        knowledge=0.20,
        logic=min(0.9, 0.30 + 0.08 * cost),
        difficulty=min(0.8, 0.20 + 0.05 * cost),
    )
    widths = {name: 1 for name in variables}
    return BenchmarkTask(
        task_id=task_id,
        suite=suite,
        prompt=DesignPrompt(text=_wrap_style(description, style, interface), interface=interface),
        interface=interface,
        reference_source=reference,
        golden_factory=lambda expr=expression: ExpressionGolden(expr),
        stimulus_factory=lambda seed_, widths=widths: exhaustive_vectors(widths, limit=32),
        demands=demands,
        prompt_style="spec_to_rtl" if style == "spec_to_rtl" else "completion",
        category="combinational",
    )


def make_truth_table_task(task_id: str, suite: str, seed: int, style: str = "human") -> BenchmarkTask:
    """A symbolic task whose prompt embeds a truth table."""
    rng = random.Random(seed)
    num_variables = rng.choice([2, 3, 3])
    variables = ["a", "b", "c"][:num_variables]
    size = 1 << num_variables
    minterms = sorted(rng.sample(range(size), rng.randint(1, size - 1)))
    table = TruthTable.from_function(variables, "out", function={m: 1 for m in minterms})

    interface = ModuleInterface(
        name=_DEFAULT_MODULE,
        ports=[PortSpec(name, "input") for name in variables] + [PortSpec("out", "output")],
    )
    rows = {m: 1 for m in minterms}
    reference = truth_table_to_module(
        variables, rows, SynthesisRequest(module_name=_DEFAULT_MODULE, style="case")
    )
    text = "Implement the truth table below.\n" + table.to_prompt_text()
    demands = TaskDemands(
        modality=SymbolicModality.TRUTH_TABLE,
        knowledge=0.25,
        logic=0.40,
        difficulty=0.35,
    )
    widths = {name: 1 for name in variables}
    return BenchmarkTask(
        task_id=task_id,
        suite=suite,
        prompt=DesignPrompt(text=_wrap_style(text, style), interface=interface),
        interface=interface,
        reference_source=reference,
        golden_factory=lambda v=tuple(variables), r=dict(rows): TableGolden(v, r),
        stimulus_factory=lambda seed_, widths=widths: exhaustive_vectors(widths, limit=32),
        demands=demands,
        prompt_style="spec_to_rtl" if style == "spec_to_rtl" else "completion",
        category="truth_table",
    )


def make_waveform_task(task_id: str, suite: str, seed: int, style: str = "human") -> BenchmarkTask:
    """A symbolic task whose prompt embeds a waveform chart."""
    rng = random.Random(seed)
    num_variables = rng.choice([2, 3])
    variables = ["a", "b", "c"][:num_variables]
    generator = RandomExpressionGenerator(seed=seed + 17)
    expression = minimize_expression(generator.generate_nontrivial(variables, max_depth=2))
    variables = expression.variables()
    # Sample enough points that the full truth table is observable in the chart.
    samples = [
        {name: (index >> position) & 1 for position, name in enumerate(variables)}
        for index in range(1 << len(variables))
    ]
    rng.shuffle(samples)
    waveform = Waveform.from_expression(expression, output="out", samples=samples)

    interface = ModuleInterface(
        name=_DEFAULT_MODULE,
        ports=[PortSpec(name, "input") for name in variables] + [PortSpec("out", "output")],
    )
    reference = expression_to_module(
        expression, SynthesisRequest(module_name=_DEFAULT_MODULE, style="assign")
    )
    text = "Implement combinational logic matching the waveforms below.\n" + waveform.to_prompt_text()
    demands = TaskDemands(
        modality=SymbolicModality.WAVEFORM,
        knowledge=0.25,
        logic=0.45,
        difficulty=0.40,
    )
    widths = {name: 1 for name in variables}
    return BenchmarkTask(
        task_id=task_id,
        suite=suite,
        prompt=DesignPrompt(text=_wrap_style(text, style), interface=interface),
        interface=interface,
        reference_source=reference,
        golden_factory=lambda expr=expression: ExpressionGolden(expr),
        stimulus_factory=lambda seed_, widths=widths: exhaustive_vectors(widths, limit=32),
        demands=demands,
        prompt_style="spec_to_rtl" if style == "spec_to_rtl" else "completion",
        category="waveform",
    )


def make_state_diagram_task(task_id: str, suite: str, seed: int, style: str = "human") -> BenchmarkTask:
    """A symbolic FSM task whose prompt embeds a state diagram."""
    rng = random.Random(seed)
    num_states = rng.choice([2, 3, 3, 4])
    diagram = random_state_diagram(num_states=num_states, inputs=("x",), outputs=("out",), seed=seed)
    interface = ModuleInterface(
        name=_DEFAULT_MODULE,
        ports=[
            PortSpec("clk", "input"),
            PortSpec("rst", "input"),
            PortSpec("x", "input"),
            PortSpec("out", "output"),
        ],
    )
    reference = diagram.to_verilog(module_name=_DEFAULT_MODULE, async_reset=True)
    text = (
        "Implement the finite state machine described by the state diagram below. "
        "Reset (active high) returns the machine to the first state.\n"
        + diagram.to_prompt_text()
    )
    demands = TaskDemands(
        modality=SymbolicModality.STATE_DIAGRAM,
        knowledge=0.45,
        logic=0.40,
        difficulty=min(0.8, 0.30 + 0.1 * num_states),
        required_attributes=frozenset({Attribute.ASYNC_RESET}),
    )
    return BenchmarkTask(
        task_id=task_id,
        suite=suite,
        prompt=DesignPrompt(text=_wrap_style(text, style), interface=interface),
        interface=interface,
        reference_source=reference,
        golden_factory=diagram.to_golden_model,
        stimulus_factory=lambda seed_: [
            {"x": bit, "rst": 0} for bit in _random_bits(seed_ + seed, 12)
        ],
        demands=demands,
        reset=ResetSpec(signal="rst", active_low=False),
        prompt_style="spec_to_rtl" if style == "spec_to_rtl" else "completion",
        category="state_diagram",
    )


# --------------------------------------------------------------------------- sequential families
def make_counter_task(task_id: str, suite: str, seed: int, style: str = "human") -> BenchmarkTask:
    """A counter task with a randomly chosen width/enable/reset flavour."""
    rng = random.Random(seed)
    width = rng.choice([4, 8])
    has_enable = rng.random() < 0.5
    async_reset = rng.random() < 0.5
    sensitivity = "posedge clk or posedge rst" if async_reset else "posedge clk"
    ports = [PortSpec("clk", "input"), PortSpec("rst", "input")]
    if has_enable:
        ports.append(PortSpec("en", "input"))
    ports.append(PortSpec("count", "output", width))
    interface = ModuleInterface(name=_DEFAULT_MODULE, ports=ports)

    enable_clause = "else if (en)" if has_enable else "else"
    reference = (
        f"module {_DEFAULT_MODULE} (\n"
        "    input clk,\n"
        "    input rst,\n"
        + ("    input en,\n" if has_enable else "")
        + f"    output reg [{width - 1}:0] count\n"
        ");\n"
        f"    always @({sensitivity}) begin\n"
        "        if (rst)\n"
        f"            count <= {width}'d0;\n"
        f"        {enable_clause}\n"
        "            count <= count + 1'b1;\n"
        "    end\n"
        "endmodule\n"
    )
    reset_word = "asynchronous" if async_reset else "synchronous"
    enable_text = " The counter increments only when the active-high enable en is asserted." if has_enable else ""
    text = (
        f"Design a {width}-bit up counter with a {reset_word} active-high reset rst that clears "
        f"the count to zero.{enable_text}"
    )
    required = {Attribute.ASYNC_RESET if async_reset else Attribute.SYNC_RESET}
    if has_enable:
        required.add(Attribute.ACTIVE_HIGH_ENABLE)
    demands = TaskDemands(
        knowledge=0.45 + (0.1 if has_enable else 0.0),
        logic=0.30,
        difficulty=0.35 + (0.05 if width > 4 else 0.0),
        required_attributes=frozenset(required),
    )

    def stimulus(seed_: int, has_enable=has_enable) -> list[dict[str, int]]:
        local = random.Random(seed_ ^ seed)
        vectors = []
        for index in range(14):
            vector = {"rst": 1 if index == 7 else 0}
            if has_enable:
                vector["en"] = local.randint(0, 1)
            vectors.append(vector)
        return vectors

    return BenchmarkTask(
        task_id=task_id,
        suite=suite,
        prompt=DesignPrompt(text=_wrap_style(text, style, interface), interface=interface),
        interface=interface,
        reference_source=reference,
        golden_factory=lambda width=width, has_enable=has_enable: CounterGolden(
            width=width, has_enable=has_enable
        ),
        stimulus_factory=stimulus,
        demands=demands,
        reset=ResetSpec(signal="rst"),
        prompt_style="spec_to_rtl" if style == "spec_to_rtl" else "completion",
        category="counter",
    )


def make_shift_register_task(task_id: str, suite: str, seed: int, style: str = "human") -> BenchmarkTask:
    """A serial-in shift-register task."""
    rng = random.Random(seed)
    width = rng.choice([4, 8])
    interface = ModuleInterface(
        name=_DEFAULT_MODULE,
        ports=[
            PortSpec("clk", "input"),
            PortSpec("rst", "input"),
            PortSpec("din", "input"),
            PortSpec("q", "output", width),
        ],
    )
    reference = (
        f"module {_DEFAULT_MODULE} (\n"
        "    input clk,\n"
        "    input rst,\n"
        "    input din,\n"
        f"    output reg [{width - 1}:0] q\n"
        ");\n"
        "    always @(posedge clk) begin\n"
        "        if (rst)\n"
        f"            q <= {width}'d0;\n"
        "        else\n"
        f"            q <= {{q[{width - 2}:0], din}};\n"
        "    end\n"
        "endmodule\n"
    )
    text = (
        f"Design a {width}-bit serial-in parallel-out shift register. On each rising clock edge, "
        "shift left by one position and insert din at the least significant bit. A synchronous "
        "active-high reset rst clears the register."
    )
    demands = TaskDemands(
        knowledge=0.50,
        logic=0.35,
        difficulty=0.40,
        required_attributes=frozenset({Attribute.SYNC_RESET}),
    )
    return BenchmarkTask(
        task_id=task_id,
        suite=suite,
        prompt=DesignPrompt(text=_wrap_style(text, style, interface), interface=interface),
        interface=interface,
        reference_source=reference,
        golden_factory=lambda width=width: ShiftRegisterGolden(width=width, output="q"),
        stimulus_factory=lambda seed_: [
            {"din": bit, "rst": 0} for bit in _random_bits(seed_ + seed, 12)
        ],
        demands=demands,
        reset=ResetSpec(signal="rst"),
        prompt_style="spec_to_rtl" if style == "spec_to_rtl" else "completion",
        category="shift_register",
    )


def make_register_task(task_id: str, suite: str, seed: int, style: str = "human") -> BenchmarkTask:
    """A D-register task exercising reset/enable attribute knowledge."""
    rng = random.Random(seed)
    width = rng.choice([1, 4, 8])
    has_enable = rng.random() < 0.5
    enable_active_low = has_enable and rng.random() < 0.5
    async_reset = rng.random() < 0.6
    active_low_reset = rng.random() < 0.4
    reset_name = "rst_n" if active_low_reset else "rst"

    ports = [PortSpec("clk", "input"), PortSpec(reset_name, "input")]
    enable_name = "en_n" if enable_active_low else "en"
    if has_enable:
        ports.append(PortSpec(enable_name, "input"))
    ports += [PortSpec("d", "input", width), PortSpec("q", "output", width)]
    interface = ModuleInterface(name=_DEFAULT_MODULE, ports=ports)

    reset_edge = "negedge" if active_low_reset else "posedge"
    sensitivity = f"posedge clk or {reset_edge} {reset_name}" if async_reset else "posedge clk"
    reset_condition = f"!{reset_name}" if active_low_reset else reset_name
    enable_condition = f"!{enable_name}" if enable_active_low else enable_name
    zero = f"{width}'d0" if width > 1 else "1'b0"
    range_text = f"[{width - 1}:0] " if width > 1 else ""
    load_clause = f"        else if ({enable_condition})\n" if has_enable else "        else\n"
    reference = (
        f"module {_DEFAULT_MODULE} (\n"
        "    input clk,\n"
        f"    input {reset_name},\n"
        + (f"    input {enable_name},\n" if has_enable else "")
        + f"    input {range_text}d,\n"
        f"    output reg {range_text}q\n"
        ");\n"
        f"    always @({sensitivity}) begin\n"
        f"        if ({reset_condition})\n"
        f"            q <= {zero};\n"
        f"{load_clause}"
        "            q <= d;\n"
        "    end\n"
        "endmodule\n"
    )
    reset_word = "asynchronous" if async_reset else "synchronous"
    polarity_word = "active-low" if active_low_reset else "active-high"
    enable_text = ""
    if has_enable:
        enable_polarity = "active-low" if enable_active_low else "active-high"
        enable_text = f" The register loads d only when the {enable_polarity} enable {enable_name} is asserted."
    width_text = f"{width}-bit " if width > 1 else ""
    text = (
        f"Implement a {width_text}D register with a {reset_word} {polarity_word} reset "
        f"{reset_name} that clears q.{enable_text}"
    )
    required = {Attribute.ASYNC_RESET if async_reset else Attribute.SYNC_RESET}
    if has_enable:
        required.add(Attribute.ACTIVE_LOW_ENABLE if enable_active_low else Attribute.ACTIVE_HIGH_ENABLE)
    demands = TaskDemands(
        knowledge=0.45 + 0.1 * len(required),
        logic=0.25,
        difficulty=0.35,
        required_attributes=frozenset(required),
    )

    golden_base = RegisterGolden(
        width=width,
        has_enable=has_enable,
        enable_active_low=enable_active_low,
        enable_input=enable_name,
        reset_input=reset_name,
    )
    inverted: tuple[str, ...] = (reset_name,) if active_low_reset else ()

    def golden_factory(base=golden_base, inverted=inverted):
        fresh = RegisterGolden(
            width=base.width,
            has_enable=base.has_enable,
            enable_active_low=base.enable_active_low,
            enable_input=base.enable_input,
            reset_input=base.reset_input,
        )
        return InvertedInputsGolden(fresh, inverted) if inverted else fresh

    def stimulus(seed_: int, width=width, has_enable=has_enable, enable_name=enable_name,
                 reset_name=reset_name, inactive=1 if active_low_reset else 0) -> list[dict[str, int]]:
        local = random.Random(seed_ ^ (seed + 3))
        vectors = []
        for _ in range(12):
            vector = {"d": local.randrange(1 << width), reset_name: inactive}
            if has_enable:
                vector[enable_name] = local.randint(0, 1)
            vectors.append(vector)
        return vectors

    return BenchmarkTask(
        task_id=task_id,
        suite=suite,
        prompt=DesignPrompt(text=_wrap_style(text, style, interface), interface=interface),
        interface=interface,
        reference_source=reference,
        golden_factory=golden_factory,
        stimulus_factory=stimulus,
        demands=demands,
        reset=ResetSpec(signal=reset_name, active_low=active_low_reset),
        prompt_style="spec_to_rtl" if style == "spec_to_rtl" else "completion",
        category="register",
    )


def make_sequence_detector_task(task_id: str, suite: str, seed: int, style: str = "human") -> BenchmarkTask:
    """A Moore sequence-detector FSM task described in natural language."""
    rng = random.Random(seed)
    pattern = tuple(rng.randint(0, 1) for _ in range(rng.choice([3, 3, 4])))
    pattern_text = "".join(str(bit) for bit in pattern)
    interface = ModuleInterface(
        name=_DEFAULT_MODULE,
        ports=[
            PortSpec("clk", "input"),
            PortSpec("rst", "input"),
            PortSpec("din", "input"),
            PortSpec("detected", "output"),
        ],
    )
    reference = _sequence_detector_source(pattern)
    text = (
        f"Design a Moore finite state machine that detects the overlapping serial bit sequence "
        f"{pattern_text} on din, asserting detected for one cycle when the sequence has been seen. "
        "Use a conventional FSM with a state register (asynchronous active-high reset), next-state "
        "logic and output logic."
    )
    demands = TaskDemands(
        knowledge=0.60,
        logic=0.50,
        difficulty=0.45 + 0.05 * (len(pattern) - 3),
        required_attributes=frozenset({Attribute.ASYNC_RESET}),
    )
    return BenchmarkTask(
        task_id=task_id,
        suite=suite,
        prompt=DesignPrompt(text=_wrap_style(text, style, interface), interface=interface),
        interface=interface,
        reference_source=reference,
        golden_factory=lambda pattern=pattern: SequenceDetectorGolden(pattern=pattern),
        stimulus_factory=lambda seed_: [
            {"din": bit, "rst": 0} for bit in _random_bits(seed_ + seed, 16)
        ],
        demands=demands,
        reset=ResetSpec(signal="rst"),
        prompt_style="spec_to_rtl" if style == "spec_to_rtl" else "completion",
        category="fsm",
    )


def make_edge_detector_task(task_id: str, suite: str, seed: int, style: str = "human") -> BenchmarkTask:
    """A rising-edge detector task."""
    interface = ModuleInterface(
        name=_DEFAULT_MODULE,
        ports=[
            PortSpec("clk", "input"),
            PortSpec("rst", "input"),
            PortSpec("din", "input"),
            PortSpec("pulse", "output"),
        ],
    )
    reference = (
        f"module {_DEFAULT_MODULE} (\n"
        "    input clk,\n"
        "    input rst,\n"
        "    input din,\n"
        "    output reg pulse\n"
        ");\n"
        "    reg previous;\n"
        "    always @(posedge clk) begin\n"
        "        if (rst) begin\n"
        "            previous <= 1'b0;\n"
        "            pulse <= 1'b0;\n"
        "        end else begin\n"
        "            pulse <= din & ~previous;\n"
        "            previous <= din;\n"
        "        end\n"
        "    end\n"
        "endmodule\n"
    )
    text = (
        "Design a rising-edge detector: pulse goes high for exactly one clock cycle whenever din "
        "transitions from 0 to 1. Use a synchronous active-high reset."
    )
    demands = TaskDemands(
        knowledge=0.50,
        logic=0.45,
        difficulty=0.40,
        required_attributes=frozenset({Attribute.SYNC_RESET}),
    )
    return BenchmarkTask(
        task_id=task_id,
        suite=suite,
        prompt=DesignPrompt(text=_wrap_style(text, style, interface), interface=interface),
        interface=interface,
        reference_source=reference,
        golden_factory=EdgeDetectorGolden,
        stimulus_factory=lambda seed_: [
            {"din": bit, "rst": 0} for bit in _random_bits(seed_ + seed, 14)
        ],
        demands=demands,
        reset=ResetSpec(signal="rst"),
        prompt_style="spec_to_rtl" if style == "spec_to_rtl" else "completion",
        category="fsm",
    )


def make_clock_divider_task(task_id: str, suite: str, seed: int, style: str = "human") -> BenchmarkTask:
    """A clock-divider task."""
    rng = random.Random(seed)
    divisor = rng.choice([2, 3, 4, 5])
    interface = ModuleInterface(
        name=_DEFAULT_MODULE,
        ports=[
            PortSpec("clk", "input"),
            PortSpec("rst", "input"),
            PortSpec("clk_out", "output"),
        ],
    )
    reference = (
        f"module {_DEFAULT_MODULE} (\n"
        "    input clk,\n"
        "    input rst,\n"
        "    output reg clk_out\n"
        ");\n"
        "    reg [7:0] counter;\n"
        "    always @(posedge clk) begin\n"
        "        if (rst) begin\n"
        "            counter <= 8'd0;\n"
        "            clk_out <= 1'b0;\n"
        f"        end else if (counter == 8'd{divisor - 1}) begin\n"
        "            counter <= 8'd0;\n"
        "            clk_out <= ~clk_out;\n"
        "        end else begin\n"
        "            counter <= counter + 8'd1;\n"
        "        end\n"
        "    end\n"
        "endmodule\n"
    )
    text = (
        f"Design a clock divider producing clk_out by toggling an internal register every "
        f"{divisor} input clock cycles (so the output period is {2 * divisor} input cycles). Use a "
        "synchronous active-high reset that clears the counter and drives clk_out low."
    )
    demands = TaskDemands(
        knowledge=0.55,
        logic=0.40,
        difficulty=0.50,
        required_attributes=frozenset({Attribute.SYNC_RESET}),
    )
    return BenchmarkTask(
        task_id=task_id,
        suite=suite,
        prompt=DesignPrompt(text=_wrap_style(text, style, interface), interface=interface),
        interface=interface,
        reference_source=reference,
        golden_factory=lambda divisor=divisor: ClockDividerGolden(divisor=divisor),
        stimulus_factory=lambda seed_, divisor=divisor: [{"rst": 0} for _ in range(4 * divisor + 2)],
        demands=demands,
        reset=ResetSpec(signal="rst"),
        prompt_style="spec_to_rtl" if style == "spec_to_rtl" else "completion",
        category="clock_divider",
    )


# --------------------------------------------------------------------------- datapath families
def make_alu_task(task_id: str, suite: str, seed: int, style: str = "human") -> BenchmarkTask:
    """A small combinational ALU task."""
    rng = random.Random(seed)
    width = rng.choice([4, 8])
    operation_sets = [
        ("a + b", "a - b", "a & b", "a | b"),
        ("a + b", "a & b", "a ^ b", "a | b"),
        ("a + b", "a - b", "a ^ b", "~a"),
    ]
    operations = rng.choice(operation_sets)
    interface = ModuleInterface(
        name=_DEFAULT_MODULE,
        ports=[
            PortSpec("a", "input", width),
            PortSpec("b", "input", width),
            PortSpec("op", "input", 2),
            PortSpec("result", "output", width),
        ],
    )
    arms = "\n".join(
        f"            2'b{opcode:02b}: result = {operation};"
        for opcode, operation in enumerate(operations)
    )
    reference = (
        f"module {_DEFAULT_MODULE} (\n"
        f"    input [{width - 1}:0] a,\n"
        f"    input [{width - 1}:0] b,\n"
        "    input [1:0] op,\n"
        f"    output reg [{width - 1}:0] result\n"
        ");\n"
        "    always @(*) begin\n"
        "        case (op)\n"
        f"{arms}\n"
        f"            default: result = {width}'d0;\n"
        "        endcase\n"
        "    end\n"
        "endmodule\n"
    )
    op_text = "; ".join(
        f"op={opcode:02b} computes {operation}" for opcode, operation in enumerate(operations)
    )
    text = (
        f"Design a {width}-bit combinational ALU with a 2-bit opcode: {op_text}. "
        "Cover every opcode and include a default arm."
    )
    mask = (1 << width) - 1

    def alu_function(inputs, operations=operations, mask=mask):
        a, b, op = int(inputs["a"]), int(inputs["b"]), int(inputs["op"])
        expression = operations[op % len(operations)]
        value = {
            "a + b": a + b,
            "a - b": a - b,
            "a & b": a & b,
            "a | b": a | b,
            "a ^ b": a ^ b,
            "~a": ~a,
            "a << 1": a << 1,
            "a >> 1": a >> 1,
        }[expression]
        return {"result": value & mask}

    demands = TaskDemands(knowledge=0.50, logic=0.45, difficulty=0.45)
    widths = {"a": width, "b": width, "op": 2}
    return BenchmarkTask(
        task_id=task_id,
        suite=suite,
        prompt=DesignPrompt(text=_wrap_style(text, style, interface), interface=interface),
        interface=interface,
        reference_source=reference,
        golden_factory=lambda fn=alu_function: VectorFunctionGolden(fn),
        stimulus_factory=lambda seed_, widths=widths: random_vectors(widths, 16, seed_ + seed),
        demands=demands,
        prompt_style="spec_to_rtl" if style == "spec_to_rtl" else "completion",
        category="alu",
    )


def make_mux_task(task_id: str, suite: str, seed: int, style: str = "human") -> BenchmarkTask:
    """A 4-to-1 multiplexer task."""
    rng = random.Random(seed)
    width = rng.choice([1, 4, 8])
    range_text = f"[{width - 1}:0] " if width > 1 else ""
    interface = ModuleInterface(
        name=_DEFAULT_MODULE,
        ports=[PortSpec(f"in{i}", "input", width) for i in range(4)]
        + [PortSpec("sel", "input", 2), PortSpec("out", "output", width)],
    )
    reference = (
        f"module {_DEFAULT_MODULE} (\n"
        + "".join(f"    input {range_text}in{i},\n" for i in range(4))
        + "    input [1:0] sel,\n"
        f"    output reg {range_text}out\n"
        ");\n"
        "    always @(*) begin\n"
        "        case (sel)\n"
        "            2'b00: out = in0;\n"
        "            2'b01: out = in1;\n"
        "            2'b10: out = in2;\n"
        "            2'b11: out = in3;\n"
        f"            default: out = {width}'d0;\n"
        "        endcase\n"
        "    end\n"
        "endmodule\n"
    )
    width_text = f"{width}-bit " if width > 1 else ""
    text = (
        f"Design a 4-to-1 multiplexer with {width_text}data inputs in0..in3 and a 2-bit select sel. "
        "The output out equals the selected input."
    )

    def mux_function(inputs, mask=(1 << width) - 1):
        sel = int(inputs["sel"]) & 3
        return {"out": int(inputs[f"in{sel}"]) & mask}

    demands = TaskDemands(knowledge=0.30, logic=0.30, difficulty=0.30)
    widths = {f"in{i}": width for i in range(4)}
    widths["sel"] = 2
    return BenchmarkTask(
        task_id=task_id,
        suite=suite,
        prompt=DesignPrompt(text=_wrap_style(text, style, interface), interface=interface),
        interface=interface,
        reference_source=reference,
        golden_factory=lambda fn=mux_function: VectorFunctionGolden(fn),
        stimulus_factory=lambda seed_, widths=widths: random_vectors(widths, 16, seed_ + seed),
        demands=demands,
        prompt_style="spec_to_rtl" if style == "spec_to_rtl" else "completion",
        category="mux",
    )


def make_decoder_task(task_id: str, suite: str, seed: int, style: str = "human") -> BenchmarkTask:
    """A binary decoder task with an enable."""
    rng = random.Random(seed)
    bits = rng.choice([2, 3])
    outputs = 1 << bits
    interface = ModuleInterface(
        name=_DEFAULT_MODULE,
        ports=[
            PortSpec("en", "input"),
            PortSpec("sel", "input", bits),
            PortSpec("out", "output", outputs),
        ],
    )
    reference = (
        f"module {_DEFAULT_MODULE} (\n"
        "    input en,\n"
        f"    input [{bits - 1}:0] sel,\n"
        f"    output reg [{outputs - 1}:0] out\n"
        ");\n"
        "    always @(*) begin\n"
        "        if (en)\n"
        f"            out = {outputs}'d1 << sel;\n"
        "        else\n"
        f"            out = {outputs}'d0;\n"
        "    end\n"
        "endmodule\n"
    )
    text = (
        f"Design a {bits}-to-{outputs} decoder with an active-high enable. When en is high the "
        "output bit selected by sel is 1 and all others are 0; when en is low every output bit is 0."
    )

    def decoder_function(inputs, outputs=outputs):
        if not int(inputs["en"]):
            return {"out": 0}
        return {"out": (1 << (int(inputs["sel"]))) & ((1 << outputs) - 1)}

    demands = TaskDemands(
        knowledge=0.35,
        logic=0.35,
        difficulty=0.30,
        required_attributes=frozenset({Attribute.ACTIVE_HIGH_ENABLE}),
    )
    widths = {"en": 1, "sel": bits}
    return BenchmarkTask(
        task_id=task_id,
        suite=suite,
        prompt=DesignPrompt(text=_wrap_style(text, style, interface), interface=interface),
        interface=interface,
        reference_source=reference,
        golden_factory=lambda fn=decoder_function: VectorFunctionGolden(fn),
        stimulus_factory=lambda seed_, widths=widths: exhaustive_vectors(widths, limit=32),
        demands=demands,
        prompt_style="spec_to_rtl" if style == "spec_to_rtl" else "completion",
        category="decoder",
    )


def make_adder_task(task_id: str, suite: str, seed: int, style: str = "human") -> BenchmarkTask:
    """An adder-with-carry task."""
    rng = random.Random(seed)
    width = rng.choice([4, 8])
    interface = ModuleInterface(
        name=_DEFAULT_MODULE,
        ports=[
            PortSpec("a", "input", width),
            PortSpec("b", "input", width),
            PortSpec("sum", "output", width),
            PortSpec("cout", "output"),
        ],
    )
    reference = (
        f"module {_DEFAULT_MODULE} (\n"
        f"    input [{width - 1}:0] a,\n"
        f"    input [{width - 1}:0] b,\n"
        f"    output [{width - 1}:0] sum,\n"
        "    output cout\n"
        ");\n"
        "    assign {cout, sum} = a + b;\n"
        "endmodule\n"
    )
    text = (
        f"Design a {width}-bit adder producing a {width}-bit sum and a carry-out cout. "
        "The design is purely combinational."
    )

    def adder_function(inputs, width=width):
        total = int(inputs["a"]) + int(inputs["b"])
        return {"sum": total & ((1 << width) - 1), "cout": (total >> width) & 1}

    demands = TaskDemands(knowledge=0.25, logic=0.30, difficulty=0.30)
    widths = {"a": width, "b": width}
    return BenchmarkTask(
        task_id=task_id,
        suite=suite,
        prompt=DesignPrompt(text=_wrap_style(text, style, interface), interface=interface),
        interface=interface,
        reference_source=reference,
        golden_factory=lambda fn=adder_function: VectorFunctionGolden(fn),
        stimulus_factory=lambda seed_, widths=widths: random_vectors(widths, 16, seed_ + seed),
        demands=demands,
        prompt_style="spec_to_rtl" if style == "spec_to_rtl" else "completion",
        category="adder",
    )


def make_comparator_task(task_id: str, suite: str, seed: int, style: str = "human") -> BenchmarkTask:
    """An unsigned comparator task."""
    rng = random.Random(seed)
    width = rng.choice([4, 8])
    interface = ModuleInterface(
        name=_DEFAULT_MODULE,
        ports=[
            PortSpec("a", "input", width),
            PortSpec("b", "input", width),
            PortSpec("gt", "output"),
            PortSpec("eq", "output"),
            PortSpec("lt", "output"),
        ],
    )
    reference = (
        f"module {_DEFAULT_MODULE} (\n"
        f"    input [{width - 1}:0] a,\n"
        f"    input [{width - 1}:0] b,\n"
        "    output gt,\n"
        "    output eq,\n"
        "    output lt\n"
        ");\n"
        "    assign gt = (a > b);\n"
        "    assign eq = (a == b);\n"
        "    assign lt = (a < b);\n"
        "endmodule\n"
    )
    text = (
        f"Design a {width}-bit unsigned comparator with three outputs: gt (a greater than b), "
        "eq (equal) and lt (less than)."
    )

    def comparator_function(inputs):
        a, b = int(inputs["a"]), int(inputs["b"])
        return {"gt": int(a > b), "eq": int(a == b), "lt": int(a < b)}

    demands = TaskDemands(knowledge=0.25, logic=0.35, difficulty=0.30)
    widths = {"a": width, "b": width}
    return BenchmarkTask(
        task_id=task_id,
        suite=suite,
        prompt=DesignPrompt(text=_wrap_style(text, style, interface), interface=interface),
        interface=interface,
        reference_source=reference,
        golden_factory=lambda fn=comparator_function: VectorFunctionGolden(fn),
        stimulus_factory=lambda seed_, widths=widths: random_vectors(widths, 16, seed_ + seed),
        demands=demands,
        prompt_style="spec_to_rtl" if style == "spec_to_rtl" else "completion",
        category="comparator",
    )


def make_instructional_logic_task(task_id: str, suite: str, seed: int, style: str = "human") -> BenchmarkTask:
    """A task whose prompt lists explicit if/else-if rules to follow literally."""
    rng = random.Random(seed)
    num_variables = rng.choice([2, 3])
    variables = ["a", "b", "c"][:num_variables]
    size = 1 << num_variables
    listed = sorted(rng.sample(range(size), rng.randint(2, size)))
    rows = {index: rng.randint(0, 1) for index in listed}

    rule_lines = []
    for index in listed:
        conditions = " && ".join(
            f"{name} == {(index >> (num_variables - 1 - position)) & 1}"
            for position, name in enumerate(variables)
        )
        rule_lines.append(f"if {conditions}; out = {rows[index]};")
    text = (
        "Implement the logic below exactly:\n"
        + "\n".join(rule_lines)
        + "\nFor every other input combination, out must be 0."
    )
    interface = ModuleInterface(
        name=_DEFAULT_MODULE,
        ports=[PortSpec(name, "input") for name in variables] + [PortSpec("out", "output")],
    )
    reference = truth_table_to_module(
        variables,
        {index: value for index, value in rows.items() if value},
        SynthesisRequest(module_name=_DEFAULT_MODULE, style="case"),
    )
    demands = TaskDemands(knowledge=0.25, logic=0.60, difficulty=0.40)
    widths = {name: 1 for name in variables}
    golden_rows = {index: value for index, value in rows.items()}
    return BenchmarkTask(
        task_id=task_id,
        suite=suite,
        prompt=DesignPrompt(text=_wrap_style(text, style, interface), interface=interface),
        interface=interface,
        reference_source=reference,
        golden_factory=lambda v=tuple(variables), r=dict(golden_rows): TableGolden(v, r),
        stimulus_factory=lambda seed_, widths=widths: exhaustive_vectors(widths, limit=16),
        demands=demands,
        prompt_style="spec_to_rtl" if style == "spec_to_rtl" else "completion",
        category="instructional_logic",
    )


# --------------------------------------------------------------------------- helpers
def _random_bits(seed: int, count: int) -> list[int]:
    rng = random.Random(seed)
    return [rng.randint(0, 1) for _ in range(count)]


def _sequence_detector_source(pattern: tuple[int, ...]) -> str:
    """Emit a conventional three-block FSM detecting ``pattern`` (overlapping)."""
    length = len(pattern)
    num_states = length + 1
    width = max(1, (num_states - 1).bit_length())

    def next_state_for(state: int, bit: int) -> int:
        # Longest suffix of (prefix + bit) that is also a prefix of the pattern.
        seen = list(pattern[:state]) + [bit]
        for candidate in range(min(length, len(seen)), -1, -1):
            if candidate == 0 or seen[-candidate:] == list(pattern[:candidate]):
                return candidate
        return 0

    lines = [
        f"module {_DEFAULT_MODULE} (",
        "    input clk,",
        "    input rst,",
        "    input din,",
        "    output reg detected",
        ");",
        f"    reg [{width - 1}:0] state, next_state;",
        "    always @(posedge clk or posedge rst) begin",
        "        if (rst)",
        f"            state <= {width}'d0;",
        "        else",
        "            state <= next_state;",
        "    end",
        "    always @(*) begin",
        "        case (state)",
    ]
    for state in range(num_states):
        zero_next = next_state_for(state if state < length else length, 0)
        one_next = next_state_for(state if state < length else length, 1)
        lines.append(
            f"            {width}'d{state}: next_state = din ? {width}'d{one_next} : {width}'d{zero_next};"
        )
    lines += [
        f"            default: next_state = {width}'d0;",
        "        endcase",
        "    end",
        "    always @(*) begin",
        f"        detected = (state == {width}'d{length});",
        "    end",
        "endmodule",
        "",
    ]
    return "\n".join(lines)
