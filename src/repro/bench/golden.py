"""Python golden (reference) models for benchmark tasks.

Every benchmark task carries an executable reference model implementing the
intended behaviour.  The testbench runner drives the generated Verilog with the
task's stimulus and compares its outputs against these models cycle by cycle —
the same role the reference designs/testbenches play in VerilogEval and RTLLM.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

from ..logic.bittable import BitTable
from ..logic.expr import BoolExpr


def _mask(width: int) -> int:
    return (1 << width) - 1


def _checked(name: str, value: object, width: int) -> int:
    """Validate that a stimulus value fits the declared input width.

    Golden models used to truncate out-of-range values with ``& _mask(width)``,
    which silently scored a DUT against a *different* stimulus than the one it
    was driven with.  Out-of-range inputs are a harness bug: fail loudly.
    """
    value = int(value)
    if not 0 <= value < (1 << width):
        raise ValueError(
            f"stimulus value {value} for input {name!r} does not fit in {width} bit(s)"
        )
    return value


# --------------------------------------------------------------------------- combinational
@dataclass
class ExpressionGolden:
    """Golden model for a single-output combinational boolean expression.

    The expression is compiled once into a packed truth table; every testbench
    cycle is then an index build plus a list lookup instead of a tree walk.
    """

    expression: BoolExpr
    output: str = "out"
    is_sequential: bool = False

    def __post_init__(self) -> None:
        self._table = BitTable.from_expr(self.expression)

    def reset(self) -> None:
        """Stateless."""

    def eval(self, inputs: Mapping[str, int]) -> dict[str, int]:
        for name in self._table.names:
            _checked(name, inputs[name], 1)
        return {self.output: self._table.evaluate(inputs)}

    def step(self, inputs: Mapping[str, int]) -> dict[str, int]:
        return self.eval(inputs)


@dataclass
class TableGolden:
    """Golden model for an explicit truth table (missing rows default to 0)."""

    inputs: Sequence[str]
    rows: Mapping[int, int]
    output: str = "out"
    is_sequential: bool = False

    def reset(self) -> None:
        """Stateless."""

    def eval(self, values: Mapping[str, int]) -> dict[str, int]:
        index = 0
        for name in self.inputs:
            index = (index << 1) | _checked(name, values[name], 1)
        return {self.output: self.rows.get(index, 0)}

    def step(self, values: Mapping[str, int]) -> dict[str, int]:
        return self.eval(values)


@dataclass
class VectorFunctionGolden:
    """Golden model wrapping an arbitrary combinational function of the inputs."""

    function: Callable[[Mapping[str, int]], dict[str, int]]
    is_sequential: bool = False

    def reset(self) -> None:
        """Stateless."""

    def eval(self, inputs: Mapping[str, int]) -> dict[str, int]:
        return self.function(inputs)

    def step(self, inputs: Mapping[str, int]) -> dict[str, int]:
        return self.function(inputs)


# --------------------------------------------------------------------------- sequential
@dataclass
class CounterGolden:
    """Up (or up/down) counter with optional enable, synchronous or asynchronous reset."""

    width: int = 4
    has_enable: bool = False
    up_down: bool = False
    modulo: int | None = None
    output: str = "count"
    reset_input: str = "rst"
    enable_input: str = "en"
    direction_input: str = "up_down"
    is_sequential: bool = True
    value: int = field(default=0, init=False)

    def reset(self) -> None:
        self.value = 0

    def step(self, inputs: Mapping[str, int]) -> dict[str, int]:
        if int(inputs.get(self.reset_input, 0)):
            self.value = 0
            return {self.output: self.value}
        enabled = True
        if self.has_enable:
            enabled = bool(int(inputs.get(self.enable_input, 0)))
        if enabled:
            step = 1
            if self.up_down and not int(inputs.get(self.direction_input, 1)):
                step = -1
            limit = self.modulo if self.modulo is not None else (1 << self.width)
            self.value = (self.value + step) % limit
        return {self.output: self.value & _mask(self.width)}

    def eval(self, inputs: Mapping[str, int]) -> dict[str, int]:
        return {self.output: self.value & _mask(self.width)}


@dataclass
class ShiftRegisterGolden:
    """Serial-in shift register (left or right shifting)."""

    width: int = 8
    shift_left: bool = True
    serial_input: str = "din"
    reset_input: str = "rst"
    output: str = "q"
    is_sequential: bool = True
    value: int = field(default=0, init=False)

    def reset(self) -> None:
        self.value = 0

    def step(self, inputs: Mapping[str, int]) -> dict[str, int]:
        if int(inputs.get(self.reset_input, 0)):
            self.value = 0
            return {self.output: self.value}
        bit = _checked(self.serial_input, inputs.get(self.serial_input, 0), 1)
        if self.shift_left:
            self.value = ((self.value << 1) | bit) & _mask(self.width)
        else:
            self.value = (self.value >> 1) | (bit << (self.width - 1))
        return {self.output: self.value}

    def eval(self, inputs: Mapping[str, int]) -> dict[str, int]:
        return {self.output: self.value}


@dataclass
class RegisterGolden:
    """D register with optional enable (active high or low)."""

    width: int = 8
    has_enable: bool = False
    enable_active_low: bool = False
    data_input: str = "d"
    enable_input: str = "en"
    reset_input: str = "rst"
    output: str = "q"
    is_sequential: bool = True
    value: int = field(default=0, init=False)

    def reset(self) -> None:
        self.value = 0

    def step(self, inputs: Mapping[str, int]) -> dict[str, int]:
        if int(inputs.get(self.reset_input, 0)):
            self.value = 0
            return {self.output: self.value}
        load = True
        if self.has_enable:
            enable = int(inputs.get(self.enable_input, 0))
            load = (enable == 0) if self.enable_active_low else (enable == 1)
        if load:
            self.value = _checked(self.data_input, inputs.get(self.data_input, 0), self.width)
        return {self.output: self.value}

    def eval(self, inputs: Mapping[str, int]) -> dict[str, int]:
        return {self.output: self.value}


@dataclass
class ClockDividerGolden:
    """Counter-based clock divider toggling the output every ``divisor`` cycles."""

    divisor: int = 4
    reset_input: str = "rst"
    output: str = "clk_out"
    is_sequential: bool = True
    counter: int = field(default=0, init=False)
    out: int = field(default=0, init=False)

    def reset(self) -> None:
        self.counter = 0
        self.out = 0

    def step(self, inputs: Mapping[str, int]) -> dict[str, int]:
        if int(inputs.get(self.reset_input, 0)):
            self.counter = 0
            self.out = 0
            return {self.output: self.out}
        if self.counter == self.divisor - 1:
            self.counter = 0
            self.out ^= 1
        else:
            self.counter += 1
        return {self.output: self.out}

    def eval(self, inputs: Mapping[str, int]) -> dict[str, int]:
        return {self.output: self.out}


@dataclass
class SequenceDetectorGolden:
    """Moore sequence detector over a serial input."""

    pattern: tuple[int, ...] = (1, 0, 1)
    overlapping: bool = True
    serial_input: str = "din"
    reset_input: str = "rst"
    output: str = "detected"
    is_sequential: bool = True
    history: list[int] = field(default_factory=list, init=False)

    def reset(self) -> None:
        self.history = []

    def step(self, inputs: Mapping[str, int]) -> dict[str, int]:
        if int(inputs.get(self.reset_input, 0)):
            self.history = []
            return {self.output: 0}
        self.history.append(_checked(self.serial_input, inputs.get(self.serial_input, 0), 1))
        window = self.history[-len(self.pattern):]
        detected = 1 if tuple(window) == self.pattern else 0
        if detected and not self.overlapping:
            self.history = []
        return {self.output: detected}

    def eval(self, inputs: Mapping[str, int]) -> dict[str, int]:
        window = self.history[-len(self.pattern):]
        return {self.output: 1 if tuple(window) == self.pattern else 0}


@dataclass
class EdgeDetectorGolden:
    """Rising-edge detector: output pulses when the input goes 0 → 1."""

    data_input: str = "din"
    reset_input: str = "rst"
    output: str = "pulse"
    is_sequential: bool = True
    previous: int = field(default=0, init=False)
    out: int = field(default=0, init=False)

    def reset(self) -> None:
        self.previous = 0
        self.out = 0

    def step(self, inputs: Mapping[str, int]) -> dict[str, int]:
        if int(inputs.get(self.reset_input, 0)):
            self.previous = 0
            self.out = 0
            return {self.output: self.out}
        current = _checked(self.data_input, inputs.get(self.data_input, 0), 1)
        self.out = 1 if (current == 1 and self.previous == 0) else 0
        self.previous = current
        return {self.output: self.out}

    def eval(self, inputs: Mapping[str, int]) -> dict[str, int]:
        return {self.output: self.out}


@dataclass
class InvertedInputsGolden:
    """Wrapper inverting selected 1-bit inputs before delegating to another model.

    Used for active-low control signals (e.g. ``rst_n``): the inner model keeps
    active-high semantics while the DUT-facing stimulus uses the active-low name.
    """

    inner: object
    inverted_signals: tuple[str, ...]

    @property
    def is_sequential(self) -> bool:
        return bool(getattr(self.inner, "is_sequential", False))

    def _transform(self, inputs: Mapping[str, int]) -> dict[str, int]:
        transformed = dict(inputs)
        for name in self.inverted_signals:
            if name in transformed:
                transformed[name] = 0 if int(transformed[name]) else 1
        return transformed

    def reset(self) -> None:
        self.inner.reset()

    def eval(self, inputs: Mapping[str, int]) -> dict[str, int]:
        return self.inner.eval(self._transform(inputs))

    def step(self, inputs: Mapping[str, int]) -> dict[str, int]:
        return self.inner.step(self._transform(inputs))


# --------------------------------------------------------------------------- Verilog-backed golden
@dataclass
class VerilogGolden:
    """Golden model backed by simulating a reference Verilog design.

    Lets a task be scored against its golden *Verilog* (``reference_source``)
    when no hand-written Python model exists: :meth:`eval` drives a scalar
    :class:`~repro.verilog.simulator.ModuleSimulator`, :meth:`step` runs one
    clock cycle.  Outputs that settle to ``x``/``z`` are omitted from the
    expected dict (an undefined reference bit constrains nothing).
    """

    source: str
    module_name: str | None = None
    clock: str = "clk"
    outputs: tuple[str, ...] | None = None

    def __post_init__(self) -> None:
        from ..verilog.design import compile_design
        from ..verilog.simulator import ModuleSimulator

        # Compile once through the design database; every reset() then clones
        # the cached elaboration template instead of re-running the front end.
        self._compiled = compile_design(self.source, self.module_name)
        self._simulator = ModuleSimulator(self._compiled)
        self.is_sequential = self._compiled.has_sequential_processes
        self._tables: dict[str, list[BitTable]] | None = None
        self._table_ports: tuple[tuple[str, int], ...] = ()
        self._pending_inputs: dict[str, int] | None = None
        self._equiv_session = None
        if not self.is_sequential:
            self._build_tables()

    def _build_tables(self) -> None:
        """Small pure-combinational references collapse to BitTable lookups.

        The exhaustive export only succeeds when every output is fully defined
        over the whole input space, so a table hit can never disagree with the
        simulator (which stays as the fallback for partial/oversized inputs).
        """
        from ..verilog.codegen import export_bittables

        tables = export_bittables(self._compiled)
        if tables is None:
            return
        names = (
            self.outputs
            if self.outputs is not None
            else tuple(self._simulator.output_names())
        )
        if any(name not in tables for name in names):
            return
        self._tables = {name: tables[name] for name in names}
        self._table_ports = tuple(
            (port.name, port.width) for port in self._compiled.template.input_ports()
        )

    def reset(self) -> None:
        from ..verilog.simulator import ModuleSimulator

        self._simulator = ModuleSimulator(self._compiled)
        self._pending_inputs = None

    def _table_eval(self, inputs: Mapping[str, int]) -> dict[str, int] | None:
        """Minterm lookup when the stimulus covers exactly the input ports."""
        if self._tables is None or set(inputs) != {name for name, _ in self._table_ports}:
            return None
        index = 0
        for name, width in self._table_ports:
            value = int(inputs[name])
            if not 0 <= value < (1 << width):
                return None  # out of range: let the simulator path raise
            index = (index << width) | value
        self._pending_inputs = {name: int(inputs[name]) for name, _ in self._table_ports}
        return {
            name: sum(((table.bits >> index) & 1) << bit for bit, table in enumerate(columns))
            for name, columns in self._tables.items()
        }

    def _observed(self) -> dict[str, int]:
        names = self.outputs if self.outputs is not None else self._simulator.output_names()
        observed: dict[str, int] = {}
        for name in names:
            value = self._simulator.get(name)
            if not value.has_unknown:
                observed[name] = value.to_int()
        return observed

    def _sync_pending(self) -> None:
        # A table hit skips the simulator entirely; replay the last looked-up
        # assignment before mixing in a simulator-path call so both paths see
        # the same signal history.
        if self._pending_inputs is not None:
            pending, self._pending_inputs = self._pending_inputs, None
            self._simulator.apply_inputs(pending)

    def eval(self, inputs: Mapping[str, int]) -> dict[str, int]:
        looked_up = self._table_eval(inputs)
        if looked_up is not None:
            return looked_up
        self._sync_pending()
        self._simulator.apply_inputs(dict(inputs))
        return self._observed()

    def step(self, inputs: Mapping[str, int]) -> dict[str, int]:
        self._sync_pending()
        self._simulator.clock_cycle(self.clock, dict(inputs))
        return self._observed()

    def equivalence_session(self):
        """The lazily built incremental prover for this (combinational) reference.

        One :class:`repro.formal.EquivalenceSession` per golden instance: the
        reference cone is encoded once and every candidate of the sweep is
        proven on the same solver.  Raises ``FormalEncodingError`` when the
        reference falls outside the provable subset (same contract as the
        one-shot prover).
        """
        from ..formal import EquivalenceSession

        if self._equiv_session is None:
            self._equiv_session = EquivalenceSession(
                self.source,
                outputs=list(self.outputs) if self.outputs is not None else None,
                reference_module_name=self.module_name,
            )
        return self._equiv_session

    def prove_equivalent(
        self,
        dut_source: str,
        dut_module_name: str | None = None,
        sequential_steps: int | None = None,
        reset: str | None = None,
        reset_active_low: bool = False,
        conflict_limit: int | None = None,
        incremental: bool = True,
        induction_depth: int | None = None,
    ):
        """SAT-prove a DUT equivalent to this golden reference design.

        Combinational references get a complete proof — incremental by default,
        on this instance's persistent :meth:`equivalence_session`.  Sequential
        references need ``sequential_steps`` (bounded equivalence from reset)
        or ``induction_depth`` (unbounded proof by k-induction; give both and
        an inconclusive induction falls back to the bounded proof).  SAT
        counterexamples are replayed on the simulators before being returned
        (see :func:`formal_equivalence_check`).
        """
        if (
            sequential_steps is None
            and induction_depth is None
            and self.is_sequential
        ):
            raise ValueError(
                "sequential reference: pass sequential_steps for a bounded proof"
            )
        session = None
        if incremental and not self.is_sequential:
            session = self.equivalence_session()
        return formal_equivalence_check(
            dut_source,
            self.source,
            outputs=list(self.outputs) if self.outputs is not None else None,
            module_name=dut_module_name,
            reference_module_name=self.module_name,
            sequential_steps=sequential_steps,
            clock=self.clock,
            reset=reset,
            reset_active_low=reset_active_low,
            conflict_limit=conflict_limit,
            session=session,
            induction_depth=induction_depth if self.is_sequential else None,
        )


class GoldenCache:
    """Per-task cache of golden-model instances.

    Golden models are contractually stateless between runs: the testbench
    runner calls ``reset()`` before driving stimulus, and every model in this
    module fully re-initialises there (for :class:`VerilogGolden` the reset is
    now a cache-hit template clone).  One instance per task can therefore be
    reused across all candidates of an evaluation sweep instead of being
    rebuilt per functional check.
    """

    def __init__(self) -> None:
        self._models: dict[str, object] = {}

    def get(self, task) -> object:
        """The cached golden model for ``task`` (built on first use, then reset)."""
        return self.get_by_factory(task.task_id, task.golden)

    def get_by_factory(self, task_id: str, factory) -> object:
        """Cache entry point for evaluation jobs that carry the factory directly."""
        model = self._models.get(task_id)
        if model is None:
            model = factory()
            self._models[task_id] = model
        model.reset()
        return model

    def clear(self) -> None:
        self._models.clear()

    def __len__(self) -> int:
        return len(self._models)


@dataclass
class LaneMismatch:
    """Structured counterexample for one mismatching stimulus lane.

    Attributes:
        lane: index of the stimulus vector in the sweep.
        inputs: the full input assignment driven on that lane.
        expected: reference value per mismatching output (defined outputs only).
        actual: DUT value per mismatching output — an ``int`` when defined, the
            Verilog literal string (e.g. ``"4'bxx10"``) when the DUT output has
            ``x``/``z`` bits, absent when the output is missing entirely.
        missing_outputs: checked outputs the DUT does not declare at all.
    """

    lane: int
    inputs: dict[str, int]
    expected: dict[str, int] = field(default_factory=dict)
    actual: dict[str, int | str] = field(default_factory=dict)
    missing_outputs: list[str] = field(default_factory=list)

    @property
    def has_missing_output(self) -> bool:
        return bool(self.missing_outputs)

    def __str__(self) -> str:
        parts = [
            f"{name} expected {self.expected[name]} got {self.actual.get(name, '<missing>')}"
            for name in self.expected
        ]
        for name in self.missing_outputs:
            parts.append(f"{name} missing from DUT")
        return f"lane {self.lane} (inputs {self.inputs}): " + "; ".join(parts)


def batch_equivalence_mismatches(
    dut_source: str,
    reference_source: str,
    input_vectors: Sequence[Mapping[str, int]],
    outputs: Sequence[str] | None = None,
    module_name: str | None = None,
    reference_module_name: str | None = None,
    backend: str = "auto",
) -> list[LaneMismatch]:
    """Batched combinational equivalence sweep with structured counterexamples.

    Both designs are elaborated once and evaluated over every stimulus vector in
    a single column-parallel pass.  Returns one :class:`LaneMismatch` per
    mismatching vector, ordered by lane (empty list == equivalent on the
    sweep).  An output that is ``x``/``z`` in the *reference* constrains
    nothing; an ``x``/``z`` DUT output mismatches any defined reference value.
    ``backend`` selects the :class:`BatchSimulator` execution engine for both
    sides (SAT counterexample replay rides the default ``auto``).
    """
    from ..verilog.simulator.batch import BatchSimulator

    if not input_vectors:
        return []
    names = set(input_vectors[0])
    if any(set(vector) != names for vector in input_vectors):
        raise ValueError("equivalence sweeps require a consistent input-name set")
    lanes = len(input_vectors)
    dut = BatchSimulator.from_source(
        dut_source, lanes=lanes, module_name=module_name, backend=backend
    )
    reference = BatchSimulator.from_source(
        reference_source, lanes=lanes, module_name=reference_module_name, backend=backend
    )
    inputs = {name: [vector[name] for vector in input_vectors] for name in names}
    dut.apply_inputs(inputs)
    reference.apply_inputs(dict(inputs))
    checked = list(outputs) if outputs is not None else reference.output_names()
    mismatches: dict[int, LaneMismatch] = {}

    def lane_record(lane: int) -> LaneMismatch:
        record = mismatches.get(lane)
        if record is None:
            record = LaneMismatch(lane=lane, inputs=dict(input_vectors[lane]))
            mismatches[lane] = record
        return record

    for name in checked:
        expected = reference.get(name)
        actual = dut.get(name) if name in dut.signals else None
        for lane in range(lanes):
            expected_lane = expected.lane(lane)
            if expected_lane.has_unknown:
                continue
            if actual is None:
                lane_record(lane).missing_outputs.append(name)
                continue
            actual_lane = actual.lane(lane)
            if actual_lane.has_unknown:
                record = lane_record(lane)
                record.expected[name] = expected_lane.to_int()
                record.actual[name] = actual_lane.to_verilog_literal()
            elif actual_lane.to_int() != (
                expected_lane.to_int() & _mask(actual_lane.width)
            ):
                record = lane_record(lane)
                record.expected[name] = expected_lane.to_int()
                record.actual[name] = actual_lane.to_int()
    return [mismatches[lane] for lane in sorted(mismatches)]


def batch_equivalence_check(
    dut_source: str,
    reference_source: str,
    input_vectors: Sequence[Mapping[str, int]],
    outputs: Sequence[str] | None = None,
    module_name: str | None = None,
    reference_module_name: str | None = None,
    backend: str = "auto",
) -> list[int]:
    """Index-list view of :func:`batch_equivalence_mismatches` (legacy API).

    Returns the indices of mismatching vectors (empty list == equivalent on
    the sweep); use :func:`batch_equivalence_mismatches` for the input
    assignment and expected/actual values behind each index.
    """
    return [
        mismatch.lane
        for mismatch in batch_equivalence_mismatches(
            dut_source,
            reference_source,
            input_vectors,
            outputs=outputs,
            module_name=module_name,
            reference_module_name=reference_module_name,
            backend=backend,
        )
    ]


# --------------------------------------------------------------------------- formal equivalence
def formal_equivalence_check(
    dut_source: str,
    reference_source: str,
    outputs: Sequence[str] | None = None,
    module_name: str | None = None,
    reference_module_name: str | None = None,
    sequential_steps: int | None = None,
    clock: str = "clk",
    reset: str | None = None,
    reset_active_low: bool = False,
    conflict_limit: int | None = None,
    replay: bool = True,
    session=None,
    induction_depth: int | None = None,
):
    """SAT equivalence proof of DUT vs reference, with simulation replay.

    The combinational form is a *complete* proof (every input assignment, not a
    sampled sweep); pass ``sequential_steps=k`` for k-step bounded sequential
    equivalence from the reset state, or ``induction_depth=k`` for an
    **unbounded** sequential proof by k-induction (falling back to the bounded
    proof when the induction is inconclusive and ``sequential_steps`` is also
    given).  ``session`` — a :class:`repro.formal.EquivalenceSession` built for
    this reference — makes the combinational proof incremental: same verdicts
    and counterexample contract, one persistent solver across a candidate
    sweep.  When the proof fails, the SAT counterexample is replayed on the
    simulation engines (:func:`batch_equivalence_mismatches` for combinational
    designs, the scalar simulator cycle-by-cycle for sequential ones) as a
    differential oracle: a counterexample that does not reproduce as a real
    mismatch raises ``FormalError`` instead of being reported.

    Returns:
        A :class:`repro.formal.EquivalenceResult`.

    Raises:
        repro.formal.FormalEncodingError: when a design falls outside the
            provable subset — callers should fall back to simulation sweeps.
            (:class:`repro.formal.InductionInconclusive` is a subtype raised
            when only ``induction_depth`` was given and the inductive step
            failed at that depth.)
    """
    from ..formal import (
        FormalError,
        InductionInconclusive,
        prove_combinational_equivalence,
        prove_sequential_by_induction,
        prove_sequential_equivalence,
    )

    sequential = sequential_steps is not None or induction_depth is not None
    if induction_depth is not None:
        try:
            result = prove_sequential_by_induction(
                dut_source,
                reference_source,
                depth=induction_depth,
                clock=clock,
                reset=reset,
                reset_active_low=reset_active_low,
                outputs=outputs,
                module_name=module_name,
                reference_module_name=reference_module_name,
                conflict_limit=conflict_limit,
            )
        except InductionInconclusive:
            if sequential_steps is None:
                raise
            result = prove_sequential_equivalence(
                dut_source,
                reference_source,
                steps=sequential_steps,
                clock=clock,
                reset=reset,
                reset_active_low=reset_active_low,
                outputs=outputs,
                module_name=module_name,
                reference_module_name=reference_module_name,
                conflict_limit=conflict_limit,
            )
    elif sequential_steps is None:
        if session is not None:
            result = session.prove(
                dut_source, module_name, conflict_limit=conflict_limit
            )
        else:
            result = prove_combinational_equivalence(
                dut_source,
                reference_source,
                outputs=outputs,
                module_name=module_name,
                reference_module_name=reference_module_name,
                conflict_limit=conflict_limit,
            )
    else:
        result = prove_sequential_equivalence(
            dut_source,
            reference_source,
            steps=sequential_steps,
            clock=clock,
            reset=reset,
            reset_active_low=reset_active_low,
            outputs=outputs,
            module_name=module_name,
            reference_module_name=reference_module_name,
            conflict_limit=conflict_limit,
        )
    counterexample = result.counterexample
    if not replay or result.equivalent or counterexample is None:
        return result
    if counterexample.missing_outputs:
        return result  # nothing to replay: the DUT lacks the output entirely
    if not sequential:
        replayed = batch_equivalence_mismatches(
            dut_source,
            reference_source,
            [counterexample.inputs],
            outputs=result.checked_outputs,
            module_name=module_name,
            reference_module_name=reference_module_name,
        )
        if not replayed:
            raise FormalError(
                "SAT counterexample did not reproduce on the batched simulator: "
                + counterexample.describe()
            )
    else:
        if not _replay_sequential_counterexample(
            dut_source,
            reference_source,
            counterexample.steps,
            result.checked_outputs,
            clock=clock,
            reset=reset,
            reset_active_low=reset_active_low,
            module_name=module_name,
            reference_module_name=reference_module_name,
        ):
            raise FormalError(
                "SAT counterexample did not reproduce on the scalar simulator: "
                + counterexample.describe()
            )
    return result


def _replay_sequential_counterexample(
    dut_source: str,
    reference_source: str,
    steps: Sequence[Mapping[str, int]],
    checked_outputs: Sequence[str],
    clock: str,
    reset: str | None,
    reset_active_low: bool,
    module_name: str | None,
    reference_module_name: str | None,
) -> bool:
    """Drive both designs cycle-by-cycle; ``True`` iff some output mismatches."""
    from ..formal.cone import apply_reset_pulse
    from ..verilog.simulator import ModuleSimulator

    def prepared(source: str, name: str | None) -> ModuleSimulator:
        # The same pulse the sequential unroller used to compute the initial
        # state of the proof, so the replay starts from the proven state.
        simulator = ModuleSimulator.from_source(source, name)
        apply_reset_pulse(
            simulator, clock=clock, reset=reset, reset_active_low=reset_active_low
        )
        return simulator

    dut = prepared(dut_source, module_name)
    reference = prepared(reference_source, reference_module_name)
    for step_inputs in steps:
        dut.clock_cycle(clock, dict(step_inputs))
        reference.clock_cycle(clock, dict(step_inputs))
        for name in checked_outputs:
            expected = reference.get(name)
            if expected.has_unknown:
                continue
            if name not in dut.signals:
                return True
            actual = dut.get(name)
            if actual.has_unknown or actual.to_int() != (
                expected.to_int() & _mask(actual.width)
            ):
                return True
    return False


# --------------------------------------------------------------------------- stimulus helpers
def random_vectors(
    input_widths: Mapping[str, int], count: int, seed: int
) -> list[dict[str, int]]:
    """Generate ``count`` random input vectors over the given input widths."""
    import random as _random

    rng = _random.Random(seed)
    vectors: list[dict[str, int]] = []
    for _ in range(count):
        vectors.append(
            {name: rng.randrange(1 << width) for name, width in input_widths.items()}
        )
    return vectors


def exhaustive_vectors(input_widths: Mapping[str, int], limit: int = 256) -> list[dict[str, int]]:
    """Enumerate every input combination (bounded by ``limit``)."""
    import itertools

    names = list(input_widths)
    sizes = [1 << input_widths[name] for name in names]
    total = 1
    for size in sizes:
        total *= size
    if total > limit:
        return random_vectors(input_widths, limit, seed=0)
    vectors: list[dict[str, int]] = []
    for values in itertools.product(*[range(size) for size in sizes]):
        vectors.append(dict(zip(names, values)))
    return vectors
