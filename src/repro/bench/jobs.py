"""Evaluation jobs: memoisable, parallelisable functional checks.

The benchmark evaluator decomposes a suite evaluation into *check requests* —
one per unique ``(candidate design, stimulus, scoring mode)`` triple.  Each
request is:

* **content-addressed** by a :class:`ResultKey` (candidate-code hash ×
  stimulus/task hash × mode), so identical candidates sampled at different
  temperatures, runs, or pipelines are scored exactly once and every repeat is
  a dict lookup in the evaluator's memo;
* **self-contained** (code, golden factory, stimulus, reset spec, scoring
  flags), so it can be executed in the parent process or shipped to a worker
  process unchanged.

:func:`run_checks` executes a batch of requests.  With ``max_workers > 1`` it
uses a process pool for the requests whose payloads pickle (golden factories
are often closures, which do not — those stay in the parent), and falls back
to fully serial execution if the pool cannot be used at all.  Results are
keyed, so execution order never affects scoring.
"""

from __future__ import annotations

import hashlib
import pickle
from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

from ..verilog.simulator.testbench import (
    BatchTestbenchRunner,
    ResetSpec,
    TestbenchResult,
    TestbenchRunner,
)
from .golden import GoldenCache


# --------------------------------------------------------------------------- keys
@dataclass(frozen=True)
class ResultKey:
    """Memoisation address of one functional-check verdict."""

    design_key: str
    stimulus_key: str
    mode: str


def design_key(code: str, module_name: str | None = None) -> str:
    """Content hash of a candidate design (code + module selection)."""
    payload = f"{module_name!r}|{code}"
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def stimulus_key(
    task_id: str,
    stimulus: Sequence[Mapping[str, int]],
    check_outputs: Sequence[str] | None,
    clock: str,
    reset: ResetSpec | None,
    reference_source: str = "",
    salt: str = "",
) -> str:
    """Hash of everything on the *checking* side of a verdict.

    ``task_id`` + ``reference_source`` pin the golden model: ids alone can
    collide across differently-seeded suite builds, but every task's reference
    design is validated against its golden, so the reference text is a
    content-addressed fingerprint of the expected behaviour.  The
    stimulus/outputs/clock/reset pin the testbench.  ``salt`` lets a caller
    deliberately split the memo (e.g. per temperature when memoisation is
    disabled for differential runs).
    """
    reset_repr = (
        (reset.signal, reset.active_low, reset.synchronous, reset.cycles)
        if reset is not None
        else None
    )
    payload = repr(
        (
            task_id,
            hashlib.sha256(reference_source.encode("utf-8")).hexdigest(),
            [tuple(sorted(vector.items())) for vector in stimulus],
            tuple(check_outputs) if check_outputs is not None else None,
            clock,
            reset_repr,
            salt,
        )
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def mode_key(
    mode: str,
    use_batch: bool,
    differential: bool,
    formal_conflict_limit: int | None,
) -> str:
    """Scoring-mode component of a :class:`ResultKey`."""
    if mode == "formal":
        return f"formal:{formal_conflict_limit}|batch={use_batch}|diff={differential}"
    return f"simulation|batch={use_batch}|diff={differential}"


# --------------------------------------------------------------------------- requests
@dataclass
class CheckRequest:
    """One self-contained functional check of a candidate against its task."""

    key: ResultKey
    code: str
    task_id: str
    golden_factory: Callable[[], object]
    stimulus: list[dict[str, int]] = field(default_factory=list)
    reference_source: str = ""
    check_outputs: list[str] | None = None
    clock: str = "clk"
    reset: ResetSpec | None = None
    mode: str = "simulation"
    use_batch: bool = True
    differential: bool = False
    formal_conflict_limit: int | None = 50_000
    #: Optional :class:`~repro.verilog.design.DesignDatabase` for the runners
    #: (None → process-wide default).  A database does not pickle, so setting
    #: one pins the request to in-parent execution — exactly where the
    #: database lives.
    database: object | None = None


# --------------------------------------------------------------------------- outcomes
@dataclass
class CheckOutcome:
    """Persisted verdict of one generated sample (one work unit of a run).

    This is the journal-level record of the resumable run engine: everything
    the streaming aggregators need to rebuild a
    :class:`~repro.bench.evaluator.TaskResult` bit-for-bit — the syntax verdict
    (with the same one-error summary string the evaluator keeps), the
    functional verdict and its ``failure_summary`` — plus the candidate's
    content address for cross-run dedup and audit.
    """

    sample_index: int
    temperature: float
    syntax_ok: bool
    syntax_error: str = ""
    functional_passed: bool = False
    failure_summary: str = ""
    total_checks: int = 0
    design_key: str = ""

    def to_dict(self) -> dict:
        return {
            "sample_index": self.sample_index,
            "temperature": self.temperature,
            "syntax_ok": self.syntax_ok,
            "syntax_error": self.syntax_error,
            "functional_passed": self.functional_passed,
            "failure_summary": self.failure_summary,
            "total_checks": self.total_checks,
            "design_key": self.design_key,
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "CheckOutcome":
        return cls(
            sample_index=int(payload["sample_index"]),
            temperature=float(payload["temperature"]),
            syntax_ok=bool(payload["syntax_ok"]),
            syntax_error=str(payload.get("syntax_error", "")),
            functional_passed=bool(payload.get("functional_passed", False)),
            failure_summary=str(payload.get("failure_summary", "")),
            total_checks=int(payload.get("total_checks", 0)),
            design_key=str(payload.get("design_key", "")),
        )


#: Per-process golden cache for check execution (each pool worker process gets
#: its own copy via fork/spawn, so models never cross process boundaries).
_worker_goldens = GoldenCache()


def execute_check(request: CheckRequest) -> tuple[ResultKey, TestbenchResult]:
    """Execute one check request; safe to run in a worker process.

    Mirrors the scoring semantics the evaluator has always had: formal mode
    attempts a complete SAT equivalence proof first and transparently falls
    back to the stimulus sweep; simulation mode runs the (batched, where
    combinational) testbench against the task's golden model.
    """
    # The cache id includes the reference-source hash: task ids repeat across
    # differently-seeded suite builds, the reference text does not.
    golden_id = f"{request.task_id}:{design_key(request.reference_source)}"
    golden = _worker_goldens.get_by_factory(golden_id, request.golden_factory)
    if request.mode == "formal":
        formal = _formal_check(request, golden)
        if formal is not None:
            return request.key, formal
    if request.use_batch:
        runner: TestbenchRunner = BatchTestbenchRunner(
            clock=request.clock,
            reset=request.reset,
            differential=request.differential,
            database=request.database,
        )
    else:
        runner = TestbenchRunner(
            clock=request.clock, reset=request.reset, database=request.database
        )
    result = runner.run(
        request.code, golden, request.stimulus, check_outputs=request.check_outputs
    )
    return request.key, result


def _formal_check(request: CheckRequest, golden) -> TestbenchResult | None:
    """Complete SAT equivalence proof against the task's reference design.

    Returns ``None`` (→ simulation fallback) for sequential tasks, designs
    outside the provable subset, or an exhausted SAT conflict budget.
    """
    from ..formal import ConflictLimitExceeded, FormalEncodingError, FormalError
    from ..verilog.errors import VerilogError
    from .golden import formal_equivalence_check

    if getattr(golden, "is_sequential", False):
        return None
    try:
        proof = formal_equivalence_check(
            request.code,
            request.reference_source,
            outputs=request.check_outputs,
            conflict_limit=request.formal_conflict_limit,
        )
    except (FormalEncodingError, ConflictLimitExceeded):
        return None  # outside the provable subset / budget: simulate instead
    except (FormalError, VerilogError) as exc:
        return TestbenchResult(passed=False, error=str(exc))
    if proof.equivalent:
        return TestbenchResult(passed=True, total_checks=len(proof.checked_outputs))
    counterexample = proof.counterexample
    mismatches = []
    if counterexample is not None:
        from ..verilog.simulator.testbench import Mismatch

        for name in counterexample.missing_outputs:
            mismatches.append(
                Mismatch(
                    step_index=0,
                    output=name,
                    expected=0,
                    actual="<missing>",
                    inputs=dict(counterexample.inputs),
                )
            )
        for step, name in counterexample.mismatching_outputs:
            mismatches.append(
                Mismatch(
                    step_index=step,
                    output=name,
                    expected=counterexample.reference_outputs[step][name],
                    actual=str(counterexample.dut_outputs[step][name]),
                    inputs=dict(counterexample.steps[step]),
                )
            )
    return TestbenchResult(
        passed=False,
        total_checks=len(proof.checked_outputs),
        mismatches=mismatches,
    )


# --------------------------------------------------------------------------- execution
def run_checks(
    requests: Sequence[CheckRequest], max_workers: int = 1
) -> dict[ResultKey, TestbenchResult]:
    """Execute every request once and return verdicts keyed by :class:`ResultKey`.

    ``max_workers > 1`` dispatches picklable requests to a process pool;
    requests whose golden factories are closures (common in the bench
    families) and any pool-level failure fall back to serial execution in the
    parent, so the function always returns complete results.
    """
    results: dict[ResultKey, TestbenchResult] = {}
    unique: dict[ResultKey, CheckRequest] = {}
    for request in requests:
        unique.setdefault(request.key, request)
    pending = list(unique.values())

    if max_workers > 1 and len(pending) > 1:
        parallel: list[CheckRequest] = []
        serial: list[CheckRequest] = []
        for request in pending:
            try:
                pickle.dumps(request)
                parallel.append(request)
            except Exception:
                serial.append(request)
        if len(parallel) > 1:
            try:
                from concurrent.futures import ProcessPoolExecutor

                with ProcessPoolExecutor(
                    max_workers=min(max_workers, len(parallel))
                ) as pool:
                    for key, result in pool.map(execute_check, parallel):
                        results[key] = result
            except Exception:
                # Pool unavailable (restricted OS, broken worker, unpicklable
                # verdict): whatever is missing re-runs serially below.
                pass
        pending = [request for request in pending if request.key not in results]

    for request in pending:
        key, result = execute_check(request)
        results[key] = result
    return results
