"""Evaluation jobs: memoisable, parallelisable functional checks.

The benchmark evaluator decomposes a suite evaluation into *check requests* —
one per unique ``(candidate design, stimulus, scoring mode)`` triple.  Each
request is:

* **content-addressed** by a :class:`ResultKey` (candidate-code hash ×
  stimulus/task hash × mode), so identical candidates sampled at different
  temperatures, runs, or pipelines are scored exactly once and every repeat is
  a dict lookup in the evaluator's memo;
* **self-contained** (code, golden factory, stimulus, reset spec, scoring
  flags), so it can be executed in the parent process or shipped to a worker
  process unchanged.

:func:`run_checks` executes a batch of requests *fault-tolerantly*.  With
``max_workers > 1`` it uses a process pool for the requests whose payloads
pickle (golden factories are often closures, which do not — those stay in the
parent, and the fallback is recorded as a structured warning), and it
survives the execution layer misbehaving:

* **deadlines** — every attempt runs under a cooperative wall-clock budget
  (:mod:`repro.deadline`; the simulators' settle loops and the CDCL search
  tick it), and pool futures additionally get a *hard* per-future deadline:
  a worker that hangs non-cooperatively is terminated and the pool rebuilt;
* **retries** — a crashed worker (``BrokenProcessPool``), a timeout or an
  in-check exception requeues the request with bounded exponential backoff
  and deterministic jitter, degrading gracefully along the way
  (``formal`` → ``simulation`` on a deadline, batched → scalar simulation on
  an execution failure) with every degradation step recorded;
* **quarantine** — a request that fails :attr:`ExecutionPolicy.max_attempts`
  attempts is marked :attr:`CheckExecution.quarantined` instead of sinking
  the batch, so callers (the run engine) can journal it and resume past it.

The result is an :class:`ExecutionReport`: verdicts keyed by
:class:`ResultKey` plus per-key execution metadata and run-level warnings, so
execution order never affects scoring and degraded runs stay visible.
"""

from __future__ import annotations

import hashlib
import math
import pickle
import time
from dataclasses import dataclass, field, replace
from typing import Callable, Mapping, Sequence

from ..deadline import CheckTimeout, deadline_scope
from ..verilog.simulator.testbench import (
    BatchTestbenchRunner,
    ResetSpec,
    TestbenchResult,
    TestbenchRunner,
)
from .golden import GoldenCache


# --------------------------------------------------------------------------- keys
@dataclass(frozen=True)
class ResultKey:
    """Memoisation address of one functional-check verdict."""

    design_key: str
    stimulus_key: str
    mode: str


def design_key(code: str, module_name: str | None = None) -> str:
    """Content hash of a candidate design (code + module selection)."""
    payload = f"{module_name!r}|{code}"
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def stimulus_key(
    task_id: str,
    stimulus: Sequence[Mapping[str, int]],
    check_outputs: Sequence[str] | None,
    clock: str,
    reset: ResetSpec | None,
    reference_source: str = "",
    salt: str = "",
) -> str:
    """Hash of everything on the *checking* side of a verdict.

    ``task_id`` + ``reference_source`` pin the golden model: ids alone can
    collide across differently-seeded suite builds, but every task's reference
    design is validated against its golden, so the reference text is a
    content-addressed fingerprint of the expected behaviour.  The
    stimulus/outputs/clock/reset pin the testbench.  ``salt`` lets a caller
    deliberately split the memo (e.g. per temperature when memoisation is
    disabled for differential runs).
    """
    reset_repr = (
        (reset.signal, reset.active_low, reset.synchronous, reset.cycles)
        if reset is not None
        else None
    )
    payload = repr(
        (
            task_id,
            hashlib.sha256(reference_source.encode("utf-8")).hexdigest(),
            [tuple(sorted(vector.items())) for vector in stimulus],
            tuple(check_outputs) if check_outputs is not None else None,
            clock,
            reset_repr,
            salt,
        )
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def mode_key(
    mode: str,
    use_batch: bool,
    differential: bool,
    formal_conflict_limit: int | None,
    backend: str = "auto",
    formal_incremental: bool = True,
    induction_depth: int = 4,
) -> str:
    """Scoring-mode component of a :class:`ResultKey`.

    A pinned simulator backend is part of the key (a verdict scored under
    ``interpret`` must not satisfy a ``codegen`` request); the default ``auto``
    is left out so existing durable result stores keep their keys.  The same
    rule covers the formal-engine knobs: the incremental session is verdict-
    identical to the one-shot prover so ``formal_incremental`` only enters the
    key when disabled, and ``induction_depth`` only at non-default values
    (k-induction at the default depth replaced a simulation fallback, which
    never produced a *formal-mode pass* for those tasks before — stored passes
    stay valid).
    """
    engine = "" if backend == "auto" else f"|engine={backend}"
    if mode == "formal":
        incremental = "" if formal_incremental else "|inc=False"
        induction = "" if induction_depth == 4 else f"|induction={induction_depth}"
        return (
            f"formal:{formal_conflict_limit}|batch={use_batch}"
            f"|diff={differential}{engine}{incremental}{induction}"
        )
    return f"simulation|batch={use_batch}|diff={differential}{engine}"


# --------------------------------------------------------------------------- requests
@dataclass
class CheckRequest:
    """One self-contained functional check of a candidate against its task."""

    key: ResultKey
    code: str
    task_id: str
    golden_factory: Callable[[], object]
    stimulus: list[dict[str, int]] = field(default_factory=list)
    reference_source: str = ""
    check_outputs: list[str] | None = None
    clock: str = "clk"
    reset: ResetSpec | None = None
    mode: str = "simulation"
    use_batch: bool = True
    differential: bool = False
    #: Execution engine for the batched runner: ``auto`` (generated code with
    #: interpreter fallback), ``codegen`` or ``interpret``.
    backend: str = "auto"
    formal_conflict_limit: int | None = 50_000
    #: Formal mode proves candidates on a per-worker persistent
    #: :class:`~repro.formal.incremental.EquivalenceSession` (one solver per
    #: reference design, shared across the sweep).  ``False`` restores the
    #: fresh-solver-per-candidate prover; verdicts are identical either way.
    formal_incremental: bool = True
    #: k-induction depth for sequential tasks under formal mode (unbounded
    #: proofs; inconclusive inductions fall back to simulation).  ``0``
    #: restores the old behaviour of simulating every sequential task.
    induction_depth: int = 4
    #: Optional :class:`~repro.verilog.design.DesignDatabase` for the runners
    #: (None → process-wide default).  A database does not pickle, so setting
    #: one pins the request to in-parent execution — exactly where the
    #: database lives.
    database: object | None = None
    #: Wall-clock budget for one execution attempt (None → no deadline, or
    #: the :class:`ExecutionPolicy` default when run through ``run_checks``).
    timeout_s: float | None = None
    #: 1-based attempt number, stamped by the executor on every (re)try.  It
    #: travels with the pickled request, so fault injection and logging stay
    #: deterministic across process boundaries.
    attempt: int = 1


# --------------------------------------------------------------------------- outcomes
@dataclass
class CheckOutcome:
    """Persisted verdict of one generated sample (one work unit of a run).

    This is the journal-level record of the resumable run engine: everything
    the streaming aggregators need to rebuild a
    :class:`~repro.bench.evaluator.TaskResult` bit-for-bit — the syntax verdict
    (with the same one-error summary string the evaluator keeps), the
    functional verdict and its ``failure_summary`` — plus the candidate's
    content address for cross-run dedup and audit.
    """

    sample_index: int
    temperature: float
    syntax_ok: bool
    syntax_error: str = ""
    functional_passed: bool = False
    failure_summary: str = ""
    total_checks: int = 0
    design_key: str = ""
    #: Execution attempts the verdict took (1 = clean first try).
    attempts: int = 1
    #: Degradation steps applied before the verdict settled, in order
    #: (e.g. ``["formal->simulation", "batch->scalar"]``).  Empty for a clean
    #: run — and bit-for-bit identical journal payloads with old records.
    degradation: list[str] = field(default_factory=list)
    #: Wall-clock seconds of the settling check attempt (0.0 when unmeasured,
    #: e.g. a syntax-failed sample or a pre-duration journal record).  The
    #: service's ``/metrics`` p50/p99 latency summaries aggregate this field
    #: straight from the journal.
    duration_s: float = 0.0
    #: SAT-search accounting when the verdict came from a formal proof
    #: (conflicts, decisions, propagations, learned clauses, fraig merges,
    #: proof method).  Empty — and absent from the journal payload — for
    #: simulation verdicts, so old journals replay bit-for-bit.
    proof_stats: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        payload = {
            "sample_index": self.sample_index,
            "temperature": self.temperature,
            "syntax_ok": self.syntax_ok,
            "syntax_error": self.syntax_error,
            "functional_passed": self.functional_passed,
            "failure_summary": self.failure_summary,
            "total_checks": self.total_checks,
            "design_key": self.design_key,
        }
        if self.attempts != 1:
            payload["attempts"] = self.attempts
        if self.degradation:
            payload["degradation"] = list(self.degradation)
        if self.duration_s:
            payload["duration_s"] = self.duration_s
        if self.proof_stats:
            payload["proof_stats"] = dict(self.proof_stats)
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping) -> "CheckOutcome":
        return cls(
            sample_index=int(payload["sample_index"]),
            temperature=float(payload["temperature"]),
            syntax_ok=bool(payload["syntax_ok"]),
            syntax_error=str(payload.get("syntax_error", "")),
            functional_passed=bool(payload.get("functional_passed", False)),
            failure_summary=str(payload.get("failure_summary", "")),
            total_checks=int(payload.get("total_checks", 0)),
            design_key=str(payload.get("design_key", "")),
            attempts=int(payload.get("attempts", 1)),
            degradation=[str(step) for step in payload.get("degradation", [])],
            duration_s=float(payload.get("duration_s", 0.0)),
            proof_stats=dict(payload.get("proof_stats", {}) or {}),
        )


#: Per-process golden cache for check execution (each pool worker process gets
#: its own copy via fork/spawn, so models never cross process boundaries).
_worker_goldens = GoldenCache()

#: Per-process incremental equivalence sessions, keyed by (reference design
#: key, checked-output tuple): every candidate of a sweep that lands on this
#: worker proves against the same persistent solver.  Like the golden cache,
#: sessions never cross process boundaries.
_worker_sessions: dict[tuple[str, tuple[str, ...] | None], object] = {}
#: Insertion-ordered eviction cap — a worker serving many distinct references
#: (e.g. a whole suite) keeps the most recent sessions, each of which owns a
#: solver with a growing clause database.
_WORKER_SESSION_CAP = 32


def _session_for(request: CheckRequest):
    """The worker's :class:`EquivalenceSession` for this request's reference.

    Raises ``FormalEncodingError`` when the reference is outside the provable
    subset (callers fall back to simulation, same as the one-shot prover).
    """
    from ..formal import EquivalenceSession

    key = (
        design_key(request.reference_source),
        tuple(request.check_outputs) if request.check_outputs is not None else None,
    )
    session = _worker_sessions.get(key)
    if session is None:
        session = EquivalenceSession(
            request.reference_source,
            outputs=request.check_outputs,
            conflict_limit=request.formal_conflict_limit,
            database=request.database,
        )
        while len(_worker_sessions) >= _WORKER_SESSION_CAP:
            _worker_sessions.pop(next(iter(_worker_sessions)))
        _worker_sessions[key] = session
    return session


def execute_check(request: CheckRequest) -> tuple[ResultKey, TestbenchResult]:
    """Execute one check request; safe to run in a worker process.

    Mirrors the scoring semantics the evaluator has always had: formal mode
    attempts a complete SAT equivalence proof first and transparently falls
    back to the stimulus sweep; simulation mode runs the (batched, where
    combinational) testbench against the task's golden model.

    The whole attempt runs under ``request.timeout_s`` (if set): the
    simulators' settle loops and the SAT search tick the deadline, so a
    runaway check raises :class:`~repro.deadline.CheckTimeout` here rather
    than stalling its process.
    """
    with deadline_scope(request.timeout_s):
        from ..runs.faults import maybe_inject

        maybe_inject(request.task_id, request.key.design_key, request.attempt)
        # The cache id includes the reference-source hash: task ids repeat
        # across differently-seeded suite builds, the reference text does not.
        golden_id = f"{request.task_id}:{design_key(request.reference_source)}"
        golden = _worker_goldens.get_by_factory(golden_id, request.golden_factory)
        if request.mode == "formal":
            formal = _formal_check(request, golden)
            if formal is not None:
                return request.key, formal
        if request.use_batch:
            runner: TestbenchRunner = BatchTestbenchRunner(
                clock=request.clock,
                reset=request.reset,
                differential=request.differential,
                database=request.database,
                backend=request.backend,
            )
        else:
            runner = TestbenchRunner(
                clock=request.clock, reset=request.reset, database=request.database
            )
        result = runner.run(
            request.code, golden, request.stimulus, check_outputs=request.check_outputs
        )
        return request.key, result


def timed_execute_check(
    request: CheckRequest,
) -> tuple[ResultKey, TestbenchResult, float]:
    """:func:`execute_check` plus the attempt's worker-side wall clock.

    The duration is measured where the check actually ran, so pool results
    report compute time rather than compute time plus queueing.
    """
    started = time.monotonic()
    key, result = execute_check(request)
    return key, result, time.monotonic() - started


def _proof_stats_dict(proof) -> dict:
    """Journal-ready SAT accounting for one :class:`EquivalenceResult`."""
    stats = proof.stats
    payload = {
        "method": proof.method,
        "conflicts": stats.conflicts,
        "decisions": stats.decisions,
        "propagations": stats.propagations,
        "learned_clauses": stats.learned_clauses,
    }
    if proof.fraig_merges:
        payload["fraig_merges"] = proof.fraig_merges
    if proof.sequential_steps:
        payload["sequential_steps"] = proof.sequential_steps
    return payload


def _formal_check(request: CheckRequest, golden) -> TestbenchResult | None:
    """Complete SAT equivalence proof against the task's reference design.

    Combinational tasks are proven on the worker's persistent
    :class:`EquivalenceSession` (unless ``request.formal_incremental`` is off);
    sequential tasks get an **unbounded** k-induction proof at
    ``request.induction_depth``.  Returns ``None`` (→ simulation fallback) for
    designs outside the provable subset, inconclusive inductions, or an
    exhausted SAT conflict budget.
    """
    from ..formal import ConflictLimitExceeded, FormalEncodingError, FormalError
    from ..verilog.errors import VerilogError
    from .golden import formal_equivalence_check

    sequential = bool(getattr(golden, "is_sequential", False))
    if sequential and request.induction_depth < 1:
        return None
    try:
        if sequential:
            reset = request.reset
            proof = formal_equivalence_check(
                request.code,
                request.reference_source,
                outputs=request.check_outputs,
                clock=request.clock,
                reset=reset.signal if reset is not None else None,
                reset_active_low=bool(reset.active_low) if reset is not None else False,
                conflict_limit=request.formal_conflict_limit,
                induction_depth=request.induction_depth,
            )
        else:
            session = _session_for(request) if request.formal_incremental else None
            proof = formal_equivalence_check(
                request.code,
                request.reference_source,
                outputs=request.check_outputs,
                conflict_limit=request.formal_conflict_limit,
                session=session,
            )
    except (FormalEncodingError, ConflictLimitExceeded):
        return None  # outside the provable subset / budget: simulate instead
    except (FormalError, VerilogError) as exc:
        return TestbenchResult(passed=False, error=str(exc))
    if proof.equivalent:
        return TestbenchResult(
            passed=True,
            total_checks=len(proof.checked_outputs),
            proof_stats=_proof_stats_dict(proof),
        )
    counterexample = proof.counterexample
    mismatches = []
    if counterexample is not None:
        from ..verilog.simulator.testbench import Mismatch

        for name in counterexample.missing_outputs:
            mismatches.append(
                Mismatch(
                    step_index=0,
                    output=name,
                    expected=0,
                    actual="<missing>",
                    inputs=dict(counterexample.inputs),
                )
            )
        for step, name in counterexample.mismatching_outputs:
            mismatches.append(
                Mismatch(
                    step_index=step,
                    output=name,
                    expected=counterexample.reference_outputs[step][name],
                    actual=str(counterexample.dut_outputs[step][name]),
                    inputs=dict(counterexample.steps[step]),
                )
            )
    return TestbenchResult(
        passed=False,
        total_checks=len(proof.checked_outputs),
        mismatches=mismatches,
        proof_stats=_proof_stats_dict(proof),
    )


# --------------------------------------------------------------------------- policy
@dataclass
class ExecutionPolicy:
    """Fault-tolerance knobs for one :func:`run_checks` batch."""

    #: Default per-attempt wall-clock budget for requests that do not carry
    #: their own ``timeout_s`` (None → no deadline).
    timeout_s: float | None = None
    #: Attempts per request before quarantine (1 = no retries).
    max_attempts: int = 3
    #: First-retry backoff; doubles per attempt, plus deterministic jitter.
    backoff_s: float = 0.05
    #: Ceiling on any single backoff delay.
    backoff_cap_s: float = 2.0
    #: Extra wall clock granted to a pool future past its cooperative budget
    #: before the parent declares the worker hung and recycles the pool.
    hard_grace_s: float = 1.0

    @classmethod
    def from_config(cls, config) -> "ExecutionPolicy":
        """Derive a policy from an :class:`~repro.bench.evaluator.EvaluationConfig`."""
        timeout = getattr(config, "check_timeout_s", None)
        return cls(
            timeout_s=float(timeout) if timeout is not None else None,
            max_attempts=int(getattr(config, "max_attempts", 3)),
            backoff_s=float(getattr(config, "retry_backoff_s", 0.05)),
            backoff_cap_s=float(getattr(config, "retry_backoff_cap_s", 2.0)),
        )


@dataclass
class CheckExecution:
    """One settled verdict plus how execution got there."""

    result: TestbenchResult
    attempts: int = 1
    degradation: tuple[str, ...] = ()
    timed_out: bool = False
    #: True when the request burned every attempt: ``result`` is then a
    #: synthetic failure and the caller should journal the unit as poisoned
    #: rather than scored.
    quarantined: bool = False
    error: str = ""
    #: Wall-clock seconds each attempt took, in attempt order.  Worker-side
    #: where the attempt ran to completion, parent-side (submit→settle) for
    #: attempts that died in flight.
    attempt_durations: tuple[float, ...] = ()

    @property
    def duration_s(self) -> float:
        """Duration of the attempt that settled the verdict (0.0 if unknown)."""
        return self.attempt_durations[-1] if self.attempt_durations else 0.0

    @property
    def total_duration_s(self) -> float:
        """Wall clock spent across every attempt (excludes backoff waits)."""
        return sum(self.attempt_durations)


@dataclass
class ExecutionReport:
    """Everything :func:`run_checks` learned: verdicts, metadata, warnings."""

    executions: dict[ResultKey, CheckExecution] = field(default_factory=dict)
    warnings: list[dict] = field(default_factory=list)

    def results(self) -> dict[ResultKey, TestbenchResult]:
        """Verdicts keyed by :class:`ResultKey` (the pre-fault-tolerance API)."""
        return {key: execution.result for key, execution in self.executions.items()}

    def quarantined(self) -> dict[ResultKey, CheckExecution]:
        return {
            key: execution
            for key, execution in self.executions.items()
            if execution.quarantined
        }

    def warn(self, category: str, message: str, **detail) -> None:
        entry: dict = {"category": category, "message": message}
        if detail:
            entry["detail"] = detail
        self.warnings.append(entry)

    def latency_percentiles(
        self, quantiles: Sequence[float] = (0.5, 0.99)
    ) -> dict[float, float]:
        """Settling-attempt latency percentiles over non-quarantined verdicts.

        Nearest-rank on the sorted samples; empty when no execution carries a
        measured duration (e.g. a report rebuilt from pre-duration journals).
        """
        samples = sorted(
            execution.duration_s
            for execution in self.executions.values()
            if not execution.quarantined and execution.attempt_durations
        )
        if not samples:
            return {}
        return {q: percentile(samples, q) for q in quantiles}


def percentile(sorted_samples: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of ascending ``sorted_samples`` (0 < q <= 1)."""
    if not sorted_samples:
        raise ValueError("no samples")
    index = min(len(sorted_samples) - 1, max(0, math.ceil(q * len(sorted_samples)) - 1))
    return sorted_samples[index]


# --------------------------------------------------------------------------- scheduling
@dataclass(eq=False)
class _WorkItem:
    """Mutable retry state for one unique request (identity semantics)."""

    request: CheckRequest
    attempt: int = 1
    degradation: list[str] = field(default_factory=list)
    errors: list[str] = field(default_factory=list)
    #: Wall-clock seconds per attempt, in attempt order (see
    #: :attr:`CheckExecution.attempt_durations`).
    durations: list[float] = field(default_factory=list)
    #: Ever blew a *hard* (parent-enforced) deadline — i.e. hung a worker
    #: non-cooperatively.  Such an item must never run in the parent process.
    hard_timed_out: bool = False
    #: Implicated in a pool break; runs isolated (alone in flight) until it
    #: either settles or is quarantined, so the next break assigns exact blame.
    suspect: bool = False
    #: Monotonic timestamp before which the item may not be (re)submitted.
    not_before: float = 0.0


def _backoff_delay(policy: ExecutionPolicy, key: ResultKey, attempt: int) -> float:
    """Exponential backoff before ``attempt`` with deterministic jitter.

    The jitter derives from the result key and attempt number, so a rerun of
    the same failing batch backs off identically — chaos tests and bisections
    stay reproducible.
    """
    if policy.backoff_s <= 0:
        return 0.0
    base = policy.backoff_s * (2 ** max(0, attempt - 2))
    seed = f"{key.design_key}|{key.stimulus_key}|{key.mode}|{attempt}"
    digest = hashlib.sha256(seed.encode("utf-8")).digest()
    jitter = int.from_bytes(digest[:4], "big") / 2**32  # [0, 1)
    return min(policy.backoff_cap_s, base * (1.0 + jitter))


def _apply_degradation(item: _WorkItem, kind: str) -> None:
    """Degrade the retry so it avoids the machinery that just failed.

    A deadline blown in formal mode drops the proof attempt (the SAT search is
    the open-ended part); a deadline or in-check error in batched simulation
    drops to the scalar interpreter.  A worker *crash* does not degrade: the
    retry must reproduce the fault-free verdict bit-for-bit, and a crash says
    nothing about which execution path is at fault.
    """
    if kind == "crash":
        return
    request = item.request
    if kind == "timeout" and request.mode == "formal":
        item.request = replace(request, mode="simulation")
        item.degradation.append("formal->simulation")
        return
    if request.use_batch:
        item.request = replace(request, use_batch=False)
        item.degradation.append("batch->scalar")


def _register_failure(
    item: _WorkItem,
    policy: ExecutionPolicy,
    report: ExecutionReport,
    *,
    kind: str,
    error: str,
) -> bool:
    """Record a failed attempt; returns True when the item is now quarantined.

    When attempts remain the item is degraded (see :func:`_apply_degradation`)
    and gated behind its backoff delay; the caller requeues it.
    """
    item.errors.append(error)
    if item.attempt >= max(1, policy.max_attempts):
        result = TestbenchResult(
            passed=False,
            error=f"quarantined after {item.attempt} attempt(s): {error}",
        )
        report.executions[item.request.key] = CheckExecution(
            result=result,
            attempts=item.attempt,
            degradation=tuple(item.degradation),
            timed_out=kind == "timeout",
            quarantined=True,
            error=error,
            attempt_durations=tuple(item.durations),
        )
        return True
    item.attempt += 1
    _apply_degradation(item, kind)
    item.not_before = time.monotonic() + _backoff_delay(
        policy, item.request.key, item.attempt
    )
    return False


def _record_success(
    item: _WorkItem, report: ExecutionReport, key: ResultKey, result: TestbenchResult
) -> None:
    report.executions[key] = CheckExecution(
        result=result,
        attempts=item.attempt,
        degradation=tuple(item.degradation),
        attempt_durations=tuple(item.durations),
    )


def _quarantine_unrunnable(
    items: Sequence[_WorkItem], report: ExecutionReport
) -> list[_WorkItem]:
    """Split items for in-parent execution, quarantining the ones that hung.

    An item that ever blew a hard deadline hung a worker non-cooperatively; in
    the parent process the same hang would stall the whole run with nothing
    left to enforce the deadline, so it is quarantined instead of retried.
    """
    runnable: list[_WorkItem] = []
    for item in items:
        if not item.hard_timed_out:
            runnable.append(item)
            continue
        error = item.errors[-1] if item.errors else "worker unresponsive"
        result = TestbenchResult(
            passed=False,
            error=f"quarantined after {item.attempt} attempt(s): {error}",
        )
        report.executions[item.request.key] = CheckExecution(
            result=result,
            attempts=item.attempt,
            degradation=tuple(item.degradation),
            timed_out=True,
            quarantined=True,
            error=error,
            attempt_durations=tuple(item.durations),
        )
    return runnable


def _kill_pool(pool, report: ExecutionReport | None = None) -> None:
    """Terminate a pool's workers and discard it (hung workers never join).

    Worker termination reaches through the executor's private ``_processes``
    table (the stdlib offers no public kill-the-workers API).  If a future
    Python release removes it, the degradation is *loud*: a
    ``pool-terminate-degraded`` warning records that hung workers could only
    be abandoned (``shutdown(wait=False)``), not terminated.
    """
    processes = getattr(pool, "_processes", None)
    if processes is None and report is not None:
        report.warn(
            "pool-terminate-degraded",
            "ProcessPoolExecutor._processes is unavailable on this Python; "
            "hung workers are abandoned, not terminated",
        )
    for process in list((processes or {}).values()):
        try:
            process.terminate()
        except Exception:
            pass
    try:
        pool.shutdown(wait=False, cancel_futures=True)
    except Exception:
        pass


# --------------------------------------------------------------------------- execution
def _execute_serial(
    items: Sequence[_WorkItem], policy: ExecutionPolicy, report: ExecutionReport
) -> None:
    """Run items in the parent process with the same retry/quarantine rules."""
    for item in items:
        while True:
            item.request.attempt = item.attempt
            started = time.monotonic()
            try:
                key, result, duration = timed_execute_check(item.request)
            except CheckTimeout as exc:
                item.durations.append(time.monotonic() - started)
                if _register_failure(
                    item, policy, report, kind="timeout", error=str(exc)
                ):
                    break
            except Exception as exc:
                item.durations.append(time.monotonic() - started)
                if _register_failure(item, policy, report, kind="error", error=str(exc)):
                    break
            else:
                item.durations.append(duration)
                _record_success(item, report, key, result)
                break
            delay = item.not_before - time.monotonic()
            if delay > 0:
                time.sleep(delay)


def _execute_pool(
    items: list[_WorkItem],
    max_workers: int,
    policy: ExecutionPolicy,
    report: ExecutionReport,
) -> list[_WorkItem]:
    """Run items on a process pool, surviving crashes and hangs.

    Returns the items that should fall back to in-parent execution (pool
    never started, or was rebuilt so often it was abandoned).  Hung items are
    quarantined rather than returned — see :func:`_quarantine_unrunnable`.
    """
    from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
    from concurrent.futures.process import BrokenProcessPool

    from ..runs.faults import mark_pool_worker

    workers = min(max_workers, len(items))

    try:
        pool = ProcessPoolExecutor(max_workers=workers, initializer=mark_pool_worker)
    except Exception as exc:
        report.warn("pool-unavailable", f"process pool could not start: {exc}")
        return _quarantine_unrunnable(items, report)

    queue: list[_WorkItem] = list(items)
    in_flight: dict = {}  # future -> _WorkItem
    hard_deadline: dict = {}  # future -> float | None
    submitted: dict = {}  # future -> monotonic submit time (failure durations)
    rebuilds = 0
    rebuild_cap = max(1, policy.max_attempts) * len(items)

    def submit_ready() -> None:
        nonlocal queue
        now = time.monotonic()
        # Suspects run isolated (alone in flight) so the next pool break
        # implicates exactly one item; drain non-suspects first.
        queue.sort(key=lambda entry: entry.suspect)
        pending = queue
        queue = []
        held: list[_WorkItem] = []
        for index, item in enumerate(pending):
            if len(in_flight) >= workers:
                # Never submit more futures than workers: the hard deadline
                # starts ticking at submission, so a future queued behind a
                # busy worker would burn its budget before it ever ran and be
                # falsely swept as a hung worker.  Held items resubmit as
                # slots free up.
                held.extend(pending[index:])
                break
            suspect_in_flight = any(
                entry.suspect for entry in in_flight.values()
            )
            if (
                item.not_before > now
                or suspect_in_flight
                or (item.suspect and in_flight)
            ):
                held.append(item)
                continue
            item.request.attempt = item.attempt
            try:
                future = pool.submit(timed_execute_check, item.request)
            except Exception:
                held.extend(pending[index:])
                queue = held
                raise
            in_flight[future] = item
            submitted[future] = now
            hard_deadline[future] = (
                now + item.request.timeout_s + policy.hard_grace_s
                if item.request.timeout_s is not None
                else None
            )
        queue = held

    def wait_bound() -> float | None:
        now = time.monotonic()
        bounds = [
            deadline - now for deadline in hard_deadline.values() if deadline is not None
        ]
        bounds.extend(item.not_before - now for item in queue if item.not_before > now)
        if not bounds:
            return None
        return max(0.0, min(bounds))

    def handle_break(first_item: _WorkItem) -> None:
        """Assign blame for a dead pool and requeue everything implicated.

        Suspects in flight take the blame (and an attempt) — on the first
        break there are none, so everyone implicated becomes a suspect.
        Collateral items requeue free: losing an attempt to a neighbour's
        crash would let one poison unit quarantine innocent work.
        """
        now = time.monotonic()
        for future, item in in_flight.items():
            item.durations.append(now - submitted.get(future, now))
        implicated = [first_item] + list(in_flight.values())
        in_flight.clear()
        hard_deadline.clear()
        submitted.clear()
        suspects = [item for item in implicated if item.suspect]
        if suspects:
            blamed = suspects
            collateral = [item for item in implicated if not item.suspect]
        else:
            blamed = implicated
            collateral = []
            for item in blamed:
                item.suspect = True
        for item in blamed:
            if not _register_failure(
                item,
                policy,
                report,
                kind="crash",
                error="worker process died (broken pool)",
            ):
                queue.append(item)
        queue.extend(collateral)

    while queue or in_flight:
        if rebuilds > rebuild_cap:
            report.warn(
                "pool-degraded",
                f"process pool rebuilt {rebuilds} times; abandoning pool execution",
                rebuilds=rebuilds,
            )
            leftovers = list(in_flight.values()) + queue
            _kill_pool(pool, report)
            return _quarantine_unrunnable(leftovers, report)

        broken = False
        try:
            submit_ready()
        except Exception:
            # The pool refused the submission.  In-flight futures (if any)
            # will surface the break through wait(); with nothing in flight
            # the pool is plainly dead — rebuild it now.
            if not in_flight:
                broken = True

        if not broken and not in_flight:
            # Everything still queued is gated behind a backoff delay.
            now = time.monotonic()
            gates = [item.not_before for item in queue if item.not_before > now]
            if gates:
                time.sleep(min(gates) - now)
            continue

        if not broken:
            done, _ = wait(
                set(in_flight), timeout=wait_bound(), return_when=FIRST_COMPLETED
            )
            for future in done:
                item = in_flight.pop(future, None)
                hard_deadline.pop(future, None)
                elapsed = time.monotonic() - submitted.pop(future, time.monotonic())
                if item is None:  # swept up by an earlier handle_break
                    continue
                try:
                    key, result, duration = future.result()
                except CheckTimeout as exc:
                    item.durations.append(elapsed)
                    if not _register_failure(
                        item, policy, report, kind="timeout", error=str(exc)
                    ):
                        queue.append(item)
                except BrokenProcessPool:
                    item.durations.append(elapsed)
                    handle_break(item)
                    broken = True
                except Exception as exc:
                    item.durations.append(elapsed)
                    if not _register_failure(
                        item, policy, report, kind="error", error=str(exc)
                    ):
                        queue.append(item)
                else:
                    item.durations.append(duration)
                    _record_success(item, report, key, result)

            if not broken and not done:
                # wait() timed out: look for futures past their hard deadline
                # — workers hung beyond the cooperative budget plus grace.
                now = time.monotonic()
                hung = [
                    future
                    for future, deadline in hard_deadline.items()
                    if deadline is not None and now >= deadline
                ]
                if hung:
                    for future in hung:
                        item = in_flight.pop(future, None)
                        hard_deadline.pop(future, None)
                        elapsed = now - submitted.pop(future, now)
                        if item is None:
                            continue
                        item.durations.append(elapsed)
                        item.hard_timed_out = True
                        item.suspect = True
                        budget = item.request.timeout_s
                        if not _register_failure(
                            item,
                            policy,
                            report,
                            kind="timeout",
                            error=(
                                f"hard deadline exceeded after {budget:.3g}s"
                                " (worker unresponsive)"
                            ),
                        ):
                            queue.append(item)
                    # The hung workers must die; whoever else was in flight
                    # on them is collateral and requeues free.
                    queue.extend(in_flight.values())
                    in_flight.clear()
                    hard_deadline.clear()
                    submitted.clear()
                    broken = True

        if broken:
            _kill_pool(pool, report)
            rebuilds += 1
            try:
                pool = ProcessPoolExecutor(
                    max_workers=workers, initializer=mark_pool_worker
                )
            except Exception as exc:
                report.warn(
                    "pool-unavailable", f"process pool could not restart: {exc}"
                )
                leftovers = list(in_flight.values()) + queue
                return _quarantine_unrunnable(leftovers, report)

    pool.shutdown(wait=True)
    return []


def run_checks(
    requests: Sequence[CheckRequest],
    max_workers: int = 1,
    policy: ExecutionPolicy | None = None,
) -> ExecutionReport:
    """Execute every request once, fault-tolerantly; see the module docstring.

    ``max_workers > 1`` dispatches picklable requests to a process pool;
    requests whose golden factories are closures (common in the bench
    families) stay in the parent, with the fallback recorded as a
    ``serial-fallback`` warning.  Every unique key gets exactly one
    :class:`CheckExecution` — quarantined keys carry a synthetic failed
    verdict, so callers indexing :meth:`ExecutionReport.results` never KeyError.
    """
    policy = policy if policy is not None else ExecutionPolicy()
    report = ExecutionReport()
    unique: dict[ResultKey, CheckRequest] = {}
    for request in requests:
        unique.setdefault(request.key, request)

    items: list[_WorkItem] = []
    for request in unique.values():
        if request.timeout_s is None and policy.timeout_s is not None:
            request = replace(request, timeout_s=policy.timeout_s)
        items.append(_WorkItem(request=request))

    serial_items = items
    if max_workers > 1 and len(items) > 1:
        parallel: list[_WorkItem] = []
        serial_items = []
        for item in items:
            try:
                pickle.dumps(item.request)
                parallel.append(item)
            except Exception:
                serial_items.append(item)
        if serial_items:
            report.warn(
                "serial-fallback",
                f"{len(serial_items)} of {len(items)} check request(s) do not"
                " pickle; executing in parent",
                count=len(serial_items),
                total=len(items),
                example_task=serial_items[0].request.task_id,
            )
        if len(parallel) > 1:
            serial_items.extend(_execute_pool(parallel, max_workers, policy, report))
        else:
            serial_items.extend(parallel)

    _execute_serial(serial_items, policy, report)
    return report
