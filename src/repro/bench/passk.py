"""The unbiased pass@k estimator (Chen et al., 2021 — Eq. 1 of the paper).

``pass@k = E[1 - C(n - c, k) / C(n, k)]`` where ``n`` is the number of samples
drawn per problem and ``c`` the number of samples that pass the functional check.
The expectation is over problems.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import comb
from typing import Iterable, Sequence


def pass_at_k(num_samples: int, num_correct: int, k: int) -> float:
    """Unbiased single-problem pass@k estimate.

    Args:
        num_samples: total samples drawn for the problem (``n``), must be >= k.
        num_correct: samples that passed the check (``c``).
        k: the k of pass@k.

    Returns:
        The estimate ``1 - C(n - c, k) / C(n, k)``.

    Raises:
        ValueError: if ``k`` exceeds ``num_samples`` or counts are inconsistent.
    """
    if k <= 0:
        raise ValueError("k must be positive")
    if num_samples < k:
        raise ValueError(f"need at least k={k} samples, got {num_samples}")
    if not 0 <= num_correct <= num_samples:
        raise ValueError("num_correct must be between 0 and num_samples")
    if num_samples - num_correct < k:
        return 1.0
    return 1.0 - comb(num_samples - num_correct, k) / comb(num_samples, k)


def mean_pass_at_k(results: Iterable[tuple[int, int]], k: int) -> float:
    """Average pass@k over problems given ``(num_samples, num_correct)`` pairs.

    Aggregation is robust to the degenerate shapes a partial or truncated run
    produces (while :func:`pass_at_k` itself stays strict):

    * zero-sample problems contribute no evidence and are skipped;
    * a problem with ``0 < n < k`` is scored at ``pass@n`` — the best unbiased
      estimate the drawn samples support.
    """
    values = [pass_at_k(n, c, min(k, n)) for n, c in results if n > 0]
    if not values:
        return 0.0
    return sum(values) / len(values)


@dataclass
class PassAtKResult:
    """pass@k values for a set of problems at several k."""

    values: dict[int, float]
    num_problems: int

    def __getitem__(self, k: int) -> float:
        return self.values[k]

    def as_percentages(self) -> dict[int, float]:
        """Values scaled to 0-100 with one decimal (the paper's table format)."""
        return {k: round(100.0 * value, 1) for k, value in self.values.items()}


def compute_pass_at_k(
    per_problem_counts: Sequence[tuple[int, int]], ks: Sequence[int] = (1, 5)
) -> PassAtKResult:
    """Compute pass@k for several k values over per-problem (n, c) counts."""
    values = {k: mean_pass_at_k(per_problem_counts, k) for k in ks}
    return PassAtKResult(values=values, num_problems=len(per_problem_counts))
