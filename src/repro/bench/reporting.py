"""Rendering of benchmark results into the paper's table/figure layouts."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from .evaluator import SuiteResult


def _is_numeric_cell(text: str) -> bool:
    """Whether a rendered cell is a bare number (optionally signed / percent)."""
    stripped = text.strip().rstrip("%x")
    if not stripped:
        return False
    try:
        float(stripped)
    except ValueError:
        return False
    return True


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = "") -> str:
    """Render a simple aligned text table.

    Numeric cells (including ``+1.2``-style deltas and ``%``/``x``-suffixed
    values) are right-aligned within their column; everything else stays
    left-aligned.  An empty ``rows`` renders an explicit ``(no rows)`` body
    instead of a dangling separator line.
    """
    columns = [[str(header)] + [str(row[index]) for row in rows] for index, header in enumerate(headers)]
    widths = [max(len(cell) for cell in column) for column in columns]
    lines = []
    if title:
        lines.append(title)
    header_line = " | ".join(header.ljust(width) for header, width in zip(headers, widths))
    lines.append(header_line)
    lines.append("-+-".join("-" * width for width in widths))
    if not rows:
        lines.append("(no rows)")
        return "\n".join(lines)
    for row in rows:
        cells = []
        for cell, width in zip(row, widths):
            text = str(cell)
            cells.append(text.rjust(width) if _is_numeric_cell(text) else text.ljust(width))
        lines.append(" | ".join(cells))
    return "\n".join(lines)


def _fmt(value: float | None) -> str:
    return "n/a" if value is None else f"{value:.1f}"


@dataclass
class Table4Row:
    """One row of the Table IV main comparison."""

    model: str
    group: str
    open_source: bool
    model_size: str
    machine_pass1: float | None = None
    machine_pass5: float | None = None
    human_pass1: float | None = None
    human_pass5: float | None = None
    rtllm_syntax_pass5: float | None = None
    rtllm_func_pass5: float | None = None
    v2_pass1: float | None = None
    v2_pass5: float | None = None


def render_table4(rows: Sequence[Table4Row], title: str = "Table IV: Comparison against baseline models") -> str:
    """Render the main comparison table in the paper's column layout."""
    headers = [
        "Group",
        "Model",
        "Open",
        "Size",
        "VE-Machine p@1",
        "VE-Machine p@5",
        "VE-Human p@1",
        "VE-Human p@5",
        "RTLLM syn p@5",
        "RTLLM func p@5",
        "VE-v2 p@1",
        "VE-v2 p@5",
    ]
    body = [
        [
            row.group,
            row.model,
            "yes" if row.open_source else "no",
            row.model_size,
            _fmt(row.machine_pass1),
            _fmt(row.machine_pass5),
            _fmt(row.human_pass1),
            _fmt(row.human_pass5),
            _fmt(row.rtllm_syntax_pass5),
            _fmt(row.rtllm_func_pass5),
            _fmt(row.v2_pass1),
            _fmt(row.v2_pass5),
        ]
        for row in rows
    ]
    return format_table(headers, body, title)


def table4_row_from_results(
    model: str,
    group: str,
    open_source: bool,
    model_size: str,
    machine: SuiteResult | None = None,
    human: SuiteResult | None = None,
    rtllm: SuiteResult | None = None,
    v2: SuiteResult | None = None,
) -> Table4Row:
    """Assemble a Table IV row from per-suite results."""
    row = Table4Row(model=model, group=group, open_source=open_source, model_size=model_size)
    if machine is not None:
        percentages = machine.functional_percentages()
        row.machine_pass1, row.machine_pass5 = percentages.get(1), percentages.get(5)
    if human is not None:
        percentages = human.functional_percentages()
        row.human_pass1, row.human_pass5 = percentages.get(1), percentages.get(5)
    if rtllm is not None:
        row.rtllm_syntax_pass5 = rtllm.syntax_percentages().get(5)
        row.rtllm_func_pass5 = rtllm.functional_percentages().get(5)
    if v2 is not None:
        percentages = v2.functional_percentages()
        row.v2_pass1, row.v2_pass5 = percentages.get(1), percentages.get(5)
    return row


@dataclass
class Table5Row:
    """One row of the Table V symbolic-modality evaluation."""

    model: str
    truth_table: tuple[int, int]
    waveform: tuple[int, int]
    state_diagram: tuple[int, int]

    @property
    def overall(self) -> float:
        passed = self.truth_table[0] + self.waveform[0] + self.state_diagram[0]
        total = self.truth_table[1] + self.waveform[1] + self.state_diagram[1]
        return 100.0 * passed / total if total else 0.0


def table5_row_from_result(model: str, result: SuiteResult) -> Table5Row:
    """Assemble a Table V row from a symbolic-suite result.

    Per-modality task counts use the plain pass@1 estimate scaled to task
    counts (a task counts as passed in proportion to its fraction of passing
    samples, rounded over the modality).
    """

    def count(category: str) -> tuple[int, int]:
        results = [r for r in result.task_results if r.category == category]
        estimates = [r.num_functional_passes / max(1, r.num_samples) for r in results]
        return round(sum(estimates)), len(results)

    return Table5Row(
        model=model,
        truth_table=count("truth_table"),
        waveform=count("waveform"),
        state_diagram=count("state_diagram"),
    )


def render_table5(rows: Sequence[Table5Row], title: str = "Table V: Evaluation on symbolic modalities") -> str:
    """Render the symbolic-modality table (P/T and pass-rate per modality)."""
    headers = ["Model", "Truth Table P/T (PR)", "Waveform P/T (PR)", "State Diagram P/T (PR)", "Overall"]

    def cell(pair: tuple[int, int]) -> str:
        passed, total = pair
        rate = 100.0 * passed / total if total else 0.0
        return f"{passed}/{total} ({rate:.1f}%)"

    body = [
        [row.model, cell(row.truth_table), cell(row.waveform), cell(row.state_diagram), f"{row.overall:.1f}%"]
        for row in rows
    ]
    return format_table(headers, body, title)


def render_table6(
    rows: Mapping[str, tuple[float, float]],
    title: str = "Table VI: Effect of SI-CoT on commercial LLMs (pass@1, 44 symbolic tasks)",
) -> str:
    """Render the SI-CoT on/off comparison: model → (with SI-CoT, without SI-CoT)."""
    headers = ["Model", "pass@1 w/ SI-CoT", "pass@1 w/o SI-CoT", "delta"]
    body = [
        [model, f"{with_cot:.1f}", f"{without_cot:.1f}", f"{with_cot - without_cot:+.1f}"]
        for model, (with_cot, without_cot) in rows.items()
    ]
    return format_table(headers, body, title)


@dataclass
class AblationSeries:
    """One base model's Fig. 3 series over the five ablation settings."""

    model: str
    pass1: dict[str, float] = field(default_factory=dict)
    pass5: dict[str, float] = field(default_factory=dict)


FIG3_SETTINGS = ("base", "vanilla", "vanilla+CoT", "vanilla+KL", "vanilla+CoT+KL")


def render_fig3(series: Sequence[AblationSeries], title: str = "Fig. 3: Ablation of HaVen techniques (VerilogEval-Human)") -> str:
    """Render the ablation figure as two tables (pass@1 and pass@5)."""
    sections = []
    for metric_name, attribute in (("Pass@1 (%)", "pass1"), ("Pass@5 (%)", "pass5")):
        headers = ["Setting"] + [entry.model for entry in series]
        rows = []
        for setting in FIG3_SETTINGS:
            row = [setting]
            for entry in series:
                values: dict[str, float] = getattr(entry, attribute)
                row.append(f"{values.get(setting, float('nan')):.1f}")
            rows.append(row)
        sections.append(format_table(headers, rows, f"{title} — {metric_name}"))
    return "\n\n".join(sections)


def render_fig4(
    grid_pass1: Mapping[tuple[int, int], float],
    grid_pass5: Mapping[tuple[int, int], float],
    portions: Sequence[int] = (0, 50, 100),
    title: str = "Fig. 4: Ablation of KL-dataset composition (CodeQwen, VerilogEval-Human)",
) -> str:
    """Render the K/L portion grids; keys are (k_portion, l_portion) in percent."""
    sections = []
    for metric_name, grid in (("Pass@1 (%)", grid_pass1), ("Pass@5 (%)", grid_pass5)):
        headers = ["K% \\ L%"] + [str(portion) for portion in portions]
        rows = []
        for k_portion in portions:
            row = [str(k_portion)]
            for l_portion in portions:
                row.append(f"{grid.get((k_portion, l_portion), float('nan')):.1f}")
            rows.append(row)
        sections.append(format_table(headers, rows, f"{title} — {metric_name}"))
    return "\n\n".join(sections)
