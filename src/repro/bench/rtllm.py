"""RTLLM v1.1 benchmark suite.

RTLLM v1.1 [Lu et al., ASP-DAC'24] contains 29 RTL design tasks that are larger
and more design-oriented than VerilogEval problems (ALUs, counters, FSMs, clock
dividers, shifters, adders, ...), and is scored both on syntax and functional
correctness (pass@5 in Table IV).  This generator builds a 29-task synthetic
equivalent weighted towards the heavier sequential/datapath families, with
elevated knowledge/difficulty demands to reflect the benchmark's larger designs.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from . import families
from .task import BenchmarkSuite, BenchmarkTask

#: RTLLM v1.1 size.
RTLLM_TASK_COUNT = 29

#: Extra demand added to every RTLLM task relative to the same family in
#: VerilogEval (the designs are larger: wider datapaths, more control logic).
RTLLM_KNOWLEDGE_BONUS = 0.10
RTLLM_DIFFICULTY_BONUS = 0.12


@dataclass
class RTLLMConfig:
    """Configuration of the RTLLM suite builder."""

    num_tasks: int | None = None
    seed: int = 43


_RTLLM_FAMILIES = [
    families.make_alu_task,
    families.make_counter_task,
    families.make_sequence_detector_task,
    families.make_clock_divider_task,
    families.make_shift_register_task,
    families.make_register_task,
    families.make_adder_task,
    families.make_comparator_task,
    families.make_mux_task,
    families.make_edge_detector_task,
    families.make_instructional_logic_task,
    families.make_decoder_task,
]


def _harden(task: BenchmarkTask) -> BenchmarkTask:
    """Raise a task's demands to RTLLM levels."""
    demands = task.demands
    task.demands = replace(
        demands,
        knowledge=min(1.0, demands.knowledge + RTLLM_KNOWLEDGE_BONUS),
        difficulty=min(1.0, demands.difficulty + RTLLM_DIFFICULTY_BONUS),
    )
    return task


def build_rtllm(config: RTLLMConfig | None = None) -> BenchmarkSuite:
    """Build the RTLLM v1.1 style suite (29 tasks by default)."""
    config = config or RTLLMConfig()
    total = config.num_tasks or RTLLM_TASK_COUNT
    tasks: list[BenchmarkTask] = []
    for index in range(total):
        builder = _RTLLM_FAMILIES[index % len(_RTLLM_FAMILIES)]
        task_id = f"rtllm_{index:03d}"
        task = builder(task_id, "rtllm", config.seed + index, "human")
        tasks.append(_harden(task))
    return BenchmarkSuite(
        name="RTLLM v1.1",
        tasks=tasks,
        description="Synthetic reproduction of RTLLM v1.1 (29 design-oriented RTL generation tasks).",
    )


def validate_references(
    config: RTLLMConfig | None = None,
    max_tasks: int | None = None,
    use_batch: bool = True,
    differential: bool = False,
) -> dict[str, str]:
    """Self-consistency sweep over the RTLLM suite (batched where combinational)."""
    from .evaluator import check_reference_designs

    return check_reference_designs(
        build_rtllm(config),
        max_tasks=max_tasks,
        use_batch=use_batch,
        differential=differential,
    )
