"""The 44-task symbolic-modality suite (Tables V and VI).

This is a thin wrapper over :func:`repro.bench.verilogeval.build_symbolic_subset`
that exposes the subset as a standalone suite with the paper's composition
(10 truth-table, 13 waveform, 21 state-diagram tasks at full scale).
"""

from __future__ import annotations

from .task import BenchmarkSuite
from .verilogeval import SuiteConfig, build_symbolic_subset, build_verilogeval_human

#: Composition of the paper's 44-task subset.
SYMBOLIC_TRUTH_TABLE_COUNT = 10
SYMBOLIC_WAVEFORM_COUNT = 13
SYMBOLIC_STATE_DIAGRAM_COUNT = 21
SYMBOLIC_TOTAL = SYMBOLIC_TRUTH_TABLE_COUNT + SYMBOLIC_WAVEFORM_COUNT + SYMBOLIC_STATE_DIAGRAM_COUNT


def build_symbolic_suite(config: SuiteConfig | None = None) -> BenchmarkSuite:
    """Build the symbolic-modality suite from the VerilogEval-Human generator."""
    human = build_verilogeval_human(config)
    suite = build_symbolic_subset(human)
    suite.name = "Symbolic-Modalities"
    return suite


def modality_counts(suite: BenchmarkSuite) -> dict[str, int]:
    """Task counts per modality category (truth_table / waveform / state_diagram)."""
    return suite.categories()
