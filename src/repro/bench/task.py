"""Benchmark task and suite data structures.

A :class:`BenchmarkTask` bundles everything needed to pose one problem to a
generation pipeline and to score the result:

* the prompt (phrased in the style of the suite it belongs to);
* the target module interface;
* a golden Verilog reference implementation (used as the behavioural backend's
  competence ceiling and validated against the golden model in the test-suite);
* an executable Python golden model plus a stimulus generator for functional
  scoring;
* a :class:`~repro.core.llm.base.TaskDemands` record describing what the task
  requires from the model (symbolic modality, knowledge, logic, difficulty).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator

from ..core.llm.base import TaskDemands
from ..core.prompt import DesignPrompt, ModuleInterface
from ..verilog.simulator.testbench import GoldenModel, ResetSpec


@dataclass
class BenchmarkTask:
    """One benchmark problem."""

    task_id: str
    suite: str
    prompt: DesignPrompt
    interface: ModuleInterface
    reference_source: str
    golden_factory: Callable[[], GoldenModel]
    stimulus_factory: Callable[[int], list[dict[str, int]]]
    demands: TaskDemands = field(default_factory=TaskDemands)
    clock: str = "clk"
    reset: ResetSpec | None = None
    check_outputs: list[str] | None = None
    prompt_style: str = "completion"
    category: str = "general"

    def golden(self) -> GoldenModel:
        """Build a fresh golden model instance."""
        return self.golden_factory()

    def stimulus(self, seed: int = 0) -> list[dict[str, int]]:
        """Build the stimulus sequence for one evaluation run."""
        return self.stimulus_factory(seed)

    @property
    def is_symbolic(self) -> bool:
        """Whether the task's prompt embeds a symbolic modality."""
        from ..symbolic.detector import SymbolicModality

        return self.demands.modality is not SymbolicModality.NONE


@dataclass
class BenchmarkSuite:
    """A named collection of benchmark tasks."""

    name: str
    tasks: list[BenchmarkTask] = field(default_factory=list)
    description: str = ""

    def __len__(self) -> int:
        return len(self.tasks)

    def __iter__(self) -> Iterator[BenchmarkTask]:
        return iter(self.tasks)

    def add(self, task: BenchmarkTask) -> None:
        self.tasks.append(task)

    def subset(self, count: int, seed: int = 0) -> "BenchmarkSuite":
        """Deterministically subsample ``count`` tasks (stratified by category)."""
        import random as _random

        if count >= len(self.tasks):
            return self
        rng = _random.Random(seed)
        by_category: dict[str, list[BenchmarkTask]] = {}
        for task in self.tasks:
            by_category.setdefault(task.category, []).append(task)
        selected: list[BenchmarkTask] = []
        # Round-robin over categories so the sampled suite keeps the original mix.
        categories = sorted(by_category)
        for tasks in by_category.values():
            rng.shuffle(tasks)
        index = 0
        while len(selected) < count:
            category = categories[index % len(categories)]
            bucket = by_category[category]
            if bucket:
                selected.append(bucket.pop())
            index += 1
            if all(not bucket for bucket in by_category.values()):
                break
        selected.sort(key=lambda task: task.task_id)
        return BenchmarkSuite(
            name=f"{self.name}-subset{count}",
            tasks=selected,
            description=self.description,
        )

    def by_category(self, category: str) -> list[BenchmarkTask]:
        """All tasks in the given category."""
        return [task for task in self.tasks if task.category == category]

    def categories(self) -> dict[str, int]:
        """Category → task count."""
        counts: dict[str, int] = {}
        for task in self.tasks:
            counts[task.category] = counts.get(task.category, 0) + 1
        return counts
