"""VerilogEval v1 benchmark suites (Machine and Human).

The real VerilogEval v1 benchmark [Liu et al., ICCAD'23] contains 143
machine-generated tasks (VerilogEval-Machine) and 156 manually crafted tasks
(VerilogEval-Human); the Human split is the one whose prompts embed symbolic
modalities (truth tables, waveform charts, state diagrams and Karnaugh maps).
Its task data cannot be redistributed here, so these generators build synthetic
suites with the same structure:

* **Machine**: 143 tasks, verbose LLM-style prompts, no symbolic modalities,
  weighted towards simpler combinational and register blocks.
* **Human**: 156 tasks, terse engineer-style prompts, including exactly
  10 truth-table, 13 waveform and 21 state-diagram tasks (the 44-task symbolic
  subset evaluated in Table V), with the remainder spread over FSM, counter,
  shift-register, register, ALU, mux, decoder, adder, comparator, clock-divider
  and instructional-logic families.

Task generation is fully deterministic given the seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from . import families
from .task import BenchmarkSuite, BenchmarkTask

#: VerilogEval v1 split sizes (from the paper / benchmark release).
MACHINE_TASK_COUNT = 143
HUMAN_TASK_COUNT = 156
HUMAN_TRUTH_TABLE_COUNT = 10
HUMAN_WAVEFORM_COUNT = 13
HUMAN_STATE_DIAGRAM_COUNT = 21


@dataclass
class SuiteConfig:
    """Configuration shared by the suite builders."""

    num_tasks: int | None = None
    seed: int = 11
    style: str = "human"


_FamilyBuilder = Callable[[str, str, int, str], BenchmarkTask]

#: Family mix of the Machine split: (builder, weight).
_MACHINE_MIX: list[tuple[_FamilyBuilder, int]] = [
    (families.make_expression_task, 34),
    (families.make_mux_task, 14),
    (families.make_adder_task, 14),
    (families.make_comparator_task, 12),
    (families.make_decoder_task, 12),
    (families.make_register_task, 18),
    (families.make_counter_task, 18),
    (families.make_shift_register_task, 11),
    (families.make_alu_task, 10),
]

#: Family mix of the Human split's 112 non-symbolic tasks.
_HUMAN_MIX: list[tuple[_FamilyBuilder, int]] = [
    (families.make_expression_task, 16),
    (families.make_instructional_logic_task, 10),
    (families.make_counter_task, 14),
    (families.make_register_task, 14),
    (families.make_shift_register_task, 10),
    (families.make_sequence_detector_task, 12),
    (families.make_edge_detector_task, 6),
    (families.make_clock_divider_task, 6),
    (families.make_alu_task, 8),
    (families.make_mux_task, 6),
    (families.make_decoder_task, 4),
    (families.make_adder_task, 3),
    (families.make_comparator_task, 3),
]


def _build_from_mix(
    suite_name: str,
    mix: list[tuple[_FamilyBuilder, int]],
    total: int,
    seed: int,
    style: str,
    start_index: int = 0,
) -> list[BenchmarkTask]:
    """Instantiate ``total`` tasks following the family mix proportions."""
    tasks: list[BenchmarkTask] = []
    mix_total = sum(weight for _, weight in mix)
    counts = [max(1, round(total * weight / mix_total)) for _, weight in mix]
    # Adjust rounding drift so we hit the exact total.
    while sum(counts) > total:
        counts[counts.index(max(counts))] -= 1
    index = start_index
    builder_cycle = []
    for (builder, __), count in zip(mix, counts):
        builder_cycle.extend([builder] * count)
    while len(builder_cycle) < total:
        builder_cycle.append(mix[len(builder_cycle) % len(mix)][0])
    for builder in builder_cycle[:total]:
        task_id = f"{suite_name}_{index:04d}"
        tasks.append(builder(task_id, suite_name, seed + index, style))
        index += 1
    return tasks


#: VerilogEval-Machine problems are simpler than the manually-crafted Human ones
#: (they were machine-generated from existing code); every demand axis is scaled
#: down by this factor relative to the same task family in the Human split.
MACHINE_DEMAND_SCALE = 0.72


def build_verilogeval_machine(config: SuiteConfig | None = None) -> BenchmarkSuite:
    """Build the VerilogEval-Machine style suite (143 tasks by default)."""
    from dataclasses import replace

    config = config or SuiteConfig()
    total = config.num_tasks or MACHINE_TASK_COUNT
    tasks = _build_from_mix(
        "verilogeval_machine", _MACHINE_MIX, total, config.seed, style="machine"
    )
    for task in tasks:
        task.demands = replace(
            task.demands,
            knowledge=task.demands.knowledge * MACHINE_DEMAND_SCALE,
            logic=task.demands.logic * MACHINE_DEMAND_SCALE,
            difficulty=task.demands.difficulty * MACHINE_DEMAND_SCALE,
        )
    return BenchmarkSuite(
        name="VerilogEval-Machine",
        tasks=tasks,
        description="Synthetic reproduction of the VerilogEval v1 Machine split (LLM-phrased prompts).",
    )


def build_verilogeval_human(config: SuiteConfig | None = None) -> BenchmarkSuite:
    """Build the VerilogEval-Human style suite (156 tasks, 44 of them symbolic)."""
    config = config or SuiteConfig()
    total = config.num_tasks or HUMAN_TASK_COUNT

    # Symbolic subset sizes scale with the requested total (exact at full size).
    scale = total / HUMAN_TASK_COUNT
    truth_tables = max(1, round(HUMAN_TRUTH_TABLE_COUNT * scale))
    waveforms = max(1, round(HUMAN_WAVEFORM_COUNT * scale))
    state_diagrams = max(1, round(HUMAN_STATE_DIAGRAM_COUNT * scale))
    symbolic_total = truth_tables + waveforms + state_diagrams
    remaining = max(0, total - symbolic_total)

    tasks: list[BenchmarkTask] = []
    index = 0
    for count, builder in (
        (truth_tables, families.make_truth_table_task),
        (waveforms, families.make_waveform_task),
        (state_diagrams, families.make_state_diagram_task),
    ):
        for _ in range(count):
            task_id = f"verilogeval_human_{index:04d}"
            tasks.append(builder(task_id, "verilogeval_human", config.seed + index, "human"))
            index += 1
    tasks.extend(
        _build_from_mix(
            "verilogeval_human",
            _HUMAN_MIX,
            remaining,
            config.seed,
            style="human",
            start_index=index,
        )
    )
    return BenchmarkSuite(
        name="VerilogEval-Human",
        tasks=tasks,
        description=(
            "Synthetic reproduction of the VerilogEval v1 Human split, including the 44-task "
            "symbolic-modality subset (10 truth tables, 13 waveforms, 21 state diagrams)."
        ),
    )


def build_symbolic_subset(human_suite: BenchmarkSuite | None = None, config: SuiteConfig | None = None) -> BenchmarkSuite:
    """Extract the 44-task symbolic subset used in Tables V and VI."""
    suite = human_suite or build_verilogeval_human(config)
    symbolic = [task for task in suite if task.is_symbolic]
    return BenchmarkSuite(
        name="VerilogEval-Human-Symbolic",
        tasks=symbolic,
        description="Symbolic-modality subset of VerilogEval-Human (truth tables, waveforms, state diagrams).",
    )


def validate_references(
    config: SuiteConfig | None = None,
    splits: tuple[str, ...] = ("machine", "human"),
    max_tasks: int | None = None,
    use_batch: bool = True,
    differential: bool = False,
) -> dict[str, str]:
    """Self-consistency sweep: every reference design must pass its own testbench.

    Combinational references are checked in one column-parallel batched pass per
    task (see :mod:`repro.verilog.simulator.batch`); sequential references keep
    the scalar cycle-serial oracle.  Returns task_id → failure summary.
    """
    from .evaluator import check_reference_designs

    failures: dict[str, str] = {}
    if "machine" in splits:
        failures.update(
            check_reference_designs(
                build_verilogeval_machine(config),
                max_tasks=max_tasks,
                use_batch=use_batch,
                differential=differential,
            )
        )
    if "human" in splits:
        failures.update(
            check_reference_designs(
                build_verilogeval_human(config),
                max_tasks=max_tasks,
                use_batch=use_batch,
                differential=differential,
            )
        )
    return failures
