"""VerilogEval v2 (specification-to-RTL) benchmark suite.

VerilogEval v2 [Pinckney et al., 2024] extends VerilogEval-Human with
specification-to-RTL tasks phrased as a chat exchange with explicit "Question"
and "Answer" sections.  The task content largely mirrors the Human split; what
changes is the prompt style — which is exactly the "practices of HDL engineers"
alignment HaVen targets.  The suite builder therefore reuses the Human task
families but emits spec-to-RTL prompts and marks the prompt style so that models
unfamiliar with that format pay a difficulty penalty (handled by the behavioural
backend through ``chat_alignment``).
"""

from __future__ import annotations

from dataclasses import dataclass

from . import families
from .task import BenchmarkSuite, BenchmarkTask
from .verilogeval import (
    HUMAN_STATE_DIAGRAM_COUNT,
    HUMAN_TASK_COUNT,
    HUMAN_TRUTH_TABLE_COUNT,
    HUMAN_WAVEFORM_COUNT,
    SuiteConfig,
    _HUMAN_MIX,
    _build_from_mix,
)


@dataclass
class V2Config:
    """Configuration of the VerilogEval v2 suite builder."""

    num_tasks: int | None = None
    seed: int = 71


def build_verilogeval_v2(config: V2Config | None = None) -> BenchmarkSuite:
    """Build the VerilogEval v2 spec-to-RTL suite (156 tasks by default)."""
    config = config or V2Config()
    total = config.num_tasks or HUMAN_TASK_COUNT

    scale = total / HUMAN_TASK_COUNT
    truth_tables = max(1, round(HUMAN_TRUTH_TABLE_COUNT * scale))
    waveforms = max(1, round(HUMAN_WAVEFORM_COUNT * scale))
    state_diagrams = max(1, round(HUMAN_STATE_DIAGRAM_COUNT * scale))
    remaining = max(0, total - truth_tables - waveforms - state_diagrams)

    tasks: list[BenchmarkTask] = []
    index = 0
    for count, builder in (
        (truth_tables, families.make_truth_table_task),
        (waveforms, families.make_waveform_task),
        (state_diagrams, families.make_state_diagram_task),
    ):
        for _ in range(count):
            task_id = f"verilogeval_v2_{index:04d}"
            tasks.append(builder(task_id, "verilogeval_v2", config.seed + index, "spec_to_rtl"))
            index += 1
    tasks.extend(
        _build_from_mix(
            "verilogeval_v2",
            _HUMAN_MIX,
            remaining,
            config.seed,
            style="spec_to_rtl",
            start_index=index,
        )
    )
    return BenchmarkSuite(
        name="VerilogEval v2 (Spec-to-RTL)",
        tasks=tasks,
        description=(
            "Synthetic reproduction of the VerilogEval v2 specification-to-RTL benchmark "
            "(chat-style Question/Answer prompts over the Human task families)."
        ),
    )


def validate_references(
    config: V2Config | None = None,
    max_tasks: int | None = None,
    use_batch: bool = True,
    differential: bool = False,
) -> dict[str, str]:
    """Self-consistency sweep over the v2 suite (batched where combinational)."""
    from .evaluator import check_reference_designs

    return check_reference_designs(
        build_verilogeval_v2(config),
        max_tasks=max_tasks,
        use_batch=use_batch,
        differential=differential,
    )


__all__ = ["V2Config", "build_verilogeval_v2", "validate_references", "SuiteConfig"]
