"""HaVen core: taxonomy, SI-CoT, exemplars, datasets, behavioural LLMs, pipeline."""

from . import dataset, llm
from .exemplars import EXEMPLAR_LIBRARY, Exemplar, ExemplarLibrary
from .hallucination_detector import (
    DetectionReport,
    HallucinationDetector,
    PromptRequirements,
    classify_generation,
)
from .pipeline import HaVenPipeline, PipelineResult
from .prompt import DesignPrompt, ModuleInterface, PortSpec, RefinedPrompt
from .sicot import SICoTConfig, SICoTPipeline, infer_interface, refine_prompt
from .taxonomy import (
    SUBTYPE_TO_TYPE,
    TABLE_II_EXAMPLES,
    HallucinationRecord,
    HallucinationSubtype,
    HallucinationType,
    TaxonomyExample,
    TaxonomySummary,
    subtypes_of,
    type_of,
)

__all__ = [
    "dataset",
    "llm",
    "EXEMPLAR_LIBRARY",
    "Exemplar",
    "ExemplarLibrary",
    "DetectionReport",
    "HallucinationDetector",
    "PromptRequirements",
    "classify_generation",
    "HaVenPipeline",
    "PipelineResult",
    "DesignPrompt",
    "ModuleInterface",
    "PortSpec",
    "RefinedPrompt",
    "SICoTConfig",
    "SICoTPipeline",
    "infer_interface",
    "refine_prompt",
    "SUBTYPE_TO_TYPE",
    "TABLE_II_EXAMPLES",
    "HallucinationRecord",
    "HallucinationSubtype",
    "HallucinationType",
    "TaxonomyExample",
    "TaxonomySummary",
    "subtypes_of",
    "type_of",
]
