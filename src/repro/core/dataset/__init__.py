"""Dataset generation flows: vanilla corpus, K-dataset, L-dataset, KL-dataset."""

from .corpus import CorpusConfig, CorpusGenerator, CorpusSample
from .evolution import EvolutionResult, InstructionEvolver
from .kdataset import InstructionRewriter, KDatasetGenerator, KDatasetResult, KDatasetStats
from .ldataset import (
    LDatasetConfig,
    LDatasetGenerator,
    LDatasetResult,
    LDatasetStats,
    generate_kl_dataset,
)
from .records import DatasetStats, InstructionCodePair, InstructionDataset, PairOrigin
from .vanilla import SimulatedDescriptionWriter, VanillaDatasetGenerator

__all__ = [
    "CorpusConfig",
    "CorpusGenerator",
    "CorpusSample",
    "EvolutionResult",
    "InstructionEvolver",
    "InstructionRewriter",
    "KDatasetGenerator",
    "KDatasetResult",
    "KDatasetStats",
    "LDatasetConfig",
    "LDatasetGenerator",
    "LDatasetResult",
    "LDatasetStats",
    "generate_kl_dataset",
    "DatasetStats",
    "InstructionCodePair",
    "InstructionDataset",
    "PairOrigin",
    "SimulatedDescriptionWriter",
    "VanillaDatasetGenerator",
]
