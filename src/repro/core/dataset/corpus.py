"""Synthetic open-source Verilog corpus (substitute for the ~550k GitHub files).

Step 5 of the K-dataset flow starts from a large collection of Verilog code
collected from public GitHub repositories.  That corpus is not available offline,
so this module generates a synthetic stand-in with the properties the downstream
pipeline actually depends on:

* realistic, *compilable* modules spread across the topic distribution the
  exemplar library covers (FSMs, counters, shift registers, ALUs, clock dividers,
  registers, muxes, decoders, adders, comparators, plain combinational logic);
* naming and style diversity (different reset styles, clock edges, enables,
  parameterisation, signal naming conventions);
* a configurable fraction of *flawed* files (syntax errors, undeclared signals,
  incomplete modules) so that the compile-verification step (step 8) has real
  work to do.

The corpus size is configurable; the default is scaled down from the paper's
550k so that tests and benches run quickly, while keeping the downstream
selection ratios meaningful.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ...logic.expr import RandomExpressionGenerator
from ...logic.synth import SynthesisRequest, expression_to_module
from ...symbolic.state_diagram import random_state_diagram
from ...verilog.analyzer import Topic

_ADJECTIVES = ["main", "fast", "simple", "top", "core", "mini", "basic", "small", "my", "proj"]
_RESET_NAMES = ["rst", "reset", "rst_n", "reset_n"]
_CLOCK_NAMES = ["clk", "clock", "clk_in"]


@dataclass
class CorpusSample:
    """One synthetic "GitHub file"."""

    path: str
    code: str
    intended_topic: Topic
    is_flawed: bool = False


@dataclass
class CorpusConfig:
    """Configuration of the synthetic corpus generator."""

    num_samples: int = 400
    flaw_rate: float = 0.22
    seed: int = 2025
    topic_weights: dict[Topic, float] = field(
        default_factory=lambda: {
            Topic.FSM: 0.14,
            Topic.COUNTER: 0.16,
            Topic.SHIFT_REGISTER: 0.10,
            Topic.ALU: 0.08,
            Topic.CLOCK_DIVIDER: 0.06,
            Topic.REGISTER: 0.12,
            Topic.MULTIPLEXER: 0.08,
            Topic.DECODER: 0.05,
            Topic.ADDER: 0.07,
            Topic.COMPARATOR: 0.05,
            Topic.COMBINATIONAL: 0.09,
        }
    )


class CorpusGenerator:
    """Generate the synthetic Verilog corpus."""

    def __init__(self, config: CorpusConfig | None = None):
        self.config = config or CorpusConfig()
        self.rng = random.Random(self.config.seed)
        self._expression_generator = RandomExpressionGenerator(seed=self.config.seed + 1)

    def generate(self) -> list[CorpusSample]:
        """Generate the full corpus."""
        topics = list(self.config.topic_weights)
        weights = [self.config.topic_weights[topic] for topic in topics]
        samples: list[CorpusSample] = []
        for index in range(self.config.num_samples):
            topic = self.rng.choices(topics, weights=weights, k=1)[0]
            code = self._generate_module(topic, index)
            flawed = self.rng.random() < self.config.flaw_rate
            if flawed:
                code = self._inject_flaw(code)
            samples.append(
                CorpusSample(
                    path=f"github/{self._random_repo()}/rtl/module_{index:05d}.v",
                    code=code,
                    intended_topic=topic,
                    is_flawed=flawed,
                )
            )
        return samples

    # ------------------------------------------------------------------ module generators
    def _generate_module(self, topic: Topic, index: int) -> str:
        generators = {
            Topic.FSM: self._gen_fsm,
            Topic.COUNTER: self._gen_counter,
            Topic.SHIFT_REGISTER: self._gen_shift_register,
            Topic.ALU: self._gen_alu,
            Topic.CLOCK_DIVIDER: self._gen_clock_divider,
            Topic.REGISTER: self._gen_register,
            Topic.MULTIPLEXER: self._gen_mux,
            Topic.DECODER: self._gen_decoder,
            Topic.ADDER: self._gen_adder,
            Topic.COMPARATOR: self._gen_comparator,
            Topic.COMBINATIONAL: self._gen_combinational,
        }
        return generators[topic](index)

    def _module_name(self, base: str, index: int) -> str:
        prefix = self.rng.choice(_ADJECTIVES)
        return f"{prefix}_{base}_{index % 97}"

    def _random_repo(self) -> str:
        return f"user{self.rng.randrange(1000)}/hdl_project_{self.rng.randrange(100)}"

    def _reset(self) -> tuple[str, bool]:
        name = self.rng.choice(_RESET_NAMES)
        return name, name.endswith("_n")

    def _gen_fsm(self, index: int) -> str:
        num_states = self.rng.choice([2, 3, 3, 4])
        diagram = random_state_diagram(
            num_states=num_states,
            inputs=("x",) if self.rng.random() < 0.7 else ("x", "y"),
            outputs=("out",),
            seed=self.config.seed + index,
        )
        return diagram.to_verilog(
            module_name=self._module_name("fsm", index),
            async_reset=self.rng.random() < 0.5,
        )

    def _gen_counter(self, index: int) -> str:
        width = self.rng.choice([4, 8, 16])
        clk = self.rng.choice(_CLOCK_NAMES)
        reset, active_low = self._reset()
        use_enable = self.rng.random() < 0.5
        async_reset = self.rng.random() < 0.5
        name = self._module_name("counter", index)
        sensitivity = f"posedge {clk} or {'negedge' if active_low else 'posedge'} {reset}" if async_reset else f"posedge {clk}"
        reset_condition = f"!{reset}" if active_low else reset
        enable_port = "    input en,\n" if use_enable else ""
        enable_guard = "else if (en)" if use_enable else "else"
        return (
            f"module {name} (\n"
            f"    input {clk},\n"
            f"    input {reset},\n"
            f"{enable_port}"
            f"    output reg [{width - 1}:0] count\n"
            f");\n"
            f"    always @({sensitivity}) begin\n"
            f"        if ({reset_condition})\n"
            f"            count <= {width}'d0;\n"
            f"        {enable_guard}\n"
            f"            count <= count + 1'b1;\n"
            f"    end\n"
            f"endmodule\n"
        )

    def _gen_shift_register(self, index: int) -> str:
        width = self.rng.choice([4, 8, 16])
        clk = self.rng.choice(_CLOCK_NAMES)
        reset, active_low = self._reset()
        name = self._module_name("shift_reg", index)
        direction_left = self.rng.random() < 0.7
        reset_condition = f"!{reset}" if active_low else reset
        if direction_left:
            shift_expr = f"{{shift_data[{width - 2}:0], din}}"
        else:
            shift_expr = f"{{din, shift_data[{width - 1}:1]}}"
        return (
            f"module {name} (\n"
            f"    input {clk},\n"
            f"    input {reset},\n"
            f"    input din,\n"
            f"    output reg [{width - 1}:0] shift_data\n"
            f");\n"
            f"    always @(posedge {clk}) begin\n"
            f"        if ({reset_condition})\n"
            f"            shift_data <= {width}'d0;\n"
            f"        else\n"
            f"            shift_data <= {shift_expr};\n"
            f"    end\n"
            f"endmodule\n"
        )

    def _gen_alu(self, index: int) -> str:
        width = self.rng.choice([4, 8, 16])
        name = self._module_name("alu", index)
        operations = [
            ("a + b", "a - b", "a & b", "a | b"),
            ("a + b", "a & b", "a ^ b", "a | b"),
            ("a + b", "a - b", "a << 1", "a >> 1"),
        ]
        ops = self.rng.choice(operations)
        arms = "\n".join(
            f"            2'b{opcode:02b}: result = {operation};"
            for opcode, operation in enumerate(ops)
        )
        return (
            f"module {name} (\n"
            f"    input [{width - 1}:0] a,\n"
            f"    input [{width - 1}:0] b,\n"
            f"    input [1:0] op,\n"
            f"    output reg [{width - 1}:0] result\n"
            f");\n"
            f"    always @(*) begin\n"
            f"        case (op)\n"
            f"{arms}\n"
            f"            default: result = {width}'d0;\n"
            f"        endcase\n"
            f"    end\n"
            f"endmodule\n"
        )

    def _gen_clock_divider(self, index: int) -> str:
        divisor = self.rng.choice([2, 4, 8, 10])
        name = self._module_name("clk_div", index)
        reset, active_low = self._reset()
        reset_condition = f"!{reset}" if active_low else reset
        return (
            f"module {name} (\n"
            f"    input clk,\n"
            f"    input {reset},\n"
            f"    output reg clk_out\n"
            f");\n"
            f"    reg [7:0] counter;\n"
            f"    always @(posedge clk) begin\n"
            f"        if ({reset_condition}) begin\n"
            f"            counter <= 8'd0;\n"
            f"            clk_out <= 1'b0;\n"
            f"        end else if (counter == 8'd{divisor - 1}) begin\n"
            f"            counter <= 8'd0;\n"
            f"            clk_out <= ~clk_out;\n"
            f"        end else begin\n"
            f"            counter <= counter + 8'd1;\n"
            f"        end\n"
            f"    end\n"
            f"endmodule\n"
        )

    def _gen_register(self, index: int) -> str:
        width = self.rng.choice([1, 8, 16, 32])
        name = self._module_name("register", index)
        reset, active_low = self._reset()
        async_reset = self.rng.random() < 0.5
        clk = self.rng.choice(_CLOCK_NAMES)
        sensitivity = (
            f"posedge {clk} or {'negedge' if active_low else 'posedge'} {reset}"
            if async_reset
            else f"posedge {clk}"
        )
        reset_condition = f"!{reset}" if active_low else reset
        range_text = f"[{width - 1}:0] " if width > 1 else ""
        zero = f"{width}'d0" if width > 1 else "1'b0"
        return (
            f"module {name} (\n"
            f"    input {clk},\n"
            f"    input {reset},\n"
            f"    input {range_text}d,\n"
            f"    output reg {range_text}q\n"
            f");\n"
            f"    always @({sensitivity}) begin\n"
            f"        if ({reset_condition})\n"
            f"            q <= {zero};\n"
            f"        else\n"
            f"            q <= d;\n"
            f"    end\n"
            f"endmodule\n"
        )

    def _gen_mux(self, index: int) -> str:
        width = self.rng.choice([1, 4, 8])
        name = self._module_name("mux", index)
        range_text = f"[{width - 1}:0] " if width > 1 else ""
        return (
            f"module {name} (\n"
            f"    input {range_text}in0,\n"
            f"    input {range_text}in1,\n"
            f"    input sel,\n"
            f"    output {range_text}out\n"
            f");\n"
            f"    assign out = sel ? in1 : in0;\n"
            f"endmodule\n"
        )

    def _gen_decoder(self, index: int) -> str:
        name = self._module_name("decoder", index)
        bits = self.rng.choice([2, 3])
        return (
            f"module {name} (\n"
            f"    input [{bits - 1}:0] sel,\n"
            f"    input en,\n"
            f"    output reg [{2 ** bits - 1}:0] out\n"
            f");\n"
            f"    always @(*) begin\n"
            f"        if (en)\n"
            f"            out = {2 ** bits}'d1 << sel;\n"
            f"        else\n"
            f"            out = {2 ** bits}'d0;\n"
            f"    end\n"
            f"endmodule\n"
        )

    def _gen_adder(self, index: int) -> str:
        width = self.rng.choice([4, 8, 16])
        name = self._module_name("adder", index)
        with_carry = self.rng.random() < 0.6
        if with_carry:
            return (
                f"module {name} (\n"
                f"    input [{width - 1}:0] a,\n"
                f"    input [{width - 1}:0] b,\n"
                f"    output [{width - 1}:0] sum,\n"
                f"    output cout\n"
                f");\n"
                f"    assign {{cout, sum}} = a + b;\n"
                f"endmodule\n"
            )
        return (
            f"module {name} (\n"
            f"    input [{width - 1}:0] a,\n"
            f"    input [{width - 1}:0] b,\n"
            f"    input cin,\n"
            f"    output [{width}:0] sum\n"
            f");\n"
            f"    assign sum = a + b + cin;\n"
            f"endmodule\n"
        )

    def _gen_comparator(self, index: int) -> str:
        width = self.rng.choice([4, 8])
        name = self._module_name("cmp", index)
        return (
            f"module {name} (\n"
            f"    input [{width - 1}:0] a,\n"
            f"    input [{width - 1}:0] b,\n"
            f"    output gt,\n"
            f"    output eq,\n"
            f"    output lt\n"
            f");\n"
            f"    assign gt = (a > b);\n"
            f"    assign eq = (a == b);\n"
            f"    assign lt = (a < b);\n"
            f"endmodule\n"
        )

    def _gen_combinational(self, index: int) -> str:
        variables = ["a", "b", "c", "d"][: self.rng.choice([2, 3, 3, 4])]
        expression = self._expression_generator.generate_nontrivial(variables, max_depth=3)
        style = self.rng.choice(["assign", "case", "if_else"])
        return expression_to_module(
            expression,
            SynthesisRequest(module_name=self._module_name("logic", index), style=style),
        )

    # ------------------------------------------------------------------ flaws
    def _inject_flaw(self, code: str) -> str:
        """Make a sample fail compilation in one of several realistic ways."""
        flaw = self.rng.choice(["truncate", "undeclared", "keyword", "python_style", "missing_semicolon"])
        if flaw == "truncate":
            lines = code.splitlines()
            cut = max(2, len(lines) // 2)
            return "\n".join(lines[:cut]) + "\n"
        if flaw == "undeclared":
            return code.replace("endmodule", "    assign mystery = undeclared_signal;\nendmodule", 1)
        if flaw == "keyword":
            return code.replace("module ", "modul ", 1)
        if flaw == "python_style":
            header = code.splitlines()[0].replace("module", "def").rstrip(" (")
            return header + ":\n    return a + b\n"
        # missing_semicolon
        return code.replace(";", "", 1)
