"""Instruction evolution (step 12 of the L-dataset flow).

The paper uses GPT-3.5 to rewrite instructions "while ensuring the semantic core
is retained", constraining the modifications to "adding or removing no more than
ten words" to preserve the logical structure while adding linguistic variety.

:class:`InstructionEvolver` reproduces that behaviour deterministically: it
applies a bounded number of word-level edits (synonym substitution, politeness
prefixes/suffixes, filler removal) while never touching *protected tokens* —
signal names, numbers, logical operator words and Verilog keywords — so the
semantic core provably survives.
"""

from __future__ import annotations

import random
import re
from dataclasses import dataclass, field

#: Words that may be substituted without changing meaning.
_SYNONYMS: dict[str, list[str]] = {
    "implement": ["create", "build", "design", "write"],
    "create": ["implement", "build", "design"],
    "design": ["implement", "create", "develop"],
    "write": ["implement", "produce", "create"],
    "module": ["module"],
    "produce": ["generate", "output"],
    "equals": ["is equal to", "evaluates to"],
    "output": ["output"],
    "signal": ["signal"],
    "below": ["given below", "that follows"],
    "following": ["given", "specified"],
    "please": [""],
}

#: Optional prefixes/suffixes that add words without changing semantics.
_PREFIXES = [
    "Please",
    "As an HDL engineer,",
    "For this design task,",
    "In Verilog,",
]
_SUFFIXES = [
    "Keep the implementation synthesizable.",
    "Follow standard Verilog coding conventions.",
    "Make sure the module compiles cleanly.",
]

#: Tokens that must never be altered (operators, polarity words, numerals...).
_PROTECTED = {
    "and",
    "or",
    "xor",
    "not",
    "nand",
    "nor",
    "if",
    "else",
    "elif",
    "then",
    "otherwise",
    "high",
    "low",
    "rising",
    "falling",
    "posedge",
    "negedge",
    "asynchronous",
    "synchronous",
    "reset",
    "enable",
    "clock",
    "plus",
    "minus",
}


@dataclass
class EvolutionResult:
    """An evolved instruction plus bookkeeping about the edit distance."""

    original: str
    evolved: str
    words_added: int = 0
    words_removed: int = 0

    @property
    def net_word_change(self) -> int:
        return abs(len(self.evolved.split()) - len(self.original.split()))


@dataclass
class InstructionEvolver:
    """Deterministic, bounded instruction rewriting."""

    seed: int = 0
    max_word_change: int = 10
    rng: random.Random = field(init=False)

    def __post_init__(self) -> None:
        self.rng = random.Random(self.seed)

    def evolve(self, instruction: str) -> EvolutionResult:
        """Rewrite ``instruction`` with at most ``max_word_change`` words added/removed."""
        original_words = instruction.split()
        budget = self.max_word_change

        evolved = self._substitute_synonyms(instruction)

        # Optionally add a prefix and/or suffix while the word budget allows it.
        if self.rng.random() < 0.6:
            prefix = self.rng.choice(_PREFIXES)
            if len(prefix.split()) <= budget:
                evolved = f"{prefix} {evolved[0].lower()}{evolved[1:]}" if evolved else prefix
                budget -= len(prefix.split())
        if self.rng.random() < 0.5 and budget > 0:
            suffix = self.rng.choice(_SUFFIXES)
            if len(suffix.split()) <= budget:
                evolved = f"{evolved.rstrip()} {suffix}"
                budget -= len(suffix.split())

        evolved = self._enforce_budget(instruction, evolved)
        evolved_words = evolved.split()
        return EvolutionResult(
            original=instruction,
            evolved=evolved,
            words_added=max(0, len(evolved_words) - len(original_words)),
            words_removed=max(0, len(original_words) - len(evolved_words)),
        )

    # ------------------------------------------------------------------ helpers
    def _substitute_synonyms(self, text: str) -> str:
        def replace(match: re.Match[str]) -> str:
            word = match.group(0)
            lowered = word.lower()
            if lowered in _PROTECTED or lowered not in _SYNONYMS:
                return word
            if self.rng.random() > 0.5:
                return word
            choice = self.rng.choice(_SYNONYMS[lowered])
            if not choice:
                return ""
            if word[0].isupper():
                choice = choice[0].upper() + choice[1:]
            return choice

        substituted = re.sub(r"[A-Za-z]+", replace, text)
        return re.sub(r"  +", " ", substituted).strip()

    def _enforce_budget(self, original: str, evolved: str) -> str:
        """Trim trailing additions if the word-count delta exceeds the budget."""
        original_count = len(original.split())
        words = evolved.split()
        while abs(len(words) - original_count) > self.max_word_change and len(words) > original_count:
            words.pop()
        return " ".join(words)

    def evolve_many(self, instructions: list[str]) -> list[EvolutionResult]:
        """Evolve a batch of instructions."""
        return [self.evolve(instruction) for instruction in instructions]
