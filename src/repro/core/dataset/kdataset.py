"""Knowledge-enhanced dataset (K-dataset) generation — steps 6-8 of Fig. 2.

Pipeline:

1. **Topic matching (step 6)** — each vanilla instruction-code pair is analysed
   with the parser/analyzer (the ``slang`` substitute) to identify its topics and
   Verilog attributes, which are matched against the curated exemplar library.
   Pairs without an identifiable topic still contribute to the *valid vanilla
   dataset* (they help against plain Verilog syntax misapplication).
2. **Data augmentation (step 7)** — for each matched exemplar, the vanilla
   instruction is rewritten to align with the exemplar's HDL-engineer questioning
   style, injecting the module's actual interface and the exemplar's conventions
   and attribute requirements.  A pair matched by several exemplars is rewritten
   once per exemplar.
3. **Verification (step 8)** — every resulting pair's code is compiled with the
   syntax checker; erroneous or incomplete pairs are filtered out.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ...verilog.analyzer import AnalysisResult, Attribute, ModuleAnalyzer, Topic
from ...verilog.errors import VerilogError
from ...verilog.parser import parse_module
from ...verilog.syntax_checker import SyntaxChecker
from ..exemplars import Exemplar, ExemplarLibrary
from .records import InstructionCodePair, InstructionDataset, PairOrigin

_TOPIC_NOUNS: dict[Topic, str] = {
    Topic.FSM: "finite state machine",
    Topic.COUNTER: "counter",
    Topic.SHIFT_REGISTER: "shift register",
    Topic.ALU: "arithmetic logic unit (ALU)",
    Topic.CLOCK_DIVIDER: "clock divider",
    Topic.MULTIPLEXER: "multiplexer",
    Topic.DECODER: "decoder",
    Topic.ENCODER: "encoder",
    Topic.ADDER: "adder",
    Topic.COMPARATOR: "comparator",
    Topic.REGISTER: "register",
    Topic.MEMORY: "memory",
    Topic.COMBINATIONAL: "combinational logic block",
}

_ATTRIBUTE_REQUIREMENTS: dict[Attribute, str] = {
    Attribute.ASYNC_RESET: "Use an asynchronous reset",
    Attribute.SYNC_RESET: "Use a synchronous reset",
    Attribute.POSEDGE_CLOCK: "Register state on the rising (positive) clock edge",
    Attribute.NEGEDGE_CLOCK: "Register state on the falling (negative) clock edge",
    Attribute.ACTIVE_HIGH_ENABLE: "Gate updates with the active-high enable",
    Attribute.ACTIVE_LOW_ENABLE: "Gate updates with the active-low enable",
    Attribute.PARAMETERIZED: "Keep the data width parameterized",
}

_STYLE_OPENERS = [
    "Design",
    "Implement",
    "As an HDL engineer, implement",
    "Following digital design conventions, design",
]


@dataclass
class KDatasetStats:
    """Per-stage counts of the K-dataset flow (mirrors the §III-C numbers)."""

    corpus_pairs: int = 0
    parsable_pairs: int = 0
    valid_vanilla_pairs: int = 0
    topic_matched_pairs: int = 0
    augmented_pairs: int = 0
    verified_pairs: int = 0


@dataclass
class KDatasetResult:
    """Output of the K-dataset generation flow."""

    vanilla_dataset: InstructionDataset
    k_dataset: InstructionDataset
    stats: KDatasetStats = field(default_factory=KDatasetStats)


class InstructionRewriter:
    """Rewrite a vanilla instruction to align with an exemplar's style (step 7)."""

    def __init__(self, seed: int = 0):
        self.rng = random.Random(seed)

    def rewrite(
        self,
        pair: InstructionCodePair,
        exemplar: Exemplar,
        analysis: AnalysisResult,
        interface_description: str,
    ) -> str:
        """Produce an HDL-engineer-aligned instruction for ``pair`` guided by ``exemplar``."""
        opener = self.rng.choice(_STYLE_OPENERS)
        topic_noun = _TOPIC_NOUNS.get(exemplar.topic, "module")
        sentences = [f"{opener} a {topic_noun} named {analysis.module_name}."]
        sentences.append(interface_description)

        requirements = [
            _ATTRIBUTE_REQUIREMENTS[attribute]
            for attribute in sorted(
                analysis.attributes & set(_ATTRIBUTE_REQUIREMENTS), key=lambda a: a.value
            )
        ]
        if requirements:
            sentences.append("; ".join(requirements) + ".")

        convention = self._convention_sentence(exemplar)
        if convention:
            sentences.append(convention)
        return " ".join(sentence.strip() for sentence in sentences if sentence.strip())

    def _convention_sentence(self, exemplar: Exemplar) -> str:
        if exemplar.topic is Topic.FSM:
            return (
                "Follow the conventional FSM structure with a state register, separate "
                "next-state logic and output logic."
            )
        if exemplar.topic is Topic.ALU or exemplar.topic is Topic.MULTIPLEXER:
            return "Cover every select/opcode value and include a default arm in the case statement."
        if exemplar.topic is Topic.CLOCK_DIVIDER:
            return "Derive the divided clock by toggling an internal register when the counter wraps."
        if exemplar.topic is Topic.SHIFT_REGISTER:
            return "Use concatenation to express the shift operation."
        return "Write clean, synthesizable RTL following standard coding conventions."


class KDatasetGenerator:
    """Run the full K-dataset generation flow."""

    def __init__(
        self,
        exemplars: ExemplarLibrary | None = None,
        seed: int = 0,
        max_exemplars_per_pair: int = 2,
    ):
        self.exemplars = exemplars or ExemplarLibrary()
        self.analyzer = ModuleAnalyzer()
        self.checker = SyntaxChecker()
        self.rewriter = InstructionRewriter(seed=seed)
        self.max_exemplars_per_pair = max_exemplars_per_pair

    def generate(self, vanilla: InstructionDataset) -> KDatasetResult:
        """Produce the verified vanilla dataset and the K-dataset from vanilla pairs."""
        stats = KDatasetStats(corpus_pairs=len(vanilla))
        valid_vanilla = InstructionDataset(name="vanilla-valid")
        k_dataset = InstructionDataset(name="k-dataset")

        for pair in vanilla:
            compile_result = self.checker.check(pair.code)
            if compile_result.ok:
                stats.parsable_pairs += 1
                verified_pair = InstructionCodePair(
                    instruction=pair.instruction,
                    code=pair.code,
                    origin=PairOrigin.VANILLA,
                    topics=set(pair.topics),
                    attributes=set(pair.attributes),
                    verified=True,
                    metadata=dict(pair.metadata),
                )
                valid_vanilla.add(verified_pair)
                stats.valid_vanilla_pairs += 1
            else:
                # Step 8 filters these out of every downstream dataset.
                continue

            analysis = self._analyze(pair.code)
            if analysis is None:
                continue
            matched = self.exemplars.match(analysis.topics, analysis.attributes)
            if not matched or not analysis.has_identifiable_topic():
                continue
            stats.topic_matched_pairs += 1

            interface_description = self._interface_description(pair.code)
            for exemplar in matched[: self.max_exemplars_per_pair]:
                instruction = self.rewriter.rewrite(pair, exemplar, analysis, interface_description)
                stats.augmented_pairs += 1
                candidate = InstructionCodePair(
                    instruction=instruction,
                    code=pair.code,
                    origin=PairOrigin.KNOWLEDGE,
                    topics=set(analysis.topics),
                    attributes=set(analysis.attributes),
                    exemplar_name=exemplar.name,
                    metadata=dict(pair.metadata),
                )
                # Verification (step 8): the code was already compiled above, so the
                # pair is verified by construction; re-check defensively in case a
                # rewriter ever mutates code in future extensions.
                candidate.verified = self.checker.check(candidate.code).ok
                if candidate.verified:
                    k_dataset.add(candidate)
                    stats.verified_pairs += 1

        return KDatasetResult(vanilla_dataset=valid_vanilla, k_dataset=k_dataset, stats=stats)

    # ------------------------------------------------------------------ helpers
    def _analyze(self, code: str) -> AnalysisResult | None:
        try:
            return self.analyzer.analyze_source(code)
        except VerilogError:
            return None

    def _interface_description(self, code: str) -> str:
        try:
            module = parse_module(code)
        except VerilogError:
            return ""
        inputs = [port.name for port in module.ports if port.direction and port.direction.value == "input"]
        outputs = [port.name for port in module.ports if port.direction and port.direction.value == "output"]
        parts = []
        if inputs:
            parts.append("inputs " + ", ".join(inputs))
        if outputs:
            parts.append("outputs " + ", ".join(outputs))
        return ("The interface has " + " and ".join(parts) + ".") if parts else ""

