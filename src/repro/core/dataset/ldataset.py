"""Logical-enhanced dataset (L-dataset) generation — steps 9-12 of Fig. 2.

The flow covers the paper's two categories of logical reasoning in Verilog
(step 9):

* **Concise expression** — the task can be reduced to a compact logical
  expression.  We generate Karnaugh-map / truth-table style problems
  (step 10), minimise them with Quine–McCluskey, and pair the minimal
  ``assign``-style implementation with an instruction that presents the
  input-output values.
* **Faithful implementation** — no concise form is intended; the instruction
  spells out an if/elif rule chain (or an explicit truth table with corner cases)
  and the code implements it literally with a ``case``/``if-else`` structure,
  including the ``default`` arm.

Step 11 embeds the generated expressions and values into code and instruction
templates; step 12 applies instruction evolution for linguistic variety while
preserving the logical core.  Every produced pair is compile-verified.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ...logic.bittable import BitTable
from ...logic.expr import BoolExpr, RandomExpressionGenerator, expr_from_minterms
from ...logic.kmap import KarnaughMap
from ...logic.minimize import literal_cost, minimize_minterms
from ...logic.synth import SynthesisRequest, expression_to_module, truth_table_to_module
from ...symbolic.truth_table import TruthTable
from ...verilog.analyzer import Attribute, Topic
from ...verilog.syntax_checker import SyntaxChecker
from .evolution import InstructionEvolver
from .records import InstructionCodePair, InstructionDataset, PairOrigin

_CONCISE_TEMPLATES = [
    (
        "Implement the logic described by the truth table below as the most concise logical "
        "expression you can find, in a module named {module}.\n{table}"
    ),
    (
        "The Karnaugh map of output {output} over inputs {inputs} is given below. Derive the "
        "minimal sum-of-products expression and implement it in module {module}.\n{table}"
    ),
    (
        "Module {module} must drive {output} according to the following input-output values. "
        "Simplify the logic before writing the assign statement.\n{table}"
    ),
]

_FAITHFUL_TEMPLATES = [
    (
        "Implement the logic below exactly as specified in a module named {module}:\n{rules}\n"
        "For any combination not listed, set {output} to 0."
    ),
    (
        "Create module {module} that follows these rules literally, without simplification:\n"
        "{rules}\nAll remaining input combinations must produce {output} = 0."
    ),
    (
        "Faithfully translate the following requirement list into Verilog (module {module}):\n"
        "{rules}\nRemember to handle the default case."
    ),
]


@dataclass
class LDatasetConfig:
    """Configuration of the L-dataset generator."""

    num_concise: int = 60
    num_faithful: int = 40
    variable_pool: tuple[str, ...] = ("a", "b", "c", "d")
    min_variables: int = 2
    max_variables: int = 4
    seed: int = 7
    evolve_instructions: bool = True


@dataclass
class LDatasetStats:
    """Per-stage counts of the L-dataset flow."""

    generated_expressions: int = 0
    concise_pairs: int = 0
    faithful_pairs: int = 0
    evolved_pairs: int = 0
    verified_pairs: int = 0


@dataclass
class LDatasetResult:
    """Output of the L-dataset generation flow."""

    l_dataset: InstructionDataset
    stats: LDatasetStats = field(default_factory=LDatasetStats)


class LDatasetGenerator:
    """Run the full L-dataset generation flow."""

    def __init__(self, config: LDatasetConfig | None = None):
        self.config = config or LDatasetConfig()
        self.rng = random.Random(self.config.seed)
        self.expression_generator = RandomExpressionGenerator(seed=self.config.seed)
        self.evolver = InstructionEvolver(seed=self.config.seed + 1)
        self.checker = SyntaxChecker()

    def generate(self) -> LDatasetResult:
        """Generate the L-dataset."""
        stats = LDatasetStats()
        dataset = InstructionDataset(name="l-dataset")

        for index in range(self.config.num_concise):
            pair = self._concise_pair(index, stats)
            if pair is not None:
                dataset.add(pair)
        for index in range(self.config.num_faithful):
            pair = self._faithful_pair(index, stats)
            if pair is not None:
                dataset.add(pair)
        return LDatasetResult(l_dataset=dataset, stats=stats)

    # ------------------------------------------------------------------ concise category
    def _concise_pair(self, index: int, stats: LDatasetStats) -> InstructionCodePair | None:
        variables = self._pick_variables()
        minterms = self._random_minterms(len(variables))
        stats.generated_expressions += 1
        minimal = minimize_minterms(variables, minterms)
        if not minimal.variables():
            return None
        # Bit-exact safety net: the minimised cover must reproduce the sampled
        # on-set, or the instruction and the code would silently disagree.
        if BitTable.from_expr(minimal, variables=variables) != BitTable.from_minterms(
            variables, minterms
        ):
            return None

        table = TruthTable.from_function(
            variables, "out", function={m: 1 for m in minterms}
        )
        module_name = f"concise_logic_{index}"
        presentation = self.rng.choice(["table", "kmap", "rules"])
        if presentation == "kmap" and 2 <= len(variables) <= 4:
            rendered = KarnaughMap.from_minterms(variables, minterms).render()
        elif presentation == "rules":
            rendered = table.interpret()
        else:
            rendered = table.to_prompt_text()

        template = self.rng.choice(_CONCISE_TEMPLATES)
        instruction = template.format(
            module=module_name,
            table=rendered,
            output="out",
            inputs=", ".join(variables),
        )
        code = expression_to_module(
            minimal, SynthesisRequest(module_name=module_name, style="assign")
        )
        stats.concise_pairs += 1
        return self._finalize(
            instruction,
            code,
            stats,
            metadata={
                "category": "concise_expression",
                "presentation": presentation,
                "literal_cost": str(literal_cost(minimal)),
            },
        )

    # ------------------------------------------------------------------ faithful category
    def _faithful_pair(self, index: int, stats: LDatasetStats) -> InstructionCodePair | None:
        variables = self._pick_variables()
        minterms = self._random_minterms(len(variables))
        stats.generated_expressions += 1
        module_name = f"faithful_logic_{index}"

        rule_lines = []
        rows: dict[int, int] = {}
        listed = sorted(self.rng.sample(range(2 ** len(variables)), k=min(len(minterms) + 1, 2 ** len(variables))))
        for minterm in listed:
            value = 1 if minterm in minterms else 0
            rows[minterm] = value
            conditions = " && ".join(
                f"{name} == {(minterm >> (len(variables) - 1 - position)) & 1}"
                for position, name in enumerate(variables)
            )
            rule_lines.append(f"if {conditions}; out = {value};")
        rules = "\n".join(rule_lines)

        style = self.rng.choice(["case", "if_else"])
        on_minterms = [m for m, value in rows.items() if value]
        if style == "if_else" and not on_minterms:
            # An all-zero rule list cannot be expressed as a literal if/else chain
            # over minterms; the case template handles it via the default arm.
            style = "case"
        if style == "case":
            code = truth_table_to_module(
                variables, rows, SynthesisRequest(module_name=module_name, style="case")
            )
        else:
            expression = expr_from_minterms(variables, on_minterms)
            code = expression_to_module(
                expression, SynthesisRequest(module_name=module_name, style="if_else")
            )

        template = self.rng.choice(_FAITHFUL_TEMPLATES)
        instruction = template.format(module=module_name, rules=rules, output="out")
        stats.faithful_pairs += 1
        return self._finalize(
            instruction,
            code,
            stats,
            metadata={"category": "faithful_implementation", "style": style},
        )

    # ------------------------------------------------------------------ shared helpers
    def _pick_variables(self) -> list[str]:
        count = self.rng.randint(self.config.min_variables, self.config.max_variables)
        return list(self.config.variable_pool[:count])

    def _random_minterms(self, num_variables: int) -> list[int]:
        size = 2**num_variables
        count = self.rng.randint(1, size - 1)
        return sorted(self.rng.sample(range(size), count))

    def _finalize(
        self,
        instruction: str,
        code: str,
        stats: LDatasetStats,
        metadata: dict[str, str],
    ) -> InstructionCodePair | None:
        if self.config.evolve_instructions:
            evolution = self.evolver.evolve(instruction)
            instruction = evolution.evolved
            metadata["evolved"] = "true"
            stats.evolved_pairs += 1
        verified = self.checker.check(code).ok
        if not verified:
            return None
        stats.verified_pairs += 1
        return InstructionCodePair(
            instruction=instruction,
            code=code,
            origin=PairOrigin.LOGICAL,
            topics={Topic.COMBINATIONAL},
            attributes={Attribute.COMBINATIONAL_ONLY},
            verified=True,
            metadata=metadata,
        )


def generate_kl_dataset(
    k_dataset: InstructionDataset, l_dataset: InstructionDataset, seed: int = 0
) -> InstructionDataset:
    """Shuffle and combine the K- and L-datasets into the KL-dataset used for fine-tuning."""
    return k_dataset.merged_with(l_dataset, name="kl-dataset", seed=seed)
