"""Record types for instruction-code datasets.

Every dataset in the generation flow of Fig. 2 (vanilla dataset, K-dataset,
L-dataset, and their union the KL-dataset) is a collection of
:class:`InstructionCodePair` records plus provenance/statistics metadata.
"""

from __future__ import annotations

import enum
import json
from dataclasses import asdict, dataclass, field
from typing import Iterable, Iterator

from ...verilog.analyzer import Attribute, Topic


class PairOrigin(enum.Enum):
    """Which stage of the generation flow produced a pair."""

    VANILLA = "vanilla"
    KNOWLEDGE = "knowledge"
    LOGICAL = "logical"
    EXEMPLAR = "exemplar"


@dataclass
class InstructionCodePair:
    """A single instruction-code training pair.

    Attributes:
        instruction: natural-language instruction, phrased for a CodeGen LLM.
        code: the Verilog implementation.
        origin: which dataset-generation stage produced the pair.
        topics: design topics covered by the code.
        attributes: Verilog-specific attributes covered by the code.
        verified: whether the code passed the compile-verification gate.
        exemplar_name: name of the exemplar that guided rewriting, if any.
        metadata: free-form extra fields (e.g. logic category, evolution applied).
    """

    instruction: str
    code: str
    origin: PairOrigin = PairOrigin.VANILLA
    topics: set[Topic] = field(default_factory=set)
    attributes: set[Attribute] = field(default_factory=set)
    verified: bool = False
    exemplar_name: str | None = None
    metadata: dict[str, str] = field(default_factory=dict)

    def to_dict(self) -> dict:
        """JSON-serialisable representation (enums become their values)."""
        data = asdict(self)
        data["origin"] = self.origin.value
        data["topics"] = sorted(topic.value for topic in self.topics)
        data["attributes"] = sorted(attribute.value for attribute in self.attributes)
        return data


@dataclass
class DatasetStats:
    """Summary statistics of a dataset (mirrors the counts reported in §III-C/D)."""

    total_pairs: int = 0
    verified_pairs: int = 0
    by_origin: dict[str, int] = field(default_factory=dict)
    by_topic: dict[str, int] = field(default_factory=dict)
    by_attribute: dict[str, int] = field(default_factory=dict)

    @property
    def verification_rate(self) -> float:
        """Fraction of pairs that passed compile verification."""
        if self.total_pairs == 0:
            return 0.0
        return self.verified_pairs / self.total_pairs


@dataclass
class InstructionDataset:
    """A named collection of instruction-code pairs."""

    name: str
    pairs: list[InstructionCodePair] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.pairs)

    def __iter__(self) -> Iterator[InstructionCodePair]:
        return iter(self.pairs)

    def add(self, pair: InstructionCodePair) -> None:
        self.pairs.append(pair)

    def extend(self, pairs: Iterable[InstructionCodePair]) -> None:
        self.pairs.extend(pairs)

    def verified_only(self) -> "InstructionDataset":
        """Return a new dataset containing only compile-verified pairs."""
        return InstructionDataset(
            name=f"{self.name}-verified",
            pairs=[pair for pair in self.pairs if pair.verified],
        )

    def subset(self, fraction: float, seed: int = 0) -> "InstructionDataset":
        """Return a deterministic random subset (used by the Fig. 4 ablation)."""
        import random as _random

        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be between 0 and 1")
        rng = _random.Random(seed)
        count = round(len(self.pairs) * fraction)
        indices = list(range(len(self.pairs)))
        rng.shuffle(indices)
        selected = sorted(indices[:count])
        return InstructionDataset(
            name=f"{self.name}-{int(fraction * 100)}pct",
            pairs=[self.pairs[index] for index in selected],
        )

    def merged_with(self, other: "InstructionDataset", name: str | None = None, seed: int = 0) -> "InstructionDataset":
        """Shuffle-merge two datasets (the K+L → KL combination step)."""
        import random as _random

        rng = _random.Random(seed)
        pairs = list(self.pairs) + list(other.pairs)
        rng.shuffle(pairs)
        return InstructionDataset(name=name or f"{self.name}+{other.name}", pairs=pairs)

    def stats(self) -> DatasetStats:
        """Compute summary statistics."""
        stats = DatasetStats(total_pairs=len(self.pairs))
        for pair in self.pairs:
            if pair.verified:
                stats.verified_pairs += 1
            stats.by_origin[pair.origin.value] = stats.by_origin.get(pair.origin.value, 0) + 1
            for topic in pair.topics:
                stats.by_topic[topic.value] = stats.by_topic.get(topic.value, 0) + 1
            for attribute in pair.attributes:
                stats.by_attribute[attribute.value] = stats.by_attribute.get(attribute.value, 0) + 1
        return stats

    # ------------------------------------------------------------------ persistence
    def to_jsonl(self) -> str:
        """Serialise as JSON-lines text."""
        return "\n".join(json.dumps(pair.to_dict()) for pair in self.pairs)

    @classmethod
    def from_jsonl(cls, name: str, text: str) -> "InstructionDataset":
        """Load a dataset from JSON-lines text produced by :meth:`to_jsonl`."""
        dataset = cls(name=name)
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            raw = json.loads(line)
            dataset.add(
                InstructionCodePair(
                    instruction=raw["instruction"],
                    code=raw["code"],
                    origin=PairOrigin(raw.get("origin", "vanilla")),
                    topics={Topic(value) for value in raw.get("topics", [])},
                    attributes={Attribute(value) for value in raw.get("attributes", [])},
                    verified=raw.get("verified", False),
                    exemplar_name=raw.get("exemplar_name"),
                    metadata=raw.get("metadata", {}),
                )
            )
        return dataset
