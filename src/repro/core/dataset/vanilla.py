"""Vanilla instruction-code pair generation (step 5 of the K-dataset flow).

The paper uses GPT-3.5 to attach "basic, general-purpose instructions" to the raw
GitHub code samples.  :class:`SimulatedDescriptionWriter` plays that role: it
inspects the module (ports, detected topic) and produces a deliberately generic,
engineer-misaligned description — exactly the kind of trivial phrasing Table I
contrasts with HDL-engineer practice.  Samples that do not even parse get a
best-effort description from their raw text, again mirroring how a closed-source
LLM happily describes broken code.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ...verilog.analyzer import ModuleAnalyzer, Topic
from ...verilog.errors import VerilogError
from ...verilog.parser import parse_module
from .corpus import CorpusSample
from .records import InstructionCodePair, InstructionDataset, PairOrigin

_TOPIC_PHRASES: dict[Topic, str] = {
    Topic.FSM: "a state machine",
    Topic.COUNTER: "a counter",
    Topic.SHIFT_REGISTER: "a shift register",
    Topic.ALU: "an arithmetic logic unit",
    Topic.CLOCK_DIVIDER: "a clock divider",
    Topic.MULTIPLEXER: "a multiplexer",
    Topic.DECODER: "a decoder",
    Topic.ENCODER: "an encoder",
    Topic.ADDER: "an adder",
    Topic.COMPARATOR: "a comparator",
    Topic.REGISTER: "a register",
    Topic.MEMORY: "a memory block",
    Topic.COMBINATIONAL: "some combinational logic",
}

_TEMPLATES = [
    "Write a Verilog module called {name} that implements {thing}. It has {ports}.",
    "Please create a Verilog design named {name}. The module should behave like {thing} and use {ports}.",
    "Implement {thing} in Verilog. Name the module {name} and include {ports}.",
    "Generate Verilog code for a module {name}, which is {thing} with {ports}.",
]


@dataclass
class SimulatedDescriptionWriter:
    """Stand-in for the closed-source LLM that writes vanilla instructions."""

    seed: int = 0

    def __post_init__(self) -> None:
        self.rng = random.Random(self.seed)
        self.analyzer = ModuleAnalyzer()

    def describe(self, code: str) -> str:
        """Produce a vanilla (generic) instruction for a code sample."""
        try:
            module = parse_module(code)
        except VerilogError:
            return self.describe_unparsable(code)
        return self.describe_module(module, self.analyzer.analyze(module))

    def describe_module(self, module, analysis) -> str:
        """Describe an already parsed and analysed module (avoids re-parsing)."""
        thing = _TOPIC_PHRASES.get(analysis.primary_topic, "some logic")
        inputs = [port.name for port in module.ports if port.direction and port.direction.value == "input"]
        outputs = [port.name for port in module.ports if port.direction and port.direction.value == "output"]
        ports = self._render_ports(inputs, outputs)
        template = self.rng.choice(_TEMPLATES)
        return template.format(name=module.name, thing=thing, ports=ports)

    def _render_ports(self, inputs: list[str], outputs: list[str]) -> str:
        parts: list[str] = []
        if inputs:
            parts.append("inputs " + ", ".join(inputs))
        if outputs:
            parts.append("outputs " + ", ".join(outputs))
        return " and ".join(parts) if parts else "no ports"

    def describe_unparsable(self, code: str) -> str:
        """Best-effort description for code that does not parse."""
        first_line = next((line.strip() for line in code.splitlines() if line.strip()), "a module")
        return f"Write Verilog code similar to the snippet starting with '{first_line[:60]}'."


@dataclass
class VanillaDatasetGenerator:
    """Turn corpus samples into the vanilla instruction-code dataset."""

    seed: int = 0

    def generate(self, samples: list[CorpusSample]) -> InstructionDataset:
        """Generate one vanilla pair per corpus sample (no filtering yet).

        Each sample is parsed and analysed exactly once; the describer and the
        topic/attribute tagging share the result instead of re-parsing.
        """
        writer = SimulatedDescriptionWriter(seed=self.seed)
        analyzer = writer.analyzer
        dataset = InstructionDataset(name="vanilla")
        for sample in samples:
            try:
                module = parse_module(sample.code)
            except VerilogError:
                module = None
            if module is None:
                analysis = None
                instruction = writer.describe_unparsable(sample.code)
            else:
                analysis = analyzer.analyze(module)
                instruction = writer.describe_module(module, analysis)
            pair = InstructionCodePair(
                instruction=instruction,
                code=sample.code,
                origin=PairOrigin.VANILLA,
                metadata={"path": sample.path},
            )
            if analysis is not None:
                pair.topics = set(analysis.topics)
                pair.attributes = set(analysis.attributes)
            dataset.add(pair)
        return dataset
