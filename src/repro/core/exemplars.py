"""Curated high-quality exemplar library (step 4 of the K-dataset flow).

The paper curates exemplars "derived from textbook exercises and manually designed
examples that cover a wide range of Verilog knowledge", covering conventions for
commonly implemented modules (FSMs, clock dividers, counters, shift registers,
ALUs) and critical Verilog attributes (synchronous vs asynchronous reset, positive
vs negative clock edge, active-high vs active-low enables).

Each :class:`Exemplar` couples an HDL-engineer-style instruction with a reference
implementation, its topic, and the attributes it demonstrates.  The exemplar
library drives:

* topic matching in the K-dataset flow (vanilla pairs are matched to exemplars by
  topic/attribute, step 6);
* instruction rewriting (vanilla instructions are aligned to the exemplar's
  questioning style, step 7);
* the knowledge base of a fine-tuned simulated CodeGen-LLM.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..verilog.analyzer import Attribute, Topic


@dataclass(frozen=True)
class Exemplar:
    """A curated instruction-code exemplar."""

    name: str
    topic: Topic
    attributes: frozenset[Attribute]
    instruction: str
    code: str
    source: str = "manual"
    notes: str = ""


def _exemplar(
    name: str,
    topic: Topic,
    attributes: set[Attribute],
    instruction: str,
    code: str,
    source: str = "textbook",
    notes: str = "",
) -> Exemplar:
    return Exemplar(
        name=name,
        topic=topic,
        attributes=frozenset(attributes),
        instruction=instruction.strip(),
        code=code.strip() + "\n",
        source=source,
        notes=notes,
    )


# --------------------------------------------------------------------------- FSMs
_FSM_SEQUENCE_DETECTOR = _exemplar(
    name="fsm_sequence_detector_101",
    topic=Topic.FSM,
    attributes={Attribute.SEQUENTIAL, Attribute.ASYNC_RESET, Attribute.POSEDGE_CLOCK},
    instruction=(
        "Design a Moore finite state machine that detects the serial input sequence 101 on "
        "`din`. The FSM has states IDLE, GOT1 and GOT10; assert `detected` for one cycle when "
        "the full sequence has been observed. Use a conventional three-block FSM coding style: "
        "a state register with asynchronous active-high reset on the positive clock edge, "
        "combinational next-state logic, and combinational output logic."
    ),
    code="""
module seq_detector_101 (
    input clk,
    input rst,
    input din,
    output reg detected
);
    localparam IDLE  = 2'd0;
    localparam GOT1  = 2'd1;
    localparam GOT10 = 2'd2;

    reg [1:0] state, next_state;

    // State register with asynchronous reset.
    always @(posedge clk or posedge rst) begin
        if (rst)
            state <= IDLE;
        else
            state <= next_state;
    end

    // Next-state logic.
    always @(*) begin
        next_state = state;
        case (state)
            IDLE:  next_state = din ? GOT1 : IDLE;
            GOT1:  next_state = din ? GOT1 : GOT10;
            GOT10: next_state = din ? GOT1 : IDLE;
            default: next_state = IDLE;
        endcase
    end

    // Output logic.
    always @(*) begin
        detected = (state == GOT10) && din;
    end
endmodule
""",
    notes="Conventional three-block FSM: state transition, next-state logic, output logic.",
)

_FSM_TWO_STATE_TOGGLE = _exemplar(
    name="fsm_two_state_moore",
    topic=Topic.FSM,
    attributes={Attribute.SEQUENTIAL, Attribute.SYNC_RESET, Attribute.POSEDGE_CLOCK},
    instruction=(
        "Implement a two-state Moore state machine with states A (out=0) and B (out=1). "
        "From state A, transition to B when x is 0 and stay in A when x is 1. From state B, "
        "transition to A when x is 0 and stay in B when x is 1. Reset synchronously to state A."
    ),
    code="""
module two_state_fsm (
    input clk,
    input rst,
    input x,
    output reg out
);
    localparam A = 1'b0;
    localparam B = 1'b1;

    reg state, next_state;

    always @(posedge clk) begin
        if (rst)
            state <= A;
        else
            state <= next_state;
    end

    always @(*) begin
        case (state)
            A: next_state = x ? A : B;
            B: next_state = x ? B : A;
            default: next_state = A;
        endcase
    end

    always @(*) begin
        out = (state == B);
    end
endmodule
""",
)

# --------------------------------------------------------------------------- counters
_COUNTER_UP = _exemplar(
    name="counter_up_with_enable",
    topic=Topic.COUNTER,
    attributes={
        Attribute.SEQUENTIAL,
        Attribute.SYNC_RESET,
        Attribute.POSEDGE_CLOCK,
        Attribute.ACTIVE_HIGH_ENABLE,
        Attribute.PARAMETERIZED,
    },
    instruction=(
        "Design a parameterized WIDTH-bit up counter with a synchronous active-high reset and an "
        "active-high enable. On every rising clock edge, clear the count to zero when rst is "
        "asserted; otherwise increment the count by one only when en is high."
    ),
    code="""
module up_counter #(parameter WIDTH = 8) (
    input clk,
    input rst,
    input en,
    output reg [WIDTH-1:0] count
);
    always @(posedge clk) begin
        if (rst)
            count <= {WIDTH{1'b0}};
        else if (en)
            count <= count + 1'b1;
    end
endmodule
""",
)

_COUNTER_UPDOWN = _exemplar(
    name="counter_up_down",
    topic=Topic.COUNTER,
    attributes={Attribute.SEQUENTIAL, Attribute.ASYNC_RESET, Attribute.POSEDGE_CLOCK},
    instruction=(
        "Implement a 4-bit up/down counter. When up_down is 1 the counter counts up, otherwise it "
        "counts down. Use an asynchronous active-low reset rst_n that clears the counter to 0."
    ),
    code="""
module up_down_counter (
    input clk,
    input rst_n,
    input up_down,
    output reg [3:0] count
);
    always @(posedge clk or negedge rst_n) begin
        if (!rst_n)
            count <= 4'd0;
        else if (up_down)
            count <= count + 4'd1;
        else
            count <= count - 4'd1;
    end
endmodule
""",
)

_COUNTER_MOD10 = _exemplar(
    name="counter_mod10",
    topic=Topic.COUNTER,
    attributes={Attribute.SEQUENTIAL, Attribute.SYNC_RESET, Attribute.POSEDGE_CLOCK},
    instruction=(
        "Design a decade (mod-10) counter that counts from 0 to 9 and wraps back to 0. Assert the "
        "carry output for one cycle when the counter value is 9. Use a synchronous active-high reset."
    ),
    code="""
module mod10_counter (
    input clk,
    input rst,
    output reg [3:0] count,
    output carry
);
    assign carry = (count == 4'd9);

    always @(posedge clk) begin
        if (rst)
            count <= 4'd0;
        else if (count == 4'd9)
            count <= 4'd0;
        else
            count <= count + 4'd1;
    end
endmodule
""",
)

# --------------------------------------------------------------------------- shift registers
_SHIFT_SIPO = _exemplar(
    name="shift_register_sipo",
    topic=Topic.SHIFT_REGISTER,
    attributes={Attribute.SEQUENTIAL, Attribute.SYNC_RESET, Attribute.POSEDGE_CLOCK},
    instruction=(
        "Implement an 8-bit serial-in parallel-out (SIPO) shift register. On each rising clock "
        "edge, shift the register left by one and load the serial input into the least significant "
        "bit. A synchronous active-high reset clears the register."
    ),
    code="""
module sipo_shift_register (
    input clk,
    input rst,
    input serial_in,
    output reg [7:0] parallel_out
);
    always @(posedge clk) begin
        if (rst)
            parallel_out <= 8'd0;
        else
            parallel_out <= {parallel_out[6:0], serial_in};
    end
endmodule
""",
)

_SHIFT_LFSR = _exemplar(
    name="shift_register_lfsr",
    topic=Topic.SHIFT_REGISTER,
    attributes={Attribute.SEQUENTIAL, Attribute.ASYNC_RESET, Attribute.POSEDGE_CLOCK},
    instruction=(
        "Design a 4-bit Fibonacci LFSR with taps at bits 3 and 2. On reset (asynchronous, active "
        "high) load the register with 4'b0001. On each clock edge shift left and insert the "
        "feedback bit (xor of the tap bits) at the least significant position."
    ),
    code="""
module lfsr4 (
    input clk,
    input rst,
    output reg [3:0] lfsr
);
    wire feedback;
    assign feedback = lfsr[3] ^ lfsr[2];

    always @(posedge clk or posedge rst) begin
        if (rst)
            lfsr <= 4'b0001;
        else
            lfsr <= {lfsr[2:0], feedback};
    end
endmodule
""",
)

# --------------------------------------------------------------------------- ALU / arithmetic
_ALU = _exemplar(
    name="alu_4op",
    topic=Topic.ALU,
    attributes={Attribute.COMBINATIONAL_ONLY, Attribute.PARAMETERIZED},
    instruction=(
        "Design a parameterized WIDTH-bit ALU with a 2-bit opcode: 00 adds the operands, 01 "
        "subtracts b from a, 10 computes bitwise AND, and 11 computes bitwise OR. The ALU is "
        "purely combinational and must define the result for every opcode (include a default arm)."
    ),
    code="""
module alu #(parameter WIDTH = 8) (
    input [WIDTH-1:0] a,
    input [WIDTH-1:0] b,
    input [1:0] opcode,
    output reg [WIDTH-1:0] result
);
    always @(*) begin
        case (opcode)
            2'b00: result = a + b;
            2'b01: result = a - b;
            2'b10: result = a & b;
            2'b11: result = a | b;
            default: result = {WIDTH{1'b0}};
        endcase
    end
endmodule
""",
)

_ADDER = _exemplar(
    name="adder_with_carry",
    topic=Topic.ADDER,
    attributes={Attribute.COMBINATIONAL_ONLY},
    instruction=(
        "Implement a 4-bit ripple-style adder that produces a 4-bit sum and a carry-out. The "
        "design is combinational: use a single continuous assignment with concatenation for the "
        "carry and sum."
    ),
    code="""
module adder4 (
    input [3:0] a,
    input [3:0] b,
    output [3:0] sum,
    output carry_out
);
    assign {carry_out, sum} = a + b;
endmodule
""",
)

# --------------------------------------------------------------------------- clock divider
_CLOCK_DIVIDER = _exemplar(
    name="clock_divider_by2n",
    topic=Topic.CLOCK_DIVIDER,
    attributes={
        Attribute.SEQUENTIAL,
        Attribute.ASYNC_RESET,
        Attribute.POSEDGE_CLOCK,
        Attribute.PARAMETERIZED,
    },
    instruction=(
        "Design a clock divider that divides the input clock by 2*DIVISOR. Use a counter that "
        "counts up to DIVISOR-1 and toggles the output clock when it wraps. Include an "
        "asynchronous active-high reset that clears the counter and drives clk_out low."
    ),
    code="""
module clock_divider #(parameter DIVISOR = 4) (
    input clk,
    input rst,
    output reg clk_out
);
    reg [7:0] counter;

    always @(posedge clk or posedge rst) begin
        if (rst) begin
            counter <= 8'd0;
            clk_out <= 1'b0;
        end else if (counter == DIVISOR - 1) begin
            counter <= 8'd0;
            clk_out <= ~clk_out;
        end else begin
            counter <= counter + 8'd1;
        end
    end
endmodule
""",
)

# --------------------------------------------------------------------------- registers
_DFF_ASYNC = _exemplar(
    name="dff_async_reset",
    topic=Topic.REGISTER,
    attributes={Attribute.SEQUENTIAL, Attribute.ASYNC_RESET, Attribute.POSEDGE_CLOCK},
    instruction=(
        "Implement a D flip-flop with an asynchronous active-low reset rst_n. The flop captures d "
        "on the rising edge of clk, and q is cleared immediately when rst_n goes low."
    ),
    code="""
module dff_async (
    input clk,
    input rst_n,
    input d,
    output reg q
);
    always @(posedge clk or negedge rst_n) begin
        if (!rst_n)
            q <= 1'b0;
        else
            q <= d;
    end
endmodule
""",
)

_REGISTER_ENABLE = _exemplar(
    name="register_with_enable",
    topic=Topic.REGISTER,
    attributes={
        Attribute.SEQUENTIAL,
        Attribute.SYNC_RESET,
        Attribute.POSEDGE_CLOCK,
        Attribute.ACTIVE_LOW_ENABLE,
        Attribute.PARAMETERIZED,
    },
    instruction=(
        "Design a WIDTH-bit register with a synchronous active-high reset and an active-low "
        "enable en_n. The register loads d on the rising clock edge only when en_n is low."
    ),
    code="""
module register_en #(parameter WIDTH = 8) (
    input clk,
    input rst,
    input en_n,
    input [WIDTH-1:0] d,
    output reg [WIDTH-1:0] q
);
    always @(posedge clk) begin
        if (rst)
            q <= {WIDTH{1'b0}};
        else if (!en_n)
            q <= d;
    end
endmodule
""",
)

_DFF_NEGEDGE = _exemplar(
    name="dff_negedge",
    topic=Topic.REGISTER,
    attributes={Attribute.SEQUENTIAL, Attribute.NEGEDGE_CLOCK, Attribute.SYNC_RESET},
    instruction=(
        "Implement a D flip-flop that is sensitive to the negative (falling) edge of the clock, "
        "with a synchronous active-high reset."
    ),
    code="""
module dff_negedge (
    input clk,
    input rst,
    input d,
    output reg q
);
    always @(negedge clk) begin
        if (rst)
            q <= 1'b0;
        else
            q <= d;
    end
endmodule
""",
)

# --------------------------------------------------------------------------- combinational blocks
_MUX4 = _exemplar(
    name="mux4_to_1",
    topic=Topic.MULTIPLEXER,
    attributes={Attribute.COMBINATIONAL_ONLY, Attribute.PARAMETERIZED},
    instruction=(
        "Implement a parameterized 4-to-1 multiplexer with WIDTH-bit data inputs and a 2-bit "
        "select. Use an always @(*) block with a case statement and a default arm."
    ),
    code="""
module mux4 #(parameter WIDTH = 8) (
    input [WIDTH-1:0] in0,
    input [WIDTH-1:0] in1,
    input [WIDTH-1:0] in2,
    input [WIDTH-1:0] in3,
    input [1:0] sel,
    output reg [WIDTH-1:0] out
);
    always @(*) begin
        case (sel)
            2'b00: out = in0;
            2'b01: out = in1;
            2'b10: out = in2;
            2'b11: out = in3;
            default: out = {WIDTH{1'b0}};
        endcase
    end
endmodule
""",
)

_DECODER = _exemplar(
    name="decoder_3to8",
    topic=Topic.DECODER,
    attributes={Attribute.COMBINATIONAL_ONLY, Attribute.ACTIVE_HIGH_ENABLE},
    instruction=(
        "Implement a 3-to-8 decoder with an active-high enable. When en is high exactly one of "
        "the eight output bits (selected by the 3-bit input) is high; when en is low all outputs "
        "are zero."
    ),
    code="""
module decoder3to8 (
    input en,
    input [2:0] sel,
    output reg [7:0] out
);
    always @(*) begin
        if (en)
            out = 8'd1 << sel;
        else
            out = 8'd0;
    end
endmodule
""",
)

_COMPARATOR = _exemplar(
    name="comparator_unsigned",
    topic=Topic.COMPARATOR,
    attributes={Attribute.COMBINATIONAL_ONLY, Attribute.PARAMETERIZED},
    instruction=(
        "Design a parameterized unsigned comparator producing three one-hot outputs: gt when a>b, "
        "eq when a==b, and lt when a<b. The design is purely combinational."
    ),
    code="""
module comparator #(parameter WIDTH = 8) (
    input [WIDTH-1:0] a,
    input [WIDTH-1:0] b,
    output gt,
    output eq,
    output lt
);
    assign gt = (a > b);
    assign eq = (a == b);
    assign lt = (a < b);
endmodule
""",
)


#: The full curated exemplar library.
EXEMPLAR_LIBRARY: list[Exemplar] = [
    _FSM_SEQUENCE_DETECTOR,
    _FSM_TWO_STATE_TOGGLE,
    _COUNTER_UP,
    _COUNTER_UPDOWN,
    _COUNTER_MOD10,
    _SHIFT_SIPO,
    _SHIFT_LFSR,
    _ALU,
    _ADDER,
    _CLOCK_DIVIDER,
    _DFF_ASYNC,
    _REGISTER_ENABLE,
    _DFF_NEGEDGE,
    _MUX4,
    _DECODER,
    _COMPARATOR,
]


@dataclass
class ExemplarLibrary:
    """Queryable view over the curated exemplars."""

    exemplars: list[Exemplar] = field(default_factory=lambda: list(EXEMPLAR_LIBRARY))

    def __len__(self) -> int:
        return len(self.exemplars)

    def __iter__(self):
        return iter(self.exemplars)

    def by_topic(self, topic: Topic) -> list[Exemplar]:
        """Exemplars matching a topic."""
        return [exemplar for exemplar in self.exemplars if exemplar.topic is topic]

    def by_attribute(self, attribute: Attribute) -> list[Exemplar]:
        """Exemplars demonstrating an attribute."""
        return [exemplar for exemplar in self.exemplars if attribute in exemplar.attributes]

    def topics(self) -> set[Topic]:
        """All topics covered by the library."""
        return {exemplar.topic for exemplar in self.exemplars}

    def attributes(self) -> set[Attribute]:
        """All attributes covered by the library."""
        covered: set[Attribute] = set()
        for exemplar in self.exemplars:
            covered |= exemplar.attributes
        return covered

    def match(self, topics: set[Topic], attributes: set[Attribute]) -> list[Exemplar]:
        """Exemplars relevant to a module's detected topics/attributes.

        An exemplar matches when its topic is among the module's topics; ties are
        ordered by the number of shared attributes (descending) so the most
        relevant exemplar comes first.
        """
        matched = [exemplar for exemplar in self.exemplars if exemplar.topic in topics]
        matched.sort(key=lambda exemplar: len(exemplar.attributes & attributes), reverse=True)
        return matched
