"""Hallucination detection and classification in generated Verilog code.

Given a prompt, the generated code and (optionally) the outcome of the functional
check, :class:`HallucinationDetector` classifies the defect according to the
Table II taxonomy.  The classification combines:

* the compile result (syntax misapplication);
* structural analysis of the generated module (missing ``default`` arms, missing
  next-state logic, reset/edge/enable attributes) via :mod:`repro.verilog.analyzer`;
* the prompt's symbolic modality (from :mod:`repro.symbolic.detector`) and
  requested Verilog attributes (parsed from the prompt text);
* the functional-check outcome, which separates "looks right structurally but
  behaves wrongly" cases into the symbolic/logical sub-types.

The detector is used by the taxonomy benchmark (Table II) and is also handy for
post-mortem analysis of failing benchmark generations.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from ..symbolic.detector import SymbolicDetector, SymbolicModality
from ..verilog import ast_nodes as ast
from ..verilog.analyzer import Attribute, ModuleAnalyzer, Topic
from ..verilog.syntax_checker import SyntaxChecker
from .taxonomy import HallucinationRecord, HallucinationSubtype


@dataclass
class PromptRequirements:
    """Design requirements extracted from the prompt text."""

    modality: SymbolicModality = SymbolicModality.NONE
    wants_async_reset: bool = False
    wants_sync_reset: bool = False
    wants_negedge_clock: bool = False
    wants_posedge_clock: bool = False
    wants_active_low_enable: bool = False
    wants_active_high_enable: bool = False
    wants_conventional_fsm: bool = False
    has_instructional_logic: bool = False
    mentions_default_behaviour: bool = False


@dataclass
class DetectionReport:
    """Classification outcome for one generated sample."""

    records: list[HallucinationRecord] = field(default_factory=list)
    requirements: PromptRequirements = field(default_factory=PromptRequirements)

    @property
    def primary(self) -> HallucinationRecord | None:
        """The highest-priority hallucination found, if any."""
        return self.records[0] if self.records else None

    @property
    def is_clean(self) -> bool:
        return not self.records


class HallucinationDetector:
    """Classify hallucinations in generated Verilog code."""

    def __init__(self) -> None:
        self.checker = SyntaxChecker()
        self.analyzer = ModuleAnalyzer()
        self.symbolic_detector = SymbolicDetector()

    # ------------------------------------------------------------------ public API
    def classify(
        self,
        prompt: str,
        generated_code: str,
        functional_passed: bool | None = None,
        counterexample: object | None = None,
    ) -> DetectionReport:
        """Classify defects in ``generated_code`` produced for ``prompt``.

        Args:
            prompt: the original instruction text.
            generated_code: the Verilog emitted by the model.
            functional_passed: outcome of the functional check when known;
                ``None`` means "not run".
            counterexample: optional concrete failing assignment — a
                :class:`repro.formal.Counterexample` (or anything with the same
                ``inputs``/``dut_outputs``/``reference_outputs`` attributes).
                Supplying one both marks the functional check as failed and
                sharpens the symbolic-vs-logical subtype split: for truth-table
                prompts, the mismatching row is looked up in the prompt's own
                table to decide whether the table was *misread* (symbolic
                subtype) or correctly read but wrongly *implemented* (logical
                subtype).
        """
        requirements = self.extract_requirements(prompt)
        report = DetectionReport(requirements=requirements)
        if counterexample is not None and functional_passed is None:
            functional_passed = False

        compile_result = self.checker.check(generated_code)
        if not compile_result.ok:
            report.records.append(
                HallucinationRecord(
                    subtype=HallucinationSubtype.VERILOG_SYNTAX_MISAPPLICATION,
                    description="generated code does not compile",
                    evidence="; ".join(compile_result.error_messages[:3]),
                )
            )
            return report

        module = compile_result.source_file.modules[0] if compile_result.source_file else None
        analysis = self.analyzer.analyze(module) if module is not None else None

        # Knowledge: Verilog-specific attribute misunderstanding.
        if analysis is not None:
            attribute_record = self._check_attributes(requirements, analysis.attributes)
            if attribute_record is not None:
                report.records.append(attribute_record)

        # Knowledge: digital design convention misapplication.
        if module is not None and requirements.wants_conventional_fsm:
            convention_record = self._check_fsm_convention(module)
            if convention_record is not None:
                report.records.append(convention_record)

        # Logical: missing default / corner cases.
        if module is not None:
            corner_record = self._check_corner_cases(module)
            if corner_record is not None:
                report.records.append(corner_record)

        # Behavioural mismatches: symbolic or logical depending on the prompt.
        if functional_passed is False and not report.records:
            report.records.append(
                self._classify_functional_failure(prompt, requirements, counterexample)
            )

        return report

    # ------------------------------------------------------------------ requirement extraction
    def extract_requirements(self, prompt: str) -> PromptRequirements:
        """Parse the prompt for symbolic modality and requested attributes."""
        lowered = prompt.lower()
        detection = self.symbolic_detector.detect(prompt)
        requirements = PromptRequirements(modality=detection.modality)
        requirements.wants_async_reset = bool(re.search(r"\basynchronous(ly)?\b|\basync\b", lowered))
        requirements.wants_sync_reset = bool(
            re.search(r"\bsynchronous(ly)?\b|\bsync\b", lowered)
        ) and not requirements.wants_async_reset
        requirements.wants_negedge_clock = bool(
            re.search(r"negative\s+(clock\s+)?edge|falling\s+edge|negedge", lowered)
        )
        requirements.wants_posedge_clock = bool(
            re.search(r"positive\s+(clock\s+)?edge|rising\s+edge|posedge", lowered)
        )
        requirements.wants_active_low_enable = bool(re.search(r"active[- ]low\s+enable", lowered))
        requirements.wants_active_high_enable = bool(re.search(r"active[- ]high\s+enable", lowered))
        requirements.wants_conventional_fsm = bool(
            re.search(r"conventional\s+fsm|fsm|finite\s+state\s+machine|state\s+machine", lowered)
        )
        requirements.has_instructional_logic = bool(
            re.search(r"\bif\b.*\belse\b|\belif\b|\botherwise\b.*;", lowered, re.DOTALL)
        ) and ("==" in prompt or "elif" in lowered)
        requirements.mentions_default_behaviour = "otherwise" in lowered or "default" in lowered
        return requirements

    # ------------------------------------------------------------------ checks
    def _check_attributes(
        self, requirements: PromptRequirements, attributes: set[Attribute]
    ) -> HallucinationRecord | None:
        if requirements.wants_async_reset and Attribute.SYNC_RESET in attributes:
            return HallucinationRecord(
                subtype=HallucinationSubtype.VERILOG_ATTRIBUTE_MISUNDERSTANDING,
                description="prompt requires an asynchronous reset but the code resets synchronously",
            )
        if requirements.wants_sync_reset and Attribute.ASYNC_RESET in attributes:
            return HallucinationRecord(
                subtype=HallucinationSubtype.VERILOG_ATTRIBUTE_MISUNDERSTANDING,
                description="prompt requires a synchronous reset but the code resets asynchronously",
            )
        if requirements.wants_negedge_clock and Attribute.POSEDGE_CLOCK in attributes:
            return HallucinationRecord(
                subtype=HallucinationSubtype.VERILOG_ATTRIBUTE_MISUNDERSTANDING,
                description="prompt requires negative-edge clocking but the code uses the positive edge",
            )
        if requirements.wants_posedge_clock and Attribute.NEGEDGE_CLOCK in attributes and (
            Attribute.POSEDGE_CLOCK not in attributes
        ):
            return HallucinationRecord(
                subtype=HallucinationSubtype.VERILOG_ATTRIBUTE_MISUNDERSTANDING,
                description="prompt requires positive-edge clocking but the code uses the negative edge",
            )
        if requirements.wants_active_low_enable and Attribute.ACTIVE_HIGH_ENABLE in attributes:
            return HallucinationRecord(
                subtype=HallucinationSubtype.VERILOG_ATTRIBUTE_MISUNDERSTANDING,
                description="prompt requires an active-low enable but the code treats it as active-high",
            )
        return None

    def _check_fsm_convention(self, module: ast.Module) -> HallucinationRecord | None:
        analysis = self.analyzer.analyze(module)
        if Topic.FSM not in analysis.topics and not analysis.state_signals:
            return None
        names = {name.lower() for name in self._declared_names(module)}
        has_next_state = any("next" in name for name in names)
        has_state = any(name in names for name in ("state", "current_state", "cs", "present_state"))
        if has_state and not has_next_state:
            return HallucinationRecord(
                subtype=HallucinationSubtype.DESIGN_CONVENTION_MISAPPLICATION,
                description=(
                    "FSM lacks separate next-state logic; a conventional FSM contains a state "
                    "register, next-state logic and output logic"
                ),
            )
        return None

    def _check_corner_cases(self, module: ast.Module) -> HallucinationRecord | None:
        for item in module.items:
            if not isinstance(item, ast.AlwaysBlock):
                continue
            is_combinational = not any(
                entry.edge in (ast.EdgeKind.POSEDGE, ast.EdgeKind.NEGEDGE)
                for entry in item.sensitivity
            )
            if not is_combinational:
                continue
            for case in self._iter_cases(item.body):
                if any(arm.is_default for arm in case.items):
                    continue
                subject_width = self._subject_width(case.subject, module)
                if subject_width is not None and len(case.items) >= 2**subject_width:
                    continue
                return HallucinationRecord(
                    subtype=HallucinationSubtype.INCORRECT_CORNER_CASE_HANDLING,
                    description=(
                        "combinational case statement has no default arm and does not cover "
                        "all input combinations (inferred latch / undefined corner cases)"
                    ),
                )
        return None

    def _classify_functional_failure(
        self,
        prompt: str,
        requirements: PromptRequirements,
        counterexample: object | None = None,
    ) -> HallucinationRecord:
        evidence = self._counterexample_evidence(counterexample)
        if requirements.modality is SymbolicModality.STATE_DIAGRAM:
            return HallucinationRecord(
                subtype=HallucinationSubtype.STATE_DIAGRAM_MISINTERPRETATION,
                description="output mismatches the behaviour specified by the state diagram",
                evidence=evidence,
            )
        if requirements.modality is SymbolicModality.WAVEFORM:
            return HallucinationRecord(
                subtype=HallucinationSubtype.WAVEFORM_MISINTERPRETATION,
                description="output mismatches the behaviour specified by the waveform chart",
                evidence=evidence,
            )
        if requirements.modality is SymbolicModality.TRUTH_TABLE:
            sharpened = self._classify_truth_table_failure(prompt, counterexample)
            if sharpened is not None:
                return sharpened
            return HallucinationRecord(
                subtype=HallucinationSubtype.TRUTH_TABLE_MISINTERPRETATION,
                description="output mismatches the behaviour specified by the truth table",
                evidence=evidence,
            )
        if requirements.has_instructional_logic:
            return HallucinationRecord(
                subtype=HallucinationSubtype.INSTRUCTIONAL_LOGIC_FAILURE,
                description="generated logic does not follow the instruction's if/else structure",
                evidence=evidence,
            )
        return HallucinationRecord(
            subtype=HallucinationSubtype.INCORRECT_LOGICAL_EXPRESSION,
            description="generated logic expression does not match the required behaviour",
            evidence=evidence,
        )

    # ------------------------------------------------------------------ counterexample support
    def _counterexample_evidence(self, counterexample: object | None) -> str:
        if counterexample is None:
            return ""
        describe = getattr(counterexample, "describe", None)
        if callable(describe):
            return str(describe())
        return str(counterexample)

    def _classify_truth_table_failure(
        self, prompt: str, counterexample: object | None
    ) -> HallucinationRecord | None:
        """Sharpen the symbolic-vs-logical split using the failing assignment.

        The counterexample row is looked up in the *prompt's own* truth table:

        * the DUT value disagrees with the table's row → the model misread the
          table (symbolic subtype, with the row as evidence);
        * the DUT value *matches* the table but still fails the reference → the
          table was interpreted correctly and the defect is in the surrounding
          logic (logical subtype).

        Returns ``None`` when no counterexample/table/row is available, leaving
        the coarse modality-based classification in place.
        """
        from ..symbolic.truth_table import TruthTableError, parse_truth_table

        inputs = getattr(counterexample, "inputs", None)
        dut_outputs_steps = getattr(counterexample, "dut_outputs", None)
        if not isinstance(inputs, dict) or not dut_outputs_steps:
            return None
        dut_outputs = dict(dut_outputs_steps[0])
        # Judge only the outputs that actually failed the reference check:
        # a correct (table-agreeing) sibling output must not short-circuit the
        # classification of the genuinely mismatching one.
        mismatching = getattr(counterexample, "mismatching_outputs", None)
        if mismatching:
            failing = {name for step, name in mismatching if step == 0}
            if failing:
                dut_outputs = {
                    name: value for name, value in dut_outputs.items() if name in failing
                }
        try:
            table = parse_truth_table(prompt)
        except TruthTableError:
            return None
        if not set(table.inputs) <= set(inputs):
            return None
        assignment = {name: inputs[name] for name in table.inputs}
        for output, actual in sorted(dut_outputs.items()):
            column = output if output in table.outputs else None
            if column is None and len(table.outputs) == 1:
                column = table.outputs[0]
            if column is None:
                continue
            expected = table.output_for(assignment, column)
            if expected is None:
                continue  # row not listed in a partial table
            row_text = ", ".join(f"{name}={assignment[name]}" for name in table.inputs)
            if int(actual) != expected:
                return HallucinationRecord(
                    subtype=HallucinationSubtype.TRUTH_TABLE_MISINTERPRETATION,
                    description=(
                        "generated code contradicts a row of the prompt's truth table"
                    ),
                    evidence=(
                        f"table row ({row_text}) specifies {column}={expected}, "
                        f"the generated code produces {actual}"
                    ),
                )
            return HallucinationRecord(
                subtype=HallucinationSubtype.INCORRECT_LOGICAL_EXPRESSION,
                description=(
                    "generated code follows the prompt's truth table on the failing "
                    "row; the defect is in the surrounding logic, not the table "
                    "interpretation"
                ),
                evidence=(
                    f"table row ({row_text}) gives {column}={expected} and the "
                    "generated code agrees, yet the reference check still fails"
                ),
            )
        return None

    # ------------------------------------------------------------------ AST helpers
    def _declared_names(self, module: ast.Module) -> list[str]:
        names = list(module.port_names())
        for item in module.items:
            if isinstance(item, ast.NetDeclaration):
                names.extend(item.names)
            elif isinstance(item, ast.ParameterDeclaration):
                names.extend(item.names.keys())
        return names

    def _iter_cases(self, statement: ast.Statement | None):
        if statement is None:
            return
        if isinstance(statement, ast.CaseStatement):
            yield statement
            for arm in statement.items:
                yield from self._iter_cases(arm.body)
        elif isinstance(statement, ast.Block):
            for inner in statement.statements:
                yield from self._iter_cases(inner)
        elif isinstance(statement, ast.IfStatement):
            yield from self._iter_cases(statement.then_branch)
            yield from self._iter_cases(statement.else_branch)
        elif isinstance(statement, (ast.ForLoop, ast.WhileLoop, ast.RepeatLoop)):
            yield from self._iter_cases(statement.body)

    def _subject_width(self, subject: ast.Expression, module: ast.Module) -> int | None:
        if isinstance(subject, ast.Concat):
            total = 0
            for part in subject.parts:
                width = self._subject_width(part, module)
                if width is None:
                    return None
                total += width
            return total
        if isinstance(subject, ast.Identifier):
            for port in module.ports:
                if port.name == subject.name:
                    return _range_width(port.range)
            for item in module.items:
                if isinstance(item, ast.NetDeclaration) and subject.name in item.names:
                    return _range_width(item.range)
                if isinstance(item, ast.PortDeclaration) and subject.name in item.names:
                    return _range_width(item.range)
            return None
        if isinstance(subject, ast.BitSelect):
            return 1
        return None


def _range_width(rng: ast.Range | None) -> int | None:
    if rng is None:
        return 1
    if isinstance(rng.msb, ast.Number) and isinstance(rng.lsb, ast.Number):
        return abs(rng.msb.value - rng.lsb.value) + 1
    return None


def classify_generation(
    prompt: str,
    generated_code: str,
    functional_passed: bool | None = None,
    counterexample: object | None = None,
) -> DetectionReport:
    """Module-level convenience wrapper around :class:`HallucinationDetector`."""
    return HallucinationDetector().classify(
        prompt, generated_code, functional_passed, counterexample=counterexample
    )
