"""Behavioural LLM backends, capability profiles, corruption and fine-tuning."""

from .base import (
    GeneratedSample,
    GenerationConfig,
    GenerationContext,
    LLMBackend,
    TaskDemands,
)
from .corruption import CorruptionInjector, CorruptionOutcome
from .finetune import DatasetMix, FineTuneConfig, FineTuneReport, FineTuner
from .profiles import (
    BASE_MODEL_PROFILES,
    BASELINE_PROFILES,
    CapabilityProfile,
    ProfileRegistry,
)
from .simulated import (
    LOGISTIC_STEEPNESS,
    MODALITY_DEMAND,
    SimulatedCodeGenLLM,
    make_backend,
    success_probability,
)

__all__ = [
    "GeneratedSample",
    "GenerationConfig",
    "GenerationContext",
    "LLMBackend",
    "TaskDemands",
    "CorruptionInjector",
    "CorruptionOutcome",
    "DatasetMix",
    "FineTuneConfig",
    "FineTuneReport",
    "FineTuner",
    "BASE_MODEL_PROFILES",
    "BASELINE_PROFILES",
    "CapabilityProfile",
    "ProfileRegistry",
    "LOGISTIC_STEEPNESS",
    "MODALITY_DEMAND",
    "SimulatedCodeGenLLM",
    "make_backend",
    "success_probability",
]
