"""Abstract interfaces for CodeGen LLM backends.

The paper fine-tunes CodeLlama/DeepSeek-Coder/CodeQwen and queries commercial
LLMs.  None of those are available offline, so this repository defines a backend
interface and ships a *behavioural* implementation
(:mod:`repro.core.llm.simulated`) whose generations are real Verilog text scored
mechanistically by the compiler/simulator substrate.  The interface is
deliberately narrow so that a genuine HuggingFace- or API-backed implementation
could be dropped in without touching the benchmark harness.
"""

from __future__ import annotations

import abc
import dataclasses
from dataclasses import dataclass, field

from ...symbolic.detector import SymbolicModality
from ...verilog.analyzer import Attribute
from ..prompt import ModuleInterface
from ..taxonomy import HallucinationRecord


@dataclass(frozen=True)
class TaskDemands:
    """What a benchmark task demands from the model, on normalised 0-1 scales.

    Attributes:
        modality: the symbolic modality embedded in the task prompt, if any.
        knowledge: how much HDL-convention / Verilog-attribute knowledge is needed.
        logic: how much logical reasoning (expression manipulation, corner cases).
        difficulty: overall structural complexity (ports, state, width).
        required_attributes: Verilog attributes the design must implement
            (asynchronous reset, negative-edge clocking, ...).
    """

    modality: SymbolicModality = SymbolicModality.NONE
    knowledge: float = 0.3
    logic: float = 0.3
    difficulty: float = 0.3
    required_attributes: frozenset[Attribute] = frozenset()

    def clamped(self) -> "TaskDemands":
        """Return a copy with every scalar clamped into [0, 1]."""

        def clamp(value: float) -> float:
            return min(1.0, max(0.0, value))

        return TaskDemands(
            modality=self.modality,
            knowledge=clamp(self.knowledge),
            logic=clamp(self.logic),
            difficulty=clamp(self.difficulty),
            required_attributes=self.required_attributes,
        )


@dataclass
class GenerationConfig:
    """Sampling configuration for a generation request."""

    temperature: float = 0.2
    num_samples: int = 1
    seed: int = 0
    max_new_tokens: int = 2048  # kept for interface fidelity; unused by the simulation


@dataclass
class GenerationContext:
    """Everything a backend needs to produce candidate Verilog for one task.

    Attributes:
        prompt_text: the instruction finally handed to the CodeGen LLM (possibly
            refined by SI-CoT).
        interface: the target module interface.
        reference_source: the task's golden implementation.  The behavioural
            backend treats this as the competence ceiling; a real LLM backend
            would ignore it.
        demands: the task's demand profile.
        prompt_refined: whether SI-CoT already interpreted the symbolic content.
        prompt_style: ``"completion"`` for VerilogEval-v1/RTLLM style prompts or
            ``"spec_to_rtl"`` for the chat-style VerilogEval-v2 prompts.
        task_id: identifier used for deterministic per-task randomness.
    """

    prompt_text: str
    interface: ModuleInterface
    reference_source: str
    demands: TaskDemands = field(default_factory=TaskDemands)
    prompt_refined: bool = False
    prompt_style: str = "completion"
    task_id: str = ""


@dataclass
class GeneratedSample:
    """One candidate completion for a task."""

    code: str
    injected_hallucinations: list[HallucinationRecord] = field(default_factory=list)
    sample_index: int = 0
    temperature: float = 0.2

    @property
    def is_intended_correct(self) -> bool:
        """Whether the behavioural backend intended this sample to be correct."""
        return not self.injected_hallucinations


class LLMBackend(abc.ABC):
    """Interface every CodeGen backend implements."""

    name: str = "backend"

    @abc.abstractmethod
    def generate(self, context: GenerationContext, config: GenerationConfig) -> list[GeneratedSample]:
        """Produce ``config.num_samples`` candidate completions for ``context``."""

    def generate_at(
        self, context: GenerationContext, config: GenerationConfig, index: int
    ) -> GeneratedSample:
        """Produce the sample at ``index`` of the deterministic sample stream.

        The contract (which the resumable run engine relies on) is that for a
        fixed ``(context, config)`` the stream of samples is deterministic and
        per-index addressable: ``generate_at(ctx, cfg, i)`` must equal
        ``generate(ctx, cfg')[i]`` for any ``cfg'`` that only differs in
        ``num_samples > i``.  The default implementation draws the prefix and
        indexes it; deterministic backends should override with a direct
        per-index derivation.
        """
        if index < 0:
            raise IndexError(f"sample index must be non-negative, got {index}")
        prefix = dataclasses.replace(config, num_samples=index + 1)
        return self.generate(context, prefix)[index]

    def generate_one(self, context: GenerationContext, config: GenerationConfig | None = None) -> GeneratedSample:
        """Convenience wrapper returning a single sample."""
        config = config or GenerationConfig(num_samples=1)
        samples = self.generate(context, GenerationConfig(
            temperature=config.temperature,
            num_samples=1,
            seed=config.seed,
        ))
        return samples[0]
