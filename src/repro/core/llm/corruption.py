"""Taxonomy-keyed code corruption (the behavioural model of hallucinations).

When the behavioural CodeGen backend decides that a generation fails along a
taxonomy axis, it does not simply mark the sample as failed: it *produces code
containing the corresponding defect*, exactly as Table II describes them (swapped
FSM states, ``|`` instead of ``&``, missing ``default`` arm, synchronous reset
where an asynchronous one was requested, ``def`` instead of ``module``...).  The
benchmark evaluator then compiles and simulates that code, so pass/fail is decided
mechanistically by the toolchain rather than asserted.

All corruptions operate on source text (with a parse step where needed) and are
deterministic given the random generator handed in by the caller.
"""

from __future__ import annotations

import random
import re
from dataclasses import dataclass

from ...verilog.errors import VerilogError
from ...verilog.parser import parse_module
from ..taxonomy import HallucinationRecord, HallucinationSubtype


@dataclass
class CorruptionOutcome:
    """The result of applying a corruption to a source snippet."""

    code: str
    record: HallucinationRecord
    applied: bool = True


class CorruptionInjector:
    """Apply taxonomy-specific defects to correct Verilog source."""

    def __init__(self, rng: random.Random | None = None):
        self.rng = rng or random.Random(0)

    # ------------------------------------------------------------------ public API
    def inject(self, source: str, subtype: HallucinationSubtype) -> CorruptionOutcome:
        """Inject a defect of the given sub-type, falling back to related defects.

        The fallback chain guarantees the returned code differs from the input so
        that an intended failure rarely slips through as a silent pass.
        """
        handlers = {
            HallucinationSubtype.STATE_DIAGRAM_MISINTERPRETATION: self._swap_states,
            HallucinationSubtype.WAVEFORM_MISINTERPRETATION: self._flip_operator,
            HallucinationSubtype.TRUTH_TABLE_MISINTERPRETATION: self._flip_operator,
            HallucinationSubtype.DESIGN_CONVENTION_MISAPPLICATION: self._break_fsm_convention,
            HallucinationSubtype.VERILOG_SYNTAX_MISAPPLICATION: self._break_syntax,
            HallucinationSubtype.VERILOG_ATTRIBUTE_MISUNDERSTANDING: self._flip_attribute,
            HallucinationSubtype.INCORRECT_LOGICAL_EXPRESSION: self._flip_operator,
            HallucinationSubtype.INCORRECT_CORNER_CASE_HANDLING: self._drop_default,
            HallucinationSubtype.INSTRUCTIONAL_LOGIC_FAILURE: self._corrupt_condition,
        }
        primary = handlers[subtype]
        corrupted = primary(source)
        if corrupted is None:
            # Fall back to progressively more generic corruptions.
            for fallback in (self._flip_operator, self._flip_literal, self._break_syntax):
                corrupted = fallback(source)
                if corrupted is not None:
                    break
        if corrupted is None or corrupted == source:
            return CorruptionOutcome(
                code=source,
                record=HallucinationRecord(subtype=subtype, description="corruption not applicable"),
                applied=False,
            )
        return CorruptionOutcome(
            code=corrupted,
            record=HallucinationRecord(
                subtype=subtype, description=f"injected {subtype.value} defect"
            ),
        )

    # ------------------------------------------------------------------ symbolic
    def _swap_states(self, source: str) -> str | None:
        """Swap two state constants in next-state assignments (Table II, row 1)."""
        state_names = re.findall(r"localparam\s+(\w+)\s*=", source)
        if len(state_names) < 2:
            return self._flip_operator(source)
        first, second = self.rng.sample(state_names, 2)

        # Swap the two states only on the right-hand side of next-state assignments
        # so the module still compiles but transitions go to the wrong state.
        pattern = re.compile(rf"(next_state\s*(?:<=|=)\s*)({first}|{second})\b")
        seen = {"count": 0}

        def replace(match: re.Match[str]) -> str:
            seen["count"] += 1
            target = match.group(2)
            swapped = second if target == first else first
            return match.group(1) + swapped

        corrupted = pattern.sub(replace, source)
        if seen["count"] == 0:
            # No explicit next_state signal; swap the states in case-arm bodies.
            pattern = re.compile(rf"(state\s*<=\s*)({first}|{second})\b")
            corrupted = pattern.sub(replace, source)
        return corrupted if seen["count"] else self._flip_operator(source)

    def _flip_operator(self, source: str) -> str | None:
        """Replace one logical/arithmetic operator with a wrong one (rows 2, 3, 7)."""
        replacements = [
            (r"&&", "||"),
            (r"\|\|", "&&"),
            (r"(?<![&|^~<>=!])&(?![&=])", "|"),
            (r"(?<![&|^~<>=!])\|(?![|=])", "&"),
            (r"\^", "|"),
            (r"(?<![+<>])\+(?![+:])", "&"),
            (r"==", "!="),
        ]
        candidates = []
        for pattern, substitute in replacements:
            for match in re.finditer(pattern, source):
                # Only corrupt occurrences on assignment right-hand sides or in
                # conditions, i.e. after '=' or '(' on the same line.
                line_start = source.rfind("\n", 0, match.start()) + 1
                line = source[line_start : match.start()]
                if "=" in line or "(" in line or "assign" in line:
                    candidates.append((match.start(), match.end(), substitute))
        if not candidates:
            return None
        start, end, substitute = self.rng.choice(candidates)
        return source[:start] + substitute + source[end:]

    def _flip_literal(self, source: str) -> str | None:
        """Flip a single-bit literal 1'b0 <-> 1'b1."""
        matches = list(re.finditer(r"1'b([01])", source))
        if not matches:
            return None
        match = self.rng.choice(matches)
        flipped = "1'b1" if match.group(1) == "0" else "1'b0"
        return source[: match.start()] + flipped + source[match.end() :]

    # ------------------------------------------------------------------ knowledge
    def _break_fsm_convention(self, source: str) -> str | None:
        """Collapse next-state logic into the state register (Table II, row 4)."""
        if "next_state" not in source:
            return self._flip_operator(source)
        # Assigning state directly from the state register freezes the FSM, which is
        # the functional symptom of missing next-state logic.
        corrupted = re.sub(r"state\s*<=\s*next_state\s*;", "state <= state;", source, count=1)
        if corrupted == source:
            corrupted = source.replace("next_state =", "state =", 1)
        return corrupted if corrupted != source else None

    def _break_syntax(self, source: str) -> str | None:
        """Introduce a syntax error (Table II, row 5)."""
        choice = self.rng.choice(["def", "missing_semicolon", "missing_endmodule", "missing_paren"])
        if choice == "def" and "module" in source:
            return source.replace("module", "def", 1)
        if choice == "missing_semicolon" and ";" in source:
            index = source.find(";")
            return source[:index] + source[index + 1 :]
        if choice == "missing_endmodule" and "endmodule" in source:
            return source.replace("endmodule", "end", 1)
        if "(" in source:
            index = source.find("(")
            return source[:index] + source[index + 1 :]
        return None

    def _flip_attribute(self, source: str) -> str | None:
        """Misunderstand a Verilog-specific attribute (Table II, row 6).

        Preference order: invert the reset polarity (always functionally visible),
        then turn an asynchronous reset into a synchronous one, then invert an
        enable polarity.
        """
        # Invert reset polarity: `if (rst)` <-> `if (!rst)` for reset-like names.
        match = re.search(r"if\s*\(\s*(!?)\s*(\w*(?:rst|reset)\w*)\s*\)", source, re.IGNORECASE)
        if match:
            bang, name = match.group(1), match.group(2)
            replacement = f"if ({name})" if bang else f"if (!{name})"
            return source[: match.start()] + replacement + source[match.end() :]
        # Demote an asynchronous reset to synchronous by dropping it from the list.
        match = re.search(r"always\s*@\s*\(\s*(pos|neg)edge\s+\w+\s+or\s+(pos|neg)edge\s+(\w+)\s*\)", source)
        if match:
            kept = re.sub(r"\s+or\s+(pos|neg)edge\s+\w+", "", match.group(0))
            return source[: match.start()] + kept + source[match.end() :]
        # Invert an enable polarity.
        match = re.search(r"if\s*\(\s*(!?)\s*(en\w*|\w*enable\w*)\s*\)", source, re.IGNORECASE)
        if match:
            bang, name = match.group(1), match.group(2)
            replacement = f"if ({name})" if bang else f"if (!{name})"
            return source[: match.start()] + replacement + source[match.end() :]
        return None

    # ------------------------------------------------------------------ logical
    def _drop_default(self, source: str) -> str | None:
        """Remove the default arm of a case statement (Table II, row 8)."""
        pattern = re.compile(r"^\s*default\s*:.*?$(\n\s*.*?;\s*$)?", re.MULTILINE)
        match = pattern.search(source)
        if match is None:
            # No case default; drop a final else branch instead.
            else_pattern = re.compile(r"^\s*else\b(?!\s+if).*?$(\n\s*.*?;\s*$)?", re.MULTILINE)
            match = else_pattern.search(source)
            if match is None:
                return None
            return self._remove_span_keeping_structure(source, match)
        return self._remove_span_keeping_structure(source, match)

    def _remove_span_keeping_structure(self, source: str, match: re.Match[str]) -> str | None:
        snippet = match.group(0)
        # If the arm opens a begin...end block, remove up to the matching end.
        if "begin" in snippet:
            end_index = source.find("end", match.end())
            if end_index == -1:
                return None
            candidate = source[: match.start()] + source[end_index + len("end") :]
        else:
            candidate = source[: match.start()] + source[match.end() :]
        try:
            parse_module(candidate)
        except VerilogError:
            return None
        return candidate

    def _corrupt_condition(self, source: str) -> str | None:
        """Corrupt an if-condition (Table II, row 9): && <-> || inside an if."""
        matches = [
            match
            for match in re.finditer(r"if\s*\(([^()]*)\)", source)
            if "&&" in match.group(1) or "||" in match.group(1)
        ]
        if matches:
            match = self.rng.choice(matches)
            condition = match.group(1)
            if "&&" in condition:
                corrupted_condition = condition.replace("&&", "||", 1)
            else:
                corrupted_condition = condition.replace("||", "&&", 1)
            return source[: match.start(1)] + corrupted_condition + source[match.end(1) :]
        return self._flip_operator(source)
