"""Fine-tuning of the behavioural CodeGen models on instruction datasets.

The paper fine-tunes each base model for 3 epochs on the KL-dataset (plus the
vanilla dataset in the ablation settings).  Offline, the effect of fine-tuning is
modelled as *saturating skill gains*: each dataset moves the relevant capability
axes towards a cap, with diminishing returns in the number of training pairs and
with the K-dataset's effect additionally scaled by how much of the exemplar
library's topic/attribute space it covers.  This reproduces the qualitative
behaviour the paper reports:

* the vanilla dataset mostly lifts general/syntax competence (Fig. 3, "vanilla");
* the K-dataset lifts knowledge competence, the L-dataset logic competence
  (Fig. 3, "vanilla+KL"; Fig. 4 grid);
* gains saturate — "further enlarging the samples in KL-dataset can still be
  beneficial", but with diminishing returns.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ...verilog.analyzer import Attribute, Topic
from ..dataset.records import InstructionDataset
from ..exemplars import ExemplarLibrary
from .profiles import CapabilityProfile


@dataclass
class FineTuneConfig:
    """Hyper-parameters of the behavioural fine-tuning model.

    The ``*_halflife`` values are the number of training pairs at which roughly
    63% of the attainable gain has been realised (the ``1 - exp(-n/halflife)``
    saturation law).  Defaults are tuned for the scaled-down dataset sizes used in
    tests/benches; they scale linearly if you generate larger datasets.
    """

    epochs: int = 3
    vanilla_halflife: float = 60.0
    knowledge_halflife: float = 80.0
    logic_halflife: float = 30.0
    general_cap: float = 0.70
    syntax_cap: float = 0.97
    knowledge_cap: float = 0.84
    logic_cap: float = 0.80
    symbolic_side_cap: float = 0.40
    sicot_gain_cap: float = 0.36
    chat_alignment_cap: float = 0.85
    vanilla_knowledge_share: float = 0.60
    vanilla_logic_share: float = 0.60


@dataclass
class DatasetMix:
    """Which datasets participate in a fine-tuning run."""

    vanilla: InstructionDataset | None = None
    k_dataset: InstructionDataset | None = None
    l_dataset: InstructionDataset | None = None

    def total_pairs(self) -> int:
        return sum(len(ds) for ds in (self.vanilla, self.k_dataset, self.l_dataset) if ds is not None)


@dataclass
class FineTuneReport:
    """Bookkeeping about one fine-tuning run."""

    base_name: str
    tuned_name: str
    dataset_sizes: dict[str, int] = field(default_factory=dict)
    skill_before: dict[str, float] = field(default_factory=dict)
    skill_after: dict[str, float] = field(default_factory=dict)
    knowledge_coverage: float = 0.0
    logic_balance: float = 0.0


class FineTuner:
    """Apply dataset-driven skill gains to a base profile."""

    def __init__(self, config: FineTuneConfig | None = None, exemplars: ExemplarLibrary | None = None):
        self.config = config or FineTuneConfig()
        self.exemplars = exemplars or ExemplarLibrary()

    # ------------------------------------------------------------------ public API
    def finetune(
        self,
        base: CapabilityProfile,
        mix: DatasetMix,
        tuned_name: str | None = None,
    ) -> tuple[CapabilityProfile, FineTuneReport]:
        """Fine-tune ``base`` on the dataset mix and return the tuned profile."""
        config = self.config
        epochs_factor = min(1.0, 0.5 + 0.25 * config.epochs)  # 3 epochs → ~1.0

        general = base.general_skill
        syntax = base.syntax_skill
        knowledge = base.knowledge_skill
        logic = base.logic_skill
        symbolic = base.symbolic_skill
        sicot_gain = base.sicot_gain
        chat_alignment = base.chat_alignment

        vanilla_count = len(mix.vanilla) if mix.vanilla is not None else 0
        k_count = len(mix.k_dataset) if mix.k_dataset is not None else 0
        l_count = len(mix.l_dataset) if mix.l_dataset is not None else 0

        # Vanilla dataset: lifts general robustness and syntax correctness, with a
        # smaller spill-over into knowledge/logic (it is real Verilog after all).
        if vanilla_count:
            amount = epochs_factor * vanilla_count / config.vanilla_halflife
            general = _saturating_gain(general, config.general_cap, amount)
            syntax = _saturating_gain(syntax, config.syntax_cap, amount)
            knowledge = _saturating_gain(
                knowledge, config.knowledge_cap * 0.85, amount * config.vanilla_knowledge_share
            )
            logic = _saturating_gain(
                logic, config.logic_cap * 0.85, amount * config.vanilla_logic_share
            )

        # K-dataset: lifts knowledge, scaled by exemplar topic/attribute coverage.
        # Because the K-dataset instructions follow the HDL-engineer questioning
        # style (and the uniform SI-CoT instruction format), fine-tuning on it
        # also improves spec-to-RTL chat alignment and how much the model profits
        # from SI-CoT interpretations at inference time.
        knowledge_coverage = self._knowledge_coverage(mix.k_dataset)
        if k_count:
            amount = epochs_factor * (k_count / config.knowledge_halflife) * (0.5 + 0.5 * knowledge_coverage)
            knowledge = _saturating_gain(knowledge, config.knowledge_cap, amount)
            general = _saturating_gain(general, config.general_cap, amount * 0.4)
            syntax = _saturating_gain(syntax, config.syntax_cap, amount * 0.3)
            symbolic = _saturating_gain(symbolic, config.symbolic_side_cap, amount * 0.25)
            sicot_gain = _saturating_gain(sicot_gain, config.sicot_gain_cap, amount)
            chat_alignment = _saturating_gain(chat_alignment, config.chat_alignment_cap, amount)

        # L-dataset: lifts logical reasoning; balance between the two categories
        # (concise vs faithful) matters a little.
        logic_balance = self._logic_balance(mix.l_dataset)
        if l_count:
            amount = epochs_factor * (l_count / config.logic_halflife) * (0.7 + 0.3 * logic_balance)
            logic = _saturating_gain(logic, config.logic_cap, amount)
            general = _saturating_gain(general, config.general_cap, amount * 0.2)
            sicot_gain = _saturating_gain(sicot_gain, config.sicot_gain_cap, amount * 0.3)

        tuned = base.with_updates(
            name=tuned_name or f"{base.name}-finetuned",
            latent_key=base.latent_identity(),
            general_skill=general,
            syntax_skill=syntax,
            knowledge_skill=knowledge,
            logic_skill=logic,
            symbolic_skill=symbolic,
            sicot_gain=sicot_gain,
            chat_alignment=chat_alignment,
        )
        report = FineTuneReport(
            base_name=base.name,
            tuned_name=tuned.name,
            dataset_sizes={"vanilla": vanilla_count, "k": k_count, "l": l_count},
            skill_before=_skill_dict(base),
            skill_after=_skill_dict(tuned),
            knowledge_coverage=knowledge_coverage,
            logic_balance=logic_balance,
        )
        return tuned, report

    # ------------------------------------------------------------------ coverage metrics
    def _knowledge_coverage(self, dataset: InstructionDataset | None) -> float:
        """Fraction of the exemplar library's topics and attributes a K-dataset covers."""
        if dataset is None or len(dataset) == 0:
            return 0.0
        covered_topics: set[Topic] = set()
        covered_attributes: set[Attribute] = set()
        for pair in dataset:
            covered_topics |= pair.topics
            covered_attributes |= pair.attributes
        library_topics = self.exemplars.topics()
        library_attributes = self.exemplars.attributes()
        topic_share = len(covered_topics & library_topics) / max(1, len(library_topics))
        attribute_share = len(covered_attributes & library_attributes) / max(1, len(library_attributes))
        return 0.5 * (topic_share + attribute_share)

    def _logic_balance(self, dataset: InstructionDataset | None) -> float:
        """1.0 when the L-dataset's two logical categories are equally represented."""
        if dataset is None or len(dataset) == 0:
            return 0.0
        concise = sum(
            1 for pair in dataset if pair.metadata.get("category") == "concise_expression"
        )
        faithful = sum(
            1 for pair in dataset if pair.metadata.get("category") == "faithful_implementation"
        )
        total = concise + faithful
        if total == 0:
            return 0.5
        minority = min(concise, faithful)
        return 2.0 * minority / total


def _saturating_gain(skill: float, cap: float, amount: float) -> float:
    """Move ``skill`` towards ``cap`` with saturation ``1 - exp(-amount)``."""
    if cap <= skill:
        return skill
    return skill + (cap - skill) * (1.0 - math.exp(-max(0.0, amount)))


def _skill_dict(profile: CapabilityProfile) -> dict[str, float]:
    return {
        "symbolic": profile.symbolic_skill,
        "knowledge": profile.knowledge_skill,
        "logic": profile.logic_skill,
        "syntax": profile.syntax_skill,
        "general": profile.general_skill,
    }
