"""Capability profiles for the behavioural CodeGen backends.

A :class:`CapabilityProfile` summarises a model's competence along the axes the
hallucination taxonomy cares about.  All skills live on a 0-1 scale and are
compared against task demands (also 0-1) through a logistic curve in
:mod:`repro.core.llm.simulated`, which makes easy tasks near-certain and
out-of-reach tasks near-impossible — the behaviour real pass@k curves show.

The registry below covers every baseline row of Table IV plus the commercial
models of Tables V/VI.  The skill values are *calibration inputs*, chosen so the
measured pass rates land near the paper's numbers and — more importantly — so the
ranking and relative gaps match; the measured values are recorded in
EXPERIMENTS.md.  The three HaVen rows are intentionally **absent** here: they are
derived by running the actual fine-tuning pipeline
(:mod:`repro.core.llm.finetune`) on the base-model profiles with the KL-dataset.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class CapabilityProfile:
    """Competence of a CodeGen model along the taxonomy axes.

    Attributes:
        name: display name used in benchmark tables.
        symbolic_skill: ability to interpret raw symbolic modalities (truth
            tables, waveforms, state diagrams) embedded in prompts.
        sicot_gain: additional effective symbolic skill when the prompt has been
            refined by SI-CoT (the interpretation is handed to the model).
        knowledge_skill: HDL-convention and Verilog-attribute knowledge.
        logic_skill: logical-reasoning ability (expressions, corner cases,
            instruction following).
        syntax_skill: ability to emit syntactically valid Verilog.
        general_skill: robustness against overall task complexity.
        chat_alignment: familiarity with spec-to-RTL chat-style prompts
            (VerilogEval v2); low values add difficulty on that benchmark.
        temperature_sensitivity: how strongly sampling temperature perturbs the
            per-sample outcome.
        open_source: whether the underlying model is open source (Table IV column).
        model_size: parameter-count label used in reports.
        latent_key: identity used for the per-task latent draws of the behavioural
            backend.  Fine-tuned variants of a base model share the base's key so
            that ablation comparisons are paired (same per-task "luck"), mirroring
            how the paper evaluates every setting on the same task set.
    """

    name: str
    symbolic_skill: float
    knowledge_skill: float
    logic_skill: float
    syntax_skill: float
    general_skill: float
    sicot_gain: float = 0.08
    chat_alignment: float = 0.5
    temperature_sensitivity: float = 0.08
    open_source: bool = True
    model_size: str = "7B"
    latent_key: str = ""

    def with_updates(self, **changes: float) -> "CapabilityProfile":
        """Return a copy with the given fields replaced (used by fine-tuning)."""
        return replace(self, **changes)

    def latent_identity(self) -> str:
        """Key used for per-task latent randomness (defaults to the profile name)."""
        return self.latent_key or self.name

    def effective_symbolic_skill(self, prompt_refined: bool) -> float:
        """Symbolic skill after accounting for SI-CoT refinement."""
        if prompt_refined:
            return min(1.0, self.symbolic_skill + self.sicot_gain)
        return self.symbolic_skill


def _profile(
    name: str,
    symbolic: float,
    knowledge: float,
    logic: float,
    syntax: float,
    general: float,
    sicot_gain: float = 0.08,
    chat_alignment: float = 0.5,
    open_source: bool = True,
    model_size: str = "7B",
) -> CapabilityProfile:
    return CapabilityProfile(
        name=name,
        symbolic_skill=symbolic,
        knowledge_skill=knowledge,
        logic_skill=logic,
        syntax_skill=syntax,
        general_skill=general,
        sicot_gain=sicot_gain,
        chat_alignment=chat_alignment,
        open_source=open_source,
        model_size=model_size,
    )


#: Base (pre-trained, not Verilog-fine-tuned) models.  These are both Table IV
#: "General LLM" rows and the starting points of the HaVen fine-tuning pipeline.
BASE_MODEL_PROFILES: dict[str, CapabilityProfile] = {
    "codellama-7b": _profile(
        "CodeLlama-7b-Instruct", 0.14, 0.42, 0.45, 0.86, 0.43, chat_alignment=0.40
    ),
    "deepseek-coder-6.7b": _profile(
        "DeepSeek-Coder-6.7b-Instruct", 0.20, 0.53, 0.56, 0.92, 0.55, chat_alignment=0.55,
        model_size="6.7B",
    ),
    "codeqwen-7b": _profile(
        "CodeQwen1.5-7B-Chat", 0.16, 0.43, 0.47, 0.88, 0.45, chat_alignment=0.50
    ),
}

#: Commercial and open baselines of Table IV (plus Tables V/VI commercial models).
BASELINE_PROFILES: dict[str, CapabilityProfile] = {
    # Commercial general-purpose LLMs.
    "gpt-3.5": _profile(
        "GPT-3.5", 0.22, 0.50, 0.55, 0.90, 0.53, chat_alignment=0.70, open_source=False, model_size="n/a"
    ),
    "gpt-4": _profile(
        "GPT-4", 0.40, 0.64, 0.69, 0.97, 0.64, sicot_gain=0.10, chat_alignment=0.85,
        open_source=False, model_size="n/a",
    ),
    "gpt-4o-mini": _profile(
        "GPT-4o mini", 0.38, 0.61, 0.66, 0.96, 0.61, sicot_gain=0.10, chat_alignment=0.85,
        open_source=False, model_size="n/a",
    ),
    "deepseek-coder-v2": _profile(
        "DeepSeek-Coder-V2", 0.48, 0.64, 0.68, 0.96, 0.64, sicot_gain=0.09, chat_alignment=0.80,
        open_source=True, model_size="n/a",
    ),
    # Open general code LLMs.
    "starcoder-15b": _profile("Starcoder", 0.16, 0.42, 0.45, 0.90, 0.44, chat_alignment=0.35, model_size="15B"),
    "codellama-7b": BASE_MODEL_PROFILES["codellama-7b"],
    "deepseek-coder-6.7b": BASE_MODEL_PROFILES["deepseek-coder-6.7b"],
    "codeqwen-7b": BASE_MODEL_PROFILES["codeqwen-7b"],
    # Verilog-specialised baselines.
    "chipnemo-13b": _profile(
        "ChipNeMo", 0.16, 0.48, 0.47, 0.88, 0.47, chat_alignment=0.40, open_source=False, model_size="13B"
    ),
    "thakur-16b": _profile("Thakur et al.", 0.18, 0.51, 0.49, 0.87, 0.49, chat_alignment=0.40, model_size="16B"),
    "rtlcoder-mistral": _profile(
        "RTLCoder-Mistral", 0.32, 0.59, 0.58, 0.95, 0.58, chat_alignment=0.55
    ),
    "rtlcoder-deepseek": _profile(
        "RTLCoder-DeepSeek", 0.34, 0.62, 0.61, 0.93, 0.61, chat_alignment=0.60, model_size="6.7B"
    ),
    "betterv-codellama": _profile(
        "BetterV-CodeLlama", 0.34, 0.61, 0.61, 0.93, 0.61, chat_alignment=0.55, open_source=False
    ),
    "betterv-deepseek": _profile(
        "BetterV-DeepSeek", 0.36, 0.65, 0.63, 0.94, 0.63, chat_alignment=0.60, open_source=False,
        model_size="6.7B",
    ),
    "betterv-codeqwen": _profile(
        "BetterV-CodeQwen", 0.36, 0.65, 0.64, 0.94, 0.63, chat_alignment=0.60, open_source=False
    ),
    "autovcoder-codellama": _profile(
        "AutoVCoder-CodeLlama", 0.36, 0.63, 0.62, 0.93, 0.62, chat_alignment=0.55, open_source=False
    ),
    "autovcoder-deepseek": _profile(
        "AutoVCoder-DeepSeek", 0.38, 0.67, 0.65, 0.97, 0.64, chat_alignment=0.60, open_source=False,
        model_size="6.7B",
    ),
    "autovcoder-codeqwen": _profile(
        "AutoVCoder-CodeQwen", 0.38, 0.67, 0.66, 0.97, 0.64, chat_alignment=0.60, open_source=False
    ),
    "origen-deepseek": _profile(
        "OriGen-DeepSeek-7B-v1.5", 0.40, 0.73, 0.70, 0.95, 0.69, chat_alignment=0.65
    ),
}


@dataclass
class ProfileRegistry:
    """Lookup helper over the built-in profiles plus any registered at runtime."""

    profiles: dict[str, CapabilityProfile] = field(
        default_factory=lambda: dict(BASELINE_PROFILES)
    )

    def get(self, key: str) -> CapabilityProfile:
        """Return the profile registered under ``key``.

        Raises:
            KeyError: when the key is unknown.
        """
        if key not in self.profiles:
            raise KeyError(
                f"unknown model profile {key!r}; known: {sorted(self.profiles)}"
            )
        return self.profiles[key]

    def register(self, key: str, profile: CapabilityProfile) -> None:
        """Register (or replace) a profile, e.g. a fine-tuned HaVen model."""
        self.profiles[key] = profile

    def keys(self) -> list[str]:
        return sorted(self.profiles)
