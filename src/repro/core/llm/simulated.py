"""Behavioural CodeGen-LLM backend.

:class:`SimulatedCodeGenLLM` is the offline substitute for the fine-tuned
CodeLlama/DeepSeek/CodeQwen models and the commercial LLM baselines (see the
substitution table in DESIGN.md).  For every requested sample it:

1. evaluates its :class:`~repro.core.llm.profiles.CapabilityProfile` against the
   task's :class:`~repro.core.llm.base.TaskDemands` through a logistic
   skill-vs-demand model (plus temperature noise), axis by axis
   (syntax → symbolic → knowledge → logic → general complexity);
2. when every axis succeeds, emits the task's reference implementation (the
   competence ceiling);
3. when an axis fails, injects the corresponding Table II defect into the code
   via :class:`~repro.core.llm.corruption.CorruptionInjector` and reports the
   intended hallucination.

The emitted code — correct or corrupted — is then compiled and simulated by the
benchmark evaluator, so pass/fail is always decided by the toolchain.
"""

from __future__ import annotations

import hashlib
import math
import random
from dataclasses import dataclass

from ...symbolic.detector import SymbolicModality
from ..taxonomy import HallucinationSubtype
from .base import GeneratedSample, GenerationConfig, GenerationContext, LLMBackend, TaskDemands
from .corruption import CorruptionInjector
from .profiles import CapabilityProfile

#: How hard each symbolic modality is to read directly from the raw prompt.
#: Calibrated to the ordering of Table V (waveforms hardest, truth tables easiest).
MODALITY_DEMAND: dict[SymbolicModality, float] = {
    SymbolicModality.NONE: 0.0,
    SymbolicModality.TRUTH_TABLE: 0.50,
    SymbolicModality.WAVEFORM: 0.62,
    SymbolicModality.STATE_DIAGRAM: 0.55,
}

#: Steepness of the skill-vs-demand logistic.  Larger values make task outcomes
#: more bimodal (well-within-capability tasks almost always pass, out-of-reach
#: tasks almost never do), which is what real pass@k curves look like.
LOGISTIC_STEEPNESS = 8.0

#: Standard deviation of the per-(model, task) aptitude offset.  This models the
#: fact that a given model either "gets" a particular problem or does not: samples
#: for the same task are strongly correlated, which keeps pass@5 close to pass@1
#: for hard tasks (as observed in the paper's tables) instead of saturating.
TASK_APTITUDE_SIGMA = 0.15

#: Baseline per-sample jitter of the shared task quantile (see ``evaluate_axes``).
#: Higher sampling temperature adds to this, which is exactly why the paper sweeps
#: the temperature when reporting pass@5.
SAMPLE_JITTER_BASE = 0.04

#: Baseline "demand" of emitting syntactically valid Verilog at all.
SYNTAX_DEMAND = 0.18

#: Extra difficulty seen by models unfamiliar with spec-to-RTL chat prompts.
CHAT_STYLE_PENALTY = 0.25


def _logistic(x: float) -> float:
    return 1.0 / (1.0 + math.exp(-x))


def sample_stream_key(
    identity: str, backend_seed: int, task_id: str, config: GenerationConfig, index: int
) -> str:
    """Canonical cache key of one sample in the deterministic sample stream.

    The temperature is canonicalised through ``repr(float(...))`` so every
    code path that builds a sample key — serial generation, per-unit sharded
    generation, resumed runs — spells the same temperature identically and
    distinct temperatures can never collide (an int-typed ``0`` and a float
    ``0.0`` are the same draw, while ``0.2`` vs ``0.5`` always differ).
    """
    return (
        f"{identity}|{backend_seed}|{task_id}|{config.seed}|"
        f"{float(config.temperature)!r}|{index}"
    )


def success_probability(skill: float, demand: float, steepness: float = LOGISTIC_STEEPNESS) -> float:
    """Probability of succeeding on one axis given skill and demand levels."""
    return _logistic(steepness * (skill - demand))


@dataclass
class AxisOutcome:
    """Result of evaluating one taxonomy axis for one sample."""

    axis: str
    success_probability: float
    failed: bool


class SimulatedCodeGenLLM(LLMBackend):
    """Profile-driven behavioural CodeGen backend."""

    def __init__(self, profile: CapabilityProfile, seed: int = 0):
        self.profile = profile
        self.seed = seed
        self.name = profile.name

    # ------------------------------------------------------------------ generation
    def generate(self, context: GenerationContext, config: GenerationConfig) -> list[GeneratedSample]:
        """Generate ``config.num_samples`` candidates for one task."""
        return [self.generate_at(context, config, index) for index in range(config.num_samples)]

    def generate_at(
        self, context: GenerationContext, config: GenerationConfig, index: int
    ) -> GeneratedSample:
        """Generate exactly the sample at ``index`` of the deterministic stream.

        Every sample is seeded independently by
        :func:`sample_stream_key` — not by ``num_samples`` or by the other
        samples — so a sharded or resumed run that draws sample ``i`` in
        isolation reproduces the serial run bit-for-bit.
        """
        rng = self._sample_rng(context, config, index)
        return self._generate_sample(context, config, index, rng)

    def _generate_sample(
        self,
        context: GenerationContext,
        config: GenerationConfig,
        index: int,
        rng: random.Random,
    ) -> GeneratedSample:
        outcomes = self.evaluate_axes(context, config.temperature, rng)
        failed = [outcome for outcome in outcomes if outcome.failed]
        if not failed:
            return GeneratedSample(
                code=context.reference_source,
                injected_hallucinations=[],
                sample_index=index,
                temperature=config.temperature,
            )
        subtype = self._pick_subtype(failed[0].axis, context, rng)
        injector = CorruptionInjector(rng)
        outcome = injector.inject(context.reference_source, subtype)
        return GeneratedSample(
            code=outcome.code,
            injected_hallucinations=[outcome.record] if outcome.applied else [],
            sample_index=index,
            temperature=config.temperature,
        )

    # ------------------------------------------------------------------ axis model
    def evaluate_axes(
        self, context: GenerationContext, temperature: float, rng: random.Random
    ) -> list[AxisOutcome]:
        """Evaluate every taxonomy axis, in priority order, for one sample.

        Per-axis success probabilities come from the logistic skill-vs-demand
        model (shifted by a per-(model, task) aptitude offset).  Whether a
        particular *sample* succeeds on an axis is decided by comparing the
        probability against a per-(model, task, axis) latent quantile that is
        shared by every sample of the task, perturbed by a small per-sample
        jitter that grows with the sampling temperature.  Samples of one task are
        therefore strongly correlated — repeated sampling only flips outcomes for
        borderline tasks — which reproduces the modest pass@1 → pass@5 gaps the
        paper reports and makes the temperature sweep genuinely matter.
        """
        demands = context.demands.clamped()
        jitter = SAMPLE_JITTER_BASE + self.profile.temperature_sensitivity * max(temperature, 0.05)
        aptitude, quantiles = self._task_latents(context)

        def shifted(skill: float, axis: str) -> float:
            return skill + aptitude[axis]

        def decide(axis: str, probability: float) -> bool:
            """Return True when the axis FAILS for this sample."""
            draw = quantiles[axis] + rng.gauss(0.0, jitter)
            return draw > probability

        outcomes: list[AxisOutcome] = []

        syntax_p = success_probability(shifted(self.profile.syntax_skill, "syntax"), SYNTAX_DEMAND)
        outcomes.append(AxisOutcome("syntax", syntax_p, decide("syntax", syntax_p)))

        if demands.modality is not SymbolicModality.NONE:
            symbolic_skill = self.profile.effective_symbolic_skill(context.prompt_refined)
            symbolic_demand = MODALITY_DEMAND[demands.modality]
            symbolic_p = success_probability(shifted(symbolic_skill, "symbolic"), symbolic_demand)
            outcomes.append(AxisOutcome("symbolic", symbolic_p, decide("symbolic", symbolic_p)))

        knowledge_p = success_probability(
            shifted(self.profile.knowledge_skill, "knowledge"), demands.knowledge
        )
        outcomes.append(AxisOutcome("knowledge", knowledge_p, decide("knowledge", knowledge_p)))

        logic_p = success_probability(shifted(self.profile.logic_skill, "logic"), demands.logic)
        outcomes.append(AxisOutcome("logic", logic_p, decide("logic", logic_p)))

        difficulty = demands.difficulty
        if context.prompt_style == "spec_to_rtl":
            difficulty = min(1.0, difficulty + (1.0 - self.profile.chat_alignment) * CHAT_STYLE_PENALTY)
        general_p = success_probability(shifted(self.profile.general_skill, "general"), difficulty)
        outcomes.append(AxisOutcome("general", general_p, decide("general", general_p)))

        return outcomes

    def _task_latents(self, context: GenerationContext) -> tuple[dict[str, float], dict[str, float]]:
        """Per-(model, task) aptitude offsets and latent quantiles.

        Neither depends on the sample index, the temperature or on whether SI-CoT
        refined the prompt, so repeated samples of the same task are correlated
        and SI-CoT on/off comparisons see the same latent difficulty.
        """
        key = f"aptitude|{self.profile.latent_identity()}|{self.seed}|{context.task_id}"
        digest = hashlib.sha256(key.encode()).hexdigest()
        task_rng = random.Random(int(digest[:16], 16))
        axes = ("syntax", "symbolic", "knowledge", "logic", "general")
        aptitude = {axis: task_rng.gauss(0.0, TASK_APTITUDE_SIGMA) for axis in axes}
        quantiles = {axis: task_rng.random() for axis in axes}
        return aptitude, quantiles

    def pass_probability(self, context: GenerationContext, temperature: float = 0.2) -> float:
        """Closed-form expected pass probability (no sampling noise); for analysis."""
        demands = context.demands.clamped()
        probability = success_probability(self.profile.syntax_skill, SYNTAX_DEMAND)
        if demands.modality is not SymbolicModality.NONE:
            probability *= success_probability(
                self.profile.effective_symbolic_skill(context.prompt_refined),
                MODALITY_DEMAND[demands.modality],
            )
        probability *= success_probability(self.profile.knowledge_skill, demands.knowledge)
        probability *= success_probability(self.profile.logic_skill, demands.logic)
        difficulty = demands.difficulty
        if context.prompt_style == "spec_to_rtl":
            difficulty = min(1.0, difficulty + (1.0 - self.profile.chat_alignment) * CHAT_STYLE_PENALTY)
        probability *= success_probability(self.profile.general_skill, difficulty)
        return probability

    # ------------------------------------------------------------------ helpers
    def _pick_subtype(
        self, axis: str, context: GenerationContext, rng: random.Random
    ) -> HallucinationSubtype:
        demands = context.demands
        if axis == "syntax":
            return HallucinationSubtype.VERILOG_SYNTAX_MISAPPLICATION
        if axis == "symbolic":
            return {
                SymbolicModality.TRUTH_TABLE: HallucinationSubtype.TRUTH_TABLE_MISINTERPRETATION,
                SymbolicModality.WAVEFORM: HallucinationSubtype.WAVEFORM_MISINTERPRETATION,
                SymbolicModality.STATE_DIAGRAM: HallucinationSubtype.STATE_DIAGRAM_MISINTERPRETATION,
            }.get(demands.modality, HallucinationSubtype.TRUTH_TABLE_MISINTERPRETATION)
        if axis == "knowledge":
            if demands.required_attributes and rng.random() < 0.6:
                return HallucinationSubtype.VERILOG_ATTRIBUTE_MISUNDERSTANDING
            return HallucinationSubtype.DESIGN_CONVENTION_MISAPPLICATION
        if axis == "logic":
            roll = rng.random()
            if "if" in context.prompt_text.lower() and roll < 0.35:
                return HallucinationSubtype.INSTRUCTIONAL_LOGIC_FAILURE
            if ("case" in context.reference_source or "else" in context.reference_source) and roll < 0.65:
                return HallucinationSubtype.INCORRECT_CORNER_CASE_HANDLING
            return HallucinationSubtype.INCORRECT_LOGICAL_EXPRESSION
        # General complexity failures show up as logic or knowledge slips.
        return rng.choice(
            [
                HallucinationSubtype.INCORRECT_LOGICAL_EXPRESSION,
                HallucinationSubtype.DESIGN_CONVENTION_MISAPPLICATION,
                HallucinationSubtype.INCORRECT_CORNER_CASE_HANDLING,
            ]
        )

    def _sample_rng(
        self, context: GenerationContext, config: GenerationConfig, index: int
    ) -> random.Random:
        key = sample_stream_key(
            self.profile.latent_identity(), self.seed, context.task_id, config, index
        )
        digest = hashlib.sha256(key.encode()).hexdigest()
        return random.Random(int(digest[:16], 16))


def make_backend(profile: CapabilityProfile, seed: int = 0) -> SimulatedCodeGenLLM:
    """Factory mirroring how a real backend would be constructed from a model id."""
    return SimulatedCodeGenLLM(profile=profile, seed=seed)
