"""End-to-end HaVen generation pipeline (Fig. 1).

A :class:`HaVenPipeline` couples the SI-CoT prompting model with a CodeGen
backend: the raw user prompt is first refined (symbolic interpretation + module
header completion) and the refined prompt is then handed to the CodeGen LLM for
an end-to-end inference.  Disabling SI-CoT yields the "vanilla prompting" setting
of the ablation study; swapping the backend/profile yields every row of Table IV.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..symbolic.detector import SymbolicModality
from .llm.base import (
    GeneratedSample,
    GenerationConfig,
    GenerationContext,
    LLMBackend,
    TaskDemands,
)
from .prompt import DesignPrompt, ModuleInterface, RefinedPrompt
from .sicot import SICoTPipeline


@dataclass
class PipelineResult:
    """Everything produced for one task by one pipeline invocation."""

    refined_prompt: RefinedPrompt | None
    samples: list[GeneratedSample] = field(default_factory=list)

    @property
    def codes(self) -> list[str]:
        return [sample.code for sample in self.samples]


class HaVenPipeline:
    """SI-CoT prompting model + CodeGen LLM, end to end."""

    def __init__(
        self,
        backend: LLMBackend,
        sicot: SICoTPipeline | None = None,
        use_sicot: bool = True,
    ):
        self.backend = backend
        self.sicot = sicot if sicot is not None else (SICoTPipeline() if use_sicot else None)
        self.use_sicot = use_sicot and self.sicot is not None

    @property
    def name(self) -> str:
        suffix = "+SI-CoT" if self.use_sicot else ""
        return f"{self.backend.name}{suffix}"

    def generate(
        self,
        prompt: DesignPrompt,
        interface: ModuleInterface,
        reference_source: str,
        demands: TaskDemands | None = None,
        config: GenerationConfig | None = None,
        prompt_style: str = "completion",
        task_id: str = "",
        sample_indices: Sequence[int] | None = None,
    ) -> PipelineResult:
        """Run the full pipeline for one task.

        Args:
            prompt: the raw user prompt (as the benchmark supplies it).
            interface: the target module interface.
            reference_source: the task's golden implementation (used by the
                behavioural backend as its competence ceiling; ignored by a real
                LLM backend).
            demands: the task's demand profile (defaults to moderate demands).
            config: sampling configuration.
            prompt_style: ``"completion"`` or ``"spec_to_rtl"``.
            task_id: identifier for deterministic sampling.
            sample_indices: draw only these indices of the deterministic sample
                stream instead of ``range(config.num_samples)`` (the resumable
                run engine uses this to execute individual work units; each
                returned sample keeps its true ``sample_index``).
        """
        config = config or GenerationConfig()
        demands = demands or TaskDemands()

        refined: RefinedPrompt | None = None
        prompt_text = prompt.full_text()
        prompt_refined = False
        if self.use_sicot and self.sicot is not None:
            refined = self.sicot.refine(prompt)
            prompt_text = refined.text
            prompt_refined = refined.modality is not SymbolicModality.NONE and bool(
                refined.interpretation
            )

        context = GenerationContext(
            prompt_text=prompt_text,
            interface=interface,
            reference_source=reference_source,
            demands=demands,
            prompt_refined=prompt_refined,
            prompt_style=prompt_style,
            task_id=task_id,
        )
        if sample_indices is None:
            samples = self.backend.generate(context, config)
        else:
            samples = [
                self.backend.generate_at(context, config, index) for index in sample_indices
            ]
        return PipelineResult(refined_prompt=refined, samples=samples)
