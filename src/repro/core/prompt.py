"""Prompt and module-interface data structures shared across the framework.

A *design prompt* is what the user (or a benchmark task) hands to the pipeline: a
natural-language instruction, possibly embedding a symbolic modality, plus an
optional explicit module interface.  The SI-CoT stage turns a raw prompt into a
*refined prompt* whose symbolic content has been interpreted and whose module
header is guaranteed to be present.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..symbolic.detector import SymbolicModality


@dataclass(frozen=True)
class PortSpec:
    """A single port of a module interface."""

    name: str
    direction: str  # "input" or "output"
    width: int = 1

    def to_verilog(self) -> str:
        """Render the port in ANSI header style."""
        range_text = f"[{self.width - 1}:0] " if self.width > 1 else ""
        reg_text = ""
        return f"{self.direction} {reg_text}{range_text}{self.name}"


@dataclass
class ModuleInterface:
    """The external interface of the module to generate."""

    name: str
    ports: list[PortSpec] = field(default_factory=list)

    @property
    def input_ports(self) -> list[PortSpec]:
        return [port for port in self.ports if port.direction == "input"]

    @property
    def output_ports(self) -> list[PortSpec]:
        return [port for port in self.ports if port.direction == "output"]

    def port(self, name: str) -> PortSpec | None:
        """Look up a port by name."""
        for port in self.ports:
            if port.name == name:
                return port
        return None

    def to_module_header(self, output_reg: bool = False) -> str:
        """Render a Verilog module header for this interface."""
        lines = [f"module {self.name} ("]
        for index, port in enumerate(self.ports):
            comma = "," if index < len(self.ports) - 1 else ""
            range_text = f"[{port.width - 1}:0] " if port.width > 1 else ""
            net_text = "reg " if output_reg and port.direction == "output" else ""
            lines.append(f"    {port.direction} {net_text}{range_text}{port.name}{comma}")
        lines.append(");")
        return "\n".join(lines)

    def describe(self) -> str:
        """Render a one-line English description of the interface."""
        def describe_port(port: PortSpec) -> str:
            width_text = f"{port.width}-bit " if port.width > 1 else "1-bit "
            return f"{width_text}{port.direction} {port.name}"

        parts = ", ".join(describe_port(port) for port in self.ports)
        return f"Module {self.name} with ports: {parts}."


@dataclass
class DesignPrompt:
    """A raw user prompt for Verilog code generation."""

    text: str
    interface: ModuleInterface | None = None
    modality_hint: SymbolicModality = SymbolicModality.NONE

    def full_text(self) -> str:
        """The prompt text including the module header when an interface is known."""
        if self.interface is None:
            return self.text
        return f"{self.text}\n\n{self.interface.to_module_header()}"


@dataclass
class RefinedPrompt:
    """The output of the SI-CoT stage.

    Attributes:
        original: the raw prompt this refinement came from.
        text: the refined instruction handed to the CodeGen LLM.
        modality: symbolic modality detected in the original prompt.
        interpretation: the natural-language interpretation of the symbolic block
            (empty when there was none).
        added_module_header: whether step 3 appended a module header.
        reasoning_steps: the CoT steps taken, for logging/inspection.
        parsed_component: the parsed symbolic object (``TruthTable``, ``Waveform``
            or ``StateDiagram``) when one was found.
    """

    original: DesignPrompt
    text: str
    modality: SymbolicModality = SymbolicModality.NONE
    interpretation: str = ""
    added_module_header: bool = False
    reasoning_steps: list[str] = field(default_factory=list)
    parsed_component: object | None = None

    @property
    def was_refined(self) -> bool:
        """Whether SI-CoT changed the prompt at all."""
        return self.text != self.original.text
