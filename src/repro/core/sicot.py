"""Symbolic-Interpretation Chain-of-Thought (SI-CoT) pipeline.

This implements the three steps of Fig. 1:

1. **Identify symbolic components** — the CoT prompting model decides whether the
   prompt contains a truth table, waveform chart or state diagram
   (:mod:`repro.symbolic.detector`).
2. **Parse regular modalities and interpret state diagrams** — truth tables and
   waveform charts are handled by a deterministic parser, while state diagrams are
   interpreted by the CoT prompting model into a concise natural-language
   description; all three are rendered into the uniform instruction format shown
   in Table III.
3. **Add module header** — if the instruction does not already contain a complete
   Verilog module header, an appropriate one is appended so the CodeGen LLM knows
   the module name and port list.

In the paper the CoT prompting model is the same pre-trained LLM as the CodeGen
model.  In this reproduction the interpretation of state diagrams is performed by
the deterministic interpreter in :mod:`repro.symbolic.state_diagram`, optionally
degraded through the model's capability profile (a weak CoT model can garble the
interpretation) so that the experiments in Table VI remain meaningful.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from ..symbolic.detector import DetectionResult, SymbolicDetector, SymbolicModality
from ..symbolic.state_diagram import StateDiagram
from ..symbolic.truth_table import TruthTable
from ..symbolic.waveform import Waveform
from .prompt import DesignPrompt, ModuleInterface, RefinedPrompt

_MODULE_HEADER_PATTERN = re.compile(r"\bmodule\s+\w+\s*(#\s*\(|\()", re.MULTILINE)


@dataclass
class SICoTConfig:
    """Configuration of the SI-CoT stage."""

    interpret_state_diagrams: bool = True
    parse_regular_modalities: bool = True
    add_module_header: bool = True
    keep_original_block: bool = False


class SICoTPipeline:
    """The SI-CoT prompting model: raw prompt → refined prompt."""

    def __init__(self, config: SICoTConfig | None = None):
        self.config = config or SICoTConfig()
        self.detector = SymbolicDetector()

    def refine(self, prompt: DesignPrompt) -> RefinedPrompt:
        """Run the three SI-CoT steps on a raw prompt."""
        steps: list[str] = []

        # Step 1: identify symbolic components.
        detection = self.detector.detect(prompt.text)
        steps.append(f"identify symbolic components: {detection.modality.value}")
        if not detection.has_symbolic_content:
            refined_text = prompt.text
            interpretation = ""
            parsed = None
        else:
            # Step 2: parse regular modalities / interpret state diagrams.
            interpretation, parsed = self._interpret(detection)
            steps.append(f"interpret {detection.modality.value} into uniform instruction format")
            refined_text = self._compose(prompt.text, detection, interpretation)

        # Step 3: add module header when missing.
        added_header = False
        if self.config.add_module_header and not self._has_module_header(refined_text):
            header = self._build_header(prompt, parsed)
            if header:
                refined_text = f"{refined_text}\n\nUse the following module header:\n{header}"
                added_header = True
                steps.append("append module header")

        return RefinedPrompt(
            original=prompt,
            text=refined_text,
            modality=detection.modality,
            interpretation=interpretation,
            added_module_header=added_header,
            reasoning_steps=steps,
            parsed_component=parsed,
        )

    # ------------------------------------------------------------------ helpers
    def _interpret(self, detection: DetectionResult) -> tuple[str, object | None]:
        component = detection.components[0]
        parsed = component.parsed
        if parsed is None:
            return "", None
        if detection.modality is SymbolicModality.STATE_DIAGRAM:
            if not self.config.interpret_state_diagrams:
                return "", parsed
            assert isinstance(parsed, StateDiagram)
            return parsed.interpret(), parsed
        if not self.config.parse_regular_modalities:
            return "", parsed
        if detection.modality is SymbolicModality.TRUTH_TABLE:
            assert isinstance(parsed, TruthTable)
            return parsed.interpret(), parsed
        assert isinstance(parsed, Waveform)
        return parsed.interpret(), parsed

    def _compose(self, original_text: str, detection: DetectionResult, interpretation: str) -> str:
        if not interpretation:
            return original_text
        prose = detection.prose.strip() or "Implement the following logic in Verilog."
        parts = [prose]
        if self.config.keep_original_block and detection.components:
            parts.append(detection.components[0].text)
        parts.append(interpretation)
        return "\n\n".join(parts)

    def _has_module_header(self, text: str) -> bool:
        return bool(_MODULE_HEADER_PATTERN.search(text))

    def _build_header(self, prompt: DesignPrompt, parsed: object | None) -> str:
        if prompt.interface is not None:
            return prompt.interface.to_module_header()
        interface = infer_interface(parsed)
        if interface is not None:
            return interface.to_module_header()
        return ""


def infer_interface(parsed: object | None) -> ModuleInterface | None:
    """Infer a module interface from a parsed symbolic component, when possible."""
    from .prompt import PortSpec

    if isinstance(parsed, StateDiagram):
        ports = [PortSpec("clk", "input"), PortSpec("rst", "input")]
        ports += [PortSpec(name, "input") for name in parsed.input_names]
        ports += [PortSpec(name, "output") for name in parsed.output_names]
        return ModuleInterface(name="top_module", ports=ports)
    if isinstance(parsed, TruthTable):
        ports = [PortSpec(name, "input") for name in parsed.inputs]
        ports += [PortSpec(name, "output") for name in parsed.outputs]
        return ModuleInterface(name="top_module", ports=ports)
    if isinstance(parsed, Waveform):
        ports = [PortSpec(name, "input") for name in parsed.input_names]
        ports += [PortSpec(name, "output") for name in parsed.output_names]
        return ModuleInterface(name="top_module", ports=ports)
    return None


def refine_prompt(text: str, interface: ModuleInterface | None = None) -> RefinedPrompt:
    """One-call helper: run SI-CoT on a plain text prompt."""
    return SICoTPipeline().refine(DesignPrompt(text=text, interface=interface))
