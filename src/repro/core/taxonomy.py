"""Hallucination taxonomy for LLM-based Verilog code generation (Table II).

The paper classifies hallucinations into three types, each with sub-types:

* **Symbolic hallucination** — the model misinterprets a symbolic modality
  embedded in the prompt (state diagram, waveform chart, truth table).
* **Knowledge hallucination** — the model lacks HDL domain knowledge
  (digital-design-convention misapplication, Verilog syntax misapplication,
  misunderstanding of Verilog-specific attributes).
* **Logical hallucination** — the model fails at logical reasoning (incorrect
  logical expression, incorrect handling of corner cases, failure to adhere to
  instructional logic).

This module defines the taxonomy as enums, a record type for observed
hallucinations, and the canonical examples of Table II (used by the taxonomy
benchmark and by the corruption injector's self-checks).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class HallucinationType(enum.Enum):
    """Top-level hallucination category."""

    SYMBOLIC = "symbolic"
    KNOWLEDGE = "knowledge"
    LOGICAL = "logical"


class HallucinationSubtype(enum.Enum):
    """Fine-grained hallucination sub-type (Table II rows)."""

    STATE_DIAGRAM_MISINTERPRETATION = "state_diagram_misinterpretation"
    WAVEFORM_MISINTERPRETATION = "waveform_misinterpretation"
    TRUTH_TABLE_MISINTERPRETATION = "truth_table_misinterpretation"
    DESIGN_CONVENTION_MISAPPLICATION = "design_convention_misapplication"
    VERILOG_SYNTAX_MISAPPLICATION = "verilog_syntax_misapplication"
    VERILOG_ATTRIBUTE_MISUNDERSTANDING = "verilog_attribute_misunderstanding"
    INCORRECT_LOGICAL_EXPRESSION = "incorrect_logical_expression"
    INCORRECT_CORNER_CASE_HANDLING = "incorrect_corner_case_handling"
    INSTRUCTIONAL_LOGIC_FAILURE = "instructional_logic_failure"


#: Sub-type → type mapping (Table II structure).
SUBTYPE_TO_TYPE: dict[HallucinationSubtype, HallucinationType] = {
    HallucinationSubtype.STATE_DIAGRAM_MISINTERPRETATION: HallucinationType.SYMBOLIC,
    HallucinationSubtype.WAVEFORM_MISINTERPRETATION: HallucinationType.SYMBOLIC,
    HallucinationSubtype.TRUTH_TABLE_MISINTERPRETATION: HallucinationType.SYMBOLIC,
    HallucinationSubtype.DESIGN_CONVENTION_MISAPPLICATION: HallucinationType.KNOWLEDGE,
    HallucinationSubtype.VERILOG_SYNTAX_MISAPPLICATION: HallucinationType.KNOWLEDGE,
    HallucinationSubtype.VERILOG_ATTRIBUTE_MISUNDERSTANDING: HallucinationType.KNOWLEDGE,
    HallucinationSubtype.INCORRECT_LOGICAL_EXPRESSION: HallucinationType.LOGICAL,
    HallucinationSubtype.INCORRECT_CORNER_CASE_HANDLING: HallucinationType.LOGICAL,
    HallucinationSubtype.INSTRUCTIONAL_LOGIC_FAILURE: HallucinationType.LOGICAL,
}


def type_of(subtype: HallucinationSubtype) -> HallucinationType:
    """Return the top-level category of a sub-type."""
    return SUBTYPE_TO_TYPE[subtype]


def subtypes_of(hallucination_type: HallucinationType) -> list[HallucinationSubtype]:
    """Return all sub-types belonging to a top-level category."""
    return [
        subtype
        for subtype, parent in SUBTYPE_TO_TYPE.items()
        if parent is hallucination_type
    ]


@dataclass
class HallucinationRecord:
    """An observed (or injected) hallucination in a generated code sample."""

    subtype: HallucinationSubtype
    description: str = ""
    evidence: str = ""

    @property
    def hallucination_type(self) -> HallucinationType:
        return type_of(self.subtype)


@dataclass
class TaxonomyExample:
    """A canonical Table II example: a prompt, the incorrect code and the analysis."""

    subtype: HallucinationSubtype
    prompt: str
    incorrect_code: str
    error_analysis: str
    correct_code: str = ""


#: The canonical examples of Table II.  The incorrect code snippets intentionally
#: contain the errors described in the paper; the taxonomy benchmark checks that
#: the hallucination detector flags each of them with the right sub-type.
TABLE_II_EXAMPLES: list[TaxonomyExample] = [
    TaxonomyExample(
        subtype=HallucinationSubtype.STATE_DIAGRAM_MISINTERPRETATION,
        prompt=(
            "Implement this FSM...\n"
            "A[out=0]--[in=0]->B\n"
            "A[out=0]--[in=1]->A\n"
            "B[out=1]--[in=0]->A\n"
            "B[out=1]--[in=1]->B"
        ),
        incorrect_code=(
            "module fsm(input clk, input rst, input in, output reg out);\n"
            "    reg state, next_state;\n"
            "    localparam A = 1'b0, B = 1'b1;\n"
            "    always @(posedge clk or posedge rst) begin\n"
            "        if (rst) state <= A; else state <= next_state;\n"
            "    end\n"
            "    always @(*) begin\n"
            "        case (state)\n"
            "            A: begin out = 1'b0; if (in) next_state = B; else next_state = A; end\n"
            "            B: begin out = 1'b1; if (in) next_state = A; else next_state = B; end\n"
            "            default: begin out = 1'b0; next_state = A; end\n"
            "        endcase\n"
            "    end\n"
            "endmodule"
        ),
        error_analysis='"A" and "B" should be reversed in the next-state logic.',
    ),
    TaxonomyExample(
        subtype=HallucinationSubtype.WAVEFORM_MISINTERPRETATION,
        prompt=(
            "Implement the waveforms below...\n"
            "a:   0 1 0 1\n"
            "b:   0 0 1 1\n"
            "out: 0 0 0 1"
        ),
        incorrect_code=(
            "module wave(input a, input b, output out);\n"
            "    assign out = a + b;\n"
            "endmodule"
        ),
        error_analysis='"out" should be "a & b".',
        correct_code=(
            "module wave(input a, input b, output out);\n"
            "    assign out = a & b;\n"
            "endmodule"
        ),
    ),
    TaxonomyExample(
        subtype=HallucinationSubtype.TRUTH_TABLE_MISINTERPRETATION,
        prompt=(
            "Implement the truth table below...\n"
            "a | b | out\n"
            "0 | 0 | 0\n"
            "0 | 1 | 0\n"
            "1 | 0 | 0\n"
            "1 | 1 | 1"
        ),
        incorrect_code=(
            "module tt(input a, input b, output out);\n"
            "    assign out = a | b;\n"
            "endmodule"
        ),
        error_analysis='"out" should be "a & b".',
        correct_code=(
            "module tt(input a, input b, output out);\n"
            "    assign out = a & b;\n"
            "endmodule"
        ),
    ),
    TaxonomyExample(
        subtype=HallucinationSubtype.DESIGN_CONVENTION_MISAPPLICATION,
        prompt="Implement a digit detector, using a conventional FSM.",
        incorrect_code=(
            "module detector(input clk, input rst, input a, input b, output reg [1:0] state);\n"
            "    always @(posedge clk) begin\n"
            "        case (state)\n"
            "            2'b00: state = a + b;\n"
            "            default: state = 2'b00;\n"
            "        endcase\n"
            "    end\n"
            "endmodule"
        ),
        error_analysis=(
            '"state" should be "next_state". A conventional FSM should contain '
            '"state transition", "next-state logic" and "output logic" blocks.'
        ),
    ),
    TaxonomyExample(
        subtype=HallucinationSubtype.VERILOG_SYNTAX_MISAPPLICATION,
        prompt="Implement a 4-bit adder.",
        incorrect_code=(
            "def adder_4bit()\n"
            "    output = a + b\n"
            "endmodule"
        ),
        error_analysis='The module definition is syntactically wrong: "def" should be "module".',
        correct_code=(
            "module adder_4bit(input [3:0] a, input [3:0] b, output [4:0] sum);\n"
            "    assign sum = a + b;\n"
            "endmodule"
        ),
    ),
    TaxonomyExample(
        subtype=HallucinationSubtype.VERILOG_ATTRIBUTE_MISUNDERSTANDING,
        prompt="Implement this module using an asynchronous reset signal.",
        incorrect_code=(
            "module dff(input clk, input reset, input d, output reg q);\n"
            "    always @(posedge clk)\n"
            "        if (!reset) q <= 1'b0;\n"
            "        else q <= d;\n"
            "endmodule"
        ),
        error_analysis="The reset should be asynchronous (included in the sensitivity list).",
        correct_code=(
            "module dff(input clk, input reset, input d, output reg q);\n"
            "    always @(posedge clk or negedge reset)\n"
            "        if (!reset) q <= 1'b0;\n"
            "        else q <= d;\n"
            "endmodule"
        ),
    ),
    TaxonomyExample(
        subtype=HallucinationSubtype.INCORRECT_LOGICAL_EXPRESSION,
        prompt="Create a module, the output signal equals a plus b, then or c.",
        incorrect_code=(
            "module logic_unit(input a, input b, input c, output out);\n"
            "    assign out = (a + c) & b;\n"
            "endmodule"
        ),
        error_analysis='The output should be "(a + b) | c".',
        correct_code=(
            "module logic_unit(input a, input b, input c, output out);\n"
            "    assign out = (a + b) | c;\n"
            "endmodule"
        ),
    ),
    TaxonomyExample(
        subtype=HallucinationSubtype.INCORRECT_CORNER_CASE_HANDLING,
        prompt=(
            "Implement logic of two inputs. Output equals 1 when a and b are both 1, otherwise 0."
        ),
        incorrect_code=(
            "module corner(input a, input b, output reg out);\n"
            "    always @(*) begin\n"
            "        case ({a, b})\n"
            "            2'b11: out = 1;\n"
            "        endcase\n"
            "    end\n"
            "endmodule"
        ),
        error_analysis='The "default" case is ignored, so the output latches for other inputs.',
        correct_code=(
            "module corner(input a, input b, output reg out);\n"
            "    always @(*) begin\n"
            "        case ({a, b})\n"
            "            2'b11: out = 1;\n"
            "            default: out = 0;\n"
            "        endcase\n"
            "    end\n"
            "endmodule"
        ),
    ),
    TaxonomyExample(
        subtype=HallucinationSubtype.INSTRUCTIONAL_LOGIC_FAILURE,
        prompt=(
            "Implement the logic below:\n"
            "if a == 0 && b == 0; out = 0;\n"
            "elif a == 1 && b == 0; out = 0; else out = 1."
        ),
        incorrect_code=(
            "module instr(input a, input b, output reg out);\n"
            "    always @(*) begin\n"
            "        if (a == 0 || b == 0) out = 0;\n"
            "        else if (a == 1 && b == 0) out = 0;\n"
            "        else out = 1;\n"
            "    end\n"
            "endmodule"
        ),
        error_analysis='The first "if" expression should be "a == 0 && b == 0".',
        correct_code=(
            "module instr(input a, input b, output reg out);\n"
            "    always @(*) begin\n"
            "        if (a == 0 && b == 0) out = 0;\n"
            "        else if (a == 1 && b == 0) out = 0;\n"
            "        else out = 1;\n"
            "    end\n"
            "endmodule"
        ),
    ),
]


@dataclass
class TaxonomySummary:
    """Aggregated counts of observed hallucinations by type and sub-type."""

    by_subtype: dict[HallucinationSubtype, int] = field(default_factory=dict)

    def add(self, record: HallucinationRecord) -> None:
        self.by_subtype[record.subtype] = self.by_subtype.get(record.subtype, 0) + 1

    def count(self, hallucination_type: HallucinationType) -> int:
        """Total observations for a top-level category."""
        return sum(
            count
            for subtype, count in self.by_subtype.items()
            if type_of(subtype) is hallucination_type
        )

    @property
    def total(self) -> int:
        return sum(self.by_subtype.values())
