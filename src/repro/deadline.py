"""Wall-clock budgets for check execution.

A :class:`Deadline` is a monotonic-clock expiry shared through a context
variable, so deeply nested hot loops — the simulators' settle loops, the CDCL
search — can cooperatively abort a runaway check without threading a budget
argument through every layer.  The pattern:

* an executor (``run_checks``, or a worker process entering
  :func:`~repro.bench.jobs.execute_check`) opens a :func:`deadline_scope`
  around one check attempt;
* hot loops call :func:`check_deadline` at their natural step boundaries
  (one settle pass, a batch of SAT propagations).  The call is a single
  context-variable read when no deadline is installed;
* an exhausted budget raises :class:`CheckTimeout`, a *structured* timeout
  carrying the site that observed it and the budget that expired.  It is
  deliberately not a :class:`~repro.verilog.errors.VerilogError` or
  :class:`~repro.formal.FormalError` subclass, so the testbench runners and
  the formal prover never swallow it into an ordinary failed verdict — it
  propagates to the execution layer, which retries, degrades or quarantines.

Deadlines do not interrupt non-cooperative code (a blocking syscall, an
injected hard hang); for pool execution the parent enforces a hard per-future
deadline on top of this and recycles the worker.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Iterator


class CheckTimeout(Exception):
    """A check exceeded its wall-clock budget (structured, retryable)."""

    def __init__(self, message: str, site: str = "", budget_s: float | None = None):
        super().__init__(message)
        self.site = site
        self.budget_s = budget_s

    def __reduce__(self):
        # Keep the structured fields across a process boundary (a worker's
        # cooperative timeout is re-raised from its future in the parent).
        return (type(self), (self.args[0], self.site, self.budget_s))


class Deadline:
    """A wall-clock expiry on the monotonic clock."""

    __slots__ = ("budget_s", "expires_at")

    def __init__(self, budget_s: float):
        self.budget_s = float(budget_s)
        self.expires_at = time.monotonic() + self.budget_s

    def remaining(self) -> float:
        """Seconds left (negative once expired)."""
        return self.expires_at - time.monotonic()

    def expired(self) -> bool:
        return time.monotonic() >= self.expires_at

    def check(self, site: str = "") -> None:
        """Raise :class:`CheckTimeout` if the budget is exhausted."""
        if self.expired():
            raise CheckTimeout(
                f"wall-clock budget of {self.budget_s:g}s exhausted"
                + (f" at {site}" if site else ""),
                site=site,
                budget_s=self.budget_s,
            )


_current: ContextVar[Deadline | None] = ContextVar("repro_deadline", default=None)


def current_deadline() -> Deadline | None:
    """The innermost active deadline, or None outside any scope."""
    return _current.get()


def check_deadline(site: str = "") -> None:
    """Cooperative tick: raise :class:`CheckTimeout` when the active budget is gone.

    No-op (one context-variable read) when no deadline is installed, so hot
    loops can call it unconditionally.
    """
    deadline = _current.get()
    if deadline is not None:
        deadline.check(site)


@contextmanager
def deadline_scope(budget: float | Deadline | None) -> Iterator[Deadline | None]:
    """Install a deadline for the duration of the block.

    ``budget`` is a number of seconds, an existing :class:`Deadline` (so an
    outer budget can be shared), or None for a no-op scope.  Scopes nest; the
    innermost wins, and the previous deadline is restored on exit.
    """
    if budget is None:
        yield None
        return
    deadline = budget if isinstance(budget, Deadline) else Deadline(budget)
    token = _current.set(deadline)
    try:
        yield deadline
    finally:
        _current.reset(token)
