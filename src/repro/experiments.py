"""High-level experiment drivers reproducing the paper's tables and figures.

This module wires the full stack together: dataset generation → fine-tuning →
pipelines (with/without SI-CoT) → benchmark evaluation → report rendering.  Each
``run_*`` function corresponds to one table or figure of the paper; the
``benchmarks/`` directory calls them (scaled down by default) and ``EXPERIMENTS.md``
records the measured numbers next to the paper's.

Since the resumable-runs refactor each driver is a thin wrapper over
:mod:`repro.runs`: it builds a declarative
:class:`~repro.runs.manifest.RunManifest` (see :mod:`repro.runs.presets`),
executes it through the :class:`~repro.runs.engine.RunEngine` — by default into
an ephemeral in-memory store, or into any persistent
:class:`~repro.runs.store.RunStore` passed via ``store=`` so a sweep survives
crashes, resumes, and shards across workers — and renders its output through
the streaming aggregators.  The results are bit-for-bit what the old
monolithic in-memory drivers produced (pinned by ``tests/runs/test_parity.py``).

Scaling: the ``ExperimentScale`` dataclass controls task counts, samples per task
and corpus size.  ``ExperimentScale.paper()`` uses the paper's real sizes
(143/156/29 tasks, n = 10, three temperatures); ``ExperimentScale.quick()`` is the
default for CI-sized runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from .bench.evaluator import EvaluationConfig
from .bench.reporting import AblationSeries, Table4Row, Table5Row
from .bench.rtllm import RTLLMConfig, build_rtllm
from .bench.task import BenchmarkSuite
from .bench.verilogeval import SuiteConfig, build_verilogeval_human, build_verilogeval_machine
from .bench.verilogeval_v2 import V2Config, build_verilogeval_v2
from .core.dataset.corpus import CorpusConfig, CorpusGenerator
from .core.dataset.kdataset import KDatasetGenerator
from .core.dataset.ldataset import LDatasetConfig, LDatasetGenerator
from .core.dataset.records import InstructionDataset
from .core.dataset.vanilla import VanillaDatasetGenerator
from .core.llm.finetune import DatasetMix, FineTuner
from .core.llm.profiles import BASE_MODEL_PROFILES, BASELINE_PROFILES, CapabilityProfile
from .core.llm.simulated import SimulatedCodeGenLLM
from .core.pipeline import HaVenPipeline

if TYPE_CHECKING:
    from .runs import RunManifest, RunStore, StreamingAggregator

#: The three base models HaVen fine-tunes, keyed by profile id.
HAVEN_BASE_MODELS = {
    "codellama-7b": "HaVen-CodeLlama",
    "deepseek-coder-6.7b": "HaVen-DeepSeek",
    "codeqwen-7b": "HaVen-CodeQwen",
}


@dataclass
class ExperimentScale:
    """Controls how large the reproduction runs are."""

    corpus_size: int = 160
    l_dataset_concise: int = 36
    l_dataset_faithful: int = 24
    machine_tasks: int = 36
    human_tasks: int = 39
    rtllm_tasks: int = 15
    v2_tasks: int = 30
    num_samples: int = 4
    temperatures: tuple[float, ...] = (0.2,)
    seed: int = 0

    @classmethod
    def quick(cls) -> "ExperimentScale":
        """Small scale suitable for CI and pytest-benchmark runs."""
        return cls()

    @classmethod
    def tiny(cls) -> "ExperimentScale":
        """Very small scale for smoke tests of the run machinery itself."""
        return cls(
            corpus_size=50,
            l_dataset_concise=10,
            l_dataset_faithful=6,
            machine_tasks=6,
            human_tasks=8,
            rtllm_tasks=3,
            v2_tasks=4,
            num_samples=2,
            temperatures=(0.2,),
        )

    @classmethod
    def paper(cls) -> "ExperimentScale":
        """The paper's full experimental scale (slow: hours of simulation)."""
        return cls(
            corpus_size=2000,
            l_dataset_concise=300,
            l_dataset_faithful=200,
            machine_tasks=143,
            human_tasks=156,
            rtllm_tasks=29,
            v2_tasks=156,
            num_samples=10,
            temperatures=(0.2, 0.5, 0.8),
        )

    def evaluation_config(self) -> EvaluationConfig:
        return EvaluationConfig(
            num_samples=self.num_samples,
            ks=(1, 5) if self.num_samples >= 5 else (1,),
            temperatures=self.temperatures,
            seed=self.seed,
        )

    def to_dict(self) -> dict:
        """JSON-safe serialization (run manifests persist this verbatim)."""
        return {
            "corpus_size": self.corpus_size,
            "l_dataset_concise": self.l_dataset_concise,
            "l_dataset_faithful": self.l_dataset_faithful,
            "machine_tasks": self.machine_tasks,
            "human_tasks": self.human_tasks,
            "rtllm_tasks": self.rtllm_tasks,
            "v2_tasks": self.v2_tasks,
            "num_samples": self.num_samples,
            "temperatures": list(self.temperatures),
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ExperimentScale":
        """Inverse of :meth:`to_dict`; missing keys fall back to the defaults
        (hand-built manifests may carry a partial or empty scale dict)."""
        defaults = cls()
        return cls(
            corpus_size=int(payload.get("corpus_size", defaults.corpus_size)),
            l_dataset_concise=int(payload.get("l_dataset_concise", defaults.l_dataset_concise)),
            l_dataset_faithful=int(payload.get("l_dataset_faithful", defaults.l_dataset_faithful)),
            machine_tasks=int(payload.get("machine_tasks", defaults.machine_tasks)),
            human_tasks=int(payload.get("human_tasks", defaults.human_tasks)),
            rtllm_tasks=int(payload.get("rtllm_tasks", defaults.rtllm_tasks)),
            v2_tasks=int(payload.get("v2_tasks", defaults.v2_tasks)),
            num_samples=int(payload.get("num_samples", defaults.num_samples)),
            temperatures=tuple(
                float(t) for t in payload.get("temperatures", defaults.temperatures)
            ),
            seed=int(payload.get("seed", 0)),
        )


@dataclass
class DatasetBundle:
    """All datasets produced by the generation flows of Fig. 2."""

    vanilla: InstructionDataset
    k_dataset: InstructionDataset
    l_dataset: InstructionDataset

    def kl_dataset(self, seed: int = 0) -> InstructionDataset:
        return self.k_dataset.merged_with(self.l_dataset, name="kl-dataset", seed=seed)


@dataclass
class HaVenModels:
    """The fine-tuned HaVen pipelines plus their profiles."""

    pipelines: dict[str, HaVenPipeline] = field(default_factory=dict)
    profiles: dict[str, CapabilityProfile] = field(default_factory=dict)


# --------------------------------------------------------------------------- datasets & models
def build_datasets(scale: ExperimentScale | None = None) -> DatasetBundle:
    """Run the full dataset-generation flow (corpus → vanilla → K; scripts → L)."""
    scale = scale or ExperimentScale.quick()
    corpus = CorpusGenerator(CorpusConfig(num_samples=scale.corpus_size, seed=scale.seed + 2025)).generate()
    vanilla = VanillaDatasetGenerator(seed=scale.seed).generate(corpus)
    k_result = KDatasetGenerator(seed=scale.seed).generate(vanilla)
    l_result = LDatasetGenerator(
        LDatasetConfig(
            num_concise=scale.l_dataset_concise,
            num_faithful=scale.l_dataset_faithful,
            seed=scale.seed + 7,
        )
    ).generate()
    return DatasetBundle(
        vanilla=k_result.vanilla_dataset,
        k_dataset=k_result.k_dataset,
        l_dataset=l_result.l_dataset,
    )


def build_haven_models(
    datasets: DatasetBundle,
    use_sicot: bool = True,
    seed: int = 0,
) -> HaVenModels:
    """Fine-tune the three base models on vanilla + KL and wrap them in pipelines."""
    tuner = FineTuner()
    models = HaVenModels()
    for base_key, haven_name in HAVEN_BASE_MODELS.items():
        base_profile = BASE_MODEL_PROFILES[base_key]
        tuned, _report = tuner.finetune(
            base_profile,
            DatasetMix(
                vanilla=datasets.vanilla,
                k_dataset=datasets.k_dataset,
                l_dataset=datasets.l_dataset,
            ),
            tuned_name=haven_name,
        )
        backend = SimulatedCodeGenLLM(tuned, seed=seed)
        models.profiles[haven_name] = tuned
        models.pipelines[haven_name] = HaVenPipeline(backend, use_sicot=use_sicot)
    return models


def baseline_pipeline(profile_key: str, use_sicot: bool = False, seed: int = 0) -> HaVenPipeline:
    """Build a pipeline for one of the registered baseline profiles."""
    profile = BASELINE_PROFILES[profile_key]
    return HaVenPipeline(SimulatedCodeGenLLM(profile, seed=seed), use_sicot=use_sicot)


def build_suites(scale: ExperimentScale | None = None) -> dict[str, BenchmarkSuite]:
    """Build all four benchmark suites at the requested scale."""
    scale = scale or ExperimentScale.quick()
    return {
        "machine": build_verilogeval_machine(SuiteConfig(num_tasks=scale.machine_tasks, seed=scale.seed + 11)),
        "human": build_verilogeval_human(SuiteConfig(num_tasks=scale.human_tasks, seed=scale.seed + 11)),
        "rtllm": build_rtllm(RTLLMConfig(num_tasks=scale.rtllm_tasks, seed=scale.seed + 43)),
        "v2": build_verilogeval_v2(V2Config(num_tasks=scale.v2_tasks, seed=scale.seed + 71)),
    }


# --------------------------------------------------------------------------- run execution
def _run_manifest(manifest: "RunManifest", store: "RunStore | None" = None) -> "StreamingAggregator":
    """Execute a manifest (resuming whatever ``store`` already journals) and aggregate."""
    from .runs import RunEngine, RunStore, StreamingAggregator

    store = store or RunStore.ephemeral()
    engine = RunEngine(manifest, store)
    engine.run()
    return StreamingAggregator(manifest, resolver=engine.resolver).feed_store(store)


# --------------------------------------------------------------------------- Table IV
#: Table IV baselines grouped the way the paper groups them.
TABLE4_BASELINES: dict[str, str] = {
    "gpt-3.5": "General LLM",
    "gpt-4": "General LLM",
    "starcoder-15b": "General LLM",
    "codellama-7b": "General LLM",
    "deepseek-coder-6.7b": "General LLM",
    "codeqwen-7b": "General LLM",
    "chipnemo-13b": "LLM for Verilog CodeGen",
    "thakur-16b": "LLM for Verilog CodeGen",
    "rtlcoder-mistral": "LLM for Verilog CodeGen",
    "rtlcoder-deepseek": "LLM for Verilog CodeGen",
    "betterv-codellama": "LLM for Verilog CodeGen",
    "betterv-deepseek": "LLM for Verilog CodeGen",
    "betterv-codeqwen": "LLM for Verilog CodeGen",
    "autovcoder-codellama": "LLM for Verilog CodeGen",
    "autovcoder-deepseek": "LLM for Verilog CodeGen",
    "autovcoder-codeqwen": "LLM for Verilog CodeGen",
    "origen-deepseek": "LLM for Verilog CodeGen",
}


def run_table4(
    scale: ExperimentScale | None = None,
    baseline_keys: list[str] | None = None,
    include_haven: bool = True,
    store: "RunStore | None" = None,
) -> list[Table4Row]:
    """Reproduce Table IV: every model evaluated on the four benchmarks.

    Pass a persistent :class:`~repro.runs.store.RunStore` via ``store`` to make
    the sweep resumable/shardable; by default it runs in memory.
    """
    from .runs.presets import table4_manifest

    manifest = table4_manifest(scale, baseline_keys=baseline_keys, include_haven=include_haven)
    return _run_manifest(manifest, store).table4_rows()


# --------------------------------------------------------------------------- Table V
#: Models compared on the symbolic-modality subset in Table V.
TABLE5_MODELS = ["rtlcoder-deepseek", "origen-deepseek", "gpt-4", "deepseek-coder-v2"]


def run_table5(
    scale: ExperimentScale | None = None,
    full_subset: bool = True,
    store: "RunStore | None" = None,
) -> list[Table5Row]:
    """Reproduce Table V: per-modality pass@1 on the symbolic subset.

    The symbolic subset is only 44 tasks, so by default it is built at the
    paper's full size regardless of the scale's ``human_tasks`` setting.
    """
    from .runs.presets import table5_manifest

    manifest = table5_manifest(scale, full_subset=full_subset)
    return _run_manifest(manifest, store).table5_rows()


# --------------------------------------------------------------------------- Table VI
#: Commercial models probed with/without SI-CoT in Table VI.
TABLE6_MODELS = ["gpt-4o-mini", "gpt-4", "deepseek-coder-v2"]


def run_table6(
    scale: ExperimentScale | None = None,
    full_subset: bool = True,
    store: "RunStore | None" = None,
) -> dict[str, tuple[float, float]]:
    """Reproduce Table VI: pass@1 with vs without SI-CoT on the symbolic subset."""
    from .runs.presets import table6_manifest

    manifest = table6_manifest(scale, full_subset=full_subset)
    return _run_manifest(manifest, store).table6_rows()


# --------------------------------------------------------------------------- Fig. 3
def run_fig3(
    scale: ExperimentScale | None = None,
    store: "RunStore | None" = None,
) -> list[AblationSeries]:
    """Reproduce Fig. 3: the five ablation settings across the three base models."""
    from .runs.presets import fig3_manifest

    return _run_manifest(fig3_manifest(scale), store).fig3_series()


# --------------------------------------------------------------------------- Fig. 4
def run_fig4(
    scale: ExperimentScale | None = None,
    portions: tuple[int, ...] = (0, 50, 100),
    store: "RunStore | None" = None,
) -> tuple[dict[tuple[int, int], float], dict[tuple[int, int], float]]:
    """Reproduce Fig. 4: pass@1/5 grids over K/L dataset portions (CodeQwen)."""
    from .runs.presets import fig4_manifest

    return _run_manifest(fig4_manifest(scale, portions=portions), store).fig4_grids()
