"""High-level experiment drivers reproducing the paper's tables and figures.

This module wires the full stack together: dataset generation → fine-tuning →
pipelines (with/without SI-CoT) → benchmark evaluation → report rendering.  Each
``run_*`` function corresponds to one table or figure of the paper; the
``benchmarks/`` directory calls them (scaled down by default) and ``EXPERIMENTS.md``
records the measured numbers next to the paper's.

Scaling: the ``ExperimentScale`` dataclass controls task counts, samples per task
and corpus size.  ``ExperimentScale.paper()`` uses the paper's real sizes
(143/156/29 tasks, n = 10, three temperatures); ``ExperimentScale.quick()`` is the
default for CI-sized runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .bench.evaluator import BenchmarkEvaluator, EvaluationConfig, SuiteResult
from .bench.reporting import (
    AblationSeries,
    Table4Row,
    Table5Row,
    table4_row_from_results,
)
from .bench.rtllm import RTLLMConfig, build_rtllm
from .bench.symbolic_suite import build_symbolic_suite
from .bench.task import BenchmarkSuite
from .bench.verilogeval import SuiteConfig, build_verilogeval_human, build_verilogeval_machine
from .bench.verilogeval_v2 import V2Config, build_verilogeval_v2
from .core.dataset.corpus import CorpusConfig, CorpusGenerator
from .core.dataset.kdataset import KDatasetGenerator
from .core.dataset.ldataset import LDatasetConfig, LDatasetGenerator
from .core.dataset.records import InstructionDataset
from .core.dataset.vanilla import VanillaDatasetGenerator
from .core.llm.finetune import DatasetMix, FineTuner
from .core.llm.profiles import BASE_MODEL_PROFILES, BASELINE_PROFILES, CapabilityProfile
from .core.llm.simulated import SimulatedCodeGenLLM
from .core.pipeline import HaVenPipeline

#: The three base models HaVen fine-tunes, keyed by profile id.
HAVEN_BASE_MODELS = {
    "codellama-7b": "HaVen-CodeLlama",
    "deepseek-coder-6.7b": "HaVen-DeepSeek",
    "codeqwen-7b": "HaVen-CodeQwen",
}


@dataclass
class ExperimentScale:
    """Controls how large the reproduction runs are."""

    corpus_size: int = 160
    l_dataset_concise: int = 36
    l_dataset_faithful: int = 24
    machine_tasks: int = 36
    human_tasks: int = 39
    rtllm_tasks: int = 15
    v2_tasks: int = 30
    num_samples: int = 4
    temperatures: tuple[float, ...] = (0.2,)
    seed: int = 0

    @classmethod
    def quick(cls) -> "ExperimentScale":
        """Small scale suitable for CI and pytest-benchmark runs."""
        return cls()

    @classmethod
    def paper(cls) -> "ExperimentScale":
        """The paper's full experimental scale (slow: hours of simulation)."""
        return cls(
            corpus_size=2000,
            l_dataset_concise=300,
            l_dataset_faithful=200,
            machine_tasks=143,
            human_tasks=156,
            rtllm_tasks=29,
            v2_tasks=156,
            num_samples=10,
            temperatures=(0.2, 0.5, 0.8),
        )

    def evaluation_config(self) -> EvaluationConfig:
        return EvaluationConfig(
            num_samples=self.num_samples,
            ks=(1, 5) if self.num_samples >= 5 else (1,),
            temperatures=self.temperatures,
            seed=self.seed,
        )


@dataclass
class DatasetBundle:
    """All datasets produced by the generation flows of Fig. 2."""

    vanilla: InstructionDataset
    k_dataset: InstructionDataset
    l_dataset: InstructionDataset

    def kl_dataset(self, seed: int = 0) -> InstructionDataset:
        return self.k_dataset.merged_with(self.l_dataset, name="kl-dataset", seed=seed)


@dataclass
class HaVenModels:
    """The fine-tuned HaVen pipelines plus their profiles."""

    pipelines: dict[str, HaVenPipeline] = field(default_factory=dict)
    profiles: dict[str, CapabilityProfile] = field(default_factory=dict)


# --------------------------------------------------------------------------- datasets & models
def build_datasets(scale: ExperimentScale | None = None) -> DatasetBundle:
    """Run the full dataset-generation flow (corpus → vanilla → K; scripts → L)."""
    scale = scale or ExperimentScale.quick()
    corpus = CorpusGenerator(CorpusConfig(num_samples=scale.corpus_size, seed=scale.seed + 2025)).generate()
    vanilla = VanillaDatasetGenerator(seed=scale.seed).generate(corpus)
    k_result = KDatasetGenerator(seed=scale.seed).generate(vanilla)
    l_result = LDatasetGenerator(
        LDatasetConfig(
            num_concise=scale.l_dataset_concise,
            num_faithful=scale.l_dataset_faithful,
            seed=scale.seed + 7,
        )
    ).generate()
    return DatasetBundle(
        vanilla=k_result.vanilla_dataset,
        k_dataset=k_result.k_dataset,
        l_dataset=l_result.l_dataset,
    )


def build_haven_models(
    datasets: DatasetBundle,
    use_sicot: bool = True,
    seed: int = 0,
) -> HaVenModels:
    """Fine-tune the three base models on vanilla + KL and wrap them in pipelines."""
    tuner = FineTuner()
    models = HaVenModels()
    for base_key, haven_name in HAVEN_BASE_MODELS.items():
        base_profile = BASE_MODEL_PROFILES[base_key]
        tuned, _report = tuner.finetune(
            base_profile,
            DatasetMix(
                vanilla=datasets.vanilla,
                k_dataset=datasets.k_dataset,
                l_dataset=datasets.l_dataset,
            ),
            tuned_name=haven_name,
        )
        backend = SimulatedCodeGenLLM(tuned, seed=seed)
        models.profiles[haven_name] = tuned
        models.pipelines[haven_name] = HaVenPipeline(backend, use_sicot=use_sicot)
    return models


def baseline_pipeline(profile_key: str, use_sicot: bool = False, seed: int = 0) -> HaVenPipeline:
    """Build a pipeline for one of the registered baseline profiles."""
    profile = BASELINE_PROFILES[profile_key]
    return HaVenPipeline(SimulatedCodeGenLLM(profile, seed=seed), use_sicot=use_sicot)


def build_suites(scale: ExperimentScale | None = None) -> dict[str, BenchmarkSuite]:
    """Build all four benchmark suites at the requested scale."""
    scale = scale or ExperimentScale.quick()
    return {
        "machine": build_verilogeval_machine(SuiteConfig(num_tasks=scale.machine_tasks, seed=scale.seed + 11)),
        "human": build_verilogeval_human(SuiteConfig(num_tasks=scale.human_tasks, seed=scale.seed + 11)),
        "rtllm": build_rtllm(RTLLMConfig(num_tasks=scale.rtllm_tasks, seed=scale.seed + 43)),
        "v2": build_verilogeval_v2(V2Config(num_tasks=scale.v2_tasks, seed=scale.seed + 71)),
    }


# --------------------------------------------------------------------------- Table IV
#: Table IV baselines grouped the way the paper groups them.
TABLE4_BASELINES: dict[str, str] = {
    "gpt-3.5": "General LLM",
    "gpt-4": "General LLM",
    "starcoder-15b": "General LLM",
    "codellama-7b": "General LLM",
    "deepseek-coder-6.7b": "General LLM",
    "codeqwen-7b": "General LLM",
    "chipnemo-13b": "LLM for Verilog CodeGen",
    "thakur-16b": "LLM for Verilog CodeGen",
    "rtlcoder-mistral": "LLM for Verilog CodeGen",
    "rtlcoder-deepseek": "LLM for Verilog CodeGen",
    "betterv-codellama": "LLM for Verilog CodeGen",
    "betterv-deepseek": "LLM for Verilog CodeGen",
    "betterv-codeqwen": "LLM for Verilog CodeGen",
    "autovcoder-codellama": "LLM for Verilog CodeGen",
    "autovcoder-deepseek": "LLM for Verilog CodeGen",
    "autovcoder-codeqwen": "LLM for Verilog CodeGen",
    "origen-deepseek": "LLM for Verilog CodeGen",
}


def run_table4(
    scale: ExperimentScale | None = None,
    baseline_keys: list[str] | None = None,
    include_haven: bool = True,
) -> list[Table4Row]:
    """Reproduce Table IV: every model evaluated on the four benchmarks."""
    scale = scale or ExperimentScale.quick()
    suites = build_suites(scale)
    evaluator = BenchmarkEvaluator(scale.evaluation_config())

    rows: list[Table4Row] = []
    keys = baseline_keys if baseline_keys is not None else list(TABLE4_BASELINES)
    for key in keys:
        profile = BASELINE_PROFILES[key]
        pipeline = baseline_pipeline(key, use_sicot=False, seed=scale.seed)
        results = {name: evaluator.evaluate(pipeline, suite) for name, suite in suites.items()}
        rows.append(
            table4_row_from_results(
                model=profile.name,
                group=TABLE4_BASELINES.get(key, "General LLM"),
                open_source=profile.open_source,
                model_size=profile.model_size,
                machine=results["machine"],
                human=results["human"],
                rtllm=results["rtllm"],
                v2=results["v2"],
            )
        )

    if include_haven:
        datasets = build_datasets(scale)
        haven = build_haven_models(datasets, use_sicot=True, seed=scale.seed)
        for name, pipeline in haven.pipelines.items():
            profile = haven.profiles[name]
            results = {suite_name: evaluator.evaluate(pipeline, suite) for suite_name, suite in suites.items()}
            rows.append(
                table4_row_from_results(
                    model=name,
                    group="Ours",
                    open_source=True,
                    model_size=profile.model_size,
                    machine=results["machine"],
                    human=results["human"],
                    rtllm=results["rtllm"],
                    v2=results["v2"],
                )
            )
    return rows


# --------------------------------------------------------------------------- Table V
#: Models compared on the symbolic-modality subset in Table V.
TABLE5_MODELS = ["rtlcoder-deepseek", "origen-deepseek", "gpt-4", "deepseek-coder-v2"]


def run_table5(scale: ExperimentScale | None = None, full_subset: bool = True) -> list[Table5Row]:
    """Reproduce Table V: per-modality pass@1 on the symbolic subset.

    The symbolic subset is only 44 tasks, so by default it is built at the
    paper's full size regardless of the scale's ``human_tasks`` setting.
    """
    scale = scale or ExperimentScale.quick()
    subset_size = None if full_subset else scale.human_tasks
    suite = build_symbolic_suite(SuiteConfig(num_tasks=subset_size, seed=scale.seed + 11))
    config = scale.evaluation_config()
    evaluator = BenchmarkEvaluator(config)

    def to_row(name: str, result: SuiteResult) -> Table5Row:
        def count(category: str) -> tuple[int, int]:
            results = [r for r in result.task_results if r.category == category]
            passed = sum(1 for r in results if r.passed_at_least_once and r.num_functional_passes * 2 >= r.num_samples)
            # pass@1-style counting: a task counts as passed when the majority of
            # samples pass; use the plain pass@1 estimate scaled to task counts.
            estimates = [r.num_functional_passes / max(1, r.num_samples) for r in results]
            passed = round(sum(estimates))
            return passed, len(results)

        return Table5Row(
            model=name,
            truth_table=count("truth_table"),
            waveform=count("waveform"),
            state_diagram=count("state_diagram"),
        )

    rows: list[Table5Row] = []
    for key in TABLE5_MODELS:
        pipeline = baseline_pipeline(key, use_sicot=False, seed=scale.seed)
        rows.append(to_row(BASELINE_PROFILES[key].name, evaluator.evaluate(pipeline, suite)))

    datasets = build_datasets(scale)
    haven = build_haven_models(datasets, use_sicot=True, seed=scale.seed)
    haven_pipeline = haven.pipelines["HaVen-CodeQwen"]
    rows.append(to_row("HaVen-CodeQwen", evaluator.evaluate(haven_pipeline, suite)))
    return rows


# --------------------------------------------------------------------------- Table VI
#: Commercial models probed with/without SI-CoT in Table VI.
TABLE6_MODELS = ["gpt-4o-mini", "gpt-4", "deepseek-coder-v2"]


def run_table6(scale: ExperimentScale | None = None, full_subset: bool = True) -> dict[str, tuple[float, float]]:
    """Reproduce Table VI: pass@1 with vs without SI-CoT on the symbolic subset."""
    scale = scale or ExperimentScale.quick()
    subset_size = None if full_subset else scale.human_tasks
    suite = build_symbolic_suite(SuiteConfig(num_tasks=subset_size, seed=scale.seed + 11))
    evaluator = BenchmarkEvaluator(scale.evaluation_config())
    rows: dict[str, tuple[float, float]] = {}
    for key in TABLE6_MODELS:
        with_cot = evaluator.evaluate(baseline_pipeline(key, use_sicot=True, seed=scale.seed), suite)
        without_cot = evaluator.evaluate(baseline_pipeline(key, use_sicot=False, seed=scale.seed), suite)
        rows[BASELINE_PROFILES[key].name] = (
            with_cot.functional_percentages()[1],
            without_cot.functional_percentages()[1],
        )
    return rows


# --------------------------------------------------------------------------- Fig. 3
def run_fig3(scale: ExperimentScale | None = None) -> list[AblationSeries]:
    """Reproduce Fig. 3: the five ablation settings across the three base models."""
    scale = scale or ExperimentScale.quick()
    datasets = build_datasets(scale)
    suite = build_verilogeval_human(SuiteConfig(num_tasks=scale.human_tasks, seed=scale.seed + 11))
    evaluator = BenchmarkEvaluator(scale.evaluation_config())
    tuner = FineTuner()

    series: list[AblationSeries] = []
    for base_key, haven_name in HAVEN_BASE_MODELS.items():
        base_profile = BASE_MODEL_PROFILES[base_key]
        vanilla_profile, _ = tuner.finetune(
            base_profile, DatasetMix(vanilla=datasets.vanilla), tuned_name=f"{base_profile.name}+vanilla"
        )
        kl_profile, _ = tuner.finetune(
            base_profile,
            DatasetMix(vanilla=datasets.vanilla, k_dataset=datasets.k_dataset, l_dataset=datasets.l_dataset),
            tuned_name=f"{base_profile.name}+vanilla+KL",
        )
        settings = {
            "base": HaVenPipeline(SimulatedCodeGenLLM(base_profile, seed=scale.seed), use_sicot=False),
            "vanilla": HaVenPipeline(SimulatedCodeGenLLM(vanilla_profile, seed=scale.seed), use_sicot=False),
            "vanilla+CoT": HaVenPipeline(SimulatedCodeGenLLM(vanilla_profile, seed=scale.seed), use_sicot=True),
            "vanilla+KL": HaVenPipeline(SimulatedCodeGenLLM(kl_profile, seed=scale.seed), use_sicot=False),
            "vanilla+CoT+KL": HaVenPipeline(SimulatedCodeGenLLM(kl_profile, seed=scale.seed), use_sicot=True),
        }
        entry = AblationSeries(model=haven_name.replace("HaVen-", ""))
        for setting, pipeline in settings.items():
            result = evaluator.evaluate(pipeline, suite)
            percentages = result.functional_percentages()
            entry.pass1[setting] = percentages.get(1, 0.0)
            entry.pass5[setting] = percentages.get(5, percentages.get(1, 0.0))
        series.append(entry)
    return series


# --------------------------------------------------------------------------- Fig. 4
def run_fig4(
    scale: ExperimentScale | None = None,
    portions: tuple[int, ...] = (0, 50, 100),
) -> tuple[dict[tuple[int, int], float], dict[tuple[int, int], float]]:
    """Reproduce Fig. 4: pass@1/5 grids over K/L dataset portions (CodeQwen)."""
    scale = scale or ExperimentScale.quick()
    datasets = build_datasets(scale)
    suite = build_verilogeval_human(SuiteConfig(num_tasks=scale.human_tasks, seed=scale.seed + 11))
    evaluator = BenchmarkEvaluator(scale.evaluation_config())
    tuner = FineTuner()
    base_profile = BASE_MODEL_PROFILES["codeqwen-7b"]

    grid_pass1: dict[tuple[int, int], float] = {}
    grid_pass5: dict[tuple[int, int], float] = {}
    for k_portion in portions:
        for l_portion in portions:
            k_subset = datasets.k_dataset.subset(k_portion / 100.0, seed=scale.seed)
            l_subset = datasets.l_dataset.subset(l_portion / 100.0, seed=scale.seed)
            profile, _ = tuner.finetune(
                base_profile,
                DatasetMix(vanilla=datasets.vanilla, k_dataset=k_subset, l_dataset=l_subset),
                tuned_name=f"CodeQwen+K{k_portion}+L{l_portion}",
            )
            pipeline = HaVenPipeline(SimulatedCodeGenLLM(profile, seed=scale.seed), use_sicot=True)
            result = evaluator.evaluate(pipeline, suite)
            percentages = result.functional_percentages()
            grid_pass1[(k_portion, l_portion)] = percentages.get(1, 0.0)
            grid_pass5[(k_portion, l_portion)] = percentages.get(5, percentages.get(1, 0.0))
    return grid_pass1, grid_pass5
