"""``repro.formal``: SAT-based equivalence proofs for the reproduction stack.

The simulation engines (:mod:`repro.logic.bittable`,
:mod:`repro.verilog.simulator.batch`) decide equivalence by enumeration or
sampling: exponential in the input count, or incomplete.  This package closes
that gap with a classical formal pipeline, all in pure Python:

* :mod:`~repro.formal.aig` — And-Inverter Graph netlists (hash-consed, folding);
* :mod:`~repro.formal.encode` — ``BoolExpr``/``BitTable`` → AIG;
* :mod:`~repro.formal.cone` — Verilog combinational cones and k-step
  sequential unrollings → AIG (two-valued, bit-exact with the simulators);
* :mod:`~repro.formal.cnf` — Tseitin transformation;
* :mod:`~repro.formal.sat` — a CDCL solver (two-watched literals, first-UIP
  learning, VSIDS activity, Luby restarts);
* :mod:`~repro.formal.miter` — miter construction, equivalence proofs and
  counterexample extraction;
* :mod:`~repro.formal.fraig` — simulation-guided fraiging (AIG preprocessing
  that merges proven-equal nodes before CNF encoding);
* :mod:`~repro.formal.incremental` — :class:`EquivalenceSession`: one
  persistent solver proving a whole candidate sweep against one reference
  under per-candidate activation literals;
* :mod:`~repro.formal.induction` — unbounded sequential proofs by
  k-induction (base + inductive step over the unrolled transition relation);
* :mod:`~repro.formal.stats` — process-wide proof counters exported at the
  service's ``GET /metrics``.

Counterexamples are *actionable*: ``bench.golden`` replays them on the batched
simulator as a differential oracle, and the hallucination detector consumes
them to sharpen Table II subtype classification.
"""

from .aig import AIG, FALSE, TRUE, FormalEncodingError, FormalError, SymVector
from .cnf import CNF, tseitin
from .cone import ConeResult, SequentialUnroller, build_combinational_cone
from .encode import bittable_to_aig, expr_to_aig
from .fraig import FraigStats, fraig_reduce
from .incremental import EquivalenceSession, IncrementalEncoder
from .induction import InductionInconclusive, prove_sequential_by_induction
from .miter import (
    Counterexample,
    EquivalenceResult,
    prove_combinational_equivalence,
    prove_expr_equivalence,
    prove_sequential_equivalence,
)
from .sat import ConflictLimitExceeded, SatResult, SatSolver, SatStats, solve_cnf
from .stats import proof_stats, record_proof, reset_proof_stats

__all__ = [
    "AIG",
    "CNF",
    "FALSE",
    "TRUE",
    "ConeResult",
    "ConflictLimitExceeded",
    "Counterexample",
    "EquivalenceResult",
    "EquivalenceSession",
    "FormalEncodingError",
    "FormalError",
    "FraigStats",
    "IncrementalEncoder",
    "InductionInconclusive",
    "SatResult",
    "SatSolver",
    "SatStats",
    "SequentialUnroller",
    "SymVector",
    "bittable_to_aig",
    "build_combinational_cone",
    "expr_to_aig",
    "fraig_reduce",
    "proof_stats",
    "prove_combinational_equivalence",
    "prove_expr_equivalence",
    "prove_sequential_by_induction",
    "prove_sequential_equivalence",
    "record_proof",
    "reset_proof_stats",
    "solve_cnf",
    "tseitin",
]
