"""And-Inverter Graph (AIG): the shared netlist form of the formal subsystem.

Every formal front end — :mod:`repro.formal.encode` (``BoolExpr``/``BitTable``)
and :mod:`repro.formal.cone` (Verilog combinational cones) — bit-blasts into
this one representation; :mod:`repro.formal.cnf` then Tseitin-encodes it for the
CDCL solver in :mod:`repro.formal.sat`.

Literals follow the standard AIGER convention: node ``i`` contributes literals
``2*i`` (positive) and ``2*i + 1`` (negated).  Node 0 is the constant, so
``FALSE == 0`` and ``TRUE == 1``.  AND gates are hash-consed with operand
normalisation and local constant/contradiction folding, which keeps structurally
equal cones shared — the property the fixpoint settling loop of the Verilog
front end relies on for convergence detection.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence


class FormalError(Exception):
    """Base class for errors raised by the formal subsystem."""


class FormalEncodingError(FormalError):
    """A design/expression uses a construct the formal encoder cannot prove.

    Raised instead of silently approximating: callers fall back to the
    simulation-based engines (which stay the semantic authority for four-state
    and unsupported constructs).
    """


#: Constant literals.
FALSE = 0
TRUE = 1


def negate(literal: int) -> int:
    """Negate a literal (flip the inversion bit)."""
    return literal ^ 1


class AIG:
    """A mutable And-Inverter Graph with hash-consed, folding AND gates."""

    def __init__(self) -> None:
        # Node 0 is the constant-FALSE node; AND nodes store (left, right) fanin
        # literals with left >= right (normalised).  Inputs store None.
        self._fanins: list[tuple[int, int] | None] = [None]
        self._and_cache: dict[tuple[int, int], int] = {}
        self._inputs: list[int] = []  # node indices of inputs, creation order
        self._input_names: dict[int, str] = {}  # node index -> name
        self._name_to_literal: dict[str, int] = {}

    # ------------------------------------------------------------------ construction
    def add_input(self, name: str) -> int:
        """Declare a named primary input and return its positive literal."""
        if name in self._name_to_literal:
            raise ValueError(f"input {name!r} already declared")
        node = len(self._fanins)
        self._fanins.append(None)
        self._inputs.append(node)
        self._input_names[node] = name
        literal = node << 1
        self._name_to_literal[name] = literal
        return literal

    def literal(self, name: str) -> int:
        """Return the positive literal of a declared input."""
        return self._name_to_literal[name]

    def AND(self, a: int, b: int) -> int:
        """Hash-consed conjunction with local folding."""
        if a < b:
            a, b = b, a
        # Constant and trivial folds.
        if b == FALSE or a == negate(b):
            return FALSE
        if b == TRUE or a == b:
            return a
        key = (a, b)
        cached = self._and_cache.get(key)
        if cached is not None:
            return cached
        node = len(self._fanins)
        self._fanins.append(key)
        literal = node << 1
        self._and_cache[key] = literal
        return literal

    def NOT(self, a: int) -> int:
        return negate(a)

    def OR(self, a: int, b: int) -> int:
        return negate(self.AND(negate(a), negate(b)))

    def XOR(self, a: int, b: int) -> int:
        return self.OR(self.AND(a, negate(b)), self.AND(negate(a), b))

    def XNOR(self, a: int, b: int) -> int:
        return negate(self.XOR(a, b))

    def MUX(self, select: int, if_true: int, if_false: int) -> int:
        """``select ? if_true : if_false``."""
        if select == TRUE:
            return if_true
        if select == FALSE:
            return if_false
        if if_true == if_false:
            return if_true
        return self.OR(self.AND(select, if_true), self.AND(negate(select), if_false))

    def and_all(self, literals: Iterable[int]) -> int:
        """Balanced conjunction of a sequence (empty sequence yields TRUE)."""
        terms = list(literals)
        if not terms:
            return TRUE
        while len(terms) > 1:
            terms = [
                self.AND(terms[i], terms[i + 1]) if i + 1 < len(terms) else terms[i]
                for i in range(0, len(terms), 2)
            ]
        return terms[0]

    def or_all(self, literals: Iterable[int]) -> int:
        """Balanced disjunction of a sequence (empty sequence yields FALSE)."""
        return negate(self.and_all(negate(term) for term in literals))

    def const(self, value: int) -> int:
        return TRUE if value else FALSE

    # ------------------------------------------------------------------ queries
    @property
    def num_nodes(self) -> int:
        """Total node count including the constant node."""
        return len(self._fanins)

    @property
    def num_ands(self) -> int:
        return len(self._and_cache)

    def inputs(self) -> list[str]:
        """Declared input names in creation order."""
        return [self._input_names[node] for node in self._inputs]

    def is_input(self, node: int) -> bool:
        return node in self._input_names

    def input_name(self, node: int) -> str:
        return self._input_names[node]

    def fanin(self, node: int) -> tuple[int, int]:
        """Fanin literals of an AND node."""
        fanin = self._fanins[node]
        if fanin is None:
            raise ValueError(f"node {node} is not an AND gate")
        return fanin

    def cone(self, roots: Sequence[int]) -> list[int]:
        """Topologically-ordered node indices feeding ``roots`` (constant excluded).

        The order is suitable for forward evaluation: every AND node appears
        after both of its fanin nodes.
        """
        seen: set[int] = set()
        order: list[int] = []
        # Iterative DFS with an explicit post-visit marker (cones can be deep).
        work: list[tuple[int, bool]] = [(literal >> 1, False) for literal in roots]
        while work:
            node, processed = work.pop()
            if node == 0 or node in seen:
                continue
            fanin = self._fanins[node]
            if processed or fanin is None:
                seen.add(node)
                order.append(node)
                continue
            work.append((node, True))
            work.append((fanin[0] >> 1, False))
            work.append((fanin[1] >> 1, False))
        return order

    def support(self, roots: Sequence[int]) -> set[str]:
        """Names of the primary inputs in the cone of influence of ``roots``."""
        return {
            self._input_names[node]
            for node in self.cone(roots)
            if node in self._input_names
        }

    # ------------------------------------------------------------------ evaluation
    def evaluate(self, roots: Sequence[int], assignment: Mapping[str, int]) -> list[int]:
        """Evaluate root literals under a 0/1 assignment of the input names.

        Inputs missing from ``assignment`` default to 0.  This is the replay
        oracle used to sanity-check SAT counterexamples before they are ever
        reported (and by the unit tests, against ``BoolExpr.evaluate``).
        """
        values: dict[int, int] = {0: 0}
        for node in self.cone(roots):
            fanin = self._fanins[node]
            if fanin is None:
                values[node] = 1 if assignment.get(self._input_names[node], 0) else 0
            else:
                left, right = fanin
                values[node] = (values[left >> 1] ^ (left & 1)) & (
                    values[right >> 1] ^ (right & 1)
                )
        return [values.get(literal >> 1, 0) ^ (literal & 1) for literal in roots]


@dataclass(frozen=True)
class SymVector:
    """A fixed-width bit vector of AIG literals (bit 0 = LSB).

    The two-valued symbolic counterpart of
    :class:`~repro.verilog.simulator.values.LogicVector`: the Verilog front end
    computes one ``SymVector`` per signal, mirroring the scalar evaluator's
    width rules operator by operator.
    """

    bits: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.bits:
            raise ValueError("SymVector must have at least one bit")

    @property
    def width(self) -> int:
        return len(self.bits)

    @classmethod
    def constant(cls, value: int, width: int) -> "SymVector":
        value &= (1 << width) - 1
        return cls(tuple(TRUE if (value >> bit) & 1 else FALSE for bit in range(width)))

    def resized(self, width: int) -> "SymVector":
        """Zero-extend or truncate to ``width`` (mirrors ``LogicVector.resized``)."""
        if width == self.width:
            return self
        if width < self.width:
            return SymVector(self.bits[:width])
        return SymVector(self.bits + (FALSE,) * (width - self.width))

    def constant_value(self) -> int | None:
        """The integer value when every bit is constant, else ``None``."""
        value = 0
        for position, bit in enumerate(self.bits):
            if bit == TRUE:
                value |= 1 << position
            elif bit != FALSE:
                return None
        return value

    def slice(self, msb: int, lsb: int) -> "SymVector":
        """Bit slice ``[msb:lsb]``; out-of-range bits read as constant 0.

        The scalar ``LogicVector.slice`` reads out-of-range bits as ``x``; in the
        two-valued encoding that is unprovable, so the cone encoder raises before
        ever slicing out of range (see ``_check_slice``).
        """
        if msb < lsb:
            msb, lsb = lsb, msb
        bits = tuple(
            self.bits[position] if 0 <= position < self.width else FALSE
            for position in range(lsb, msb + 1)
        )
        return SymVector(bits)


def concat_sym(parts: Sequence[SymVector]) -> SymVector:
    """Concatenate MSB-first parts (Verilog ``{a, b}`` order) into one vector."""
    bits: tuple[int, ...] = ()
    for part in reversed(parts):
        bits = bits + part.bits
    return SymVector(bits)
