"""Tseitin transformation: AIG cones to CNF for the CDCL solver.

The encoding is the textbook one: every AIG node in the cone of the requested
roots becomes one CNF variable; an AND gate ``c = a & b`` contributes the three
clauses ``(¬c ∨ a)``, ``(¬c ∨ b)`` and ``(c ∨ ¬a ∨ ¬b)``.  Only the cone of the
roots is encoded, so proving one output of a large design never pays for the
rest of the netlist.

CNF literals use the DIMACS convention: variable ``v`` (1-based) appears as
``+v`` or ``-v``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from .aig import AIG, FALSE, TRUE


@dataclass
class CNF:
    """A CNF formula plus the bookkeeping to map models back onto the AIG.

    Attributes:
        num_vars: number of CNF variables (1-based, DIMACS style).
        clauses: clauses as tuples of signed variable indices.
        node_vars: AIG node index → CNF variable.
        input_vars: AIG input name → CNF variable (inputs inside the cone only).
    """

    num_vars: int = 0
    clauses: list[tuple[int, ...]] = field(default_factory=list)
    node_vars: dict[int, int] = field(default_factory=dict)
    input_vars: dict[str, int] = field(default_factory=dict)

    def new_var(self) -> int:
        self.num_vars += 1
        return self.num_vars

    def add(self, *literals: int) -> None:
        self.clauses.append(tuple(literals))

    def to_dimacs(self) -> str:
        """Render in DIMACS format (for debugging / external cross-checks)."""
        lines = [f"p cnf {self.num_vars} {len(self.clauses)}"]
        for clause in self.clauses:
            lines.append(" ".join(str(literal) for literal in clause) + " 0")
        return "\n".join(lines) + "\n"

    def decode_inputs(self, model: Mapping[int, bool]) -> dict[str, int]:
        """Extract a 0/1 assignment of the AIG input names from a SAT model."""
        return {
            name: 1 if model.get(var, False) else 0
            for name, var in self.input_vars.items()
        }


def tseitin(aig: AIG, roots: Sequence[int]) -> tuple[CNF, list[int]]:
    """Encode the cone of ``roots`` and return ``(cnf, root_cnf_literals)``.

    The returned literals are the DIMACS literals equivalent to each root AIG
    literal; constrain them (e.g. with a unit clause) to assert a root.
    Constant roots map to a dedicated always-true variable so callers can
    uniformly add unit clauses.
    """
    cnf = CNF()
    const_var: int | None = None

    def constant_var() -> int:
        nonlocal const_var
        if const_var is None:
            const_var = cnf.new_var()
            cnf.add(const_var)  # fixed true
        return const_var

    for node in aig.cone(roots):
        var = cnf.new_var()
        cnf.node_vars[node] = var
        if aig.is_input(node):
            cnf.input_vars[aig.input_name(node)] = var
        else:
            left, right = aig.fanin(node)
            a = _cnf_literal(cnf, left, constant_var)
            b = _cnf_literal(cnf, right, constant_var)
            cnf.add(-var, a)
            cnf.add(-var, b)
            cnf.add(var, -a, -b)
    root_literals = [_cnf_literal(cnf, literal, constant_var) for literal in roots]
    return cnf, root_literals


def _cnf_literal(cnf: CNF, aig_literal: int, constant_var) -> int:
    if aig_literal in (TRUE, FALSE):
        var = constant_var()
        return var if aig_literal == TRUE else -var
    var = cnf.node_vars[aig_literal >> 1]
    return -var if aig_literal & 1 else var
