"""Bit-blast Verilog combinational cones (and k-step unrollings) into AIGs.

This is the formal front end for the Verilog subset: it reuses the simulator's
:func:`~repro.verilog.simulator.simulator.elaborate_module` (so widths,
parameters and processes are resolved exactly once, identically to both
simulators) and then *symbolically executes* the processes, producing one
:class:`~repro.formal.aig.SymVector` of AIG literals per signal instead of a
concrete value:

* expressions mirror :class:`~repro.verilog.simulator.eval.ExpressionEvaluator`
  operator by operator under **two-valued** semantics (widths, carries and
  comparison rules are kept bit-exact with the scalar engine);
* control flow is *if-converted*: both branches execute on copies of the store
  and every signal they touch is merged through a mux on the condition;
* combinational processes are settled to a fixpoint — hash-consed AND gates
  make structural equality of settle iterations a cheap tuple compare;
* signals read before any assignment become tagged "undef" inputs; an output
  whose cone of influence contains one cannot be proven two-valued and raises
  :class:`~repro.formal.aig.FormalEncodingError` (callers fall back to the
  four-state simulators).

Sequential designs are handled by :class:`SequentialUnroller`: the reset state
is computed *concretely* with the scalar simulator (reset pulse included), and
``k`` clock steps are unrolled with fresh symbolic inputs per step.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

from ..verilog import ast_nodes as ast
from ..verilog.design import coerce_compiled
from ..verilog.simulator.scheduler import MAX_LOOP_ITERATIONS, ProcessKind
from ..verilog.simulator.simulator import MAX_SETTLE_ITERATIONS, ElaboratedModule
from .aig import AIG, FALSE, TRUE, FormalEncodingError, SymVector, concat_sym

#: Key prefix for the shadow next-state entries used by non-blocking assigns.
_NB_PREFIX = "\x00nb\x00"


def _nb_key(name: str) -> str:
    return _NB_PREFIX + name


@dataclass
class ConeResult:
    """A combinational cone lowered into an AIG.

    Attributes:
        aig: the graph the cone was built into (possibly shared with others).
        inputs: input port name → vector of input literals.
        outputs: output port name → vector of cone literals.
        undef_inputs: names of tagged undef AIG inputs created for signals read
            before assignment; outputs whose support intersects this set are
            rejected by :meth:`check_defined`.
    """

    aig: AIG
    inputs: dict[str, SymVector]
    outputs: dict[str, SymVector]
    undef_inputs: set[str] = field(default_factory=set)

    def output_literals(self, names: Sequence[str] | None = None) -> list[int]:
        chosen = names if names is not None else sorted(self.outputs)
        literals: list[int] = []
        for name in chosen:
            literals.extend(self.outputs[name].bits)
        return literals

    def check_defined(self, names: Sequence[str] | None = None) -> None:
        """Raise unless every checked output is a pure function of real inputs."""
        support = self.aig.support(self.output_literals(names))
        tainted = support & self.undef_inputs
        if tainted:
            raise FormalEncodingError(
                "output cone depends on undriven or latched signal bits: "
                + ", ".join(sorted(tainted)[:4])
            )


class SymbolicExecutor:
    """Two-valued symbolic interpreter over one elaborated module."""

    def __init__(
        self,
        design: ElaboratedModule,
        aig: AIG,
        input_literals: Mapping[str, SymVector] | None = None,
        undef_prefix: str = "",
    ):
        self.design = design
        self.aig = aig
        self.parameters = design.parameters
        self.functions = design.functions
        self.undef_prefix = undef_prefix
        self.undef_inputs: set[str] = set()
        self.widths: dict[str, int] = dict(design.store.widths)
        self.values: dict[str, SymVector] = {}
        self.input_vectors: dict[str, SymVector] = {}
        provided = dict(input_literals or {})
        input_names = {port.name for port in design.input_ports()}
        for name, width in self.widths.items():
            if name in provided:
                vector = provided[name]
                if vector.width != width:
                    raise FormalEncodingError(
                        f"provided literals for {name!r} have width {vector.width}, "
                        f"expected {width}"
                    )
                self.values[name] = vector
                if name in input_names:
                    self.input_vectors[name] = vector
            elif name in input_names:
                vector = SymVector(
                    tuple(
                        self.aig.add_input(f"{undef_prefix}{name}[{bit}]")
                        for bit in range(width)
                    )
                )
                self.values[name] = vector
                self.input_vectors[name] = vector
            else:
                self.values[name] = self._initial_vector(name, width)

    # ------------------------------------------------------------------ initial state
    def _initial_vector(self, name: str, width: int) -> SymVector:
        """Seed a non-input signal from its elaborated value (x bits → undef)."""
        concrete = self.design.store.values.get(name)
        bits: list[int] = []
        for bit in range(width):
            if concrete is not None and not ((concrete.xz_mask >> bit) & 1):
                bits.append(TRUE if (concrete.value >> bit) & 1 else FALSE)
            else:
                undef_name = f"__undef__{self.undef_prefix}{name}[{bit}]"
                bits.append(self.aig.add_input(undef_name))
                self.undef_inputs.add(undef_name)
        return SymVector(tuple(bits))

    def set_concrete(self, name: str, value: int) -> None:
        """Force a signal to a constant (clock/reset pins during unrolling)."""
        self.values[name] = SymVector.constant(value, self.widths[name])

    # ------------------------------------------------------------------ process driving
    def run_initial_blocks(self) -> None:
        for process in self.design.processes:
            if process.kind is ProcessKind.INITIAL:
                self.execute(process.body, allow_nonblocking=False)

    def settle(self) -> None:
        """Re-run combinational processes until the symbolic store is stable."""
        for _ in range(MAX_SETTLE_ITERATIONS):
            changed = False
            for process in self.design.processes:
                if process.kind is not ProcessKind.COMBINATIONAL:
                    continue
                before = dict(self.values)
                self.execute(process.body, allow_nonblocking=False)
                changed |= self.values != before
            if not changed:
                return
        raise FormalEncodingError(
            f"combinational logic in module {self.design.name!r} did not reach a "
            "symbolic fixpoint (combinational loop or inferred latch)"
        )

    def clock_step(self) -> None:
        """Execute every sequential process once and commit non-blocking updates.

        Models one active clock edge: callers are responsible for holding the
        clock/reset pins constant and for calling :meth:`settle` before/after.
        """
        targets: set[str] = set()
        for process in self.design.processes:
            if process.kind is ProcessKind.SEQUENTIAL:
                targets |= _nonblocking_targets(process.body)
        for name in targets:
            key = _nb_key(name)
            self.widths[key] = self.widths[name]
            self.values[key] = self.values[name]
        for process in self.design.processes:
            if process.kind is ProcessKind.SEQUENTIAL:
                self.execute(process.body, allow_nonblocking=True)
        for name in targets:
            key = _nb_key(name)
            self.values[name] = self.values.pop(key)
            del self.widths[key]

    # ------------------------------------------------------------------ statements
    def execute(self, statement: ast.Statement | None, allow_nonblocking: bool) -> None:
        if statement is None or isinstance(statement, ast.NullStatement):
            return
        if isinstance(statement, ast.Block):
            for inner in statement.statements:
                self.execute(inner, allow_nonblocking)
            return
        if isinstance(statement, ast.BlockingAssign):
            self._assign(statement.target, self.evaluate(statement.value))
            return
        if isinstance(statement, ast.NonBlockingAssign):
            value = self.evaluate(statement.value)
            if allow_nonblocking:
                self._assign(statement.target, value, shadow=True)
            else:
                self._assign(statement.target, value)
            return
        if isinstance(statement, ast.IfStatement):
            condition = self._truth(self.evaluate(statement.condition))
            self._execute_guarded(
                condition, statement.then_branch, statement.else_branch, allow_nonblocking
            )
            return
        if isinstance(statement, ast.CaseStatement):
            self._execute_case(statement, allow_nonblocking)
            return
        if isinstance(statement, ast.ForLoop):
            self.execute(statement.init, allow_nonblocking)
            iterations = 0
            while True:
                condition = self._constant_truth(statement.condition, "for-loop condition")
                if not condition:
                    break
                self.execute(statement.body, allow_nonblocking)
                self.execute(statement.step, allow_nonblocking)
                iterations += 1
                if iterations > MAX_LOOP_ITERATIONS:
                    raise FormalEncodingError("for loop exceeded the iteration limit")
            return
        if isinstance(statement, ast.WhileLoop):
            iterations = 0
            while self._constant_truth(statement.condition, "while-loop condition"):
                self.execute(statement.body, allow_nonblocking)
                iterations += 1
                if iterations > MAX_LOOP_ITERATIONS:
                    raise FormalEncodingError("while loop exceeded the iteration limit")
            return
        if isinstance(statement, ast.RepeatLoop):
            count = self._constant_int(statement.count, "repeat count")
            if count > MAX_LOOP_ITERATIONS:
                raise FormalEncodingError("repeat loop exceeded the iteration limit")
            for _ in range(count):
                self.execute(statement.body, allow_nonblocking)
            return
        if isinstance(statement, (ast.DelayStatement, ast.EventWait)):
            self.execute(statement.body, allow_nonblocking)
            return
        if isinstance(statement, ast.SystemTaskCall):
            return  # $display and friends have no formal meaning
        raise FormalEncodingError(f"unsupported statement {type(statement).__name__}")

    def _execute_guarded(
        self,
        condition: int,
        then_branch: ast.Statement | None,
        else_branch: ast.Statement | None,
        allow_nonblocking: bool,
    ) -> None:
        """If-conversion: run both branches and mux every touched signal."""
        if condition == TRUE:
            self.execute(then_branch, allow_nonblocking)
            return
        if condition == FALSE:
            self.execute(else_branch, allow_nonblocking)
            return
        before = dict(self.values)
        self.execute(then_branch, allow_nonblocking)
        then_values = self.values
        self.values = dict(before)
        self.execute(else_branch, allow_nonblocking)
        else_values = self.values
        merged: dict[str, SymVector] = {}
        for name, else_vector in else_values.items():
            then_vector = then_values[name]
            if then_vector is else_vector or then_vector == else_vector:
                merged[name] = then_vector
            else:
                merged[name] = self._mux_vector(condition, then_vector, else_vector)
        self.values = merged

    def _execute_case(self, statement: ast.CaseStatement, allow_nonblocking: bool) -> None:
        subject = self.evaluate(statement.subject)
        arms: list[tuple[int, ast.Statement | None]] = []
        default_body: ast.Statement | None = None
        for item in statement.items:
            if item.is_default:
                default_body = item.body
                continue
            match = FALSE
            for expression in item.expressions:
                match = self.aig.OR(
                    match, self._case_match(statement.kind, subject, expression)
                )
            arms.append((match, item.body))
        self._execute_arms(arms, default_body, allow_nonblocking)

    def _execute_arms(
        self,
        arms: list[tuple[int, ast.Statement | None]],
        default_body: ast.Statement | None,
        allow_nonblocking: bool,
    ) -> None:
        """Priority-encode case arms as nested if-conversion (first match wins)."""
        if not arms:
            self.execute(default_body, allow_nonblocking)
            return
        condition, body = arms[0]
        if condition == TRUE:
            self.execute(body, allow_nonblocking)
            return
        if condition == FALSE:
            self._execute_arms(arms[1:], default_body, allow_nonblocking)
            return
        before = dict(self.values)
        self.execute(body, allow_nonblocking)
        taken = self.values
        self.values = dict(before)
        self._execute_arms(arms[1:], default_body, allow_nonblocking)
        skipped = self.values
        merged: dict[str, SymVector] = {}
        for name, skipped_vector in skipped.items():
            taken_vector = taken[name]
            if taken_vector is skipped_vector or taken_vector == skipped_vector:
                merged[name] = taken_vector
            else:
                merged[name] = self._mux_vector(condition, taken_vector, skipped_vector)
        self.values = merged

    def _case_match(
        self, kind: str, subject: SymVector, expression: ast.Expression
    ) -> int:
        """Literal: does the case subject match one arm expression?"""
        if isinstance(expression, ast.Number) and expression.xz_mask:
            width = max(subject.width, expression.width or 32)
            subject = subject.resized(width)
            value = expression.value
            xz = expression.xz_mask
            terms: list[int] = []
            for bit in range(width):
                bit_value = (value >> bit) & 1
                bit_xz = (xz >> bit) & 1
                if bit_xz:
                    is_z_digit = bool(bit_value)  # z encodes as xz=1, value=1
                    if kind == "casex" or (kind == "casez" and is_z_digit):
                        continue  # wildcard digit
                    # A non-wildcard x/z digit can never equal a two-valued bit.
                    return FALSE
                subject_bit = subject.bits[bit] if bit < subject.width else FALSE
                terms.append(subject_bit if bit_value else self.aig.NOT(subject_bit))
            return self.aig.and_all(terms)
        candidate = self.evaluate(expression)
        width = max(subject.width, candidate.width)
        subject = subject.resized(width)
        candidate = candidate.resized(width)
        return self.aig.and_all(
            self.aig.XNOR(subject.bits[bit], candidate.bits[bit]) for bit in range(width)
        )

    # ------------------------------------------------------------------ assignment
    def _assign(
        self, target: ast.Expression, value: SymVector, shadow: bool = False
    ) -> None:
        rename: Callable[[str], str] = _nb_key if shadow else (lambda name: name)
        self._assign_renamed(target, value, rename)

    def _assign_renamed(
        self, target: ast.Expression, value: SymVector, rename: Callable[[str], str]
    ) -> None:
        if isinstance(target, ast.Identifier):
            key = rename(target.name)
            if key not in self.values:
                key = target.name  # blocking write to a non-register target
            if key not in self.values:
                raise FormalEncodingError(f"write to undeclared signal {target.name!r}")
            self.values[key] = value.resized(self.widths[key])
            return
        if isinstance(target, ast.BitSelect):
            name = _target_base_name(target)
            key = rename(name) if rename(name) in self.values else name
            current = self.values[key]
            index = self.evaluate(target.index)
            constant = index.constant_value()
            if constant is not None:
                if not 0 <= constant < current.width:
                    return  # out-of-range write: no effect (scalar drops it too)
                self.values[key] = _replace_bits(current, constant, constant, value)
                return
            bits = list(current.bits)
            for position in range(min(current.width, 1 << index.width)):
                equal = self._equals_constant(index, position)
                bits[position] = self.aig.MUX(equal, value.bits[0], bits[position])
            self.values[key] = SymVector(tuple(bits))
            return
        if isinstance(target, ast.PartSelect):
            name = _target_base_name(target)
            key = rename(name) if rename(name) in self.values else name
            current = self.values[key]
            msb, lsb = self._part_select_bounds(target)
            self.values[key] = _replace_bits(current, msb, lsb, value)
            return
        if isinstance(target, ast.Concat):
            widths = [self._target_width(part) for part in target.parts]
            total = sum(widths)
            value = value.resized(total)
            offset = total
            for part, width in zip(target.parts, widths):
                offset -= width
                self._assign_renamed(
                    part, value.slice(offset + width - 1, offset), rename
                )
            return
        raise FormalEncodingError(
            f"unsupported assignment target {type(target).__name__}"
        )

    def _target_width(self, target: ast.Expression) -> int:
        if isinstance(target, ast.Identifier):
            return self.widths.get(target.name, 1)
        if isinstance(target, ast.BitSelect):
            return 1
        if isinstance(target, ast.PartSelect):
            msb, lsb = self._part_select_bounds(target)
            return abs(msb - lsb) + 1
        if isinstance(target, ast.Concat):
            return sum(self._target_width(part) for part in target.parts)
        raise FormalEncodingError(
            f"unsupported assignment target {type(target).__name__}"
        )

    def _part_select_bounds(self, target: ast.PartSelect) -> tuple[int, int]:
        first = self._constant_int(target.msb, "part-select bound")
        second = self._constant_int(target.lsb, "part-select bound")
        if target.mode == ":":
            return first, second
        if target.mode == "+:":
            return first + second - 1, first
        return first, first - second + 1

    # ------------------------------------------------------------------ expressions
    def evaluate(self, expression: ast.Expression) -> SymVector:
        if isinstance(expression, ast.Number):
            if expression.xz_mask:
                raise FormalEncodingError(
                    "x/z literal has no two-valued encoding (outside casez/casex patterns)"
                )
            width = expression.width if expression.width is not None else 32
            return SymVector.constant(expression.value, width)
        if isinstance(expression, ast.Identifier):
            return self._lookup(expression.name)
        if isinstance(expression, ast.StringLiteral):
            return SymVector.constant(0, 1)
        if isinstance(expression, ast.UnaryOp):
            return self._evaluate_unary(expression)
        if isinstance(expression, ast.BinaryOp):
            return self._evaluate_binary(expression)
        if isinstance(expression, ast.Ternary):
            return self._evaluate_ternary(expression)
        if isinstance(expression, ast.Concat):
            return concat_sym([self.evaluate(part) for part in expression.parts])
        if isinstance(expression, ast.Replication):
            count = self._constant_int(expression.count, "replication count")
            if count <= 0:
                raise FormalEncodingError("replication count must be positive")
            base = self.evaluate(expression.value)
            return concat_sym([base] * count)
        if isinstance(expression, ast.BitSelect):
            return self._evaluate_bit_select(expression)
        if isinstance(expression, ast.PartSelect):
            target = self.evaluate(expression.target)
            msb, lsb = self._part_select_bounds(expression)
            self._check_slice(target, msb, lsb)
            return target.slice(msb, lsb)
        if isinstance(expression, ast.FunctionCall):
            return self._evaluate_call(expression)
        raise FormalEncodingError(
            f"cannot encode expression of type {type(expression).__name__}"
        )

    def _lookup(self, name: str) -> SymVector:
        if name in self.values:
            return self.values[name]
        if name in self.parameters:
            return SymVector.constant(self.parameters[name], 32)
        raise FormalEncodingError(f"reference to unknown signal {name!r}")

    def _check_slice(self, target: SymVector, msb: int, lsb: int) -> None:
        low, high = min(msb, lsb), max(msb, lsb)
        if low < 0 or high >= target.width:
            raise FormalEncodingError(
                f"part select [{msb}:{lsb}] reads outside a {target.width}-bit value "
                "(x in four-state simulation)"
            )

    def _truth(self, vector: SymVector) -> int:
        """``is_true`` of a vector: the OR of all bits."""
        return self.aig.or_all(vector.bits)

    def _constant_int(self, expression: ast.Expression, what: str) -> int:
        value = self.evaluate(expression).constant_value()
        if value is None:
            raise FormalEncodingError(f"{what} must be constant for formal encoding")
        return value

    def _constant_truth(self, expression: ast.Expression, what: str) -> bool:
        literal = self._truth(self.evaluate(expression))
        if literal == TRUE:
            return True
        if literal == FALSE:
            return False
        raise FormalEncodingError(f"{what} must be constant for formal encoding")

    def _equals_constant(self, vector: SymVector, constant: int) -> int:
        return self.aig.and_all(
            vector.bits[bit] if (constant >> bit) & 1 else self.aig.NOT(vector.bits[bit])
            for bit in range(vector.width)
        )

    # ------------------------------------------------------------------ operators
    def _evaluate_unary(self, expression: ast.UnaryOp) -> SymVector:
        op = expression.op
        operand = self.evaluate(expression.operand)
        if op == "+":
            return operand
        if op == "-":
            return self._negate(operand)
        if op == "!":
            return SymVector((self.aig.NOT(self._truth(operand)),))
        if op == "~":
            return SymVector(tuple(self.aig.NOT(bit) for bit in operand.bits))
        if op in ("&", "~&"):
            literal = self.aig.and_all(operand.bits)
            return SymVector((self.aig.NOT(literal) if op == "~&" else literal,))
        if op in ("|", "~|"):
            literal = self.aig.or_all(operand.bits)
            return SymVector((self.aig.NOT(literal) if op == "~|" else literal,))
        if op in ("^", "~^", "^~"):
            literal = FALSE
            for bit in operand.bits:
                literal = self.aig.XOR(literal, bit)
            return SymVector((self.aig.NOT(literal) if op in ("~^", "^~") else literal,))
        raise FormalEncodingError(f"unsupported unary operator {op!r}")

    def _negate(self, operand: SymVector) -> SymVector:
        """Two's-complement negation at the operand width (the scalar rule)."""
        inverted = SymVector(tuple(self.aig.NOT(bit) for bit in operand.bits))
        return self._add(inverted, SymVector.constant(1, operand.width), operand.width)

    def _add(self, left: SymVector, right: SymVector, result_width: int) -> SymVector:
        left = left.resized(result_width)
        right = right.resized(result_width)
        carry = FALSE
        bits: list[int] = []
        for a, b in zip(left.bits, right.bits):
            bits.append(self.aig.XOR(self.aig.XOR(a, b), carry))
            carry = self.aig.OR(self.aig.AND(a, b), self.aig.AND(carry, self.aig.XOR(a, b)))
        return SymVector(tuple(bits))

    def _evaluate_binary(self, expression: ast.BinaryOp) -> SymVector:
        op = expression.op
        left = self.evaluate(expression.left)
        right = self.evaluate(expression.right)
        width = max(left.width, right.width)

        if op in ("&&", "||"):
            a = self._truth(left)
            b = self._truth(right)
            literal = self.aig.AND(a, b) if op == "&&" else self.aig.OR(a, b)
            return SymVector((literal,))
        if op in ("==", "===", "!=", "!=="):
            equal = self.aig.and_all(
                self.aig.XNOR(a, b)
                for a, b in zip(left.resized(width).bits, right.resized(width).bits)
            )
            negatedp = op in ("!=", "!==")
            return SymVector((self.aig.NOT(equal) if negatedp else equal,))
        if op in ("<", "<=", ">", ">="):
            return SymVector((self._compare(op, left, right, width),))
        if op in ("&", "|", "^", "~^", "^~"):
            l = left.resized(width)
            r = right.resized(width)
            if op == "&":
                bits = [self.aig.AND(a, b) for a, b in zip(l.bits, r.bits)]
            elif op == "|":
                bits = [self.aig.OR(a, b) for a, b in zip(l.bits, r.bits)]
            elif op == "^":
                bits = [self.aig.XOR(a, b) for a, b in zip(l.bits, r.bits)]
            else:
                bits = [self.aig.XNOR(a, b) for a, b in zip(l.bits, r.bits)]
            return SymVector(tuple(bits))
        if op in ("<<", ">>", "<<<", ">>>"):
            return self._evaluate_shift(op, left, right)
        if op == "+":
            return self._add(left, right, width + 1)
        if op == "-":
            # a - b at width+1 == a + ~b + 1 with zero-extended operands.
            extended = right.resized(width + 1)
            inverted = SymVector(tuple(self.aig.NOT(bit) for bit in extended.bits))
            total = self._add(left.resized(width + 1), inverted, width + 1)
            return self._add(total, SymVector.constant(1, width + 1), width + 1)
        if op == "*":
            return self._multiply(left, right, max(2 * width, 1))
        if op in ("/", "%", "**"):
            lhs = left.constant_value()
            rhs = right.constant_value()
            if lhs is None or rhs is None:
                raise FormalEncodingError(
                    f"operator {op!r} requires constant operands for formal encoding"
                )
            if op == "**":
                return SymVector.constant(lhs**rhs, max(width, 32))
            if rhs == 0:
                raise FormalEncodingError("division by constant zero yields x")
            result = lhs // rhs if op == "/" else lhs % rhs
            return SymVector.constant(result, width)
        raise FormalEncodingError(f"unsupported binary operator {op!r}")

    def _compare(self, op: str, left: SymVector, right: SymVector, width: int) -> int:
        """Unsigned comparison, mirroring the scalar evaluator's ``to_int`` rule."""
        l = left.resized(width)
        r = right.resized(width)
        equal = TRUE
        less = FALSE
        for bit in range(width - 1, -1, -1):
            a = l.bits[bit]
            b = r.bits[bit]
            less = self.aig.OR(less, self.aig.and_all((equal, self.aig.NOT(a), b)))
            equal = self.aig.AND(equal, self.aig.XNOR(a, b))
        if op == "<":
            return less
        if op == "<=":
            return self.aig.OR(less, equal)
        if op == ">":
            return self.aig.NOT(self.aig.OR(less, equal))
        return self.aig.NOT(less)

    def _multiply(self, left: SymVector, right: SymVector, result_width: int) -> SymVector:
        l = left.resized(result_width)
        total = SymVector.constant(0, result_width)
        for position in range(min(right.width, result_width)):
            select = right.bits[position]
            if select == FALSE:
                continue
            shifted_bits = tuple(
                l.bits[bit - position] if bit >= position else FALSE
                for bit in range(result_width)
            )
            partial = SymVector(
                tuple(self.aig.AND(select, bit) for bit in shifted_bits)
            )
            total = self._add(total, partial, result_width)
        return total

    def _shift_by_constant(self, op: str, left: SymVector, amount: int) -> SymVector:
        width = left.width
        if op in ("<<", "<<<"):
            bits = tuple(
                left.bits[bit - amount] if bit >= amount else FALSE for bit in range(width)
            )
            return SymVector(bits)
        if op == ">>":
            bits = tuple(
                left.bits[bit + amount] if bit + amount < width else FALSE
                for bit in range(width)
            )
            return SymVector(bits)
        sign = left.bits[width - 1]
        bits = tuple(
            left.bits[bit + amount] if bit + amount < width else sign
            for bit in range(width)
        )
        return SymVector(bits)

    def _evaluate_shift(self, op: str, left: SymVector, right: SymVector) -> SymVector:
        constant = right.constant_value()
        if constant is not None:
            return self._shift_by_constant(op, left, min(constant, left.width))
        width = left.width
        # Mux over the in-range amounts; every amount >= width saturates to the
        # same image, selected by a single comparator.
        result = self._shift_by_constant(op, left, width)  # the saturated image
        for amount in range(min(width, 1 << right.width) - 1, -1, -1):
            equal = self._equals_constant(right, amount)
            shifted = self._shift_by_constant(op, left, amount)
            result = self._mux_vector(equal, shifted, result)
        return result

    def _evaluate_ternary(self, expression: ast.Ternary) -> SymVector:
        condition = self._truth(self.evaluate(expression.condition))
        if condition == TRUE:
            return self.evaluate(expression.if_true)
        if condition == FALSE:
            return self.evaluate(expression.if_false)
        if_true = self.evaluate(expression.if_true)
        if_false = self.evaluate(expression.if_false)
        width = max(if_true.width, if_false.width)
        return self._mux_vector(
            condition, if_true.resized(width), if_false.resized(width)
        )

    def _mux_vector(self, select: int, if_true: SymVector, if_false: SymVector) -> SymVector:
        width = max(if_true.width, if_false.width)
        t = if_true.resized(width)
        f = if_false.resized(width)
        return SymVector(
            tuple(self.aig.MUX(select, a, b) for a, b in zip(t.bits, f.bits))
        )

    def _evaluate_bit_select(self, expression: ast.BitSelect) -> SymVector:
        target = self.evaluate(expression.target)
        index = self.evaluate(expression.index)
        constant = index.constant_value()
        if constant is not None:
            self._check_slice(target, constant, constant)
            return target.slice(constant, constant)
        if (1 << index.width) > target.width:
            # A symbolic index that can point past the MSB reads x there.
            raise FormalEncodingError(
                "bit select with a symbolic index that can run out of range"
            )
        result = SymVector((target.bits[0],))
        for position in range(1, min(target.width, 1 << index.width)):
            equal = self._equals_constant(index, position)
            result = self._mux_vector(equal, SymVector((target.bits[position],)), result)
        return result

    def _evaluate_call(self, expression: ast.FunctionCall) -> SymVector:
        name = expression.name
        if name in ("$signed", "$unsigned"):
            if not expression.args:
                raise FormalEncodingError(f"{name} requires an argument")
            return self.evaluate(expression.args[0])
        if name == "$clog2":
            value = self._constant_int(expression.args[0], "$clog2 argument")
            return SymVector.constant(max(0, (value - 1).bit_length()), 32)
        if name.startswith("$"):
            raise FormalEncodingError(f"system function {name!r} yields x (unsupported)")
        function = self.functions.get(name)
        if function is None:
            raise FormalEncodingError(f"call to unknown function {name!r}")
        return self._execute_function(function, expression)

    def _execute_function(
        self, function: ast.FunctionDeclaration, call: ast.FunctionCall
    ) -> SymVector:
        arguments = [self.evaluate(argument) for argument in call.args]
        width = 1
        if function.range is not None:
            msb = self._constant_int(function.range.msb, "function range")
            lsb = self._constant_int(function.range.lsb, "function range")
            width = abs(msb - lsb) + 1
        saved_values = self.values
        saved_widths = self.widths
        self.values = dict(saved_values)
        self.widths = dict(saved_widths)
        try:
            self.widths[function.name] = width
            self.values[function.name] = SymVector.constant(0, width)
            index = 0
            for declaration in function.inputs:
                for input_name in declaration.names:
                    input_width = 1
                    if declaration.range is not None:
                        msb = self._constant_int(declaration.range.msb, "function input range")
                        lsb = self._constant_int(declaration.range.lsb, "function input range")
                        input_width = abs(msb - lsb) + 1
                    if index >= len(arguments):
                        raise FormalEncodingError(
                            f"function {function.name!r} called with too few arguments"
                        )
                    self.widths[input_name] = input_width
                    self.values[input_name] = arguments[index].resized(input_width)
                    index += 1
            for declaration in function.locals:
                for local_name in declaration.names:
                    local_width = 1
                    if declaration.range is not None:
                        msb = self._constant_int(declaration.range.msb, "function local range")
                        lsb = self._constant_int(declaration.range.lsb, "function local range")
                        local_width = abs(msb - lsb) + 1
                    if declaration.net_type is ast.NetType.INTEGER:
                        local_width = 32
                    self.widths[local_name] = local_width
                    self.values[local_name] = SymVector.constant(0, local_width)
            self.execute(function.body, allow_nonblocking=False)
            return self.values[function.name]
        finally:
            self.values = saved_values
            self.widths = saved_widths


def _replace_bits(current: SymVector, msb: int, lsb: int, value: SymVector) -> SymVector:
    if msb < lsb:
        msb, lsb = lsb, msb
    slice_width = msb - lsb + 1
    value = value.resized(slice_width)
    bits = list(current.bits)
    for offset in range(slice_width):
        position = lsb + offset
        if 0 <= position < len(bits):
            bits[position] = value.bits[offset]
    return SymVector(tuple(bits))


def _target_base_name(expression: ast.Expression) -> str:
    base = expression
    while isinstance(base, (ast.BitSelect, ast.PartSelect)):
        base = base.target
    if not isinstance(base, ast.Identifier):
        raise FormalEncodingError("assignment target must be a simple signal reference")
    return base.name


def _nonblocking_targets(statement: ast.Statement | None) -> set[str]:
    """Base names of every non-blocking assignment target in a statement tree."""
    if statement is None:
        return set()
    if isinstance(statement, ast.Block):
        names: set[str] = set()
        for inner in statement.statements:
            names |= _nonblocking_targets(inner)
        return names
    if isinstance(statement, ast.NonBlockingAssign):
        return _assign_target_names(statement.target)
    if isinstance(statement, ast.IfStatement):
        return _nonblocking_targets(statement.then_branch) | _nonblocking_targets(
            statement.else_branch
        )
    if isinstance(statement, ast.CaseStatement):
        names = set()
        for item in statement.items:
            names |= _nonblocking_targets(item.body)
        return names
    if isinstance(statement, (ast.ForLoop, ast.WhileLoop, ast.RepeatLoop)):
        return _nonblocking_targets(statement.body)
    if isinstance(statement, (ast.DelayStatement, ast.EventWait)):
        return _nonblocking_targets(statement.body)
    return set()


def _assign_target_names(target: ast.Expression) -> set[str]:
    if isinstance(target, ast.Concat):
        names: set[str] = set()
        for part in target.parts:
            names |= _assign_target_names(part)
        return names
    return {_target_base_name(target)}


# --------------------------------------------------------------------------- cone builders
def build_combinational_cone(
    module,
    aig: AIG | None = None,
    input_literals: Mapping[str, SymVector] | None = None,
    module_name: str | None = None,
    parameter_overrides: dict[str, int] | None = None,
    undef_prefix: str = "",
) -> ConeResult:
    """Lower a combinational module into an AIG.

    Args:
        module: parsed module, Verilog source text (compiled through the
            default :class:`~repro.verilog.design.DesignDatabase`), or an
            already-compiled :class:`~repro.verilog.design.CompiledDesign`.
        aig: graph to build into (a fresh one when omitted); pass the same graph
            and ``input_literals`` for both designs to construct miters.
        input_literals: input port name → literal vector to share.
        module_name: module selection when ``module`` is source text.
        parameter_overrides: parameter overrides for elaboration.
        undef_prefix: disambiguates undef-input names when several cones share
            one graph.

    Raises:
        FormalEncodingError: on sequential processes or unsupported constructs.
    """
    compiled = coerce_compiled(module, module_name, parameter_overrides)
    design = compiled.elaborate()
    if compiled.has_sequential_processes:
        raise FormalEncodingError(
            f"module {design.name!r} has edge-triggered processes; use "
            "SequentialUnroller for bounded sequential equivalence"
        )
    executor = SymbolicExecutor(
        design, aig if aig is not None else AIG(), input_literals, undef_prefix
    )
    executor.run_initial_blocks()
    executor.settle()
    outputs = {
        port.name: executor.values[port.name] for port in design.output_ports()
    }
    return ConeResult(
        aig=executor.aig,
        inputs=dict(executor.input_vectors),
        outputs=outputs,
        undef_inputs=set(executor.undef_inputs),
    )


class SequentialUnroller:
    """Bounded unrolling of a (single-clock) sequential module from reset.

    The reset state is obtained *concretely* by running the scalar
    :class:`~repro.verilog.simulator.ModuleSimulator` through a reset pulse —
    exactly what the testbench runner does — so the unrolling starts from the
    very state simulation-based scoring starts from.  Register bits still
    ``x`` after reset become tagged undef inputs (outputs depending on them
    are rejected at proof time).
    """

    def __init__(
        self,
        module,
        aig: AIG,
        clock: str = "clk",
        reset: str | None = None,
        reset_active_low: bool = False,
        module_name: str | None = None,
        parameter_overrides: dict[str, int] | None = None,
        undef_prefix: str = "",
    ):
        compiled = coerce_compiled(module, module_name, parameter_overrides)
        self.compiled = compiled
        self.module = compiled.module
        self.aig = aig
        self.clock = clock
        self.design = compiled.elaborate()
        self.undef_prefix = undef_prefix
        input_names = [port.name for port in self.design.input_ports()]
        self.reset, self.reset_active_low = resolve_reset(
            input_names, reset, reset_active_low
        )
        self._check_clocking()
        self.data_inputs = [
            name
            for name in input_names
            if name != clock and name != self.reset
        ]

    def _check_clocking(self) -> None:
        edges_on_clock: set[ast.EdgeKind] = set()
        for process in self.design.processes:
            if process.kind is not ProcessKind.SEQUENTIAL:
                continue
            clock_edges = [
                edge for edge, signal in process.edge_signals() if signal == self.clock
            ]
            if not clock_edges:
                raise FormalEncodingError(
                    f"sequential process in {self.design.name!r} is not clocked by "
                    f"{self.clock!r}"
                )
            edges_on_clock.update(clock_edges)
            for edge, signal in process.edge_signals():
                if signal not in (self.clock, self.reset):
                    raise FormalEncodingError(
                        f"sequential process is sensitive to {signal!r}, which is "
                        "neither the clock nor the (constant-inactive) reset"
                    )
        if len(edges_on_clock) > 1:
            raise FormalEncodingError(
                "mixed posedge/negedge clocking cannot be unrolled as one edge per step"
            )

    # ------------------------------------------------------------------ reset state
    def reset_state(self):
        """Concrete post-reset signal values (name → ``LogicVector``)."""
        from ..verilog.simulator import ModuleSimulator

        simulator = ModuleSimulator(self.compiled)
        apply_reset_pulse(
            simulator,
            clock=self.clock,
            reset=self.reset,
            reset_active_low=self.reset_active_low,
        )
        return dict(simulator.signals)

    # ------------------------------------------------------------------ unrolling
    def unroll(
        self, step_inputs: Sequence[Mapping[str, SymVector]]
    ) -> tuple[list[dict[str, SymVector]], set[str]]:
        """Unroll ``len(step_inputs)`` clock steps; returns per-step outputs.

        Args:
            step_inputs: one mapping (data-input name → literal vector) per
                step; share these vectors across designs to build a miter.

        Returns:
            ``(outputs_per_step, undef_input_names)``.
        """
        initial = self.reset_state()
        # Seed every input port with a constant so the constructor does not
        # declare (dead) AIG inputs for them; data inputs are overwritten with
        # the shared per-step vectors below, clock/reset stay pinned.
        pinned = {
            port.name: SymVector.constant(0, port.width)
            for port in self.design.input_ports()
        }
        executor = SymbolicExecutor(
            self.design,
            self.aig,
            input_literals=pinned,
            undef_prefix=self.undef_prefix,
        )
        # Overwrite every non-port signal with its concrete post-reset value
        # (bits still x after reset become tagged undef inputs).
        port_names = {port.name for port in self.design.input_ports()}
        for name, width in executor.widths.items():
            if name.startswith(_NB_PREFIX) or name in port_names:
                continue
            concrete = initial.get(name)
            if concrete is None:
                continue
            if concrete.xz_mask == 0:
                executor.values[name] = SymVector.constant(concrete.value, width)
            else:
                bits = []
                for bit in range(width):
                    if (concrete.xz_mask >> bit) & 1:
                        undef_name = f"__undef__{self.undef_prefix}{name}[{bit}]@reset"
                        bits.append(self.aig.add_input(undef_name))
                        executor.undef_inputs.add(undef_name)
                    else:
                        bits.append(TRUE if (concrete.value >> bit) & 1 else FALSE)
                executor.values[name] = SymVector(tuple(bits))
        executor.set_concrete(self.clock, 0)
        if self.reset is not None:
            executor.set_concrete(self.reset, 1 if self.reset_active_low else 0)

        outputs_per_step: list[dict[str, SymVector]] = []
        output_names = [port.name for port in self.design.output_ports()]
        for step, inputs in enumerate(step_inputs):
            for name in self.data_inputs:
                vector = inputs.get(name)
                if vector is None:
                    raise FormalEncodingError(
                        f"step {step} is missing a literal vector for input {name!r}"
                    )
                executor.values[name] = vector.resized(executor.widths[name])
                executor.input_vectors[name] = executor.values[name]
            executor.settle()
            executor.clock_step()
            executor.settle()
            outputs_per_step.append(
                {name: executor.values[name] for name in output_names}
            )
        # Only undef bits actually feeding an output matter; the constructor's
        # eager undef inputs are mostly dead once the reset state is written.
        roots = [
            literal
            for step in outputs_per_step
            for vector in step.values()
            for literal in vector.bits
        ]
        live_undefs = self.aig.support(roots) & executor.undef_inputs
        return outputs_per_step, live_undefs

    def make_step_inputs(self, steps: int, prefix: str = "") -> list[dict[str, SymVector]]:
        """Declare fresh per-step input vectors named ``{name}@{step}[{bit}]``."""
        widths = {name: self.design.store.widths[name] for name in self.data_inputs}
        step_inputs: list[dict[str, SymVector]] = []
        for step in range(steps):
            vectors: dict[str, SymVector] = {}
            for name, width in widths.items():
                vectors[name] = SymVector(
                    tuple(
                        self.aig.add_input(f"{prefix}{name}@{step}[{bit}]")
                        for bit in range(width)
                    )
                )
            step_inputs.append(vectors)
        return step_inputs


#: Reset input names recognised by auto-detection, in priority order.
RESET_NAMES = ("rst", "reset", "rst_n", "reset_n", "rstn", "resetn", "areset", "arst")

#: Reset names treated as active-low unless the caller says otherwise.
ACTIVE_LOW_RESET_NAMES = ("rst_n", "reset_n", "rstn", "resetn")

#: Clock cycles the reset pin is held active during the concrete reset pulse.
RESET_PULSE_CYCLES = 2


def detect_reset(input_names: Sequence[str]) -> str | None:
    """The design's reset input, by naming convention (``None`` when absent)."""
    for candidate in RESET_NAMES:
        if candidate in input_names:
            return candidate
    return None


def resolve_reset(
    input_names: Sequence[str], reset: str | None, reset_active_low: bool
) -> tuple[str | None, bool]:
    """Resolve ``(reset_name, active_low)``, auto-detecting either when unset."""
    if reset is None:
        reset = detect_reset(input_names)
    if reset not in input_names:
        return None, reset_active_low
    if not reset_active_low:
        reset_active_low = reset in ACTIVE_LOW_RESET_NAMES
    return reset, reset_active_low


def apply_reset_pulse(
    simulator,
    clock: str = "clk",
    reset: str | None = None,
    reset_active_low: bool = False,
) -> None:
    """Drive a scalar simulator through the canonical concrete reset pulse.

    This is THE reset protocol of the formal subsystem: the sequential
    unroller computes its initial state with it and the counterexample replay
    in ``bench.golden`` applies the very same pulse, so both engines always
    start k-step comparisons from the same state.  With no (recognised) reset
    pin the clock is simply parked low.
    """
    reset_name, active_low = resolve_reset(
        simulator.input_names(), reset, reset_active_low
    )
    if reset_name is not None:
        active = 0 if active_low else 1
        simulator.apply_inputs({reset_name: active})
        for _ in range(RESET_PULSE_CYCLES):
            simulator.apply_inputs({clock: 1})
            simulator.apply_inputs({clock: 0})
        simulator.apply_inputs({reset_name: 1 - active})
    else:
        simulator.apply_inputs({clock: 0})
