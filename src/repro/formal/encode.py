"""Encode :mod:`repro.logic` objects (``BoolExpr``, ``BitTable``) into AIGs.

This is the bridge between the paper's logic substrate and the SAT back end:
``BoolExpr`` trees map 1:1 onto AIG gates, and a packed ``BitTable`` is lowered
by Shannon expansion on its index bits (memoised on the packed integer, so
shared sub-tables — and there are many in minimised covers — encode once).
"""

from __future__ import annotations

from typing import Mapping, Sequence

from ..logic.bittable import BitTable
from ..logic.expr import And, BoolExpr, Const, Not, Or, Var, Xor
from .aig import AIG, FormalEncodingError


def expr_to_aig(
    expression: BoolExpr, aig: AIG, inputs: Mapping[str, int]
) -> int:
    """Lower a boolean expression to an AIG literal.

    Args:
        expression: the expression to encode.
        aig: target graph.
        inputs: variable name → AIG literal for every free variable.

    Raises:
        FormalEncodingError: on unknown ``BoolExpr`` subclasses (the simulation
            engines remain the authority for user-defined nodes) or on
            variables missing from ``inputs``.
    """
    cache: dict[int, int] = {}

    def encode(node: BoolExpr) -> int:
        key = id(node)
        cached = cache.get(key)
        if cached is not None:
            return cached
        node_type = type(node)
        if node_type is Var:
            try:
                literal = inputs[node.name]
            except KeyError:
                raise FormalEncodingError(
                    f"expression variable {node.name!r} has no AIG input"
                ) from None
        elif node_type is Const:
            literal = aig.const(node.value)
        elif node_type is Not:
            literal = aig.NOT(encode(node.operand))
        elif node_type is And:
            literal = aig.AND(encode(node.left), encode(node.right))
        elif node_type is Or:
            literal = aig.OR(encode(node.left), encode(node.right))
        elif node_type is Xor:
            literal = aig.XOR(encode(node.left), encode(node.right))
        else:
            raise FormalEncodingError(
                f"cannot encode BoolExpr subclass {node_type.__name__}"
            )
        cache[key] = literal
        return literal

    return encode(expression)


def bittable_to_aig(table: BitTable, aig: AIG, inputs: Mapping[str, int]) -> int:
    """Lower a packed truth table to an AIG literal by Shannon expansion.

    The first variable name is the most-significant index bit (the
    :class:`BitTable` convention), so the expansion splits the packed integer in
    half per variable: the low half is the cofactor with that variable at 0.
    Memoisation is keyed on the packed sub-table value per level, which shares
    structurally equal cofactors like a quasi-reduced BDD.
    """
    literals = []
    for name in table.names:
        try:
            literals.append(inputs[name])
        except KeyError:
            raise FormalEncodingError(
                f"truth-table variable {name!r} has no AIG input"
            ) from None

    cache: dict[tuple[int, int], int] = {}

    def expand(bits: int, width: int) -> int:
        size = 1 << width
        full = (1 << size) - 1
        bits &= full
        if bits == 0:
            return aig.const(0)
        if bits == full:
            return aig.const(1)
        key = (bits, width)
        cached = cache.get(key)
        if cached is not None:
            return cached
        half = 1 << (width - 1)
        low = bits & ((1 << half) - 1)
        high = bits >> half
        select = literals[len(table.names) - width]
        literal = aig.MUX(select, expand(high, width - 1), expand(low, width - 1))
        cache[key] = literal
        return literal

    if not table.names:
        return aig.const(table.bits & 1)
    return expand(table.bits, table.width)


def declare_inputs(aig: AIG, names: Sequence[str], prefix: str = "") -> dict[str, int]:
    """Declare one AIG input per name (with an optional prefix) and map them."""
    return {name: aig.add_input(prefix + name) for name in names}
