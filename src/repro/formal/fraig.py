"""Simulation-guided fraiging: AIG preprocessing ahead of CNF encoding.

FRAIG (functionally reduced AIG) rewriting shrinks a miter cone before the
Tseitin encoder ever sees it:

1. **Random simulation** evaluates the whole cone on ``rows`` random input
   assignments at once, using the same packed-int column idiom as
   :class:`repro.logic.bittable.BitTable` (one Python int per node, one bit
   per row).  Nodes with equal — or complementary — signatures form
   *candidate-equivalence classes*.
2. **Structural rewriting** rebuilds the cone bottom-up through the AIG's
   hash-consing ``AND``, so fanin merges cascade into constant folds and
   re-shared gates for free.
3. **SAT confirmation** proves candidate pairs genuinely equal with a small
   conflict-limited miter; proven nodes are merged onto their class
   representative.  A disproof yields a distinguishing assignment that is fed
   back as one more simulation row, refining every remaining class (the
   classic counterexample-guided loop), so the same spurious pair is never
   retried.

Merging is sound context-free: two nodes are merged only when their functions
over the primary inputs are proven equal, so the rewrite preserves the value
of every root under every assignment — the property the differential tests
check by replaying random vectors through both the original and reduced cones.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence

from .aig import AIG, FALSE, TRUE
from .cnf import tseitin
from .sat import ConflictLimitExceeded, SatSolver

__all__ = ["FraigStats", "fraig_reduce"]


@dataclass
class FraigStats:
    """What one :func:`fraig_reduce` pass did to a cone."""

    #: AIG nodes in the original cone (constant node excluded).
    cone_nodes: int = 0
    #: Candidate-equivalence classes with at least two members.
    classes: int = 0
    #: Nodes merged onto a representative after a SAT equality proof.
    sat_merges: int = 0
    #: Nodes that vanished through hash-consed rebuilding / constant folding.
    structural_merges: int = 0
    #: Conflict-limited SAT equality queries attempted.
    sat_checks: int = 0
    #: SAT disproofs that refined the simulation signatures.
    refinements: int = 0

    @property
    def merges(self) -> int:
        """Total nodes removed from the cone (structural + SAT-proven)."""
        return self.sat_merges + self.structural_merges


def _simulate(
    aig: AIG, order: Sequence[int], input_rows: dict[str, int], mask: int
) -> dict[int, int]:
    """Packed-row evaluation: node → int with one result bit per row."""
    values: dict[int, int] = {0: 0}
    for node in order:
        if aig.is_input(node):
            values[node] = input_rows.get(aig.input_name(node), 0)
        else:
            left, right = aig.fanin(node)
            left_value = values[left >> 1] ^ (mask if left & 1 else 0)
            right_value = values[right >> 1] ^ (mask if right & 1 else 0)
            values[node] = left_value & right_value
    return values


def _prove_equal(
    aig: AIG, a: int, b: int, conflict_limit: int
) -> tuple[bool, dict[str, int] | None]:
    """SAT-check ``a == b``; returns (equal, distinguishing assignment).

    The query runs on a tiny throwaway solver — the point of fraiging is to
    keep these miters small, not to share learned clauses with the main
    session.  Raises :class:`ConflictLimitExceeded` when the budget runs out
    (the caller simply skips the merge).
    """
    root = aig.XOR(a, b)
    if root == FALSE:
        return True, None
    if root == TRUE:
        return False, {}
    cnf, (root_literal,) = tseitin(aig, [root])
    solver = SatSolver.from_cnf(cnf)
    solver.add_clause([root_literal])
    result = solver.solve(conflict_limit=conflict_limit)
    if not result.satisfiable:
        return True, None
    return False, cnf.decode_inputs(result.model)


def fraig_reduce(
    aig: AIG,
    roots: Sequence[int],
    rows: int = 64,
    seed: int = 0x5EED,
    conflict_limit: int = 500,
    max_sat_checks: int = 128,
    prove_equal=None,
) -> tuple[list[int], FraigStats]:
    """Rewrite the cone of ``roots`` with proven-equal nodes merged.

    Returns ``(new_roots, stats)`` where every new root is functionally equal
    to its original.  New nodes are appended to ``aig`` (hash-consing reuses
    existing structure wherever possible); the original nodes stay valid.

    ``prove_equal(a, b)`` — when given — replaces the throwaway-solver
    equality oracle: it must return ``(equal, witness_or_None)`` and may raise
    :class:`ConflictLimitExceeded`.  :class:`~repro.formal.incremental.
    EquivalenceSession` passes its own incremental prover here so merge
    confirmations share the session solver's learned clauses instead of
    re-encoding a fresh miter per pair.
    """
    stats = FraigStats()
    if prove_equal is None:
        prove_equal = lambda a, b: _prove_equal(aig, a, b, conflict_limit)  # noqa: E731
    order = aig.cone(roots)
    stats.cone_nodes = len(order)
    rng = random.Random(seed)

    input_names = [aig.input_name(node) for node in order if aig.is_input(node)]
    base_rows = {name: rng.getrandbits(rows) for name in input_names}
    refinement_rows: list[dict[str, int]] = []

    def signatures() -> tuple[dict[int, int], int]:
        total_rows = rows + len(refinement_rows)
        mask = (1 << total_rows) - 1
        packed: dict[str, int] = {}
        for name in input_names:
            value = base_rows[name]
            for index, assignment in enumerate(refinement_rows):
                value |= (assignment.get(name, 0) & 1) << (rows + index)
            packed[name] = value
        return _simulate(aig, order, packed, mask), mask

    values, mask = signatures()

    # node → rewritten positive-phase literal.  Inputs map to themselves.
    mapping: dict[int, int] = {}
    # normalised signature → (representative node, phase of rep vs signature).
    reps: dict[int, tuple[int, int]] = {}
    class_keys: set[int] = set()

    def mapped(literal: int) -> int:
        if literal in (TRUE, FALSE):
            return literal
        return mapping[literal >> 1] ^ (literal & 1)

    def rebuild_classes(upto: int) -> None:
        """Recompute representatives for processed nodes after a refinement."""
        nonlocal values, mask
        values, mask = signatures()
        reps.clear()
        for done in order[:upto]:
            sig = values[done]
            key = min(sig, sig ^ mask)
            reps.setdefault(key, (done, 0 if sig == key else 1))

    for index, node in enumerate(order):
        literal = node << 1
        if aig.is_input(node):
            mapping[node] = literal
            sig = values[node]
            key = min(sig, sig ^ mask)
            # Inputs may *represent* a class but are never merged away (a free
            # input cannot equal any function of other nodes).
            reps.setdefault(key, (node, 0 if sig == key else 1))
            continue

        left, right = aig.fanin(node)
        new_literal = aig.AND(mapped(left), mapped(right))
        if new_literal != literal:
            stats.structural_merges += 1
        mapping[node] = new_literal

        sig = values[node]
        key = min(sig, sig ^ mask)
        phase = 0 if sig == key else 1
        entry = reps.get(key)
        if entry is None:
            reps[key] = (node, phase)
            continue
        if key not in class_keys:
            class_keys.add(key)
            stats.classes += 1
        rep_node, rep_phase = entry
        target = mapped(rep_node << 1) ^ (phase ^ rep_phase)
        if new_literal == target:
            continue  # hash-consing already unified them
        if stats.sat_checks >= max_sat_checks:
            continue
        stats.sat_checks += 1
        try:
            equal, witness = prove_equal(new_literal, target)
        except ConflictLimitExceeded:
            continue
        if equal:
            mapping[node] = target
            stats.sat_merges += 1
        elif witness is not None:
            # Feed the distinguishing assignment back as one more row; every
            # class splits along it, so this pair is never proposed again.
            refinement_rows.append(witness)
            stats.refinements += 1
            rebuild_classes(index + 1)

    return [mapped(root) for root in roots], stats
