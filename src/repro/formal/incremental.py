"""Incremental equivalence sessions: one solver, many candidates.

A pass@k sweep proves k candidate designs against the *same* reference cone.
The one-shot provers in :mod:`repro.formal.miter` rebuild the CNF and a fresh
CDCL instance per candidate, throwing away everything the search learned.
:class:`EquivalenceSession` keeps all of it alive:

* the reference cone is symbolically executed and Tseitin-encoded **once**,
  at construction;
* each candidate's cone is pushed into the same solver through an
  :class:`IncrementalEncoder` (append-only Tseitin: already-encoded AIG nodes
  keep their variables, hash-consing means a re-submitted candidate encodes
  zero new clauses);
* each candidate's miter root is guarded by a fresh **activation literal**
  ``act → miter`` and solved under ``assumptions=(act,)``, so one
  :class:`~repro.formal.sat.SatSolver` — with its learned clauses, VSIDS
  activity and saved phases — survives the whole sweep;
* before encoding, the miter cone is shrunk by simulation-guided fraiging
  (:func:`repro.formal.fraig.fraig_reduce`).

The conflict budget is **per proof**: every ``prove`` call passes its own
``conflict_limit`` into a fresh ``SatStats`` accounting inside
``SatSolver.solve``, so candidate #40 gets exactly the budget candidate #1
got, no matter how many conflicts the session has burned in total (the
session-lifetime aggregate lives in :attr:`total_conflicts`).

Verdicts and counterexamples are differentially interchangeable with
:func:`~repro.formal.miter.prove_combinational_equivalence`: the parity suite
sweeps randomized candidates through both engines and requires identical
verdicts plus replayable counterexamples.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Sequence

from ..verilog.design import get_default_database
from .aig import AIG, FALSE, TRUE, FormalEncodingError, SymVector
from .cone import build_combinational_cone
from .fraig import FraigStats, fraig_reduce
from .miter import (
    Counterexample,
    EquivalenceResult,
    _compare_output,
    _decode_vector,
    _replay_on_aig,
)
from .sat import ConflictLimitExceeded, SatSolver
from .stats import record_proof

__all__ = ["EquivalenceSession", "IncrementalEncoder", "candidate_key"]


def candidate_key(source: str, module_name: str | None = None) -> str:
    """Content address of a candidate inside one session."""
    digest = hashlib.sha256()
    digest.update((module_name or "").encode())
    digest.update(b"\x00")
    digest.update(source.encode())
    return digest.hexdigest()


class IncrementalEncoder:
    """Append-only Tseitin encoder bound to a live :class:`SatSolver`.

    The clause shapes are exactly :func:`repro.formal.cnf.tseitin`'s — one
    variable per AIG node, three clauses per AND gate — but encoded nodes are
    remembered across calls and new clauses go straight into the solver, so
    encoding the cone of a new root only pays for the nodes the solver has
    never seen.  Duck-types the ``node_vars`` attribute of
    :class:`~repro.formal.cnf.CNF` for the shared model-decoding helpers.
    """

    def __init__(self, aig: AIG, solver: SatSolver):
        self.aig = aig
        self.solver = solver
        self.node_vars: dict[int, int] = {}
        self.input_vars: dict[str, int] = {}
        self._num_vars = solver.num_vars
        self._const_var: int | None = None

    def new_var(self) -> int:
        """Allocate a fresh solver variable (activation literals use this too)."""
        self._num_vars += 1
        self.solver.ensure_vars(self._num_vars)
        return self._num_vars

    def _constant_var(self) -> int:
        if self._const_var is None:
            self._const_var = self.new_var()
            self.solver.add_clause([self._const_var])  # fixed true
        return self._const_var

    def _literal_of(self, aig_literal: int) -> int:
        if aig_literal in (TRUE, FALSE):
            var = self._constant_var()
            return var if aig_literal == TRUE else -var
        var = self.node_vars[aig_literal >> 1]
        return -var if aig_literal & 1 else var

    def literal(self, aig_literal: int) -> int:
        """Encode the cone of ``aig_literal`` and return its DIMACS literal."""
        if aig_literal in (TRUE, FALSE):
            return self._literal_of(aig_literal)
        for node in self.aig.cone([aig_literal]):
            if node in self.node_vars:
                continue
            var = self.new_var()
            self.node_vars[node] = var
            if self.aig.is_input(node):
                self.input_vars[self.aig.input_name(node)] = var
            else:
                left, right = self.aig.fanin(node)
                a = self._literal_of(left)
                b = self._literal_of(right)
                self.solver.add_clause((-var, a))
                self.solver.add_clause((-var, b))
                self.solver.add_clause((var, -a, -b))
        return self._literal_of(aig_literal)


@dataclass
class _Candidate:
    """Per-candidate state kept for re-proofs and counterexample decoding."""

    activation: int | None = None
    all_inputs: dict[str, SymVector] = field(default_factory=dict)
    dut_outputs: dict[str, SymVector] = field(default_factory=dict)
    checked: list[str] = field(default_factory=list)
    fraig_merges: int = 0
    #: Filled for verdicts that need no solver call (structural equality /
    #: missing outputs); ``prove`` returns it directly.
    precomputed: EquivalenceResult | None = None


class EquivalenceSession:
    """A persistent combinational equivalence prover for one reference design.

    Construction compiles the reference, builds its cone into the session AIG
    with shared input vectors, and Tseitin-encodes it into the session solver
    exactly once.  Every :meth:`prove` call then costs only the candidate's
    own cone — and whatever the SAT search still has to discover after all
    previous candidates primed the clause database.

    Sessions are single-threaded and meant to live per worker process (see
    ``repro.bench.jobs``), one per reference design key.
    """

    def __init__(
        self,
        reference_source: str,
        *,
        outputs: Sequence[str] | None = None,
        reference_module_name: str | None = None,
        conflict_limit: int | None = 50_000,
        fraig: bool = True,
        fraig_rows: int = 64,
        fraig_seed: int = 0x5EED,
        fraig_conflict_limit: int = 500,
        database=None,
    ):
        database = database if database is not None else get_default_database()
        self._database = database
        self.conflict_limit = conflict_limit
        self.fraig = fraig
        self.fraig_rows = fraig_rows
        self.fraig_seed = fraig_seed
        self._fraig_conflict_limit = fraig_conflict_limit
        self.aig = AIG()
        self.reference_compiled = database.compile(
            reference_source, reference_module_name
        )
        self.reference_cone = build_combinational_cone(
            self.reference_compiled, self.aig, undef_prefix="ref:"
        )
        self.outputs = list(outputs) if outputs is not None else None
        self.solver = SatSolver()
        self.encoder = IncrementalEncoder(self.aig, self.solver)
        # Encode the reference cone eagerly — this is the "once per session"
        # cost every candidate proof amortises.
        for name in sorted(self.reference_cone.outputs):
            for literal in self.reference_cone.outputs[name].bits:
                if literal not in (TRUE, FALSE):
                    self.encoder.literal(literal)
        #: Free inputs the reference does not declare, shared across
        #: candidates by (name, bit) so sweeps stay on one input space.
        self._extra_input_bits: dict[str, list[int]] = {}
        self._candidates: dict[str, _Candidate] = {}
        #: Session-lifetime aggregates (the per-proof numbers live in each
        #: result's ``stats``).
        self.proofs = 0
        self.total_conflicts = 0

    # ------------------------------------------------------------------ inputs
    def _free_input(self, name: str, width: int) -> SymVector:
        """A candidate-shared input vector for a name the reference lacks."""
        bits = self._extra_input_bits.setdefault(name, [])
        while len(bits) < width:
            bits.append(self.aig.add_input(f"{name}[{len(bits)}]"))
        return SymVector(tuple(bits[:width]))

    def _shared_inputs(self, dut_compiled) -> dict[str, SymVector]:
        shared: dict[str, SymVector] = {}
        for port in dut_compiled.input_ports():
            existing = self.reference_cone.inputs.get(port.name)
            if existing is not None:
                if existing.width != port.width:
                    raise FormalEncodingError(
                        f"input {port.name!r} is {port.width} bits in the DUT but "
                        f"{existing.width} bits in the reference"
                    )
                shared[port.name] = existing
            else:
                shared[port.name] = self._free_input(port.name, port.width)
        return shared

    # ------------------------------------------------------------------ fraig probes
    def _probe_equal(self, a: int, b: int) -> tuple[bool, dict[str, int] | None]:
        """Fraig's equality oracle, run on the *session* solver.

        Each probe is a temporary activation-gated miter ``act → (a ⊕ b)``
        solved under ``assumptions=(act,)`` and retired with a unit
        ``¬act`` afterwards — so merge confirmations ride the same learned
        clauses as the candidate proofs instead of paying for a fresh
        Tseitin encoding and solver per pair.
        """
        root = self.aig.XOR(a, b)
        if root == FALSE:
            return True, None
        if root == TRUE:
            return False, {}
        activation = self.encoder.new_var()
        root_literal = self.encoder.literal(root)
        self.solver.add_clause((-activation, root_literal))
        try:
            outcome = self.solver.solve(
                assumptions=(activation,), conflict_limit=self._fraig_conflict_limit
            )
        finally:
            self.solver.add_clause((-activation,))  # retire the probe
        if not outcome.satisfiable:
            return True, None
        witness = {
            name: 1 if outcome.model.get(var, False) else 0
            for name, var in self.encoder.input_vars.items()
        }
        return False, witness

    # ------------------------------------------------------------------ candidates
    def _admit(self, dut_source: str, module_name: str | None) -> _Candidate:
        """Build and encode a candidate's cone; cached by content address."""
        key = candidate_key(dut_source, module_name)
        cached = self._candidates.get(key)
        if cached is not None:
            return cached
        dut_compiled = self._database.compile(dut_source, module_name)
        shared = self._shared_inputs(dut_compiled)
        index = len(self._candidates)
        dut_cone = build_combinational_cone(
            dut_compiled, self.aig, input_literals=shared, undef_prefix=f"dut{index}:"
        )
        candidate = _Candidate()
        candidate.checked = (
            list(self.outputs)
            if self.outputs is not None
            else sorted(self.reference_cone.outputs)
        )
        missing = [
            name for name in candidate.checked if name not in dut_cone.outputs
        ]
        if missing:
            zero_inputs = {name: 0 for name in self.reference_cone.inputs}
            candidate.precomputed = EquivalenceResult(
                equivalent=False,
                counterexample=Counterexample(
                    steps=[zero_inputs], missing_outputs=missing
                ),
                checked_outputs=candidate.checked,
                method="missing-output",
            )
            self._candidates[key] = candidate
            return candidate
        self.reference_cone.check_defined(candidate.checked)
        dut_cone.check_defined(candidate.checked)

        candidate.all_inputs = dict(self.reference_cone.inputs)
        candidate.all_inputs.update(shared)
        candidate.dut_outputs = {
            name: dut_cone.outputs[name] for name in candidate.checked
        }
        root = self.aig.or_all(
            _compare_output(
                self.aig, dut_cone.outputs[name], self.reference_cone.outputs[name]
            )
            for name in candidate.checked
        )
        if self.fraig and root not in (TRUE, FALSE):
            (root,), fraig_stats = fraig_reduce(
                self.aig,
                [root],
                rows=self.fraig_rows,
                seed=self.fraig_seed,
                prove_equal=self._probe_equal,
            )
            candidate.fraig_merges = fraig_stats.merges
        if root == FALSE:
            candidate.precomputed = EquivalenceResult(
                equivalent=True,
                checked_outputs=candidate.checked,
                method="structural",
                fraig_merges=candidate.fraig_merges,
            )
            self._candidates[key] = candidate
            return candidate
        # act → miter: the clause is inert until `prove` assumes act, so the
        # sweep's other candidates never pay for this one.
        candidate.activation = self.encoder.new_var()
        root_literal = self.encoder.literal(root)
        self.solver.add_clause((-candidate.activation, root_literal))
        self._candidates[key] = candidate
        return candidate

    # ------------------------------------------------------------------ proving
    def prove(
        self,
        dut_source: str,
        module_name: str | None = None,
        conflict_limit: int | None = None,
    ) -> EquivalenceResult:
        """Prove one candidate against the session's reference.

        Semantically identical to
        :func:`~repro.formal.miter.prove_combinational_equivalence` (same
        verdicts, same counterexample contract, same exceptions) — just
        incremental.  ``conflict_limit`` overrides the session default for
        this proof only; either way the budget is charged per proof.
        """
        limit = conflict_limit if conflict_limit is not None else self.conflict_limit
        candidate = self._admit(dut_source, module_name)
        self.proofs += 1
        if candidate.precomputed is not None:
            result = candidate.precomputed
            record_proof(
                "equivalent" if result.equivalent else "counterexample", 0
            )
            return result
        assert candidate.activation is not None
        try:
            outcome = self.solver.solve(
                assumptions=(candidate.activation,), conflict_limit=limit
            )
        except ConflictLimitExceeded:
            self.total_conflicts += limit or 0
            record_proof("unknown", limit or 0)
            raise
        self.total_conflicts += outcome.stats.conflicts
        if not outcome.satisfiable:
            record_proof("equivalent", outcome.stats.conflicts)
            return EquivalenceResult(
                equivalent=True,
                stats=outcome.stats,
                checked_outputs=candidate.checked,
                method="sat",
                fraig_merges=candidate.fraig_merges,
            )
        assignment = {
            name: _decode_vector(self.encoder, outcome.model, vector)
            for name, vector in candidate.all_inputs.items()
        }
        counterexample = _replay_on_aig(
            self.aig,
            candidate.all_inputs,
            assignment,
            candidate.dut_outputs,
            self.reference_cone.outputs,
            candidate.checked,
        )
        record_proof("counterexample", outcome.stats.conflicts)
        return EquivalenceResult(
            equivalent=False,
            counterexample=counterexample,
            stats=outcome.stats,
            checked_outputs=candidate.checked,
            fraig_merges=candidate.fraig_merges,
        )
