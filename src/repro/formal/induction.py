"""k-induction: unbounded sequential equivalence proofs.

Bounded unrolling (:func:`~repro.formal.miter.prove_sequential_equivalence`)
only certifies the first ``k`` cycles after reset.  k-induction upgrades that
to an **unbounded** proof with two UNSAT queries over the same transition
relation:

* **Base case** — the existing bounded proof: no input sequence of length
  ``k`` distinguishes the designs starting from their concrete reset states.
  A SAT verdict here is a *real*, replayable counterexample.
* **Inductive step** — both designs are unrolled ``k + 1`` cycles from a
  **fully symbolic** state pair (every register bit a fresh AIG input, so the
  query ranges over *all* states, reachable or not), sharing fresh data
  inputs per cycle.  The query asks for a run whose outputs agree for the
  first ``k`` cycles and differ on cycle ``k + 1``; UNSAT means agreement is
  ``k``-inductive.

Base ∧ step ⟹ the outputs agree on every cycle of every input sequence, by
strong induction on the trace length.  The inductive step over-approximates
reachability, so a SAT verdict there proves nothing — the query may have
started from an unreachable state pair.  That outcome raises
:class:`InductionInconclusive` (a :class:`FormalEncodingError`, so existing
callers fall back to simulation exactly as they do for designs outside the
provable subset), never a wrong verdict.
"""

from __future__ import annotations

from typing import Sequence

from .aig import AIG, FormalEncodingError, SymVector, negate
from .cone import SequentialUnroller, SymbolicExecutor
from .miter import (
    EquivalenceResult,
    _compare_output,
    _solve_miter,
    prove_sequential_equivalence,
)
from .sat import ConflictLimitExceeded, SatStats
from .stats import record_proof

__all__ = ["InductionInconclusive", "prove_sequential_by_induction"]


class InductionInconclusive(FormalEncodingError):
    """The inductive step failed at this depth; no verdict either way.

    Not an equivalence refutation: the distinguishing run may start from an
    unreachable state pair.  Callers should fall back to bounded proofs or
    simulation (the type is a ``FormalEncodingError`` so every existing
    fallback path already does).
    """


def _merge_stats(base: SatStats, step: SatStats) -> SatStats:
    return SatStats(
        decisions=base.decisions + step.decisions,
        conflicts=base.conflicts + step.conflicts,
        propagations=base.propagations + step.propagations,
        restarts=base.restarts + step.restarts,
        learned_clauses=base.learned_clauses + step.learned_clauses,
    )


def _unroll_from_symbolic_state(
    unroller: SequentialUnroller,
    step_inputs: Sequence[dict[str, SymVector]],
    state_prefix: str,
) -> list[dict[str, SymVector]]:
    """Unroll like :meth:`SequentialUnroller.unroll`, from an arbitrary state.

    Every non-port signal is seeded with fresh ``{state_prefix}{name}[{bit}]``
    inputs instead of the concrete post-reset values, so the unrolling ranges
    over every conceivable register state; combinational signals are settled
    from that state before the first clock edge.
    """
    aig = unroller.aig
    input_names = {port.name for port in unroller.design.input_ports()}
    literals: dict[str, SymVector] = {}
    for name, width in unroller.design.store.widths.items():
        if name in input_names:
            # Pinned below / overwritten per step — a constant avoids the
            # constructor declaring dead AIG inputs for the ports.
            literals[name] = SymVector.constant(0, width)
        else:
            literals[name] = SymVector(
                tuple(
                    aig.add_input(f"{state_prefix}{name}[{bit}]")
                    for bit in range(width)
                )
            )
    executor = SymbolicExecutor(
        unroller.design,
        aig,
        input_literals=literals,
        undef_prefix=unroller.undef_prefix,
    )
    executor.set_concrete(unroller.clock, 0)
    if unroller.reset is not None:
        executor.set_concrete(
            unroller.reset, 1 if unroller.reset_active_low else 0
        )
    output_names = [port.name for port in unroller.design.output_ports()]
    outputs_per_step: list[dict[str, SymVector]] = []
    for step, inputs in enumerate(step_inputs):
        for name in unroller.data_inputs:
            vector = inputs.get(name)
            if vector is None:
                raise FormalEncodingError(
                    f"step {step} is missing a literal vector for input {name!r}"
                )
            executor.values[name] = vector.resized(executor.widths[name])
            executor.input_vectors[name] = executor.values[name]
        executor.settle()
        executor.clock_step()
        executor.settle()
        outputs_per_step.append(
            {name: executor.values[name] for name in output_names}
        )
    return outputs_per_step


def prove_sequential_by_induction(
    dut_source: str,
    reference_source: str,
    depth: int,
    clock: str = "clk",
    reset: str | None = None,
    reset_active_low: bool = False,
    outputs: Sequence[str] | None = None,
    module_name: str | None = None,
    reference_module_name: str | None = None,
    conflict_limit: int | None = None,
) -> EquivalenceResult:
    """Unbounded sequential equivalence by k-induction at ``depth``.

    Returns an equivalent result with ``method="induction"`` when both the
    base case and the inductive step are UNSAT — a proof over *every* cycle,
    not just the first ``depth``.  A base-case counterexample is returned as
    the (real, replayable) refutation.

    Raises:
        InductionInconclusive: the inductive step found a distinguishing run
            from some (possibly unreachable) state — retry with a larger
            ``depth`` or fall back to bounded/simulation checking.
        FormalEncodingError: either design is outside the provable subset.
        ConflictLimitExceeded: a solver call exhausted ``conflict_limit``.
    """
    if depth < 1:
        raise ValueError("k-induction needs depth >= 1")
    base = prove_sequential_equivalence(
        dut_source,
        reference_source,
        steps=depth,
        clock=clock,
        reset=reset,
        reset_active_low=reset_active_low,
        outputs=outputs,
        module_name=module_name,
        reference_module_name=reference_module_name,
        conflict_limit=conflict_limit,
        _record=False,
    )
    if not base.equivalent:
        record_proof("counterexample", base.stats.conflicts)
        return base

    aig = AIG()
    dut_unroller = SequentialUnroller(
        dut_source,
        aig,
        clock=clock,
        reset=reset,
        reset_active_low=reset_active_low,
        module_name=module_name,
        undef_prefix="dut:",
    )
    reference_unroller = SequentialUnroller(
        reference_source,
        aig,
        clock=clock,
        reset=reset,
        reset_active_low=reset_active_low,
        module_name=reference_module_name,
        undef_prefix="ref:",
    )
    widths: dict[str, int] = {}
    for unroller in (reference_unroller, dut_unroller):
        for name in unroller.data_inputs:
            width = unroller.design.store.widths[name]
            if widths.setdefault(name, width) != width:
                raise FormalEncodingError(
                    f"input {name!r} has mismatched widths across the designs"
                )
    step_inputs: list[dict[str, SymVector]] = []
    for step in range(depth + 1):
        step_inputs.append(
            {
                name: SymVector(
                    tuple(
                        aig.add_input(f"{name}@{step}[{bit}]")
                        for bit in range(width)
                    )
                )
                for name, width in widths.items()
            }
        )
    dut_steps = _unroll_from_symbolic_state(dut_unroller, step_inputs, "dut_state:")
    reference_steps = _unroll_from_symbolic_state(
        reference_unroller, step_inputs, "ref_state:"
    )

    checked = list(base.checked_outputs)
    # Miter per cycle: agree on cycles 0..depth-1, differ on cycle `depth`.
    constraints: list[int] = []
    for step in range(depth + 1):
        difference = aig.or_all(
            _compare_output(
                aig, dut_steps[step][name], reference_steps[step][name]
            )
            for name in checked
        )
        constraints.append(
            difference if step == depth else negate(difference)
        )
    root = aig.and_all(constraints)
    try:
        satisfiable, _, _, step_stats = _solve_miter(aig, root, conflict_limit)
    except ConflictLimitExceeded:
        record_proof("unknown", (conflict_limit or 0) + base.stats.conflicts)
        raise
    stats = _merge_stats(base.stats, step_stats)
    if satisfiable:
        record_proof("unknown", stats.conflicts)
        raise InductionInconclusive(
            f"k-induction at depth {depth} is inconclusive: outputs can "
            f"disagree {depth} cycles after an arbitrary (possibly "
            "unreachable) state — increase the depth or fall back"
        )
    record_proof("equivalent", stats.conflicts)
    return EquivalenceResult(
        equivalent=True,
        stats=stats,
        checked_outputs=checked,
        method="induction",
        sequential_steps=depth,
    )
