"""Miter construction and SAT equivalence proofs.

A *miter* joins two designs over shared inputs and ORs the XOR of every checked
output bit: the miter output is satisfiable exactly when some input assignment
makes the designs disagree.  ``UNSAT`` is therefore a **complete combinational
equivalence proof** — the formal counterpart of the (exponential or sampled)
sweeps in :mod:`repro.bench.golden`.

Output comparison deliberately mirrors ``batch_equivalence_check``: each output
is compared at the *DUT's* declared width with the reference value
zero-extended/truncated, so the formal and simulation engines return the same
verdict on width-mismatched interfaces.

Sequential designs get *bounded* equivalence: both designs are unrolled ``k``
steps from their concretely-computed reset states with fresh shared inputs per
step (:class:`~repro.formal.cone.SequentialUnroller`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from ..logic.expr import BoolExpr
from ..verilog.design import get_default_database
from .aig import AIG, FALSE, TRUE, FormalEncodingError, FormalError, SymVector
from .cnf import CNF, tseitin
from .cone import SequentialUnroller, build_combinational_cone
from .encode import expr_to_aig
from .sat import ConflictLimitExceeded, SatSolver, SatStats
from .stats import record_proof


@dataclass
class Counterexample:
    """A concrete input assignment on which two designs disagree.

    Attributes:
        steps: one input assignment (name → int) per clock step; combinational
            counterexamples have exactly one step.
        dut_outputs: per-step DUT output values on this stimulus.
        reference_outputs: per-step reference output values.
        mismatching_outputs: ``(step, output)`` pairs that differ.
        missing_outputs: checked outputs the DUT does not even declare.
    """

    steps: list[dict[str, int]]
    dut_outputs: list[dict[str, int]] = field(default_factory=list)
    reference_outputs: list[dict[str, int]] = field(default_factory=list)
    mismatching_outputs: list[tuple[int, str]] = field(default_factory=list)
    missing_outputs: list[str] = field(default_factory=list)

    @property
    def inputs(self) -> dict[str, int]:
        """The (first-step) input assignment — the usual combinational view."""
        return self.steps[0] if self.steps else {}

    def describe(self) -> str:
        """One-line human-readable summary."""
        if self.missing_outputs:
            return "DUT does not drive output(s): " + ", ".join(self.missing_outputs)
        parts = []
        for step, output in self.mismatching_outputs[:3]:
            expected = self.reference_outputs[step].get(output)
            actual = self.dut_outputs[step].get(output)
            where = f"step {step}: " if len(self.steps) > 1 else ""
            parts.append(f"{where}{output} expected {expected} got {actual}")
        stimulus = self.steps[0] if len(self.steps) == 1 else self.steps
        return f"inputs {stimulus} -> " + "; ".join(parts)


@dataclass
class EquivalenceResult:
    """Outcome of a formal equivalence query."""

    equivalent: bool
    counterexample: Counterexample | None = None
    stats: SatStats = field(default_factory=SatStats)
    checked_outputs: list[str] = field(default_factory=list)
    #: "structural" when the miter folded to constant 0 during construction,
    #: "sat" for a genuine solver verdict, "missing-output" for interface
    #: gaps, "induction" for an unbounded k-induction proof.
    method: str = "sat"
    #: 0 for combinational proofs, k for k-step bounded sequential equivalence
    #: (and the induction depth for ``method == "induction"``).
    sequential_steps: int = 0
    #: AIG nodes removed by fraig preprocessing before CNF encoding (0 when
    #: the proof ran without fraiging, e.g. the one-shot provers).
    fraig_merges: int = 0

    def __bool__(self) -> bool:
        return self.equivalent


# --------------------------------------------------------------------------- helpers
def _decode_vector(cnf: CNF, model: Mapping[int, bool], vector: SymVector) -> int:
    """Read an input vector's integer value out of a SAT model."""
    value = 0
    for position, literal in enumerate(vector.bits):
        if literal == TRUE:
            bit = 1
        elif literal == FALSE:
            bit = 0
        else:
            var = cnf.node_vars.get(literal >> 1)
            bit = int(model.get(var, False)) if var is not None else 0
            bit ^= literal & 1
        value |= bit << position
    return value


def _vector_to_int(bits: Sequence[int]) -> int:
    value = 0
    for position, bit in enumerate(bits):
        value |= (1 if bit else 0) << position
    return value


def _bit_assignment(
    aig: AIG, vectors: Mapping[str, SymVector], values: Mapping[str, int]
) -> dict[str, int]:
    """Flatten name → int values into AIG-input-name → 0/1 for replay."""
    assignment: dict[str, int] = {}
    for name, vector in vectors.items():
        value = values.get(name, 0)
        for position, literal in enumerate(vector.bits):
            node = literal >> 1
            if literal not in (TRUE, FALSE) and aig.is_input(node):
                bit = (value >> position) & 1
                assignment[aig.input_name(node)] = bit ^ (literal & 1)
    return assignment


def _compare_output(aig: AIG, dut: SymVector, reference: SymVector) -> int:
    """Miter literal for one output: 1 iff the values differ at DUT width."""
    reference = reference.resized(dut.width)
    return aig.or_all(
        aig.XOR(a, b) for a, b in zip(dut.bits, reference.bits)
    )


def _solve_miter(
    aig: AIG, root: int, conflict_limit: int | None
) -> tuple[bool, CNF | None, dict[int, bool], SatStats]:
    """Solve ``root == 1``; returns (satisfiable, cnf, model, stats)."""
    if root == FALSE:
        return False, None, {}, SatStats()
    cnf, (root_literal,) = tseitin(aig, [root])
    solver = SatSolver.from_cnf(cnf)
    solver.add_clause([root_literal])
    result = solver.solve(conflict_limit=conflict_limit)
    return result.satisfiable, cnf, result.model, result.stats


# --------------------------------------------------------------------------- expression equivalence
def prove_expr_equivalence(
    left: BoolExpr,
    right: BoolExpr,
    conflict_limit: int | None = None,
) -> EquivalenceResult:
    """SAT equivalence of two boolean expressions over the union of variables.

    Complements :meth:`BitTable.equivalent`: the bit-table sweep is O(2**n)
    in memory/time while the SAT proof scales with the expressions' structure,
    so this is the path for wide variable counts.
    """
    names = sorted(set(left.variables()) | set(right.variables()))
    aig = AIG()
    inputs = {name: aig.add_input(name) for name in names}
    left_literal = expr_to_aig(left, aig, inputs)
    right_literal = expr_to_aig(right, aig, inputs)
    root = aig.XOR(left_literal, right_literal)
    satisfiable, cnf, model, stats = _solve_miter(aig, root, conflict_limit)
    if not satisfiable:
        return EquivalenceResult(
            equivalent=True,
            stats=stats,
            checked_outputs=["expr"],
            method="structural" if root == FALSE else "sat",
        )
    assert cnf is not None
    assignment = {
        name: _decode_vector(cnf, model, SymVector((literal,)))
        for name, literal in inputs.items()
    }
    left_value, right_value = (
        aig.evaluate([left_literal, right_literal], assignment)
    )
    if left_value == right_value:
        raise FormalError("SAT counterexample failed to reproduce on the AIG")
    counterexample = Counterexample(
        steps=[assignment],
        dut_outputs=[{"expr": left_value}],
        reference_outputs=[{"expr": right_value}],
        mismatching_outputs=[(0, "expr")],
    )
    return EquivalenceResult(
        equivalent=False,
        counterexample=counterexample,
        stats=stats,
        checked_outputs=["expr"],
    )


# --------------------------------------------------------------------------- combinational equivalence
def prove_combinational_equivalence(
    dut_source: str,
    reference_source: str,
    outputs: Sequence[str] | None = None,
    module_name: str | None = None,
    reference_module_name: str | None = None,
    conflict_limit: int | None = None,
    _record: bool = True,
) -> EquivalenceResult:
    """Complete SAT equivalence proof of two combinational Verilog modules.

    Raises:
        FormalEncodingError: when either design falls outside the provable
            subset (sequential processes handled by
            :func:`prove_sequential_equivalence`; four-state behaviour, etc.).
    """
    database = get_default_database()
    dut_compiled = database.compile(dut_source, module_name)
    reference_compiled = database.compile(reference_source, reference_module_name)
    aig = AIG()
    reference_cone = build_combinational_cone(
        reference_compiled, aig, undef_prefix="ref:"
    )
    # Share input literals by name; DUT-only inputs get fresh plain-named ones.
    shared: dict[str, SymVector] = {}
    for port in dut_compiled.input_ports():
        existing = reference_cone.inputs.get(port.name)
        if existing is not None:
            if existing.width != port.width:
                raise FormalEncodingError(
                    f"input {port.name!r} is {port.width} bits in the DUT but "
                    f"{existing.width} bits in the reference"
                )
            shared[port.name] = existing
        else:
            shared[port.name] = SymVector(
                tuple(
                    aig.add_input(f"{port.name}[{bit}]") for bit in range(port.width)
                )
            )
    dut_cone = build_combinational_cone(
        dut_compiled, aig, input_literals=shared, undef_prefix="dut:"
    )

    checked = list(outputs) if outputs is not None else sorted(reference_cone.outputs)
    missing = [name for name in checked if name not in dut_cone.outputs]
    if missing:
        zero_inputs = {name: 0 for name in reference_cone.inputs}
        counterexample = Counterexample(steps=[zero_inputs], missing_outputs=missing)
        if _record:
            record_proof("counterexample", 0)
        return EquivalenceResult(
            equivalent=False,
            counterexample=counterexample,
            checked_outputs=checked,
            method="missing-output",
        )
    reference_cone.check_defined(checked)
    dut_cone.check_defined(checked)

    root = aig.or_all(
        _compare_output(aig, dut_cone.outputs[name], reference_cone.outputs[name])
        for name in checked
    )
    try:
        satisfiable, cnf, model, stats = _solve_miter(aig, root, conflict_limit)
    except ConflictLimitExceeded:
        if _record:
            record_proof("unknown", conflict_limit or 0)
        raise
    if not satisfiable:
        if _record:
            record_proof("equivalent", stats.conflicts)
        return EquivalenceResult(
            equivalent=True,
            stats=stats,
            checked_outputs=checked,
            method="structural" if root == FALSE else "sat",
        )
    assert cnf is not None
    all_inputs = dict(reference_cone.inputs)
    all_inputs.update(shared)
    assignment = {
        name: _decode_vector(cnf, model, vector)
        for name, vector in all_inputs.items()
    }
    counterexample = _replay_on_aig(
        aig, all_inputs, assignment, dut_cone.outputs, reference_cone.outputs, checked
    )
    if _record:
        record_proof("counterexample", stats.conflicts)
    return EquivalenceResult(
        equivalent=False,
        counterexample=counterexample,
        stats=stats,
        checked_outputs=checked,
    )


def _replay_on_aig(
    aig: AIG,
    input_vectors: Mapping[str, SymVector],
    assignment: dict[str, int],
    dut_outputs: Mapping[str, SymVector],
    reference_outputs: Mapping[str, SymVector],
    checked: Sequence[str],
) -> Counterexample:
    """Evaluate both cones on the decoded assignment and record the mismatch."""
    bits = _bit_assignment(aig, input_vectors, assignment)
    dut_values: dict[str, int] = {}
    reference_values: dict[str, int] = {}
    mismatching: list[tuple[int, str]] = []
    for name in checked:
        dut_vector = dut_outputs[name]
        reference_vector = reference_outputs[name]
        dut_values[name] = _vector_to_int(aig.evaluate(dut_vector.bits, bits))
        reference_values[name] = _vector_to_int(
            aig.evaluate(reference_vector.bits, bits)
        )
        mask = (1 << dut_vector.width) - 1
        if dut_values[name] != (reference_values[name] & mask):
            mismatching.append((0, name))
    if not mismatching:
        raise FormalError("SAT counterexample failed to reproduce on the AIG")
    return Counterexample(
        steps=[assignment],
        dut_outputs=[dut_values],
        reference_outputs=[reference_values],
        mismatching_outputs=mismatching,
    )


# --------------------------------------------------------------------------- sequential equivalence
def prove_sequential_equivalence(
    dut_source: str,
    reference_source: str,
    steps: int,
    clock: str = "clk",
    reset: str | None = None,
    reset_active_low: bool = False,
    outputs: Sequence[str] | None = None,
    module_name: str | None = None,
    reference_module_name: str | None = None,
    conflict_limit: int | None = None,
    _record: bool = True,
) -> EquivalenceResult:
    """Bounded (k-step) sequential equivalence from the reset state.

    Both designs are reset concretely, then unrolled ``steps`` clock cycles
    over shared fresh inputs; the miter ORs every per-step output difference.
    ``UNSAT`` proves the designs agree on *every* input sequence of length
    ``steps`` — stronger than any sampled stimulus sweep of the same depth,
    but (unlike the combinational proof) not an unbounded guarantee.
    """
    if steps < 1:
        raise ValueError("bounded sequential equivalence needs at least one step")
    aig = AIG()
    dut_unroller = SequentialUnroller(
        dut_source,
        aig,
        clock=clock,
        reset=reset,
        reset_active_low=reset_active_low,
        module_name=module_name,
        undef_prefix="dut:",
    )
    reference_unroller = SequentialUnroller(
        reference_source,
        aig,
        clock=clock,
        reset=reset,
        reset_active_low=reset_active_low,
        module_name=reference_module_name,
        undef_prefix="ref:",
    )
    # Shared per-step inputs over the union of both data-input sets.
    widths: dict[str, int] = {}
    for unroller in (reference_unroller, dut_unroller):
        for name in unroller.data_inputs:
            width = unroller.design.store.widths[name]
            if widths.setdefault(name, width) != width:
                raise FormalEncodingError(
                    f"input {name!r} has mismatched widths across the designs"
                )
    step_inputs: list[dict[str, SymVector]] = []
    for step in range(steps):
        step_inputs.append(
            {
                name: SymVector(
                    tuple(
                        aig.add_input(f"{name}@{step}[{bit}]") for bit in range(width)
                    )
                )
                for name, width in widths.items()
            }
        )
    dut_steps, dut_undefs = dut_unroller.unroll(step_inputs)
    reference_steps, reference_undefs = reference_unroller.unroll(step_inputs)

    checked = (
        list(outputs)
        if outputs is not None
        else sorted(reference_steps[0]) if reference_steps else []
    )
    missing = [name for name in checked if name not in dut_steps[0]]
    if missing:
        zero_steps = [{name: 0 for name in widths} for _ in range(steps)]
        if _record:
            record_proof("counterexample", 0)
        return EquivalenceResult(
            equivalent=False,
            counterexample=Counterexample(steps=zero_steps, missing_outputs=missing),
            checked_outputs=checked,
            method="missing-output",
            sequential_steps=steps,
        )

    difference_literals: list[int] = []
    for step in range(steps):
        for name in checked:
            difference_literals.append(
                _compare_output(aig, dut_steps[step][name], reference_steps[step][name])
            )
    root = aig.or_all(difference_literals)
    tainted = aig.support([root]) & (dut_undefs | reference_undefs)
    if tainted:
        raise FormalEncodingError(
            "sequential miter depends on undefined reset state: "
            + ", ".join(sorted(tainted)[:4])
        )
    try:
        satisfiable, cnf, model, stats = _solve_miter(aig, root, conflict_limit)
    except ConflictLimitExceeded:
        if _record:
            record_proof("unknown", conflict_limit or 0)
        raise
    if not satisfiable:
        if _record:
            record_proof("equivalent", stats.conflicts)
        return EquivalenceResult(
            equivalent=True,
            stats=stats,
            checked_outputs=checked,
            method="structural" if root == FALSE else "sat",
            sequential_steps=steps,
        )
    assert cnf is not None
    assignments: list[dict[str, int]] = []
    for step in range(steps):
        assignments.append(
            {
                name: _decode_vector(cnf, model, vector)
                for name, vector in step_inputs[step].items()
            }
        )
    # Replay on the AIG step by step to fill expected/actual values.
    flat_bits: dict[str, int] = {}
    for step in range(steps):
        flat_bits.update(_bit_assignment(aig, step_inputs[step], assignments[step]))
    dut_values: list[dict[str, int]] = []
    reference_values: list[dict[str, int]] = []
    mismatching: list[tuple[int, str]] = []
    for step in range(steps):
        dut_row: dict[str, int] = {}
        reference_row: dict[str, int] = {}
        for name in checked:
            dut_vector = dut_steps[step][name]
            dut_row[name] = _vector_to_int(aig.evaluate(dut_vector.bits, flat_bits))
            reference_row[name] = _vector_to_int(
                aig.evaluate(reference_steps[step][name].bits, flat_bits)
            )
            mask = (1 << dut_vector.width) - 1
            if dut_row[name] != (reference_row[name] & mask):
                mismatching.append((step, name))
        dut_values.append(dut_row)
        reference_values.append(reference_row)
    if not mismatching:
        raise FormalError("SAT counterexample failed to reproduce on the AIG")
    if _record:
        record_proof("counterexample", stats.conflicts)
    return EquivalenceResult(
        equivalent=False,
        counterexample=Counterexample(
            steps=assignments,
            dut_outputs=dut_values,
            reference_outputs=reference_values,
            mismatching_outputs=mismatching,
        ),
        stats=stats,
        checked_outputs=checked,
        sequential_steps=steps,
    )
