"""A pure-Python CDCL SAT solver.

MiniSat-family architecture, sized for the equivalence miters the formal
subsystem produces:

* **two-watched-literal** propagation (clauses are only touched when one of
  their two watched literals becomes false);
* **first-UIP conflict analysis** with clause learning and non-chronological
  backjumping;
* **VSIDS-style decision heuristic** — per-variable activity bumped on every
  conflict, geometrically decayed, served from a lazy max-heap — plus phase
  saving;
* **Luby restarts** to escape unlucky decision prefixes.

The solver is deliberately dependency-free and deterministic: given the same
clauses and assumptions it always returns the same model, which the test-suite
relies on when replaying counterexamples through the simulators.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from ..deadline import check_deadline
from .aig import FormalError
from .cnf import CNF

#: Propagations between cooperative deadline ticks in the CDCL hot loop.
DEADLINE_TICK_INTERVAL = 1024

#: Sentinel for "variable unassigned" in the assignment array.
UNASSIGNED = -1

#: Conflicts before the first restart; subsequent restarts follow Luby * this.
RESTART_BASE = 128


class ConflictLimitExceeded(FormalError):
    """The search hit its conflict budget before reaching a verdict.

    A distinct type (rather than a bare ``RuntimeError``) so that callers
    falling back to simulation on an exhausted budget cannot accidentally
    swallow genuine engine defects.
    """


@dataclass
class SatStats:
    """Search statistics of one :meth:`SatSolver.solve` call."""

    decisions: int = 0
    conflicts: int = 0
    propagations: int = 0
    restarts: int = 0
    learned_clauses: int = 0


@dataclass
class SatResult:
    """Outcome of a SAT query."""

    satisfiable: bool
    model: dict[int, bool] = field(default_factory=dict)
    stats: SatStats = field(default_factory=SatStats)

    def __bool__(self) -> bool:
        return self.satisfiable


def luby(index: int) -> int:
    """The Luby restart sequence 1,1,2,1,1,2,4,... (1-based ``index``)."""
    if index < 1:
        raise ValueError("luby index is 1-based")
    while True:
        if (index + 1) & index == 0:  # index == 2**k - 1
            return (index + 1) >> 1
        index = index - (1 << (index.bit_length() - 1)) + 1


class SatSolver:
    """CDCL solver over DIMACS-style clauses (signed 1-based variables)."""

    def __init__(self, num_vars: int = 0):
        self.num_vars = 0
        self.clauses: list[list[int]] = []
        self.watches: dict[int, list[int]] = {}
        self.assign: list[int] = []
        self.level: list[int] = []
        self.reason: list[int | None] = []
        self.trail: list[int] = []
        self.trail_limits: list[int] = []
        self.qhead = 0
        self.activity: list[float] = []
        self.var_inc = 1.0
        self.var_decay = 0.95
        self.heap: list[tuple[float, int]] = []
        self.saved_phase: list[bool] = []
        self.unsat = False
        self._pending_units: list[int] = []
        self.ensure_vars(num_vars)

    # ------------------------------------------------------------------ problem setup
    def ensure_vars(self, num_vars: int) -> None:
        while self.num_vars < num_vars:
            self.assign.append(UNASSIGNED)
            self.level.append(0)
            self.reason.append(None)
            self.activity.append(0.0)
            self.saved_phase.append(False)
            self.num_vars += 1

    def add_clause(self, clause: Iterable[int]) -> None:
        """Add a clause of signed DIMACS literals (0 is not a terminator here)."""
        literals: list[int] = []
        seen: set[int] = set()
        for signed in clause:
            if signed == 0:
                raise ValueError("0 is not a valid literal")
            var = abs(signed)
            self.ensure_vars(var)
            lit = (var - 1) << 1 | (1 if signed < 0 else 0)
            if lit ^ 1 in seen:
                return  # tautology
            if lit in seen:
                continue
            seen.add(lit)
            literals.append(lit)
        if not literals:
            self.unsat = True
            return
        if len(literals) == 1:
            self._pending_units.append(literals[0])
            return
        index = len(self.clauses)
        self.clauses.append(literals)
        self.watches.setdefault(literals[0], []).append(index)
        self.watches.setdefault(literals[1], []).append(index)

    @classmethod
    def from_cnf(cls, cnf: CNF) -> "SatSolver":
        solver = cls(cnf.num_vars)
        for clause in cnf.clauses:
            solver.add_clause(clause)
        return solver

    # ------------------------------------------------------------------ assignment plumbing
    def _lit_value(self, lit: int) -> int:
        value = self.assign[lit >> 1]
        if value == UNASSIGNED:
            return UNASSIGNED
        return value ^ (lit & 1)

    def _enqueue(self, lit: int, reason: int | None) -> None:
        var = lit >> 1
        self.assign[var] = 1 - (lit & 1)
        self.level[var] = len(self.trail_limits)
        self.reason[var] = reason
        self.trail.append(lit)

    def _decision_level(self) -> int:
        return len(self.trail_limits)

    def _backtrack(self, target_level: int) -> None:
        if self._decision_level() <= target_level:
            return
        limit = self.trail_limits[target_level]
        for lit in self.trail[limit:]:
            var = lit >> 1
            self.saved_phase[var] = not (lit & 1)
            self.assign[var] = UNASSIGNED
            self.reason[var] = None
            heapq.heappush(self.heap, (-self.activity[var], var))
        del self.trail[limit:]
        del self.trail_limits[target_level:]
        self.qhead = len(self.trail)

    # ------------------------------------------------------------------ propagation
    def _propagate(self, stats: SatStats) -> int | None:
        """Unit propagation; returns a conflicting clause index or ``None``."""
        while self.qhead < len(self.trail):
            lit = self.trail[self.qhead]
            self.qhead += 1
            stats.propagations += 1
            if stats.propagations % DEADLINE_TICK_INTERVAL == 0:
                check_deadline("SatSolver.propagate")
            false_lit = lit ^ 1
            watchers = self.watches.get(false_lit)
            if not watchers:
                continue
            self.watches[false_lit] = kept = []
            position = 0
            total = len(watchers)
            while position < total:
                index = watchers[position]
                position += 1
                clause = self.clauses[index]
                if clause[0] == false_lit:
                    clause[0], clause[1] = clause[1], clause[0]
                first_value = self._lit_value(clause[0])
                if first_value == 1:
                    kept.append(index)
                    continue
                for k in range(2, len(clause)):
                    if self._lit_value(clause[k]) != 0:
                        clause[1], clause[k] = clause[k], clause[1]
                        self.watches.setdefault(clause[1], []).append(index)
                        break
                else:
                    kept.append(index)
                    if first_value == 0:
                        kept.extend(watchers[position:])
                        return index
                    self._enqueue(clause[0], index)
        return None

    # ------------------------------------------------------------------ conflict analysis
    def _bump(self, var: int) -> None:
        self.activity[var] += self.var_inc
        if self.activity[var] > 1e100:
            for index in range(self.num_vars):
                self.activity[index] *= 1e-100
            self.var_inc *= 1e-100
        heapq.heappush(self.heap, (-self.activity[var], var))

    def _analyze(self, conflict_index: int) -> tuple[list[int], int]:
        """First-UIP learning: returns ``(learnt_clause, backjump_level)``.

        ``learnt_clause[0]`` is the asserting literal.
        """
        current_level = self._decision_level()
        learnt: list[int] = []
        seen = [False] * self.num_vars
        counter = 0
        lit: int | None = None
        clause = self.clauses[conflict_index]
        index = len(self.trail) - 1
        while True:
            # For reason clauses the asserted literal sits at position 0 (the
            # propagation and learning code maintain that invariant); the
            # conflict clause on the first iteration is examined in full.
            for position, q in enumerate(clause):
                if lit is not None and position == 0:
                    continue
                var = q >> 1
                if not seen[var] and self.level[var] > 0:
                    seen[var] = True
                    self._bump(var)
                    if self.level[var] >= current_level:
                        counter += 1
                    else:
                        learnt.append(q)
            while not seen[self.trail[index] >> 1]:
                index -= 1
            lit = self.trail[index]
            index -= 1
            seen[lit >> 1] = False
            counter -= 1
            if counter == 0:
                break
            reason = self.reason[lit >> 1]
            assert reason is not None, "UIP search walked past a decision"
            clause = self.clauses[reason]
        learnt.insert(0, lit ^ 1)
        if len(learnt) == 1:
            return learnt, 0
        # Backjump to the second-highest decision level in the clause.
        levels = sorted((self.level[q >> 1] for q in learnt[1:]), reverse=True)
        backjump = levels[0]
        # Move a literal of the backjump level into the second watch position.
        for position in range(1, len(learnt)):
            if self.level[learnt[position] >> 1] == backjump:
                learnt[1], learnt[position] = learnt[position], learnt[1]
                break
        return learnt, backjump

    def _record_learnt(self, learnt: list[int], stats: SatStats) -> None:
        if len(learnt) == 1:
            self._enqueue(learnt[0], None)
            return
        index = len(self.clauses)
        self.clauses.append(learnt)
        self.watches.setdefault(learnt[0], []).append(index)
        self.watches.setdefault(learnt[1], []).append(index)
        stats.learned_clauses += 1
        self._enqueue(learnt[0], index)

    # ------------------------------------------------------------------ decisions
    def _decide(self) -> int | None:
        while self.heap:
            negative_activity, var = heapq.heappop(self.heap)
            if self.assign[var] == UNASSIGNED and -negative_activity == self.activity[var]:
                return var << 1 | (0 if self.saved_phase[var] else 1)
        for var in range(self.num_vars):
            if self.assign[var] == UNASSIGNED:
                return var << 1 | (0 if self.saved_phase[var] else 1)
        return None

    # ------------------------------------------------------------------ main loop
    def solve(
        self,
        assumptions: Sequence[int] = (),
        conflict_limit: int | None = None,
    ) -> SatResult:
        """Solve under optional assumptions (signed DIMACS literals).

        Raises:
            ConflictLimitExceeded: when ``conflict_limit`` is exhausted (the
                formal callers treat this as "unknown → fall back to
                simulation").
        """
        stats = SatStats()
        if self.unsat:
            return SatResult(satisfiable=False, stats=stats)
        self._backtrack(0)
        for lit in self._pending_units:
            if self._lit_value(lit) == 0:
                return SatResult(satisfiable=False, stats=stats)
            if self._lit_value(lit) == UNASSIGNED:
                self._enqueue(lit, None)
        self._pending_units.clear()
        if self._propagate(stats) is not None:
            self.unsat = True
            return SatResult(satisfiable=False, stats=stats)

        assumption_lits = []
        for signed in assumptions:
            var = abs(signed)
            self.ensure_vars(var)
            assumption_lits.append((var - 1) << 1 | (1 if signed < 0 else 0))

        restart_count = 0
        conflicts_until_restart = RESTART_BASE * luby(1)
        iterations = 0
        while True:
            iterations += 1
            if iterations % 256 == 0:
                check_deadline("SatSolver.solve")
            conflict = self._propagate(stats)
            if conflict is not None:
                stats.conflicts += 1
                if self._decision_level() == 0:
                    self.unsat = True
                    return SatResult(satisfiable=False, stats=stats)
                if self._decision_level() <= len(assumption_lits):
                    # Conflict inside the assumption prefix: UNSAT under them.
                    self._backtrack(0)
                    return SatResult(satisfiable=False, stats=stats)
                learnt, backjump = self._analyze(conflict)
                self._backtrack(max(backjump, 0))
                self._record_learnt(learnt, stats)
                self.var_inc /= self.var_decay
                conflicts_until_restart -= 1
                if conflict_limit is not None and stats.conflicts >= conflict_limit:
                    self._backtrack(0)
                    raise ConflictLimitExceeded(
                        f"SAT search exceeded the conflict limit ({conflict_limit})"
                    )
                continue
            if conflicts_until_restart <= 0 and self._decision_level() > len(assumption_lits):
                stats.restarts += 1
                restart_count += 1
                conflicts_until_restart = RESTART_BASE * luby(restart_count + 1)
                self._backtrack(len(assumption_lits))
                continue
            # Assumption decisions first, then heuristic decisions.
            if self._decision_level() < len(assumption_lits):
                lit = assumption_lits[self._decision_level()]
                value = self._lit_value(lit)
                if value == 0:
                    self._backtrack(0)
                    return SatResult(satisfiable=False, stats=stats)
                self.trail_limits.append(len(self.trail))
                if value == UNASSIGNED:
                    self._enqueue(lit, None)
                continue
            lit = self._decide()
            if lit is None:
                model = {
                    var + 1: bool(self.assign[var]) for var in range(self.num_vars)
                }
                self._backtrack(0)
                return SatResult(satisfiable=True, model=model, stats=stats)
            stats.decisions += 1
            self.trail_limits.append(len(self.trail))
            self._enqueue(lit, None)


def solve_cnf(
    cnf: CNF,
    assumptions: Sequence[int] = (),
    conflict_limit: int | None = None,
) -> SatResult:
    """One-shot convenience: build a solver for ``cnf`` and solve."""
    return SatSolver.from_cnf(cnf).solve(
        assumptions=assumptions, conflict_limit=conflict_limit
    )


def check_model(clauses: Sequence[Sequence[int]], model: Mapping[int, bool]) -> bool:
    """Verify a model satisfies every clause (used by tests as a sanity oracle)."""
    for clause in clauses:
        if not any(
            model.get(abs(signed), False) == (signed > 0) for signed in clause
        ):
            return False
    return True
