"""Process-wide formal proof counters (mirrors the codegen fallback registry).

Every completed formal equivalence query — incremental-session proofs,
fresh-solver miters, and k-induction — records its verdict and conflict count
here.  The service layer exports the snapshot at ``GET /metrics`` as
``repro_formal_proofs_total{result=...}`` and ``repro_formal_conflicts_total``,
next to the codegen fallback counters, so an operator can see at a glance how
much of the fleet's verdict traffic is proof-backed and how hard the SAT
search is working.

The registry is intentionally tiny and lock-guarded (worker threads in the
service share one process); pool worker *processes* each keep their own copy,
exactly like the codegen registry.
"""

from __future__ import annotations

import threading

__all__ = ["record_proof", "proof_stats", "reset_proof_stats"]

_REGISTRY_LOCK = threading.Lock()
_PROOF_RESULTS: dict[str, int] = {}
_TOTAL_CONFLICTS = 0


def record_proof(result: str, conflicts: int = 0) -> None:
    """Count one formal proof outcome.

    ``result`` is a small label vocabulary: ``"equivalent"``,
    ``"counterexample"``, ``"unknown"`` (conflict budget exhausted) or
    ``"error"`` (encoding/replay failure).
    """
    global _TOTAL_CONFLICTS
    with _REGISTRY_LOCK:
        _PROOF_RESULTS[result] = _PROOF_RESULTS.get(result, 0) + 1
        _TOTAL_CONFLICTS += int(conflicts)


def proof_stats() -> dict:
    """Snapshot: ``{"total": int, "conflicts": int, "results": {label: count}}``."""
    with _REGISTRY_LOCK:
        return {
            "total": sum(_PROOF_RESULTS.values()),
            "conflicts": _TOTAL_CONFLICTS,
            "results": dict(_PROOF_RESULTS),
        }


def reset_proof_stats() -> None:
    """Zero the counters (tests and service restarts)."""
    global _TOTAL_CONFLICTS
    with _REGISTRY_LOCK:
        _PROOF_RESULTS.clear()
        _TOTAL_CONFLICTS = 0
