"""Boolean-logic substrate: expressions, minimisation, Karnaugh maps, synthesis."""

from .bittable import BitTable, iter_bits, variable_column
from .expr import (
    And,
    BoolExpr,
    Const,
    Not,
    Or,
    RandomExpressionGenerator,
    Var,
    Xor,
    and_all,
    expr_from_minterms,
    or_all,
    reference_equivalent,
    reference_minterms,
)
from .kmap import KarnaughMap, random_kmap
from .minimize import (
    Implicant,
    literal_cost,
    minimal_cover,
    minimize_expression,
    minimize_minterms,
    prime_implicants,
)
from .synth import STYLES, SynthesisRequest, expression_to_module, truth_table_to_module

__all__ = [
    "And",
    "BitTable",
    "BoolExpr",
    "iter_bits",
    "variable_column",
    "reference_equivalent",
    "reference_minterms",
    "Const",
    "Not",
    "Or",
    "RandomExpressionGenerator",
    "Var",
    "Xor",
    "and_all",
    "expr_from_minterms",
    "or_all",
    "KarnaughMap",
    "random_kmap",
    "Implicant",
    "literal_cost",
    "minimal_cover",
    "minimize_expression",
    "minimize_minterms",
    "prime_implicants",
    "STYLES",
    "SynthesisRequest",
    "expression_to_module",
    "truth_table_to_module",
]
