"""Bit-parallel truth-table engine.

Every layer of the reproduction — L-dataset generation, Quine–McCluskey
minimisation, K-map rendering, golden-model equivalence checks — bottoms out in
evaluating a :class:`~repro.logic.expr.BoolExpr` over all ``2**n`` assignments.
The legacy path walks the expression tree once per row with a freshly allocated
``dict`` per row: O(2**n * tree) with heavy allocator churn.

This module computes the *entire* truth table in a single bottom-up pass.  Each
variable's full column is materialised as one Python integer bitmask (bit ``i``
holds the variable's value on minterm index ``i``); gates then combine whole
columns with word-wide ``&``/``|``/``^``/``~`` operations, so the per-row cost
collapses to one machine word per 64 rows.

Conventions match the rest of :mod:`repro.logic`:

* the *first* variable name is the most-significant bit of the minterm index;
* bit ``i`` of :attr:`BitTable.bits` is the function value on minterm ``i``.

Compilation is memoised on the expression node itself: ``BoolExpr`` nodes are
frozen dataclasses, so structurally equal subtrees hash alike (hash-consing by
construction) and shared subexpressions compile once per variable ordering.
The legacy per-assignment ``BoolExpr.evaluate`` path is deliberately kept in
:mod:`repro.logic.expr` as the differential-testing oracle for this engine.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Iterable, Iterator, Mapping, Sequence

from .expr import And, BoolExpr, Const, Not, Or, Var, Xor

_WORD = 64
_WORD_MASK = (1 << _WORD) - 1


@lru_cache(maxsize=512)
def variable_column(bit_position: int, width: int) -> int:
    """Truth-table column of the index bit ``bit_position`` over ``2**width`` rows.

    Bit ``i`` of the result is ``(i >> bit_position) & 1``: a periodic pattern of
    ``2**bit_position`` zeros followed by as many ones.  Built by doubling, so
    the cost is O(width) big-int operations rather than O(2**width) row writes.
    """
    if not 0 <= bit_position < width:
        raise ValueError(f"bit position {bit_position} out of range for width {width}")
    step = 1 << bit_position
    column = ((1 << step) - 1) << step
    span = step << 1
    size = 1 << width
    while span < size:
        column |= column << span
        span <<= 1
    return column


def iter_bits(bits: int) -> Iterator[int]:
    """Yield the indices of set bits in ascending order (word-chunked).

    Raises:
        ValueError: on negative input (an infinite two's-complement bit string;
            mask with ``full_mask`` first, e.g. ``iter_bits(~bits & full)``).
    """
    if bits < 0:
        raise ValueError("iter_bits requires a non-negative integer")
    offset = 0
    while bits:
        word = bits & _WORD_MASK
        while word:
            low = word & -word
            yield offset + low.bit_length() - 1
            word ^= low
        bits >>= _WORD
        offset += _WORD


@lru_cache(maxsize=4096)
def _compile(expression: BoolExpr, names: tuple[str, ...]) -> int:
    """Compile ``expression`` into its packed truth-table column over ``names``."""
    node_type = type(expression)
    if node_type is Var:
        try:
            position = names.index(expression.name)
        except ValueError:
            raise KeyError(expression.name) from None
        return variable_column(len(names) - 1 - position, len(names))
    full = (1 << (1 << len(names))) - 1
    if node_type is Const:
        return full if expression.value else 0
    if node_type is Not:
        return full ^ _compile(expression.operand, names)
    if node_type is And:
        return _compile(expression.left, names) & _compile(expression.right, names)
    if node_type is Or:
        return _compile(expression.left, names) | _compile(expression.right, names)
    if node_type is Xor:
        return _compile(expression.left, names) ^ _compile(expression.right, names)
    # Unknown BoolExpr subclass: fall back to the per-assignment oracle so the
    # engine stays total over user-defined nodes.
    return _evaluate_rows(expression, names)


def _evaluate_rows(expression: BoolExpr, names: tuple[str, ...]) -> int:
    """Per-assignment oracle: pack ``evaluate`` over every row into a bitmask."""
    bits = 0
    for index in range(1 << len(names)):
        assignment = {
            name: (index >> (len(names) - 1 - position)) & 1
            for position, name in enumerate(names)
        }
        if expression.evaluate(assignment):
            bits |= 1 << index
    return bits


def clear_caches() -> None:
    """Drop all memoised columns/compilations (used by the perf harness)."""
    _compile.cache_clear()
    variable_column.cache_clear()


class BitTable:
    """A complete truth table packed into a single integer bitmask.

    Attributes:
        names: variable names; the first name is the most-significant index bit.
        bits: bit ``i`` is the function value on minterm index ``i``.
    """

    __slots__ = ("names", "bits")

    def __init__(self, names: Sequence[str], bits: int):
        self.names = tuple(names)
        self.bits = bits & ((1 << (1 << len(self.names))) - 1)

    # ------------------------------------------------------------------ constructors
    @classmethod
    def from_expr(
        cls, expression: BoolExpr, variables: Sequence[str] | None = None
    ) -> "BitTable":
        """Compile an expression; ``variables`` may widen the table to a superset.

        Raises:
            KeyError: if the expression references a variable not in ``variables``.
        """
        names = tuple(variables) if variables is not None else tuple(expression.variables())
        try:
            bits = _compile(expression, names)
        except TypeError:
            # Unhashable custom BoolExpr subclass: the memo cannot key on it,
            # so compile uncached via the per-assignment oracle.
            bits = _evaluate_rows(expression, names)
        return cls(names, bits)

    @classmethod
    def from_minterms(cls, variables: Sequence[str], minterms: Iterable[int]) -> "BitTable":
        """Build a table that is 1 exactly on the given minterm indices.

        Raises:
            ValueError: if a minterm index is outside ``[0, 2**len(variables))``
                (silent truncation would defeat equivalence checks built on it).
        """
        size = 1 << len(tuple(variables))
        bits = 0
        for minterm in minterms:
            if not 0 <= minterm < size:
                raise ValueError(
                    f"minterm {minterm} out of range for {len(tuple(variables))} variables"
                )
            bits |= 1 << minterm
        return cls(variables, bits)

    # ------------------------------------------------------------------ queries
    @property
    def width(self) -> int:
        return len(self.names)

    @property
    def size(self) -> int:
        """Number of truth-table rows."""
        return 1 << len(self.names)

    @property
    def full_mask(self) -> int:
        return (1 << self.size) - 1

    def ones(self) -> int:
        """Population count of the on-set."""
        return self.bits.bit_count()

    def minterms(self) -> list[int]:
        """Ascending minterm indices of the on-set."""
        return list(iter_bits(self.bits))

    def values(self) -> list[int]:
        """All row values in minterm-index order (length ``2**width``)."""
        out = [0] * self.size
        for index in iter_bits(self.bits):
            out[index] = 1
        return out

    def value_at(self, index: int) -> int:
        """Function value on a minterm index."""
        if not 0 <= index < self.size:
            raise IndexError(f"minterm index {index} out of range")
        return (self.bits >> index) & 1

    def evaluate(self, assignment: Mapping[str, int]) -> int:
        """Row lookup from a variable assignment (first name = MSB)."""
        index = 0
        for name in self.names:
            index = (index << 1) | (1 if assignment[name] else 0)
        return (self.bits >> index) & 1

    # ------------------------------------------------------------------ algebra
    def expanded(self, variables: Sequence[str]) -> "BitTable":
        """Re-express the table over a superset (or reordering) of its variables."""
        names = tuple(variables)
        if names == self.names:
            return self
        missing = set(self.names) - set(names)
        if missing:
            raise KeyError(sorted(missing)[0])
        positions = [names.index(name) for name in self.names]
        bits = 0
        for index in range(1 << len(names)):
            own = 0
            for position in positions:
                own = (own << 1) | ((index >> (len(names) - 1 - position)) & 1)
            if (self.bits >> own) & 1:
                bits |= 1 << index
        return BitTable(names, bits)

    def equivalent(self, other: "BitTable") -> bool:
        """Logical equivalence over the union of both variable sets."""
        if self.names == other.names:
            return self.bits == other.bits
        union = tuple(sorted(set(self.names) | set(other.names)))
        return self.expanded(union).bits == other.expanded(union).bits

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BitTable):
            return NotImplemented
        return self.names == other.names and self.bits == other.bits

    def __hash__(self) -> int:
        return hash((self.names, self.bits))

    def __repr__(self) -> str:
        return f"BitTable(names={self.names!r}, ones={self.ones()}/{self.size})"
