"""Boolean expression substrate.

The L-dataset generation flow (Section III-D of the paper) starts from "scripts
that produce a wide range of logical expressions and their associated input-output
mappings".  This module provides those scripts' core data structure: a small
boolean-expression AST with evaluation, truth-table extraction, random generation
and rendering both as natural-language text and as Verilog expressions.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Mapping, Sequence


class BoolExpr:
    """Base class for boolean expression nodes."""

    def evaluate(self, assignment: Mapping[str, int]) -> int:
        """Evaluate under a variable assignment (values are 0/1).

        This per-assignment tree walk is the *legacy* path.  Whole-table
        queries (:meth:`truth_table_rows`, :meth:`minterms`,
        :meth:`equivalent_to`) run on the bit-parallel engine in
        :mod:`repro.logic.bittable`; ``evaluate`` is kept as the
        differential-testing oracle for that engine (see
        :func:`reference_minterms` / :func:`reference_equivalent`).
        """
        raise NotImplementedError

    def variables(self) -> list[str]:
        """Return the sorted list of variable names appearing in the expression."""
        names: set[str] = set()
        self._collect_variables(names)
        return sorted(names)

    def _collect_variables(self, accumulator: set[str]) -> None:
        raise NotImplementedError

    def to_verilog(self) -> str:
        """Render as a Verilog boolean expression over 1-bit signals."""
        raise NotImplementedError

    def to_text(self) -> str:
        """Render as an engineer-style English phrase ("a and b, then or c")."""
        raise NotImplementedError

    def depth(self) -> int:
        """Return the height of the expression tree (variables/constants are 0)."""
        raise NotImplementedError

    # ------------------------------------------------------------------ conveniences
    def truth_table_rows(self) -> list[tuple[dict[str, int], int]]:
        """Enumerate all assignments with the resulting output value."""
        from .bittable import BitTable

        names = self.variables()
        values = BitTable.from_expr(self, variables=names).values()
        return [
            (dict(zip(names, bits)), value)
            for bits, value in zip(itertools.product((0, 1), repeat=len(names)), values)
        ]

    def minterms(self) -> list[int]:
        """Return the minterm indices (first variable is the most-significant bit)."""
        from .bittable import BitTable

        return BitTable.from_expr(self).minterms()

    #: Variable count above which :meth:`equivalent_to` switches from the
    #: bit-table sweep (O(2**n) bits of memory per compile) to a SAT proof.
    SAT_EQUIVALENCE_THRESHOLD = 16

    def equivalent_to(self, other: "BoolExpr", method: str = "auto") -> bool:
        """Check logical equivalence over the union of variables.

        Args:
            other: expression to compare against.
            method: ``"table"`` forces the exhaustive bit-parallel sweep,
                ``"sat"`` forces a SAT proof on the miter of the two
                expressions, and ``"auto"`` (default) picks the table up to
                :data:`SAT_EQUIVALENCE_THRESHOLD` variables and SAT beyond —
                the sweep is unbeatable in its 2**n sweet spot while the SAT
                proof scales with expression structure instead.
        """
        names = tuple(sorted(set(self.variables()) | set(other.variables())))
        if method not in ("auto", "table", "sat"):
            raise ValueError(f"unknown equivalence method {method!r}")
        if method == "sat" or (
            method == "auto" and len(names) > self.SAT_EQUIVALENCE_THRESHOLD
        ):
            from ..formal import prove_expr_equivalence

            return prove_expr_equivalence(self, other).equivalent
        from .bittable import BitTable

        left = BitTable.from_expr(self, variables=names)
        right = BitTable.from_expr(other, variables=names)
        return left.bits == right.bits


@dataclass(frozen=True)
class Var(BoolExpr):
    """A boolean variable."""

    name: str

    def evaluate(self, assignment: Mapping[str, int]) -> int:
        return 1 if assignment[self.name] else 0

    def _collect_variables(self, accumulator: set[str]) -> None:
        accumulator.add(self.name)

    def to_verilog(self) -> str:
        return self.name

    def to_text(self) -> str:
        return self.name

    def depth(self) -> int:
        return 0


@dataclass(frozen=True)
class Const(BoolExpr):
    """A boolean constant 0 or 1."""

    value: int

    def evaluate(self, assignment: Mapping[str, int]) -> int:
        return 1 if self.value else 0

    def _collect_variables(self, accumulator: set[str]) -> None:
        return None

    def to_verilog(self) -> str:
        return "1'b1" if self.value else "1'b0"

    def to_text(self) -> str:
        return "one" if self.value else "zero"

    def depth(self) -> int:
        return 0


@dataclass(frozen=True)
class Not(BoolExpr):
    """Logical negation."""

    operand: BoolExpr

    def evaluate(self, assignment: Mapping[str, int]) -> int:
        return 1 - self.operand.evaluate(assignment)

    def _collect_variables(self, accumulator: set[str]) -> None:
        self.operand._collect_variables(accumulator)

    def to_verilog(self) -> str:
        return f"~({self.operand.to_verilog()})"

    def to_text(self) -> str:
        return f"not {self.operand.to_text()}"

    def depth(self) -> int:
        return 1 + self.operand.depth()


@dataclass(frozen=True)
class BinaryBoolOp(BoolExpr):
    """Base for binary boolean operators."""

    left: BoolExpr
    right: BoolExpr

    _symbol = "?"
    _word = "?"

    def _collect_variables(self, accumulator: set[str]) -> None:
        self.left._collect_variables(accumulator)
        self.right._collect_variables(accumulator)

    def to_verilog(self) -> str:
        return f"({self.left.to_verilog()} {self._symbol} {self.right.to_verilog()})"

    def to_text(self) -> str:
        return f"({self.left.to_text()} {self._word} {self.right.to_text()})"

    def depth(self) -> int:
        return 1 + max(self.left.depth(), self.right.depth())


@dataclass(frozen=True)
class And(BinaryBoolOp):
    """Logical AND."""

    _symbol = "&"
    _word = "and"

    def evaluate(self, assignment: Mapping[str, int]) -> int:
        return self.left.evaluate(assignment) & self.right.evaluate(assignment)


@dataclass(frozen=True)
class Or(BinaryBoolOp):
    """Logical OR."""

    _symbol = "|"
    _word = "or"

    def evaluate(self, assignment: Mapping[str, int]) -> int:
        return self.left.evaluate(assignment) | self.right.evaluate(assignment)


@dataclass(frozen=True)
class Xor(BinaryBoolOp):
    """Logical XOR."""

    _symbol = "^"
    _word = "xor"

    def evaluate(self, assignment: Mapping[str, int]) -> int:
        return self.left.evaluate(assignment) ^ self.right.evaluate(assignment)


def _balanced(terms: Sequence[BoolExpr], node_type: type) -> BoolExpr:
    """Combine ``terms`` into a balanced binary tree (depth ``ceil(log2(k))``).

    Left-deep chains made ``expr_from_minterms`` on dense on-sets produce
    depth-O(2**n) ASTs — quadratic ``depth()``/render cost and a recursion-limit
    hazard for every tree walk downstream.
    """
    if len(terms) == 1:
        return terms[0]
    mid = len(terms) // 2
    return node_type(_balanced(terms[:mid], node_type), _balanced(terms[mid:], node_type))


def and_all(terms: Sequence[BoolExpr]) -> BoolExpr:
    """AND together a sequence of expressions (empty sequence yields constant 1)."""
    if not terms:
        return Const(1)
    return _balanced(list(terms), And)


def or_all(terms: Sequence[BoolExpr]) -> BoolExpr:
    """OR together a sequence of expressions (empty sequence yields constant 0)."""
    if not terms:
        return Const(0)
    return _balanced(list(terms), Or)


def expr_from_minterms(variables: Sequence[str], minterms: Sequence[int]) -> BoolExpr:
    """Build a sum-of-products expression covering exactly the given minterms.

    The first variable is the most-significant bit of the minterm index.
    """
    if not variables:
        raise ValueError("at least one variable is required")
    terms: list[BoolExpr] = []
    for minterm in sorted(set(minterms)):
        literals: list[BoolExpr] = []
        for position, name in enumerate(variables):
            bit = (minterm >> (len(variables) - 1 - position)) & 1
            literals.append(Var(name) if bit else Not(Var(name)))
        terms.append(and_all(literals))
    return or_all(terms)


# --------------------------------------------------------------------------- legacy oracle
def reference_minterms(expression: BoolExpr, variables: Sequence[str] | None = None) -> list[int]:
    """Minterms via the legacy per-assignment ``evaluate`` walk.

    Differential-testing oracle for the bit-parallel engine; O(2**n * tree).
    """
    names = list(variables) if variables is not None else expression.variables()
    result: list[int] = []
    for index, bits in enumerate(itertools.product((0, 1), repeat=len(names))):
        if expression.evaluate(dict(zip(names, bits))):
            result.append(index)
    return result


def reference_equivalent(left: BoolExpr, right: BoolExpr) -> bool:
    """Equivalence via the legacy per-assignment walk (differential oracle)."""
    names = sorted(set(left.variables()) | set(right.variables()))
    for bits in itertools.product((0, 1), repeat=len(names)):
        assignment = dict(zip(names, bits))
        if left.evaluate(assignment) != right.evaluate(assignment):
            return False
    return True


class RandomExpressionGenerator:
    """Generate random boolean expressions for the L-dataset.

    The generator is seeded so that dataset generation is reproducible.
    """

    def __init__(self, seed: int = 0, operators: Sequence[str] = ("and", "or", "xor", "not")):
        self.rng = random.Random(seed)
        self.operators = list(operators)

    def generate(self, variables: Sequence[str], max_depth: int = 3) -> BoolExpr:
        """Generate a random expression over ``variables`` up to ``max_depth``."""
        if not variables:
            raise ValueError("at least one variable is required")
        return self._generate(list(variables), max_depth)

    def _generate(self, variables: list[str], depth: int) -> BoolExpr:
        if depth <= 0 or self.rng.random() < 0.25:
            return Var(self.rng.choice(variables))
        operator = self.rng.choice(self.operators)
        if operator == "not":
            return Not(self._generate(variables, depth - 1))
        left = self._generate(variables, depth - 1)
        right = self._generate(variables, depth - 1)
        node_type = {"and": And, "or": Or, "xor": Xor}[operator]
        return node_type(left, right)

    def generate_nontrivial(
        self, variables: Sequence[str], max_depth: int = 3, attempts: int = 50
    ) -> BoolExpr:
        """Generate an expression that is neither constant-0 nor constant-1.

        Non-triviality is judged over the *declared* ``variables`` (a candidate
        whose function collapses to a constant is rejected no matter how many
        variable names its tree mentions).  The fallback is total: it never
        raises for any non-empty ``variables``, even with ``attempts=0``.
        """
        from .bittable import BitTable

        names = list(variables)
        if not names:
            raise ValueError("at least one variable is required")
        size = 1 << len(names)
        for _ in range(attempts):
            candidate = self.generate(names, max_depth)
            ones = BitTable.from_expr(candidate, variables=names).ones()
            if 0 < ones < size:
                return candidate
        # Fall back to a simple but valid expression.
        if len(names) >= 2:
            return And(Var(names[0]), Var(names[1]))
        return Var(names[0])
