"""Karnaugh-map representation.

Karnaugh maps are one of the "typical logic problems encountered in Verilog" the
paper's L-dataset targets (step 10 of Fig. 2) and also a symbolic modality that
shows up in VerilogEval-Human prompts.  :class:`KarnaughMap` holds a 2-to-4
variable map, can render itself in the textual form used in prompts, and converts
to/from minterm lists so that :mod:`repro.logic.minimize` can produce the concise
expression.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from .bittable import BitTable
from .expr import BoolExpr
from .minimize import minimize_minterms

#: Gray-code orders used for map row/column labelling.
_GRAY_1 = ("0", "1")
_GRAY_2 = ("00", "01", "11", "10")


def _gray_order(bits: int) -> tuple[str, ...]:
    if bits == 1:
        return _GRAY_1
    if bits == 2:
        return _GRAY_2
    raise ValueError("Karnaugh maps support 2 to 4 variables")


@dataclass
class KarnaughMap:
    """A Karnaugh map over 2, 3 or 4 variables.

    Attributes:
        variables: variable names; the first names are the row variables.
        cells: mapping from minterm index to cell value (0, 1, or "d" for don't care).
    """

    variables: list[str]
    cells: dict[int, int | str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not 2 <= len(self.variables) <= 4:
            raise ValueError("Karnaugh maps support 2 to 4 variables")
        for index in range(2 ** len(self.variables)):
            self.cells.setdefault(index, 0)

    # ------------------------------------------------------------------ constructors
    @classmethod
    def from_minterms(
        cls,
        variables: Sequence[str],
        minterms: Sequence[int],
        dont_cares: Sequence[int] = (),
    ) -> "KarnaughMap":
        """Build a map with the given on-set and optional don't-care set."""
        kmap = cls(variables=list(variables))
        for index in minterms:
            kmap.cells[index] = 1
        for index in dont_cares:
            kmap.cells[index] = "d"
        return kmap

    @classmethod
    def from_expression(cls, expression: BoolExpr) -> "KarnaughMap":
        """Build a map from a boolean expression (2-4 variables)."""
        variables = expression.variables()
        return cls.from_minterms(variables, expression.minterms())

    # ------------------------------------------------------------------ queries
    @property
    def num_variables(self) -> int:
        return len(self.variables)

    def minterms(self) -> list[int]:
        """Indices whose cell value is 1."""
        return sorted(index for index, value in self.cells.items() if value == 1)

    def dont_cares(self) -> list[int]:
        """Indices whose cell value is don't-care."""
        return sorted(index for index, value in self.cells.items() if value == "d")

    def value_at(self, assignment: dict[str, int]) -> int | str:
        """Cell value for a full variable assignment."""
        index = 0
        for name in self.variables:
            index = (index << 1) | (1 if assignment[name] else 0)
        return self.cells[index]

    # ------------------------------------------------------------------ conversions
    def minimized_expression(self) -> BoolExpr:
        """Return the minimal sum-of-products implementation (don't-cares used freely)."""
        on_set = self.minterms()
        # Greedy use of don't cares: include them all as on-set candidates; the
        # minimiser only benefits, never loses, from extra coverable terms here
        # because the cover is validated against the true on-set afterwards.
        candidate = minimize_minterms(self.variables, on_set + self.dont_cares())
        baseline = minimize_minterms(self.variables, on_set)
        # Pick whichever is correct on the on/off sets and cheaper.
        if self._consistent(candidate):
            if not self._consistent(baseline):
                return candidate
            return min((candidate, baseline), key=_expression_size)
        return baseline

    def _consistent(self, expression: BoolExpr) -> bool:
        """Check the expression matches every defined (non don't-care) cell.

        One bit-parallel compile of the expression over the map's variables,
        then two mask comparisons — no per-cell tree walks.
        """
        table = BitTable.from_expr(expression, variables=self.variables)
        on_mask = 0
        off_mask = 0
        for index, value in self.cells.items():
            if value == "d":
                continue
            if value:
                on_mask |= 1 << index
            else:
                off_mask |= 1 << index
        return (on_mask & ~table.bits) == 0 and (off_mask & table.bits) == 0

    # ------------------------------------------------------------------ rendering
    def render(self) -> str:
        """Render the map in the row/column textual form used in prompts.

        The first ``ceil(n/2)`` variables index the rows and the remainder index
        the columns, both in Gray order — the layout HDL textbooks use.
        """
        row_bits = (self.num_variables + 1) // 2
        col_bits = self.num_variables - row_bits
        row_labels = _gray_order(row_bits)
        col_labels = _gray_order(col_bits) if col_bits else ("",)
        row_vars = "".join(self.variables[:row_bits])
        col_vars = "".join(self.variables[row_bits:])

        header = f"{row_vars}\\{col_vars}".ljust(8) + " ".join(label.ljust(3) for label in col_labels)
        lines = [header]
        for row_label in row_labels:
            cells: list[str] = []
            for col_label in col_labels:
                bits = row_label + col_label
                index = int(bits, 2) if bits else 0
                value = self.cells[index]
                cells.append(str(value).ljust(3))
            lines.append(row_label.ljust(8) + " ".join(cells))
        return "\n".join(lines)

    def describe(self) -> str:
        """Describe the map as rules, matching the SI-CoT uniform instruction format."""
        lines = [
            "Variables: "
            + "; ".join(f"{index + 1}. {name}(input)" for index, name in enumerate(self.variables)),
            "Rules:",
        ]
        for index in sorted(self.cells):
            value = self.cells[index]
            if value == "d":
                continue
            assignment = ", ".join(
                f"{name}={(index >> (self.num_variables - 1 - position)) & 1}"
                for position, name in enumerate(self.variables)
            )
            lines.append(f"If {assignment}, then out={value};")
        return "\n".join(lines)


def random_kmap(variables: Sequence[str], seed: int = 0, dont_care_probability: float = 0.0) -> KarnaughMap:
    """Generate a random Karnaugh map (used by the L-dataset generator)."""
    import random as _random

    rng = _random.Random(seed)
    minterms: list[int] = []
    dont_cares: list[int] = []
    size = 2 ** len(variables)
    for index in range(size):
        roll = rng.random()
        if roll < dont_care_probability:
            dont_cares.append(index)
        elif roll < dont_care_probability + 0.5:
            minterms.append(index)
    if not minterms:
        minterms.append(rng.randrange(size))
    return KarnaughMap.from_minterms(variables, minterms, dont_cares)


def _expression_size(expression: BoolExpr) -> int:
    from .minimize import literal_cost

    return literal_cost(expression)
