"""Two-level logic minimisation (Quine–McCluskey with greedy cover).

Section III-D of the paper distinguishes two categories of logical reasoning in
Verilog: *finding the most concise logical expression* (e.g. from a Karnaugh map)
and *faithfully implementing the logic* when no concise form exists.  This module
implements the first category's machinery: exact prime-implicant generation via
Quine–McCluskey and a greedy essential-prime cover, returning a compact
sum-of-products expression.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from .expr import BoolExpr, Const, Not, Var, and_all, or_all


@dataclass(frozen=True)
class Implicant:
    """A product term over ``n`` variables.

    ``values`` holds the required bit values and ``mask`` marks the don't-care
    positions (bit set = the variable is eliminated from the term).  Bit 0 of both
    fields corresponds to the *last* variable (least significant position of the
    minterm index).
    """

    values: int
    mask: int
    width: int

    def covers(self, minterm: int) -> bool:
        """Whether this implicant covers the given minterm index."""
        return (minterm & ~self.mask) == (self.values & ~self.mask)

    def literal_count(self) -> int:
        """Number of literals in the product term."""
        return self.width - bin(self.mask & ((1 << self.width) - 1)).count("1")

    def to_expr(self, variables: Sequence[str]) -> BoolExpr:
        """Render the implicant as an AND of literals over ``variables``."""
        literals: list[BoolExpr] = []
        for position, name in enumerate(variables):
            bit_index = len(variables) - 1 - position
            if (self.mask >> bit_index) & 1:
                continue
            if (self.values >> bit_index) & 1:
                literals.append(Var(name))
            else:
                literals.append(Not(Var(name)))
        if not literals:
            return Const(1)
        return and_all(literals)


def _combine(a: Implicant, b: Implicant) -> Implicant | None:
    """Combine two implicants differing in exactly one defined bit, if possible."""
    if a.mask != b.mask:
        return None
    differing = (a.values ^ b.values) & ~a.mask
    if differing == 0 or (differing & (differing - 1)) != 0:
        return None
    return Implicant(values=a.values & ~differing, mask=a.mask | differing, width=a.width)


def prime_implicants(minterms: Sequence[int], num_variables: int) -> list[Implicant]:
    """Compute all prime implicants of the given on-set."""
    current = {Implicant(values=m, mask=0, width=num_variables) for m in set(minterms)}
    primes: set[Implicant] = set()
    while current:
        combined: set[Implicant] = set()
        used: set[Implicant] = set()
        current_list = sorted(current, key=lambda imp: (imp.mask, imp.values))
        for i, a in enumerate(current_list):
            for b in current_list[i + 1 :]:
                merged = _combine(a, b)
                if merged is not None:
                    combined.add(merged)
                    used.add(a)
                    used.add(b)
        primes.update(current - used)
        current = combined
    return sorted(primes, key=lambda imp: (imp.mask, imp.values))


def minimal_cover(minterms: Sequence[int], primes: list[Implicant]) -> list[Implicant]:
    """Select a small set of primes covering all minterms (essential + greedy)."""
    remaining = set(minterms)
    if not remaining:
        return []
    chosen: list[Implicant] = []

    # Essential primes: minterms covered by exactly one prime.
    coverage: dict[int, list[Implicant]] = {
        m: [p for p in primes if p.covers(m)] for m in remaining
    }
    for minterm, covering in sorted(coverage.items()):
        if len(covering) == 1 and covering[0] not in chosen:
            chosen.append(covering[0])
    for prime in chosen:
        remaining = {m for m in remaining if not prime.covers(m)}

    # Greedy cover of whatever is left.
    while remaining:
        best = max(
            primes,
            key=lambda p: (sum(1 for m in remaining if p.covers(m)), -p.literal_count()),
        )
        covered = {m for m in remaining if best.covers(m)}
        if not covered:
            break
        chosen.append(best)
        remaining -= covered
    return chosen


def minimize_minterms(variables: Sequence[str], minterms: Sequence[int]) -> BoolExpr:
    """Return a minimised sum-of-products expression for the given on-set.

    Args:
        variables: variable names, first name is the most-significant index bit.
        minterms: indices where the function is 1.

    Returns:
        A :class:`~repro.logic.expr.BoolExpr`; constant 0/1 when the on-set is
        empty/complete.
    """
    num_variables = len(variables)
    unique = sorted(set(minterms))
    if not unique:
        return Const(0)
    if len(unique) == 2**num_variables:
        return Const(1)
    primes = prime_implicants(unique, num_variables)
    cover = minimal_cover(unique, primes)
    return or_all([implicant.to_expr(variables) for implicant in cover])


def minimize_expression(expression: BoolExpr) -> BoolExpr:
    """Minimise an arbitrary boolean expression into a compact sum of products."""
    variables = expression.variables()
    if not variables:
        return expression
    return minimize_minterms(variables, expression.minterms())


def literal_cost(expression: BoolExpr) -> int:
    """A simple cost metric: total number of variable occurrences."""
    if isinstance(expression, Var):
        return 1
    if isinstance(expression, Const):
        return 0
    if isinstance(expression, Not):
        return literal_cost(expression.operand)
    # Binary nodes expose .left / .right
    return literal_cost(expression.left) + literal_cost(expression.right)  # type: ignore[attr-defined]
