"""Two-level logic minimisation (Quine–McCluskey with greedy cover).

Section III-D of the paper distinguishes two categories of logical reasoning in
Verilog: *finding the most concise logical expression* (e.g. from a Karnaugh map)
and *faithfully implementing the logic* when no concise form exists.  This module
implements the first category's machinery: exact prime-implicant generation via
Quine–McCluskey and a greedy essential-prime cover, returning a compact
sum-of-products expression.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Sequence

from .bittable import iter_bits, variable_column
from .expr import BoolExpr, Const, Not, Var, and_all, or_all


@dataclass(frozen=True)
class Implicant:
    """A product term over ``n`` variables.

    ``values`` holds the required bit values and ``mask`` marks the don't-care
    positions (bit set = the variable is eliminated from the term).  Bit 0 of both
    fields corresponds to the *last* variable (least significant position of the
    minterm index).
    """

    values: int
    mask: int
    width: int

    def covers(self, minterm: int) -> bool:
        """Whether this implicant covers the given minterm index."""
        return (minterm & ~self.mask) == (self.values & ~self.mask)

    def cover_mask(self) -> int:
        """Bitmask over all ``2**width`` minterm indices this implicant covers.

        Computed bit-parallel from the precomputed index-bit columns, so the
        cover set of the whole cube costs O(width) big-int operations instead of
        one :meth:`covers` call per minterm.
        """
        return _cover_mask(self.values, self.mask, self.width)

    def literal_count(self) -> int:
        """Number of literals in the product term."""
        return self.width - bin(self.mask & ((1 << self.width) - 1)).count("1")

    def to_expr(self, variables: Sequence[str]) -> BoolExpr:
        """Render the implicant as an AND of literals over ``variables``."""
        literals: list[BoolExpr] = []
        for position, name in enumerate(variables):
            bit_index = len(variables) - 1 - position
            if (self.mask >> bit_index) & 1:
                continue
            if (self.values >> bit_index) & 1:
                literals.append(Var(name))
            else:
                literals.append(Not(Var(name)))
        if not literals:
            return Const(1)
        return and_all(literals)


@lru_cache(maxsize=16384)
def _cover_mask(values: int, mask: int, width: int) -> int:
    covered = (1 << (1 << width)) - 1
    for bit in range(width):
        if (mask >> bit) & 1:
            continue
        column = variable_column(bit, width)
        if (values >> bit) & 1:
            covered &= column
        else:
            covered &= ~column
    return covered & ((1 << (1 << width)) - 1)


def prime_implicants(minterms: Sequence[int], num_variables: int) -> list[Implicant]:
    """Compute all prime implicants of the given on-set.

    Each generation is bucketed by ``(mask, popcount(values))``; two implicants
    merge only when they share a mask and their defined values differ in exactly
    one bit, which forces adjacent popcount buckets — so only adjacent buckets
    are paired instead of the full O(k^2) all-pairs sweep.
    """
    current = {Implicant(values=m, mask=0, width=num_variables) for m in set(minterms)}
    primes: set[Implicant] = set()
    while current:
        groups: dict[tuple[int, int], list[Implicant]] = {}
        for implicant in sorted(current, key=lambda imp: (imp.mask, imp.values)):
            groups.setdefault((implicant.mask, implicant.values.bit_count()), []).append(implicant)
        combined: set[Implicant] = set()
        used: set[Implicant] = set()
        for (mask, ones), group in groups.items():
            partners = groups.get((mask, ones + 1))
            if not partners:
                continue
            for a in group:
                for b in partners:
                    differing = a.values ^ b.values
                    if differing & (differing - 1):
                        continue
                    combined.add(
                        Implicant(values=a.values & ~differing, mask=mask | differing, width=a.width)
                    )
                    used.add(a)
                    used.add(b)
        primes.update(current - used)
        current = combined
    return sorted(primes, key=lambda imp: (imp.mask, imp.values))


def minimal_cover(minterms: Sequence[int], primes: list[Implicant]) -> list[Implicant]:
    """Select a small set of primes covering all minterms (essential + greedy).

    The cover table is held as integer bitmasks: essential primes fall out of a
    covered-once/covered-twice accumulator sweep, and the greedy phase scores
    candidates with a single ``&`` + popcount per prime instead of one
    ``covers()`` call per (prime, minterm) pair.
    """
    onset = 0
    for minterm in set(minterms):
        onset |= 1 << minterm
    if not onset:
        return []
    chosen: list[Implicant] = []
    covers = [prime.cover_mask() & onset for prime in primes]

    # Essential primes: minterms covered by exactly one prime.
    covered_once = 0
    covered_twice = 0
    for cover in covers:
        covered_twice |= covered_once & cover
        covered_once |= cover
    for minterm in iter_bits(covered_once & ~covered_twice):
        for prime, cover in zip(primes, covers):
            if (cover >> minterm) & 1:
                if prime not in chosen:
                    chosen.append(prime)
                break
    remaining = onset
    for prime, cover in zip(primes, covers):
        if prime in chosen:
            remaining &= ~cover

    # Greedy cover of whatever is left.
    while remaining:
        best_index = max(
            range(len(primes)),
            key=lambda i: ((covers[i] & remaining).bit_count(), -primes[i].literal_count()),
        )
        covered = covers[best_index] & remaining
        if not covered:
            break
        chosen.append(primes[best_index])
        remaining &= ~covered
    return chosen


def minimize_minterms(variables: Sequence[str], minterms: Sequence[int]) -> BoolExpr:
    """Return a minimised sum-of-products expression for the given on-set.

    Args:
        variables: variable names, first name is the most-significant index bit.
        minterms: indices where the function is 1.

    Returns:
        A :class:`~repro.logic.expr.BoolExpr`; constant 0/1 when the on-set is
        empty/complete.
    """
    num_variables = len(variables)
    unique = sorted(set(minterms))
    if not unique:
        return Const(0)
    if len(unique) == 2**num_variables:
        return Const(1)
    primes = prime_implicants(unique, num_variables)
    cover = minimal_cover(unique, primes)
    return or_all([implicant.to_expr(variables) for implicant in cover])


def minimize_expression(expression: BoolExpr, verify: bool = False) -> BoolExpr:
    """Minimise an arbitrary boolean expression into a compact sum of products.

    Args:
        expression: expression to minimise.
        verify: cross-check that the minimised form is logically equivalent to
            the input before returning it.  The check goes through
            :meth:`BoolExpr.equivalent_to`, i.e. the bit-table sweep in its
            sweet spot and a SAT proof beyond
            :data:`BoolExpr.SAT_EQUIVALENCE_THRESHOLD` variables.

    Raises:
        MinimizationError: when ``verify`` is set and the cover is wrong (an
            engine bug — the exact QM cover must preserve the function).
    """
    variables = expression.variables()
    if not variables:
        return expression
    minimised = minimize_minterms(variables, expression.minterms())
    if verify and not expression.equivalent_to(minimised):
        raise MinimizationError(
            "minimised cover is not equivalent to the input expression"
        )
    return minimised


class MinimizationError(AssertionError):
    """A verified minimisation produced a non-equivalent cover (engine bug)."""


def literal_cost(expression: BoolExpr) -> int:
    """A simple cost metric: total number of variable occurrences."""
    if isinstance(expression, Var):
        return 1
    if isinstance(expression, Const):
        return 0
    if isinstance(expression, Not):
        return literal_cost(expression.operand)
    # Binary nodes expose .left / .right
    return literal_cost(expression.left) + literal_cost(expression.right)  # type: ignore[attr-defined]
