"""Synthesis of boolean expressions into Verilog modules.

The L-dataset flow embeds generated logical expressions into "pre-designed code
templates" (step 11 of Fig. 2).  This module provides those templates: given a
boolean expression (or an explicit truth table) it emits a complete, compilable
Verilog module implementing it, in one of several implementation styles
(continuous assignment, ``always @(*)`` with a case statement, or an if/else
chain) — the styles HDL engineers conventionally use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from .expr import BoolExpr

#: Implementation styles supported by the synthesiser.
STYLES = ("assign", "case", "if_else")


@dataclass
class SynthesisRequest:
    """Parameters controlling module synthesis."""

    module_name: str = "logic_unit"
    output_name: str = "out"
    style: str = "assign"
    include_default: bool = True


def expression_to_module(expression: BoolExpr, request: SynthesisRequest | None = None) -> str:
    """Emit a Verilog module implementing ``expression``.

    Args:
        expression: boolean expression over 1-bit inputs.
        request: synthesis options; defaults to an ``assign``-style module.

    Returns:
        Verilog source text of a complete module.
    """
    request = request or SynthesisRequest()
    variables = expression.variables()
    if not variables:
        raise ValueError("expression must reference at least one variable")
    if request.style == "assign":
        return _assign_style(expression, variables, request)
    if request.style == "case":
        return _case_style(expression, variables, request)
    if request.style == "if_else":
        return _if_else_style(expression, variables, request)
    raise ValueError(f"unknown synthesis style {request.style!r}")


def truth_table_to_module(
    variables: Sequence[str],
    rows: Mapping[int, int],
    request: SynthesisRequest | None = None,
) -> str:
    """Emit a module implementing an explicit truth table.

    Args:
        variables: input names, first is the most-significant select bit.
        rows: mapping from input index to output bit (missing rows default to 0
            via the ``default`` case arm).
        request: synthesis options (the ``case`` style is always used).
    """
    request = request or SynthesisRequest(style="case")
    ports = ",\n".join(f"    input {name}" for name in variables)
    lines = [
        f"module {request.module_name} (",
        ports + ",",
        f"    output reg {request.output_name}",
        ");",
        "    always @(*) begin",
        "        case ({" + ", ".join(variables) + "})",
    ]
    width = len(variables)
    for index in sorted(rows):
        pattern = format(index, f"0{width}b")
        lines.append(
            f"            {width}'b{pattern}: {request.output_name} = 1'b{1 if rows[index] else 0};"
        )
    if request.include_default:
        lines.append(f"            default: {request.output_name} = 1'b0;")
    lines.extend(["        endcase", "    end", "endmodule", ""])
    return "\n".join(lines)


# --------------------------------------------------------------------------- styles
def _module_header(variables: Sequence[str], request: SynthesisRequest, output_is_reg: bool) -> list[str]:
    ports = ",\n".join(f"    input {name}" for name in variables)
    output_type = "output reg" if output_is_reg else "output"
    return [
        f"module {request.module_name} (",
        ports + ",",
        f"    {output_type} {request.output_name}",
        ");",
    ]


def _assign_style(expression: BoolExpr, variables: Sequence[str], request: SynthesisRequest) -> str:
    lines = _module_header(variables, request, output_is_reg=False)
    lines.append(f"    assign {request.output_name} = {expression.to_verilog()};")
    lines.extend(["endmodule", ""])
    return "\n".join(lines)


def _case_style(expression: BoolExpr, variables: Sequence[str], request: SynthesisRequest) -> str:
    from .bittable import BitTable

    rows = dict(enumerate(BitTable.from_expr(expression, variables=variables).values()))
    return truth_table_to_module(variables, rows, SynthesisRequest(
        module_name=request.module_name,
        output_name=request.output_name,
        style="case",
        include_default=request.include_default,
    ))


def _if_else_style(expression: BoolExpr, variables: Sequence[str], request: SynthesisRequest) -> str:
    lines = _module_header(variables, request, output_is_reg=True)
    lines.append("    always @(*) begin")
    first = True
    for assignment, value in expression.truth_table_rows():
        condition = " && ".join(
            f"{name} == 1'b{assignment[name]}" for name in variables
        )
        keyword = "if" if first else "else if"
        lines.append(f"        {keyword} ({condition})")
        lines.append(f"            {request.output_name} = 1'b{value};")
        first = False
    lines.append("        else")
    lines.append(f"            {request.output_name} = 1'b0;")
    lines.extend(["    end", "endmodule", ""])
    return "\n".join(lines)
