"""Resumable, shardable experiment runs.

This package lifts PR 4's content-addressed discipline from single checks to
whole experiment sweeps:

* :class:`~repro.runs.manifest.RunManifest` declares a sweep (profiles, suites,
  :class:`~repro.bench.evaluator.EvaluationConfig`, temperatures, samples) and
  deterministically expands into content-addressed
  :class:`~repro.runs.manifest.WorkUnit`\\ s keyed by ``(manifest_hash,
  profile_id, suite_id, task_id, temperature, sample_index)``;
* :class:`~repro.runs.store.RunStore` persists every completed unit in an
  append-only JSONL journal (pluggable directory via ``REPRO_RUN_DIR``) with an
  in-memory index, recovering from a corrupted trailing line after a crash;
* :class:`~repro.runs.engine.RunEngine` executes units through the shared
  ``run_checks`` pool, skips everything already journaled (kill ``-9`` a sweep
  and re-invoke: it resumes where it left off) and shards disjointly with
  ``--shard i/n``;
* :class:`~repro.runs.aggregate.StreamingAggregator` rebuilds pass@k, the
  Table IV/V/VI rows and the Fig. 3/4 series incrementally from the journal, so
  reports render from partially complete runs.

``python -m repro.runs`` exposes the ``plan`` / ``run`` / ``status`` /
``report`` CLI; the ``run_*`` drivers in :mod:`repro.experiments` are thin
manifest-builders on top of this machinery.
"""

from .aggregate import RunProgress, StreamingAggregator
from .engine import QuarantineInfo, RunEngine, RunStats, UnitResult
from .manifest import ProfileSpec, RunManifest, SuiteSpec, WorkUnit
from .resolve import ManifestResolver
from .store import RunStore

__all__ = [
    "ManifestResolver",
    "ProfileSpec",
    "QuarantineInfo",
    "RunEngine",
    "RunManifest",
    "RunProgress",
    "RunStats",
    "RunStore",
    "StreamingAggregator",
    "SuiteSpec",
    "UnitResult",
    "WorkUnit",
]
