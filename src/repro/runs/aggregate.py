"""Streaming aggregation: journal records → pass@k, tables and figures.

The aggregator consumes journal records one at a time (``feed``) or wholesale
from a store (``feed_store``) and can produce its outputs at any moment, so a
report renders from a partially complete run and is simply re-rendered as more
units land.  Reconstruction mirrors the in-memory evaluator exactly — same
per-task counting, same capped failure examples in sample order, same
best-temperature selection (first temperature wins ties) — so a fully
journaled run aggregates bit-for-bit to what the monolithic drivers returned.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..bench.evaluator import SuiteResult, TaskResult
from ..bench.jobs import CheckOutcome
from ..bench.reporting import (
    AblationSeries,
    Table4Row,
    Table5Row,
    table4_row_from_results,
    table5_row_from_result,
)
from .manifest import RunManifest
from .resolve import ManifestResolver
from .store import RunStore, outcome_from_record

#: Maximum failure examples kept per task (mirrors the evaluator's cap).
MAX_FAILURE_EXAMPLES = 3


@dataclass
class RunProgress:
    """How much of a manifest's expansion the journal covers.

    ``completed`` counts scored units only; ``quarantined`` units are
    journaled (so resume skips them) but carry no verdict.  Both count toward
    coverage: a run with every unit either scored or quarantined is complete
    — just not :attr:`healthy`.
    """

    completed: int
    total: int
    quarantined: int = 0

    @property
    def accounted(self) -> int:
        return self.completed + self.quarantined

    @property
    def fraction(self) -> float:
        return self.accounted / self.total if self.total else 1.0

    @property
    def percent(self) -> float:
        return 100.0 * self.fraction

    @property
    def complete(self) -> bool:
        return self.accounted >= self.total

    @property
    def healthy(self) -> bool:
        return self.complete and self.quarantined == 0


class StreamingAggregator:
    """Incrementally rebuild suite results (and the paper's outputs) from a journal."""

    def __init__(self, manifest: RunManifest, resolver: ManifestResolver | None = None):
        self.manifest = manifest
        self.resolver = resolver or ManifestResolver(manifest)
        self._manifest_hash = manifest.manifest_hash
        #: (profile, suite) → task → temperature → sample index → outcome
        self._outcomes: dict[
            tuple[str, str], dict[str, dict[float, dict[int, CheckOutcome]]]
        ] = {}
        self._seen = 0
        #: Unit keys journaled as quarantined (poison units; never scored).
        self._quarantined_keys: set[str] = set()

    # ------------------------------------------------------------------ ingest
    def feed(self, record: dict) -> bool:
        """Ingest one journal record; foreign-manifest records are ignored.

        Quarantine records are counted (for progress and health) but
        contribute no outcome: the paper's metrics aggregate over scored
        units only, bit-for-bit with a fault-free run of the healthy subset.
        """
        if record.get("kind") == "quarantine":
            if record.get("manifest") != self._manifest_hash:
                return False
            self._quarantined_keys.add(record["key"])
            return True
        if record.get("kind") != "unit" or record.get("manifest") != self._manifest_hash:
            return False
        group = self._outcomes.setdefault((record["profile"], record["suite"]), {})
        per_task = group.setdefault(record["task"], {})
        per_temperature = per_task.setdefault(float(record["temperature"]), {})
        sample_index = int(record["sample"])
        if sample_index not in per_temperature:
            self._seen += 1
        per_temperature[sample_index] = outcome_from_record(record)
        return True

    def feed_store(self, store: RunStore) -> "StreamingAggregator":
        for record in store.records():
            self.feed(record)
        return self

    # ------------------------------------------------------------------ progress
    def progress(self) -> RunProgress:
        total = len(self.manifest.expand(self.resolver.suite_task_ids()))
        return RunProgress(
            completed=self._seen,
            total=total,
            quarantined=len(self._quarantined_keys),
        )

    # ------------------------------------------------------------------ suite results
    def suite_result(self, profile_id: str, suite_id: str) -> SuiteResult:
        """The (possibly partial) suite result for one profile on one suite.

        Tasks with no journaled sample yet are omitted; tasks with some
        samples journaled aggregate over what is there.  For a complete
        journal this is bit-for-bit the evaluator's ``SuiteResult``.
        """
        suite_spec = next(s for s in self.manifest.suites if s.suite_id == suite_id)
        suite = self.resolver.suite(suite_spec)
        result = SuiteResult(
            suite_name=suite.name,
            model_name=self.resolver.pipeline_name(profile_id),
            ks=self.manifest.config.ks,
        )
        group = self._outcomes.get((profile_id, suite_id), {})
        for task in self.resolver.tasks(suite_spec):
            per_task = group.get(task.task_id)
            if not per_task:
                continue
            best: TaskResult | None = None
            for temperature in self.manifest.config.temperatures:
                per_temperature = per_task.get(float(temperature))
                if not per_temperature:
                    continue
                candidate = self._assemble(task.task_id, task.category, temperature, per_temperature)
                if best is None or candidate.num_functional_passes > best.num_functional_passes:
                    best = candidate
            if best is not None:
                result.task_results.append(best)
        return result

    @staticmethod
    def _assemble(
        task_id: str,
        category: str,
        temperature: float,
        outcomes: dict[int, CheckOutcome],
    ) -> TaskResult:
        functional_passes = 0
        syntax_passes = 0
        failures: list[str] = []
        for sample_index in sorted(outcomes):
            outcome = outcomes[sample_index]
            if not outcome.syntax_ok:
                if len(failures) < MAX_FAILURE_EXAMPLES:
                    failures.append(outcome.syntax_error)
                continue
            syntax_passes += 1
            if outcome.functional_passed:
                functional_passes += 1
            elif len(failures) < MAX_FAILURE_EXAMPLES:
                failures.append(outcome.failure_summary)
        return TaskResult(
            task_id=task_id,
            category=category,
            num_samples=len(outcomes),
            num_functional_passes=functional_passes,
            num_syntax_passes=syntax_passes,
            temperature=temperature,
            failure_examples=failures,
        )

    # ------------------------------------------------------------------ experiment outputs
    def table4_rows(self) -> list[Table4Row]:
        rows: list[Table4Row] = []
        for spec in self.manifest.profiles:
            results = {
                suite.suite_id: self.suite_result(spec.profile_id, suite.suite_id)
                for suite in self.manifest.suites
            }
            rows.append(
                table4_row_from_results(
                    model=spec.display,
                    group=spec.group,
                    open_source=spec.open_source,
                    model_size=spec.model_size,
                    machine=results.get("machine"),
                    human=results.get("human"),
                    rtllm=results.get("rtllm"),
                    v2=results.get("v2"),
                )
            )
        return rows

    def table5_rows(self) -> list[Table5Row]:
        return [
            table5_row_from_result(
                spec.display, self.suite_result(spec.profile_id, "symbolic")
            )
            for spec in self.manifest.profiles
        ]

    def table6_rows(self) -> dict[str, tuple[float, float]]:
        rows: dict[str, tuple[float, float]] = {}
        with_cot = {s.key: s for s in self.manifest.profiles if s.use_sicot}
        without_cot = {s.key: s for s in self.manifest.profiles if not s.use_sicot}
        for key, spec in with_cot.items():
            partner = without_cot.get(key)
            if partner is None:
                continue
            rows[spec.display] = (
                self.suite_result(spec.profile_id, "symbolic")
                .functional_percentages()
                .get(1, 0.0),
                self.suite_result(partner.profile_id, "symbolic")
                .functional_percentages()
                .get(1, 0.0),
            )
        return rows

    def fig3_series(self) -> list[AblationSeries]:
        series: list[AblationSeries] = []
        by_label: dict[str, AblationSeries] = {}
        for spec in self.manifest.profiles:
            entry = by_label.get(spec.group)
            if entry is None:
                entry = AblationSeries(model=spec.group)
                by_label[spec.group] = entry
                series.append(entry)
            percentages = self.suite_result(spec.profile_id, "human").functional_percentages()
            entry.pass1[spec.setting] = percentages.get(1, 0.0)
            entry.pass5[spec.setting] = percentages.get(5, percentages.get(1, 0.0))
        return series

    def fig4_grids(
        self,
    ) -> tuple[dict[tuple[int, int], float], dict[tuple[int, int], float]]:
        grid_pass1: dict[tuple[int, int], float] = {}
        grid_pass5: dict[tuple[int, int], float] = {}
        for spec in self.manifest.profiles:
            percentages = self.suite_result(spec.profile_id, "human").functional_percentages()
            cell = (spec.k_portion, spec.l_portion)
            grid_pass1[cell] = percentages.get(1, 0.0)
            grid_pass5[cell] = percentages.get(5, percentages.get(1, 0.0))
        return grid_pass1, grid_pass5

    # ------------------------------------------------------------------ rendering
    def report(self) -> str:
        """Render the manifest's experiment from whatever is journaled so far."""
        from ..bench.reporting import (
            render_fig3,
            render_fig4,
            render_table4,
            render_table5,
            render_table6,
        )

        experiment = self.manifest.experiment
        if experiment == "table4":
            return render_table4(self.table4_rows())
        if experiment == "table5":
            return render_table5(self.table5_rows())
        if experiment == "table6":
            return render_table6(self.table6_rows())
        if experiment == "fig3":
            return render_fig3(self.fig3_series())
        if experiment == "fig4":
            grid1, grid5 = self.fig4_grids()
            return render_fig4(grid1, grid5, portions=self.manifest.portions or (0, 50, 100))
        # Custom sweeps: render per-(profile, suite) pass@k summaries.
        from ..bench.reporting import format_table

        rows = []
        for spec in self.manifest.profiles:
            for suite in self.manifest.suites:
                result = self.suite_result(spec.profile_id, suite.suite_id)
                percentages = result.functional_percentages()
                rows.append(
                    [
                        spec.display,
                        suite.suite_id,
                        len(result.task_results),
                        percentages.get(1, 0.0),
                        percentages.get(5, "n/a"),
                    ]
                )
        return format_table(
            ["Model", "Suite", "Tasks", "pass@1", "pass@5"], rows, title=self.manifest.name
        )
