"""``python -m repro.runs`` — plan / run / status / report for experiment sweeps.

Typical session (two shards filling one store, then a report)::

    export REPRO_RUN_DIR=runs/table4-quick
    python -m repro.runs plan --experiment table4 --scale quick
    python -m repro.runs run --shard 0/2 & python -m repro.runs run --shard 1/2; wait
    python -m repro.runs status
    python -m repro.runs report

``run`` is always safe to re-invoke: completed units are skipped, so a crashed
or killed sweep resumes where its journal ends.

Exit codes (``status`` is the scriptable health probe)::

    0  run complete, no quarantined units
    2  store/manifest error (missing directory, hash mismatch, ...)
    3  run incomplete (pending units remain)
    4  run has quarantined (poison) units — even if otherwise complete
"""

from __future__ import annotations

import argparse
import json
import sys

from .aggregate import StreamingAggregator
from .engine import RunEngine
from .presets import EXPERIMENT_MANIFESTS
from .store import RUN_DIR_ENV, RunStore, RunStoreError


def status_summary(manifest, store, *, done: int, total: int) -> tuple[dict, int]:
    """Machine-readable run status plus the CLI's exit-code semantics.

    The payload is what ``python -m repro.runs status --json`` prints and what
    the service's readiness probe consumes; the exit code follows the PR 6
    contract (0 complete-healthy, 3 incomplete, 4 quarantined).
    """
    quarantined = [
        record
        for record in store.quarantined_records()
        if record.get("manifest") == manifest.manifest_hash
    ]
    warnings = store.warning_records()
    percent = 100.0 * done / total if total else 100.0
    payload = {
        "manifest_hash": manifest.manifest_hash,
        "name": manifest.name,
        "experiment": manifest.experiment,
        "completed_units": done,
        "total_units": total,
        "percent_complete": round(percent, 1),
        "complete": done >= total,
        "healthy": done >= total and not quarantined,
        "quarantined": [
            {
                "key": record.get("key"),
                "task": record.get("task"),
                "sample": record.get("sample"),
                "attempts": record.get("quarantine", {}).get("attempts"),
                "error": record.get("quarantine", {}).get("error"),
            }
            for record in quarantined
        ],
        "warnings": [
            {
                "category": record.get("warning", {}).get("category"),
                "message": record.get("warning", {}).get("message"),
            }
            for record in warnings
        ],
        "recovered_lines": store.recovered_lines,
    }
    if quarantined:
        exit_code = 4
    elif done < total:
        exit_code = 3
    else:
        exit_code = 0
    payload["exit_code"] = exit_code
    return payload, exit_code


def _parse_shard(text: str) -> tuple[int, int]:
    try:
        index_text, count_text = text.split("/", 1)
        index, count = int(index_text), int(count_text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"shard must look like i/n, got {text!r}")
    if count < 1 or not (0 <= index < count):
        raise argparse.ArgumentTypeError(f"invalid shard {text!r}")
    return index, count


def _scale_for(name: str):
    from ..experiments import ExperimentScale

    presets = {
        "tiny": ExperimentScale.tiny,
        "quick": ExperimentScale.quick,
        "paper": ExperimentScale.paper,
    }
    return presets[name]()


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.runs",
        description="Resumable, shardable experiment sweeps over a persistent run store.",
    )
    parser.add_argument(
        "--run-dir",
        default=None,
        help=f"run directory (default: ${RUN_DIR_ENV})",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    plan = commands.add_parser("plan", help="write a manifest into the run directory")
    plan.add_argument("--experiment", required=True, choices=sorted(EXPERIMENT_MANIFESTS))
    plan.add_argument("--scale", default="quick", choices=("tiny", "quick", "paper"))
    plan.add_argument(
        "--baselines",
        default=None,
        help="comma-separated baseline keys (table4 only; default: all)",
    )
    plan.add_argument(
        "--no-haven",
        action="store_true",
        help="skip the fine-tuned HaVen models (table4 only)",
    )
    plan.add_argument(
        "--portions",
        default=None,
        help="comma-separated K/L percentages (fig4 only; default 0,50,100)",
    )

    run = commands.add_parser("run", help="execute pending units (resumable)")
    run.add_argument("--shard", type=_parse_shard, default=(0, 1), help="i/n disjoint shard")
    run.add_argument("--max-units", type=int, default=None, help="execute at most N units")

    status = commands.add_parser(
        "status",
        help="journal coverage + health (exit 0 ok, 3 incomplete, 4 quarantined)",
    )
    status.add_argument(
        "--json",
        action="store_true",
        help="emit one machine-readable JSON object instead of text "
        "(same exit codes; for readiness probes and external tooling)",
    )
    commands.add_parser("report", help="render the experiment from the journal so far")
    return parser


def _manifest_from_args(args) -> "RunManifest":
    builder = EXPERIMENT_MANIFESTS[args.experiment]
    scale = _scale_for(args.scale)
    kwargs = {}
    if args.experiment == "table4":
        if args.baselines is not None:
            kwargs["baseline_keys"] = [key for key in args.baselines.split(",") if key]
        kwargs["include_haven"] = not args.no_haven
    if args.experiment == "fig4" and args.portions is not None:
        kwargs["portions"] = tuple(int(p) for p in args.portions.split(",") if p)
    return builder(scale, **kwargs)


def _open_store(args) -> RunStore:
    store = RunStore.open(args.run_dir)
    if not store.persistent:
        raise RunStoreError("run store must be persistent for the CLI")
    return store


def _require_manifest(store: RunStore):
    manifest = store.load_manifest()
    if manifest is None:
        raise RunStoreError(
            f"no manifest in {store.directory}; run `plan` first"
        )
    return manifest


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        store = _open_store(args)
        if args.command == "plan":
            manifest = _manifest_from_args(args)
            store.write_manifest(manifest)
            engine = RunEngine(manifest, store)
            done, total = engine.progress()
            print(f"manifest {manifest.manifest_hash[:12]} ({manifest.name}) -> {store.directory}")
            print(f"{total} work units planned, {done} already journaled")
            return 0
        manifest = _require_manifest(store)
        if args.command == "run":
            shard_index, shard_count = args.shard
            engine = RunEngine(manifest, store)
            stats = engine.run(
                shard_index=shard_index, shard_count=shard_count, max_units=args.max_units
            )
            print(
                f"shard {shard_index}/{shard_count}: executed {stats.executed} units, "
                f"skipped {stats.skipped} already journaled, "
                f"{stats.executed + stats.skipped}/{stats.total_units} of shard covered"
            )
            return 0
        if args.command == "status":
            engine = RunEngine(manifest, store)
            done, total = engine.progress()
            payload, exit_code = status_summary(manifest, store, done=done, total=total)
            if args.json:
                print(json.dumps(payload, indent=2, sort_keys=True))
                return exit_code
            print(f"manifest {manifest.manifest_hash[:12]} ({manifest.name})")
            print(
                f"{done}/{total} units journaled"
                f" ({payload['percent_complete']:.1f}% complete)"
            )
            for entry in payload["quarantined"]:
                print(
                    f"quarantined: {entry['task']} sample {entry['sample']}"
                    f" after {entry['attempts']} attempt(s): {entry['error']}"
                )
            for entry in payload["warnings"]:
                print(f"warning [{entry['category']}]: {entry['message']}")
            if store.recovered_lines:
                print(f"{store.recovered_lines} corrupted journal line(s) dropped on load")
            if payload["quarantined"]:
                print(f"{len(payload['quarantined'])} unit(s) quarantined", file=sys.stderr)
            return exit_code
        if args.command == "report":
            aggregator = StreamingAggregator(manifest).feed_store(store)
            progress = aggregator.progress()
            print(aggregator.report())
            print()
            print(
                f"[rendered from {progress.completed}/{progress.total} units "
                f"({progress.percent:.1f}% complete)]"
            )
            return 0
    except RunStoreError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    return 0
