"""The run engine: execute a manifest's work units into a store, resumably.

Execution is planned per ``(profile, suite)`` group.  For every task ×
temperature with pending units, only the missing sample indices are drawn from
the pipeline's deterministic sample stream (``generate_at`` — so a resumed or
sharded run reproduces the serial samples bit-for-bit), syntax-checked, and the
compiled candidates become content-addressed
:class:`~repro.bench.jobs.CheckRequest`\\ s deduplicated by
:class:`~repro.bench.jobs.ResultKey` and executed through
:func:`~repro.bench.jobs.run_checks` (process pool when the manifest's
``EvaluationConfig.max_workers`` says so).  Each finished unit is journaled as
a :class:`~repro.bench.jobs.CheckOutcome`; units already journaled are never
re-executed, which is the whole resume story: kill the process at any point,
re-invoke, and it continues where the journal ends.

Sharding: ``run(shard_index=i, shard_count=n)`` executes the units whose
position in the deterministic expansion order is ``i (mod n)``.  Disjoint
shards can fill one store concurrently; the merged journal aggregates to the
same results as a serial run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from ..bench.evaluator import check_request_for, task_check_keys
from ..bench.jobs import (
    CheckExecution,
    CheckOutcome,
    CheckRequest,
    ExecutionPolicy,
    ResultKey,
    design_key,
    run_checks,
)
from ..core.llm.base import GenerationConfig
from ..verilog.syntax_checker import SyntaxChecker
from .manifest import RunManifest, WorkUnit
from .resolve import ManifestResolver
from .store import RunStore


@dataclass
class RunStats:
    """What one ``RunEngine.run`` invocation did."""

    total_units: int = 0  # units in this invocation's scope (after sharding)
    executed: int = 0  # units actually generated/checked this invocation
    skipped: int = 0  # units already journaled (resume hits)
    quarantined: int = 0  # units journaled as poison this invocation

    @property
    def complete(self) -> bool:
        return self.executed + self.skipped + self.quarantined >= self.total_units


@dataclass(frozen=True)
class QuarantineInfo:
    """Why a unit was poisoned instead of scored."""

    attempts: int
    error: str
    degradation: tuple[str, ...] = ()


@dataclass
class UnitResult:
    """One executed unit: a scored outcome, or the quarantine that claimed it."""

    unit: WorkUnit
    outcome: CheckOutcome | None = None
    quarantine: QuarantineInfo | None = None

    @property
    def quarantined(self) -> bool:
        return self.quarantine is not None


#: Callback signature for degraded-execution warnings raised mid-execution.
WarningSink = Callable[[str, str, dict | None], object]


@dataclass
class _UnitPlan:
    """One pending unit while its check is in flight."""

    unit: WorkUnit
    outcome: CheckOutcome
    result_key: ResultKey | None  # None when the sample failed syntax


class RunEngine:
    """Execute a manifest into a store, skipping journaled units."""

    def __init__(
        self,
        manifest: RunManifest,
        store: RunStore,
        resolver: ManifestResolver | None = None,
    ):
        self.manifest = manifest
        self.store = store
        self.resolver = resolver or ManifestResolver(manifest)
        self.checker = SyntaxChecker()
        store.write_manifest(manifest)

    # ------------------------------------------------------------------ planning
    def units(self) -> list[WorkUnit]:
        """The manifest's full work-unit list in deterministic expansion order."""
        return self.manifest.expand(self.resolver.suite_task_ids())

    def shard_units(self, shard_index: int = 0, shard_count: int = 1) -> list[WorkUnit]:
        if shard_count < 1 or not (0 <= shard_index < shard_count):
            raise ValueError(f"invalid shard {shard_index}/{shard_count}")
        return [
            unit
            for position, unit in enumerate(self.units())
            if position % shard_count == shard_index
        ]

    # ------------------------------------------------------------------ execution
    def run(
        self,
        shard_index: int = 0,
        shard_count: int = 1,
        max_units: int | None = None,
    ) -> RunStats:
        """Execute this shard's pending units; return what was done.

        ``max_units`` caps how many *pending* units are executed this
        invocation (used by tests to simulate a crash mid-sweep and by
        operators to run a sweep in bounded slices).
        """
        units = self.shard_units(shard_index, shard_count)
        stats = RunStats(total_units=len(units))

        pending: list[WorkUnit] = []
        for unit in units:
            if unit.key in self.store:
                stats.skipped += 1
            else:
                pending.append(unit)
        if max_units is not None:
            pending = pending[:max_units]
        if not pending:
            return stats

        results = self.execute_units(pending, warning_sink=self.store.record_warning)
        for result in results:
            if result.quarantine is not None:
                # The check burned every attempt: journal the unit as poison
                # so resume skips it instead of re-running it.
                self.store.record_quarantine(
                    result.unit,
                    attempts=result.quarantine.attempts,
                    error=result.quarantine.error,
                    degradation=result.quarantine.degradation,
                )
                stats.quarantined += 1
            else:
                self.store.record(result.unit, result.outcome)
                stats.executed += 1
        return stats

    def execute_units(
        self,
        pending: Sequence[WorkUnit],
        warning_sink: WarningSink | None = None,
    ) -> list[UnitResult]:
        """Generate and check ``pending`` units without journaling them.

        This is the execution core shared by :meth:`run` (which journals into
        this engine's store) and the service worker fleet (which journals
        through the broker's completion lock).  Results come back in plan
        order; execution warnings from the fault-tolerant check layer go to
        ``warning_sink`` as ``(category, message, detail)``.
        """
        # Group pending units by (profile, suite) preserving expansion order,
        # then by (task, temperature) → missing sample indices.
        groups: dict[tuple[str, str], dict[tuple[str, float], list[WorkUnit]]] = {}
        for unit in pending:
            group = groups.setdefault((unit.profile_id, unit.suite_id), {})
            group.setdefault((unit.task_id, unit.temperature), []).append(unit)

        config = self.manifest.config
        results: list[UnitResult] = []
        for (profile_id, suite_id), task_units in groups.items():
            pipeline = self.resolver.pipeline(profile_id)
            suite_spec = next(s for s in self.manifest.suites if s.suite_id == suite_id)
            tasks = {task.task_id: task for task in self.resolver.tasks(suite_spec)}

            plans: list[_UnitPlan] = []
            requests: dict[ResultKey, CheckRequest] = {}
            for (task_id, temperature), unit_list in task_units.items():
                task = tasks[task_id]
                indices = [unit.sample_index for unit in unit_list]
                generation = pipeline.generate(
                    prompt=task.prompt,
                    interface=task.interface,
                    reference_source=task.reference_source,
                    demands=task.demands,
                    config=GenerationConfig(
                        temperature=temperature,
                        num_samples=config.num_samples,
                        seed=config.seed,
                    ),
                    prompt_style=task.prompt_style,
                    task_id=task.task_id,
                    sample_indices=indices,
                )
                stimulus, task_stimulus_key, task_mode_key = task_check_keys(
                    task, config, temperature
                )
                for unit, sample in zip(unit_list, generation.samples):
                    compile_result = self.checker.check(sample.code)
                    outcome = CheckOutcome(
                        sample_index=unit.sample_index,
                        temperature=temperature,
                        syntax_ok=compile_result.ok,
                        syntax_error=(
                            ""
                            if compile_result.ok
                            else "; ".join(compile_result.error_messages[:1])
                        ),
                        design_key=design_key(sample.code),
                    )
                    if not compile_result.ok:
                        plans.append(_UnitPlan(unit=unit, outcome=outcome, result_key=None))
                        continue
                    key = ResultKey(
                        design_key=outcome.design_key,
                        stimulus_key=task_stimulus_key,
                        mode=task_mode_key,
                    )
                    plans.append(_UnitPlan(unit=unit, outcome=outcome, result_key=key))
                    if key not in requests:
                        requests[key] = check_request_for(
                            task, sample.code, key, stimulus, config
                        )

            memo: dict[ResultKey, CheckExecution] = {}
            if requests:
                report = run_checks(
                    list(requests.values()),
                    max_workers=config.max_workers,
                    policy=ExecutionPolicy.from_config(config),
                )
                memo = report.executions
                if warning_sink is not None:
                    for warning in report.warnings:
                        warning_sink(
                            warning["category"],
                            warning["message"],
                            warning.get("detail"),
                        )

            for plan in plans:
                if plan.result_key is not None:
                    execution = memo[plan.result_key]
                    if execution.quarantined:
                        results.append(
                            UnitResult(
                                unit=plan.unit,
                                quarantine=QuarantineInfo(
                                    attempts=execution.attempts,
                                    error=execution.error,
                                    degradation=tuple(execution.degradation),
                                ),
                            )
                        )
                        continue
                    result = execution.result
                    plan.outcome.functional_passed = result.passed
                    plan.outcome.failure_summary = result.failure_summary
                    plan.outcome.total_checks = result.total_checks
                    plan.outcome.attempts = execution.attempts
                    plan.outcome.degradation = list(execution.degradation)
                    plan.outcome.duration_s = execution.duration_s
                    if getattr(result, "proof_stats", None):
                        plan.outcome.proof_stats = dict(result.proof_stats)
                results.append(UnitResult(unit=plan.unit, outcome=plan.outcome))
        return results

    # ------------------------------------------------------------------ status
    def progress(self) -> tuple[int, int]:
        """(journaled units of this manifest, total units)."""
        units = self.units()
        done = sum(1 for unit in units if unit.key in self.store)
        return done, len(units)
