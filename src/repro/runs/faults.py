"""Deterministic fault injection for check execution.

The chaos tests (and the ``chaos-smoke`` CI job) need a way to make a check
crash its worker process, hang past its deadline, or raise — at a chosen,
reproducible point.  A :class:`FaultSpec` selects requests by task id and/or
candidate design hash and fires on chosen attempt numbers, so the same fault
plan always hits the same units in the same way.

Faults are activated either programmatically (:func:`install_faults`, for
serial in-process tests) or through the ``REPRO_FAULTS`` environment variable
(a JSON list of spec dicts), which pool worker processes inherit — the only
channel that reaches a freshly forked/spawned worker.  With neither present,
:func:`maybe_inject` is a no-op costing one environment lookup.

Actions:

* ``"raise"`` — raise :class:`InjectedFault` (an ordinary in-check failure);
* ``"crash"`` — ``os._exit`` the process when running inside a pool worker
  (the ``BrokenProcessPool`` scenario); anywhere else it degrades to
  :class:`InjectedFault` so an injected plan can never kill the run itself.
  Pool workers are marked *explicitly* — the executor installs
  :func:`mark_pool_worker` as the pool initializer — rather than inferred
  from the process name, so a run that is itself hosted in a multiprocessing
  child (a shard, a test harness) is never mistaken for a disposable worker;
* ``"hang"`` — busy-wait ``hang_s`` seconds.  With ``cooperative=True`` the
  wait ticks :func:`~repro.deadline.check_deadline` (modelling a runaway but
  deadline-aware hot loop, which times out in-process); without it the hang is
  opaque (modelling a blocked worker, which only the parent's hard per-future
  deadline can clear).
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from typing import Mapping, Sequence

from ..deadline import check_deadline

#: Environment variable carrying a JSON fault plan into worker processes.
FAULTS_ENV = "REPRO_FAULTS"


class InjectedFault(RuntimeError):
    """Raised (or reported) by an injected fault — never by real execution."""


@dataclass(frozen=True)
class FaultSpec:
    """One deterministic fault: where it fires and what it does."""

    action: str  # "crash" | "hang" | "raise"
    task_id: str = ""  # exact match on the request's task id ("" = any)
    design_key: str = ""  # prefix match on the candidate design hash ("" = any)
    #: Fire only while ``request.attempt <= max_attempt`` (0 = every attempt).
    #: ``max_attempt=1`` models a transient fault: first attempt fails, the
    #: retry succeeds.
    max_attempt: int = 0
    hang_s: float = 30.0
    cooperative: bool = False

    def __post_init__(self):
        if self.action not in ("crash", "hang", "raise"):
            raise ValueError(f"unknown fault action {self.action!r}")

    def matches(self, task_id: str, design_key: str, attempt: int) -> bool:
        if self.task_id and self.task_id != task_id:
            return False
        if self.design_key and not design_key.startswith(self.design_key):
            return False
        if self.max_attempt and attempt > self.max_attempt:
            return False
        return True

    def to_dict(self) -> dict:
        return {
            "action": self.action,
            "task_id": self.task_id,
            "design_key": self.design_key,
            "max_attempt": self.max_attempt,
            "hang_s": self.hang_s,
            "cooperative": self.cooperative,
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "FaultSpec":
        return cls(
            action=str(payload["action"]),
            task_id=str(payload.get("task_id", "")),
            design_key=str(payload.get("design_key", "")),
            max_attempt=int(payload.get("max_attempt", 0)),
            hang_s=float(payload.get("hang_s", 30.0)),
            cooperative=bool(payload.get("cooperative", False)),
        )


def faults_env_value(specs: Sequence[FaultSpec]) -> str:
    """Serialize a fault plan for ``REPRO_FAULTS`` (tests, CI, subprocesses)."""
    return json.dumps([spec.to_dict() for spec in specs])


# --------------------------------------------------------------------------- activation
_installed: list[FaultSpec] | None = None
#: (raw env value, parsed plan) — re-parsed only when the variable changes.
_env_cache: tuple[str | None, tuple[FaultSpec, ...]] = (None, ())


def install_faults(specs: Sequence[FaultSpec]) -> None:
    """Activate a fault plan in this process (overrides the environment)."""
    global _installed
    _installed = list(specs)


def clear_faults() -> None:
    """Deactivate any programmatically installed plan."""
    global _installed
    _installed = None


def active_faults() -> Sequence[FaultSpec]:
    """The fault plan in effect: installed plan first, then ``REPRO_FAULTS``."""
    global _env_cache
    if _installed is not None:
        return _installed
    raw = os.environ.get(FAULTS_ENV)
    if not raw:
        return ()
    if _env_cache[0] != raw:
        specs = tuple(FaultSpec.from_dict(entry) for entry in json.loads(raw))
        _env_cache = (raw, specs)
    return _env_cache[1]


# --------------------------------------------------------------------------- firing
#: True only in processes explicitly marked as disposable pool workers.
_pool_worker = False


def mark_pool_worker() -> None:
    """Mark this process as a disposable pool worker (pool initializer hook).

    Only marked processes may be ``os._exit``-ed by an injected ``"crash"``;
    everything else — the main process, but also multiprocessing children
    *hosting* a run — degrades to :class:`InjectedFault`.
    """
    global _pool_worker
    _pool_worker = True


def _in_worker_process() -> bool:
    return _pool_worker


def maybe_inject(task_id: str, design_key: str, attempt: int) -> None:
    """Fire the first matching fault of the active plan, if any."""
    specs = active_faults()
    if not specs:
        return
    for spec in specs:
        if spec.matches(task_id, design_key, attempt):
            _fire(spec, task_id, attempt)
            return


def _fire(spec: FaultSpec, task_id: str, attempt: int) -> None:
    where = f"task {task_id!r} (attempt {attempt})"
    if spec.action == "raise":
        raise InjectedFault(f"injected fault on {where}")
    if spec.action == "crash":
        if _in_worker_process():
            os._exit(3)  # simulate a worker death the pool cannot report
        # In-parent execution refuses to kill the run: surface as a failure.
        raise InjectedFault(f"injected crash on {where} (serial execution)")
    # "hang": burn wall clock until hang_s elapses (or, cooperatively, until
    # the active deadline interrupts us).
    end = time.monotonic() + spec.hang_s
    while time.monotonic() < end:
        if spec.cooperative:
            check_deadline(f"faults.hang:{task_id}")
        time.sleep(0.005)
