"""Run manifests: the declarative description of one experiment sweep.

A manifest is pure data — profile specs, suite specs, the evaluation config and
the scale dict — hashed canonically so that a journal written by one process
can be validated and extended by another.  Expansion into work units is
deterministic: profiles in manifest order × suites in manifest order × tasks in
suite order × temperatures in config order × sample indices, which is exactly
the order the serial in-memory drivers evaluate in.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from ..bench.evaluator import EvaluationConfig

MANIFEST_VERSION = 1


def canonical_json(payload: object) -> str:
    """Stable JSON text (sorted keys, no whitespace drift) for hashing."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


# --------------------------------------------------------------------------- specs
@dataclass(frozen=True)
class ProfileSpec:
    """How to (re)build one evaluated pipeline, plus its report metadata.

    Kinds:

    * ``baseline`` — a registered :data:`~repro.core.llm.profiles.BASELINE_PROFILES`
      entry (``key``), optionally wrapped in SI-CoT;
    * ``haven``    — one of the three fine-tuned HaVen models (``key`` is the
      base-model key, training data derived from the manifest's scale);
    * ``fig3``     — a Fig. 3 ablation setting (``key`` = base model,
      ``setting`` = one of the five ablation settings);
    * ``fig4``     — a Fig. 4 K/L-portion fine-tune of CodeQwen
      (``k_portion``/``l_portion`` in percent).
    """

    profile_id: str
    kind: str
    key: str = ""
    use_sicot: bool = False
    setting: str = ""
    k_portion: int = 100
    l_portion: int = 100
    display: str = ""
    group: str = ""
    open_source: bool = True
    model_size: str = ""

    def to_dict(self) -> dict:
        return {
            "profile_id": self.profile_id,
            "kind": self.kind,
            "key": self.key,
            "use_sicot": self.use_sicot,
            "setting": self.setting,
            "k_portion": self.k_portion,
            "l_portion": self.l_portion,
            "display": self.display,
            "group": self.group,
            "open_source": self.open_source,
            "model_size": self.model_size,
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "ProfileSpec":
        return cls(
            profile_id=str(payload["profile_id"]),
            kind=str(payload["kind"]),
            key=str(payload.get("key", "")),
            use_sicot=bool(payload.get("use_sicot", False)),
            setting=str(payload.get("setting", "")),
            k_portion=int(payload.get("k_portion", 100)),
            l_portion=int(payload.get("l_portion", 100)),
            display=str(payload.get("display", "")),
            group=str(payload.get("group", "")),
            open_source=bool(payload.get("open_source", True)),
            model_size=str(payload.get("model_size", "")),
        )


@dataclass(frozen=True)
class SuiteSpec:
    """One benchmark suite of the sweep (sized by the manifest's scale)."""

    suite_id: str  # machine | human | rtllm | v2 | symbolic
    full_subset: bool = False  # symbolic only: paper-size subset regardless of scale

    def to_dict(self) -> dict:
        return {"suite_id": self.suite_id, "full_subset": self.full_subset}

    @classmethod
    def from_dict(cls, payload: Mapping) -> "SuiteSpec":
        return cls(
            suite_id=str(payload["suite_id"]),
            full_subset=bool(payload.get("full_subset", False)),
        )


# --------------------------------------------------------------------------- units
@dataclass(frozen=True)
class WorkUnit:
    """One content-addressed unit of work: a single sample of one task."""

    manifest_hash: str
    profile_id: str
    suite_id: str
    task_id: str
    temperature: float
    sample_index: int

    @property
    def key(self) -> str:
        """Content address of this unit (journal index key)."""
        payload = repr(
            (
                self.manifest_hash,
                self.profile_id,
                self.suite_id,
                self.task_id,
                float(self.temperature),
                self.sample_index,
            )
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def to_dict(self) -> dict:
        return {
            "manifest_hash": self.manifest_hash,
            "profile_id": self.profile_id,
            "suite_id": self.suite_id,
            "task_id": self.task_id,
            "temperature": self.temperature,
            "sample_index": self.sample_index,
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "WorkUnit":
        return cls(
            manifest_hash=str(payload["manifest_hash"]),
            profile_id=str(payload["profile_id"]),
            suite_id=str(payload["suite_id"]),
            task_id=str(payload["task_id"]),
            temperature=float(payload["temperature"]),
            sample_index=int(payload["sample_index"]),
        )


# --------------------------------------------------------------------------- manifest
@dataclass
class RunManifest:
    """Declarative description of one sweep: what to run, at what scale."""

    name: str
    experiment: str  # table4 | table5 | table6 | fig3 | fig4 | custom
    scale: dict = field(default_factory=dict)  # ExperimentScale.to_dict()
    config: EvaluationConfig = field(default_factory=EvaluationConfig)
    profiles: list[ProfileSpec] = field(default_factory=list)
    suites: list[SuiteSpec] = field(default_factory=list)
    portions: tuple[int, ...] = ()  # fig4 K/L grid axes, percent
    version: int = MANIFEST_VERSION

    def to_dict(self) -> dict:
        return {
            "version": self.version,
            "name": self.name,
            "experiment": self.experiment,
            "scale": dict(self.scale),
            "config": self.config.to_dict(),
            "profiles": [spec.to_dict() for spec in self.profiles],
            "suites": [spec.to_dict() for spec in self.suites],
            "portions": list(self.portions),
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "RunManifest":
        return cls(
            name=str(payload["name"]),
            experiment=str(payload["experiment"]),
            scale=dict(payload.get("scale", {})),
            config=EvaluationConfig.from_dict(payload["config"]),
            profiles=[ProfileSpec.from_dict(entry) for entry in payload.get("profiles", [])],
            suites=[SuiteSpec.from_dict(entry) for entry in payload.get("suites", [])],
            portions=tuple(int(p) for p in payload.get("portions", [])),
            version=int(payload.get("version", MANIFEST_VERSION)),
        )

    @property
    def manifest_hash(self) -> str:
        """Content address of the whole sweep declaration."""
        return hashlib.sha256(canonical_json(self.to_dict()).encode("utf-8")).hexdigest()

    def profile(self, profile_id: str) -> ProfileSpec:
        for spec in self.profiles:
            if spec.profile_id == profile_id:
                return spec
        raise KeyError(f"unknown profile id {profile_id!r}")

    def expand(self, suite_task_ids: Mapping[str, Sequence[str]]) -> list[WorkUnit]:
        """Deterministically expand the sweep into its work units.

        ``suite_task_ids`` maps every suite id in the manifest to that suite's
        task ids *in suite order* (the resolver provides this); the expansion
        order mirrors the serial in-memory drivers so sharding by unit index is
        stable across processes.
        """
        manifest_hash = self.manifest_hash
        units: list[WorkUnit] = []
        for profile in self.profiles:
            for suite in self.suites:
                for task_id in suite_task_ids[suite.suite_id]:
                    for temperature in self.config.temperatures:
                        for sample_index in range(self.config.num_samples):
                            units.append(
                                WorkUnit(
                                    manifest_hash=manifest_hash,
                                    profile_id=profile.profile_id,
                                    suite_id=suite.suite_id,
                                    task_id=task_id,
                                    temperature=float(temperature),
                                    sample_index=sample_index,
                                )
                            )
        return units
