"""Manifest builders for the paper's five experiments.

Each function captures one ``run_*`` driver's sweep as a pure-data
:class:`~repro.runs.manifest.RunManifest`; the drivers in
:mod:`repro.experiments` are thin wrappers that build one of these, execute it
through the :class:`~repro.runs.engine.RunEngine`, and aggregate.
"""

from __future__ import annotations

from ..core.llm.profiles import BASE_MODEL_PROFILES, BASELINE_PROFILES
from .manifest import ProfileSpec, RunManifest, SuiteSpec


def _scale_and_config(scale):
    from ..experiments import ExperimentScale

    scale = scale or ExperimentScale.quick()
    return scale, scale.evaluation_config()


def table4_manifest(
    scale=None,
    baseline_keys: list[str] | None = None,
    include_haven: bool = True,
) -> RunManifest:
    """Table IV: every model evaluated on the four benchmarks."""
    from ..experiments import HAVEN_BASE_MODELS, TABLE4_BASELINES

    scale, config = _scale_and_config(scale)
    profiles: list[ProfileSpec] = []
    keys = baseline_keys if baseline_keys is not None else list(TABLE4_BASELINES)
    for key in keys:
        profile = BASELINE_PROFILES[key]
        profiles.append(
            ProfileSpec(
                profile_id=f"baseline:{key}",
                kind="baseline",
                key=key,
                use_sicot=False,
                display=profile.name,
                group=TABLE4_BASELINES.get(key, "General LLM"),
                open_source=profile.open_source,
                model_size=profile.model_size,
            )
        )
    if include_haven:
        for base_key, haven_name in HAVEN_BASE_MODELS.items():
            base = BASE_MODEL_PROFILES[base_key]
            profiles.append(
                ProfileSpec(
                    profile_id=f"haven:{base_key}",
                    kind="haven",
                    key=base_key,
                    use_sicot=True,
                    display=haven_name,
                    group="Ours",
                    open_source=True,
                    model_size=base.model_size,
                )
            )
    return RunManifest(
        name="table4",
        experiment="table4",
        scale=scale.to_dict(),
        config=config,
        profiles=profiles,
        suites=[SuiteSpec("machine"), SuiteSpec("human"), SuiteSpec("rtllm"), SuiteSpec("v2")],
    )


def table5_manifest(scale=None, full_subset: bool = True) -> RunManifest:
    """Table V: per-modality pass@1 on the symbolic subset."""
    from ..experiments import TABLE5_MODELS

    scale, config = _scale_and_config(scale)
    profiles = [
        ProfileSpec(
            profile_id=f"baseline:{key}",
            kind="baseline",
            key=key,
            use_sicot=False,
            display=BASELINE_PROFILES[key].name,
            open_source=BASELINE_PROFILES[key].open_source,
            model_size=BASELINE_PROFILES[key].model_size,
        )
        for key in TABLE5_MODELS
    ]
    profiles.append(
        ProfileSpec(
            profile_id="haven:codeqwen-7b",
            kind="haven",
            key="codeqwen-7b",
            use_sicot=True,
            display="HaVen-CodeQwen",
            group="Ours",
            model_size=BASE_MODEL_PROFILES["codeqwen-7b"].model_size,
        )
    )
    return RunManifest(
        name="table5",
        experiment="table5",
        scale=scale.to_dict(),
        config=config,
        profiles=profiles,
        suites=[SuiteSpec("symbolic", full_subset=full_subset)],
    )


def table6_manifest(scale=None, full_subset: bool = True) -> RunManifest:
    """Table VI: commercial models with vs without SI-CoT on the symbolic subset."""
    from ..experiments import TABLE6_MODELS

    scale, config = _scale_and_config(scale)
    profiles: list[ProfileSpec] = []
    for key in TABLE6_MODELS:
        profile = BASELINE_PROFILES[key]
        for use_sicot in (True, False):
            profiles.append(
                ProfileSpec(
                    profile_id=f"baseline:{key}" + (":sicot" if use_sicot else ""),
                    kind="baseline",
                    key=key,
                    use_sicot=use_sicot,
                    display=profile.name,
                    open_source=profile.open_source,
                    model_size=profile.model_size,
                )
            )
    return RunManifest(
        name="table6",
        experiment="table6",
        scale=scale.to_dict(),
        config=config,
        profiles=profiles,
        suites=[SuiteSpec("symbolic", full_subset=full_subset)],
    )


def fig3_manifest(scale=None) -> RunManifest:
    """Fig. 3: the five ablation settings across the three base models."""
    from ..experiments import HAVEN_BASE_MODELS

    scale, config = _scale_and_config(scale)
    profiles: list[ProfileSpec] = []
    for base_key, haven_name in HAVEN_BASE_MODELS.items():
        base_name = BASE_MODEL_PROFILES[base_key].name
        display_by_setting = {
            "base": base_name,
            "vanilla": f"{base_name}+vanilla",
            "vanilla+CoT": f"{base_name}+vanilla",
            "vanilla+KL": f"{base_name}+vanilla+KL",
            "vanilla+CoT+KL": f"{base_name}+vanilla+KL",
        }
        for setting, display in display_by_setting.items():
            profiles.append(
                ProfileSpec(
                    profile_id=f"fig3:{base_key}:{setting}",
                    kind="fig3",
                    key=base_key,
                    setting=setting,
                    use_sicot="CoT" in setting,
                    display=display,
                    group=haven_name.replace("HaVen-", ""),
                    model_size=BASE_MODEL_PROFILES[base_key].model_size,
                )
            )
    return RunManifest(
        name="fig3",
        experiment="fig3",
        scale=scale.to_dict(),
        config=config,
        profiles=profiles,
        suites=[SuiteSpec("human")],
    )


def fig4_manifest(scale=None, portions: tuple[int, ...] = (0, 50, 100)) -> RunManifest:
    """Fig. 4: pass@1/5 grids over K/L dataset portions (CodeQwen)."""
    scale, config = _scale_and_config(scale)
    profiles = [
        ProfileSpec(
            profile_id=f"fig4:k{k_portion}:l{l_portion}",
            kind="fig4",
            key="codeqwen-7b",
            use_sicot=True,
            k_portion=k_portion,
            l_portion=l_portion,
            display=f"CodeQwen+K{k_portion}+L{l_portion}",
            group="CodeQwen",
            model_size=BASE_MODEL_PROFILES["codeqwen-7b"].model_size,
        )
        for k_portion in portions
        for l_portion in portions
    ]
    return RunManifest(
        name="fig4",
        experiment="fig4",
        scale=scale.to_dict(),
        config=config,
        profiles=profiles,
        suites=[SuiteSpec("human")],
        portions=tuple(portions),
    )


EXPERIMENT_MANIFESTS = {
    "table4": table4_manifest,
    "table5": table5_manifest,
    "table6": table6_manifest,
    "fig3": fig3_manifest,
    "fig4": fig4_manifest,
}
