"""Resolution of manifest specs into live pipelines and suites.

A manifest is pure data; the resolver turns its :class:`ProfileSpec` /
:class:`SuiteSpec` entries back into :class:`~repro.core.pipeline.HaVenPipeline`
and :class:`~repro.bench.task.BenchmarkSuite` objects, replicating the exact
construction paths of the in-memory experiment drivers (same dataset builds,
same fine-tuning mixes, same seeds) so that a sweep executed through the run
engine is bit-for-bit the sweep the old monolithic functions produced.
Everything is cached per resolver instance: datasets are built once, each
profile is fine-tuned once, each suite is built once.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..bench.task import BenchmarkSuite, BenchmarkTask
from ..core.llm.finetune import DatasetMix, FineTuner
from ..core.llm.profiles import BASE_MODEL_PROFILES, BASELINE_PROFILES
from ..core.llm.simulated import SimulatedCodeGenLLM
from ..core.pipeline import HaVenPipeline
from .manifest import ProfileSpec, RunManifest, SuiteSpec

if TYPE_CHECKING:
    from ..experiments import DatasetBundle, ExperimentScale


class ManifestResolver:
    """Build (and cache) the pipelines and suites a manifest describes."""

    def __init__(self, manifest: RunManifest):
        from ..experiments import ExperimentScale

        self.manifest = manifest
        self.scale: "ExperimentScale" = ExperimentScale.from_dict(manifest.scale)
        self.config = manifest.config
        self._datasets: "DatasetBundle | None" = None
        self._pipelines: dict[str, HaVenPipeline] = {}
        self._suites: dict[str, BenchmarkSuite] = {}

    # ------------------------------------------------------------------ datasets
    def datasets(self) -> "DatasetBundle":
        if self._datasets is None:
            from ..experiments import build_datasets

            self._datasets = build_datasets(self.scale)
        return self._datasets

    # ------------------------------------------------------------------ suites
    def suite(self, spec: SuiteSpec) -> BenchmarkSuite:
        if spec.suite_id not in self._suites:
            self._suites[spec.suite_id] = self._build_suite(spec)
        return self._suites[spec.suite_id]

    def _build_suite(self, spec: SuiteSpec) -> BenchmarkSuite:
        from ..bench.rtllm import RTLLMConfig, build_rtllm
        from ..bench.symbolic_suite import build_symbolic_suite
        from ..bench.verilogeval import (
            SuiteConfig,
            build_verilogeval_human,
            build_verilogeval_machine,
        )
        from ..bench.verilogeval_v2 import V2Config, build_verilogeval_v2

        scale = self.scale
        if spec.suite_id == "machine":
            return build_verilogeval_machine(
                SuiteConfig(num_tasks=scale.machine_tasks, seed=scale.seed + 11)
            )
        if spec.suite_id == "human":
            return build_verilogeval_human(
                SuiteConfig(num_tasks=scale.human_tasks, seed=scale.seed + 11)
            )
        if spec.suite_id == "rtllm":
            return build_rtllm(RTLLMConfig(num_tasks=scale.rtllm_tasks, seed=scale.seed + 43))
        if spec.suite_id == "v2":
            return build_verilogeval_v2(V2Config(num_tasks=scale.v2_tasks, seed=scale.seed + 71))
        if spec.suite_id == "symbolic":
            subset_size = None if spec.full_subset else scale.human_tasks
            return build_symbolic_suite(SuiteConfig(num_tasks=subset_size, seed=scale.seed + 11))
        raise KeyError(f"unknown suite id {spec.suite_id!r}")

    def tasks(self, spec: SuiteSpec) -> list[BenchmarkTask]:
        """The suite's tasks in evaluation order (``max_tasks`` applied)."""
        tasks = list(self.suite(spec))
        if self.config.max_tasks is not None:
            tasks = tasks[: self.config.max_tasks]
        return tasks

    def suite_task_ids(self) -> dict[str, list[str]]:
        """suite id → ordered task ids, for manifest expansion."""
        return {
            spec.suite_id: [task.task_id for task in self.tasks(spec)]
            for spec in self.manifest.suites
        }

    # ------------------------------------------------------------------ profiles
    def pipeline(self, profile_id: str) -> HaVenPipeline:
        if profile_id not in self._pipelines:
            self._pipelines[profile_id] = self._build_pipeline(self.manifest.profile(profile_id))
        return self._pipelines[profile_id]

    def pipeline_name(self, profile_id: str) -> str:
        """The pipeline's report name, computed without building the pipeline."""
        spec = self.manifest.profile(profile_id)
        return f"{spec.display}+SI-CoT" if spec.use_sicot else spec.display

    def _build_pipeline(self, spec: ProfileSpec) -> HaVenPipeline:
        seed = self.scale.seed
        if spec.kind == "baseline":
            profile = BASELINE_PROFILES[spec.key]
            return HaVenPipeline(SimulatedCodeGenLLM(profile, seed=seed), use_sicot=spec.use_sicot)
        if spec.kind == "haven":
            from ..experiments import HAVEN_BASE_MODELS

            datasets = self.datasets()
            base_profile = BASE_MODEL_PROFILES[spec.key]
            tuned, _report = FineTuner().finetune(
                base_profile,
                DatasetMix(
                    vanilla=datasets.vanilla,
                    k_dataset=datasets.k_dataset,
                    l_dataset=datasets.l_dataset,
                ),
                tuned_name=HAVEN_BASE_MODELS[spec.key],
            )
            return HaVenPipeline(SimulatedCodeGenLLM(tuned, seed=seed), use_sicot=spec.use_sicot)
        if spec.kind == "fig3":
            return self._build_fig3_pipeline(spec, seed)
        if spec.kind == "fig4":
            return self._build_fig4_pipeline(spec, seed)
        raise KeyError(f"unknown profile kind {spec.kind!r}")

    def _build_fig3_pipeline(self, spec: ProfileSpec, seed: int) -> HaVenPipeline:
        datasets = self.datasets()
        base_profile = BASE_MODEL_PROFILES[spec.key]
        tuner = FineTuner()
        if spec.setting == "base":
            return HaVenPipeline(SimulatedCodeGenLLM(base_profile, seed=seed), use_sicot=False)
        if spec.setting in ("vanilla", "vanilla+CoT"):
            profile, _ = tuner.finetune(
                base_profile,
                DatasetMix(vanilla=datasets.vanilla),
                tuned_name=f"{base_profile.name}+vanilla",
            )
        elif spec.setting in ("vanilla+KL", "vanilla+CoT+KL"):
            profile, _ = tuner.finetune(
                base_profile,
                DatasetMix(
                    vanilla=datasets.vanilla,
                    k_dataset=datasets.k_dataset,
                    l_dataset=datasets.l_dataset,
                ),
                tuned_name=f"{base_profile.name}+vanilla+KL",
            )
        else:
            raise KeyError(f"unknown fig3 setting {spec.setting!r}")
        use_sicot = "CoT" in spec.setting
        return HaVenPipeline(SimulatedCodeGenLLM(profile, seed=seed), use_sicot=use_sicot)

    def _build_fig4_pipeline(self, spec: ProfileSpec, seed: int) -> HaVenPipeline:
        datasets = self.datasets()
        base_profile = BASE_MODEL_PROFILES["codeqwen-7b"]
        k_subset = datasets.k_dataset.subset(spec.k_portion / 100.0, seed=seed)
        l_subset = datasets.l_dataset.subset(spec.l_portion / 100.0, seed=seed)
        profile, _ = FineTuner().finetune(
            base_profile,
            DatasetMix(vanilla=datasets.vanilla, k_dataset=k_subset, l_dataset=l_subset),
            tuned_name=f"CodeQwen+K{spec.k_portion}+L{spec.l_portion}",
        )
        return HaVenPipeline(SimulatedCodeGenLLM(profile, seed=seed), use_sicot=True)
