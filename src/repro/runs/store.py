"""Persistent result store for experiment runs.

A :class:`RunStore` is a directory holding:

* ``manifest.json`` — the sweep declaration (written once, hash-checked on
  reopen so a journal can never be extended under a different manifest);
* ``journal.jsonl`` — an append-only journal with one JSON record per
  completed work unit, plus ``quarantine`` records for poison units that
  burned every execution attempt (resume skips them instead of re-running
  them forever) and ``warning`` records for degraded-execution events
  (serial fallback, pool rebuilds).

Appends are single ``O_APPEND`` writes of one line, so disjoint shard
processes can safely fill one journal concurrently.  On load, a corrupted,
truncated, or schema-invalid line (the signature of a crash mid-write) is
dropped and counted in :attr:`RunStore.recovered_lines`; the unit it
described simply re-runs.  ``RunStore.open()`` resolves the directory from
the ``REPRO_RUN_DIR`` environment variable when none is given;
``RunStore.ephemeral()`` keeps the journal purely in memory for library
callers that do not want persistence.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Iterator, Mapping, Sequence

from ..bench.jobs import CheckOutcome
from .manifest import RunManifest, WorkUnit

#: Environment variable naming the default run directory.
RUN_DIR_ENV = "REPRO_RUN_DIR"

MANIFEST_FILENAME = "manifest.json"
JOURNAL_FILENAME = "journal.jsonl"


class RunStoreError(RuntimeError):
    """Raised on store misuse (missing directory, manifest mismatch, ...)."""


#: An outcome payload missing any of these cannot rebuild a CheckOutcome.
_REQUIRED_OUTCOME_FIELDS = ("sample_index", "temperature", "syntax_ok")


def _valid_record(record) -> bool:
    """Schema gate for journal lines: parseable JSON is not enough.

    A torn write can leave a line that *is* valid JSON (e.g. the tail of one
    record completing the head of another) but describes nothing the
    aggregators can use; admitting it would crash reporting much later, far
    from the corruption.  Invalid lines are dropped at load like torn ones.
    """
    if not isinstance(record, dict) or not isinstance(record.get("key"), str):
        return False
    kind = record.get("kind", "unit")
    if kind == "unit":
        outcome = record.get("outcome")
        return isinstance(outcome, dict) and all(
            name in outcome for name in _REQUIRED_OUTCOME_FIELDS
        )
    if kind == "quarantine":
        return isinstance(record.get("quarantine"), dict)
    if kind == "warning":
        return isinstance(record.get("warning"), dict)
    return False


class RunStore:
    """Append-only journal + index of completed work units."""

    def __init__(self, directory: str | Path | None = None):
        self.directory = Path(directory) if directory is not None else None
        self.recovered_lines = 0
        self._records: list[dict] = []
        self._index: dict[str, dict] = {}
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
            self._load_journal()

    # ------------------------------------------------------------------ constructors
    @classmethod
    def open(cls, directory: str | Path | None = None) -> "RunStore":
        """Open (creating if needed) the run directory, defaulting to $REPRO_RUN_DIR."""
        directory = directory or os.environ.get(RUN_DIR_ENV)
        if not directory:
            raise RunStoreError(
                f"no run directory given and {RUN_DIR_ENV} is not set"
            )
        return cls(directory)

    @classmethod
    def ephemeral(cls) -> "RunStore":
        """A store with no backing directory (in-memory journal only)."""
        return cls(None)

    @property
    def persistent(self) -> bool:
        return self.directory is not None

    # ------------------------------------------------------------------ manifest
    def write_manifest(self, manifest: RunManifest) -> None:
        """Persist the manifest, or validate it against the one already stored."""
        existing = self.load_manifest()
        if existing is not None:
            if existing.manifest_hash != manifest.manifest_hash:
                raise RunStoreError(
                    "run directory already holds a different manifest "
                    f"({existing.manifest_hash[:12]} != {manifest.manifest_hash[:12]})"
                )
            return
        if self.directory is not None:
            path = self.directory / MANIFEST_FILENAME
            path.write_text(json.dumps(manifest.to_dict(), indent=2, sort_keys=True) + "\n")
        self._manifest = manifest

    def load_manifest(self) -> RunManifest | None:
        """The stored manifest, or None when the store has none yet."""
        cached = getattr(self, "_manifest", None)
        if cached is not None:
            return cached
        if self.directory is None:
            return None
        path = self.directory / MANIFEST_FILENAME
        if not path.exists():
            return None
        manifest = RunManifest.from_dict(json.loads(path.read_text()))
        self._manifest = manifest
        return manifest

    # ------------------------------------------------------------------ journal
    def _journal_path(self) -> Path:
        assert self.directory is not None
        return self.directory / JOURNAL_FILENAME

    def _load_journal(self) -> None:
        path = self._journal_path()
        if not path.exists():
            return
        raw = path.read_text(errors="replace")
        if raw and not raw.endswith("\n"):
            # A crash tore the final append mid-line.  Terminate it so later
            # appends land on their own line instead of gluing onto the torn
            # tail (which would corrupt them too).
            with open(path, "a") as handle:
                handle.write("\n")
        lines = raw.split("\n")
        for position, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
                if not _valid_record(record):
                    raise ValueError("not a journal record")
            except ValueError:
                # A torn, corrupted, or schema-invalid line — expected for the
                # trailing line after a crash mid-append; the unit it
                # described re-runs.
                self.recovered_lines += 1
                continue
            self._admit(record)

    def _admit(self, record: dict) -> bool:
        key = record["key"]
        if key in self._index:
            return False
        self._records.append(record)
        self._index[key] = record
        return True

    def _append(self, record: dict) -> bool:
        if not self._admit(record):
            return False
        if self.directory is not None:
            line = json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
            # One O_APPEND write per record: concurrent shard processes
            # interleave whole lines, never halves of them.
            fd = os.open(
                self._journal_path(), os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
            )
            try:
                os.write(fd, line.encode("utf-8"))
            finally:
                os.close(fd)
        return True

    def _unit_header(self, unit: WorkUnit) -> dict:
        return {
            "key": unit.key,
            "manifest": unit.manifest_hash,
            "profile": unit.profile_id,
            "suite": unit.suite_id,
            "task": unit.task_id,
            "temperature": unit.temperature,
            "sample": unit.sample_index,
        }

    def record(self, unit: WorkUnit, outcome: CheckOutcome) -> bool:
        """Journal one completed unit (idempotent; returns False on repeat)."""
        record = {"kind": "unit", "outcome": outcome.to_dict(), **self._unit_header(unit)}
        return self._append(record)

    def record_quarantine(
        self,
        unit: WorkUnit,
        *,
        attempts: int,
        error: str,
        degradation: Sequence[str] = (),
    ) -> bool:
        """Journal a poison unit: it burned every attempt and must not re-run.

        The record claims the unit's key, so resume treats the unit as done
        (skipping it) while the aggregators and ``status`` count it as
        quarantined rather than scored.
        """
        record = {
            "kind": "quarantine",
            "quarantine": {
                "attempts": int(attempts),
                "error": str(error),
                "degradation": list(degradation),
            },
            **self._unit_header(unit),
        }
        return self._append(record)

    def record_warning(
        self, category: str, message: str, detail: Mapping | None = None
    ) -> bool:
        """Journal a degraded-execution warning (serial fallback, pool churn).

        Warnings are keyed by their content hash, so the same condition
        reported by several shards (or re-invocations) lands once.
        """
        payload: dict = {"category": str(category), "message": str(message)}
        if detail:
            payload["detail"] = dict(detail)
        digest = hashlib.sha256(
            json.dumps(payload, sort_keys=True).encode("utf-8")
        ).hexdigest()
        record = {
            "kind": "warning",
            "key": f"warning:{digest[:16]}",
            "warning": payload,
        }
        return self._append(record)

    # ------------------------------------------------------------------ queries
    def __contains__(self, key: str) -> bool:
        return key in self._index

    def __len__(self) -> int:
        return len(self._records)

    def completed_keys(self) -> set[str]:
        return set(self._index)

    def records(self) -> Iterator[dict]:
        """Journal records in append order."""
        return iter(list(self._records))

    def quarantined_records(self) -> list[dict]:
        """Quarantine records in append order."""
        return [r for r in self._records if r.get("kind") == "quarantine"]

    def warning_records(self) -> list[dict]:
        """Warning records in append order."""
        return [r for r in self._records if r.get("kind") == "warning"]

    def outcome_for(self, key: str) -> CheckOutcome | None:
        record = self._index.get(key)
        if record is None or "outcome" not in record:
            return None
        return CheckOutcome.from_dict(record["outcome"])

    def reload(self) -> None:
        """Re-read the journal from disk (pick up other shards' appends)."""
        if self.directory is None:
            return
        self.recovered_lines = 0
        self._records = []
        self._index = {}
        self._load_journal()


def outcome_from_record(record: Mapping) -> CheckOutcome:
    """Decode the outcome payload of one journal record."""
    return CheckOutcome.from_dict(record["outcome"])
