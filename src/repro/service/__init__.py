"""Evaluation-as-a-service: run the benchmark as a long-lived fleet.

The :mod:`repro.runs` layer made sweeps resumable and shardable for one
operator at one terminal.  This package turns the same machinery into a
service:

- :mod:`~repro.service.broker` — a durable, file-backed work queue.
  Submitted :class:`~repro.runs.manifest.RunManifest`\\ s expand into
  content-addressed work units that workers *lease* with a TTL; a worker
  that stops heartbeating loses its leases and the units requeue.  Completed
  units land in the ordinary :class:`~repro.runs.store.RunStore` journal, so
  resume, sharding and reporting semantics are unchanged.
- :mod:`~repro.service.worker` — the fleet member: lease → execute through
  the shared :class:`~repro.runs.engine.RunEngine` core (with the full
  fault-tolerance policy) → journal exactly once per unit.
- :mod:`~repro.service.api` — the stdlib HTTP face: submit manifests, poll
  run status, stream reports, scrape Prometheus metrics, probe health.
- :mod:`~repro.service.metrics` / :mod:`~repro.service.ratelimit` — the
  operational trimmings: text-format exposition and per-client token buckets.

``python -m repro.service --help`` for the command-line entry points.
"""

from .broker import (
    BROKER_DIR_ENV,
    AdmissionError,
    BrokerError,
    FileBroker,
    Lease,
    RunStatus,
    SubmitReceipt,
)
from .metrics import HttpCounters, MetricFamily, ServiceMetrics
from .ratelimit import RateLimiter, TokenBucket
from .worker import STALL_ENV, ServiceWorker, WorkerStats

__all__ = [
    "BROKER_DIR_ENV",
    "STALL_ENV",
    "AdmissionError",
    "BrokerError",
    "FileBroker",
    "HttpCounters",
    "Lease",
    "MetricFamily",
    "RateLimiter",
    "RunStatus",
    "ServiceMetrics",
    "ServiceWorker",
    "SubmitReceipt",
    "TokenBucket",
    "WorkerStats",
]


def __getattr__(name: str):
    # The HTTP server imports lazily so `import repro.service` stays light.
    if name in ("ReproServiceServer", "ServiceConfig"):
        from . import api

        return getattr(api, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
