"""The HTTP face of the evaluation service (stdlib ``http.server``).

Routes::

    POST /runs               submit a RunManifest (JSON body) → {"run_id", ...}
    GET  /runs               list queued runs with status summaries
    GET  /runs/<id>          one run's status (units complete/leased/pending,
                             quarantines, requeues, health)
    GET  /runs/<id>/report   the experiment report rendered from the partial
                             journal by the streaming aggregators (text/plain)
    GET  /metrics            Prometheus text exposition (see service.metrics)
    GET  /healthz            liveness: 200 while the server thread is serving
    GET  /readyz             readiness: 200 when the broker directory is
                             usable; the body maps every run to its
                             ``repro.runs status`` exit-code semantics

Submission is guarded twice: a per-client token bucket (``X-Client-Id``
header, else the peer address; HTTP 429 with ``Retry-After``) and queue
admission control (a new manifest whose units would push the broker's pending
backlog past ``max_queued_units`` is rejected with HTTP 503 before anything
is written).  Resubmitting an already-queued manifest is idempotent and
always admitted.

The server is a ``ThreadingHTTPServer``: each request gets a thread, the
broker's on-disk structures are multi-process safe, and nothing here blocks
on check execution — workers are separate processes.
"""

from __future__ import annotations

import json
import os
import re
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from ..runs.aggregate import StreamingAggregator
from ..runs.manifest import RunManifest
from .broker import AdmissionError, BrokerError, FileBroker
from .metrics import HttpCounters, ServiceMetrics
from .ratelimit import RateLimiter

_RUN_ROUTE = re.compile(r"^/runs/(?P<run_id>[0-9a-f]{16,64})(?P<rest>/report)?$")

#: Maximum accepted request-body size (a manifest is a few KiB of JSON).
MAX_BODY_BYTES = 4 * 1024 * 1024


@dataclass
class ServiceConfig:
    """Tunables of one service instance."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 → ephemeral (the bound port is on server_address)
    #: Admission control: maximum pending units across all queued runs.
    max_queued_units: int = 10_000
    #: Token-bucket refill rate per client, requests/second.
    rate_per_s: float = 10.0
    #: Token-bucket burst capacity per client.
    burst: float = 20.0
    #: Routes exempt from rate limiting (probes and scrapes must never 429).
    exempt_routes: tuple[str, ...] = ("/healthz", "/readyz", "/metrics")


class ReproServiceServer(ThreadingHTTPServer):
    """ThreadingHTTPServer wiring the broker, limiter and metrics together."""

    daemon_threads = True

    def __init__(self, config: ServiceConfig, broker: FileBroker):
        self.config = config
        self.broker = broker
        self.http_counters = HttpCounters()
        self.limiter = RateLimiter(rate_per_s=config.rate_per_s, burst=config.burst)
        self.metrics = ServiceMetrics(broker, self.http_counters)
        #: run id → cached StreamingAggregator (resolver reuse across scrapes).
        self._aggregators: dict[str, StreamingAggregator] = {}
        super().__init__((config.host, config.port), _Handler)

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def aggregator(self, run_id: str) -> StreamingAggregator:
        aggregator = self._aggregators.get(run_id)
        if aggregator is None:
            aggregator = StreamingAggregator(self.broker.manifest(run_id))
            self._aggregators[run_id] = aggregator
        # feed() dedups by sample index, so re-feeding the whole journal on
        # every request is idempotent — only new records change the state.
        aggregator.feed_store(self.broker.store(run_id))
        return aggregator


@dataclass
class _Response:
    code: int
    body: bytes
    content_type: str = "application/json"
    headers: dict = field(default_factory=dict)


def _json_response(code: int, payload) -> _Response:
    body = (json.dumps(payload, indent=2, sort_keys=True) + "\n").encode("utf-8")
    return _Response(code=code, body=body)


def _text_response(code: int, text: str, content_type: str = "text/plain") -> _Response:
    return _Response(
        code=code, body=text.encode("utf-8"), content_type=f"{content_type}; charset=utf-8"
    )


def _error(code: int, message: str, **extra) -> _Response:
    return _json_response(code, {"error": message, **extra})


class _Handler(BaseHTTPRequestHandler):
    server: ReproServiceServer  # set by http.server machinery
    server_version = "repro-service/1.0"
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------------ plumbing
    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass  # request logging is the metrics endpoint's job

    def _client_key(self) -> str:
        return self.headers.get("X-Client-Id") or self.client_address[0]

    def _route_template(self, path: str) -> str:
        if path in ("/runs", "/metrics", "/healthz", "/readyz"):
            return path
        match = _RUN_ROUTE.match(path)
        if match:
            return "/runs/{id}/report" if match.group("rest") else "/runs/{id}"
        return "<unmatched>"

    def _send(self, response: _Response, method: str, route: str) -> None:
        self.server.http_counters.observe(method, route, response.code)
        self.send_response(response.code)
        self.send_header("Content-Type", response.content_type)
        self.send_header("Content-Length", str(len(response.body)))
        for name, value in response.headers.items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(response.body)

    def _rate_limited(self, route: str) -> _Response | None:
        if route in self.server.config.exempt_routes:
            return None
        key = self._client_key()
        if self.server.limiter.allow(key):
            return None
        retry_after = self.server.limiter.retry_after_s(key)
        response = _error(429, "rate limit exceeded", client=key)
        response.headers["Retry-After"] = f"{max(0.0, retry_after):.3f}"
        return response

    # ------------------------------------------------------------------ methods
    def do_GET(self) -> None:  # noqa: N802 - stdlib casing
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        route = self._route_template(path)
        limited = self._rate_limited(route)
        if limited is not None:
            self._send(limited, "GET", route)
            return
        try:
            response = self._get(path, route)
        except BrokerError as error:
            response = _error(404, str(error))
        except Exception as error:  # pragma: no cover - defensive
            response = _error(500, f"internal error: {error}")
        self._send(response, "GET", route)

    def do_POST(self) -> None:  # noqa: N802 - stdlib casing
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        route = self._route_template(path)
        limited = self._rate_limited(route)
        if limited is not None:
            self._send(limited, "POST", route)
            return
        if route != "/runs":
            self._send(_error(404, f"no such route: POST {path}"), "POST", route)
            return
        try:
            response = self._post_run()
        except AdmissionError as error:
            response = _error(
                503,
                str(error),
                queued_units=error.queued,
                submitted_units=error.incoming,
                limit=error.limit,
            )
        except Exception as error:  # pragma: no cover - defensive
            response = _error(500, f"internal error: {error}")
        self._send(response, "POST", route)

    # ------------------------------------------------------------------ GET routes
    def _get(self, path: str, route: str) -> _Response:
        server = self.server
        if route == "/healthz":
            return _text_response(200, "ok\n")
        if route == "/readyz":
            return self._readyz()
        if route == "/metrics":
            return _text_response(200, server.metrics.render())
        if route == "/runs":
            statuses = [
                server.broker.run_status(run_id).to_dict()
                for run_id in server.broker.run_ids()
            ]
            return _json_response(200, {"runs": statuses})
        match = _RUN_ROUTE.match(path)
        if match:
            run_id = match.group("run_id")
            if match.group("rest"):
                aggregator = server.aggregator(run_id)
                progress = aggregator.progress()
                report = aggregator.report()
                footer = (
                    f"\n[rendered from {progress.completed}/{progress.total} units"
                    f" ({progress.percent:.1f}% complete)]\n"
                )
                return _text_response(200, report + "\n" + footer)
            return _json_response(200, server.broker.run_status(run_id).to_dict())
        return _error(404, f"no such route: GET {path}")

    def _readyz(self) -> _Response:
        broker = self.server.broker
        try:
            run_ids = broker.run_ids()
            probe = broker.directory / "runs"
            writable = probe.is_dir() and os.access(probe, os.W_OK)
        except OSError as error:
            return _error(503, f"broker unavailable: {error}")
        if not writable:
            return _error(503, f"broker directory not writable: {broker.directory}")
        runs = {}
        for run_id in run_ids:
            status = broker.run_status(run_id)
            runs[run_id[:12]] = {
                "exit_code": status.exit_code,
                "complete": status.complete,
                "healthy": status.healthy,
            }
        return _json_response(200, {"ready": True, "runs": runs})

    # ------------------------------------------------------------------ POST /runs
    def _post_run(self) -> _Response:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            return _error(400, "missing request body (a RunManifest JSON object)")
        if length > MAX_BODY_BYTES:
            return _error(413, f"request body exceeds {MAX_BODY_BYTES} bytes")
        raw = self.rfile.read(length)
        try:
            payload = json.loads(raw)
            manifest = RunManifest.from_dict(payload)
        except (ValueError, KeyError, TypeError) as error:
            return _error(400, f"invalid manifest: {error}")
        receipt = self.server.broker.submit(
            manifest, admission_limit=self.server.config.max_queued_units
        )
        body = {
            "run_id": receipt.run_id,
            "total_units": receipt.total_units,
            "created": receipt.created,
            "status_url": f"/runs/{receipt.run_id}",
            "report_url": f"/runs/{receipt.run_id}/report",
        }
        return _json_response(201 if receipt.created else 200, body)
