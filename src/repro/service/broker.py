"""Durable file-backed broker: submitted manifests → leased work units.

The broker owns a directory tree, one subtree per submitted run::

    <broker_dir>/runs/<run_id>/
        store/manifest.json     the submitted RunManifest (RunStore-managed)
        store/journal.jsonl     completed/quarantined units (RunStore journal)
        units.json              the manifest's deterministic unit expansion
        leases/<unit_key>       one live lease per in-flight unit
        events.jsonl            append-only requeue/complete/quarantine events
        journal.lock            completion mutex (flock) for exactly-once appends

``run_id`` is the manifest hash, so resubmitting the same manifest is
idempotent: the second submission joins the first run instead of duplicating
its work.  Completed units land in the ordinary :class:`~repro.runs.store.RunStore`
journal, so everything built on the journal — resume, sharding, the streaming
aggregators, ``python -m repro.runs status/report`` pointed at
``runs/<id>/store`` — works unchanged on a service-filled run.

Lease protocol (at-least-once by construction):

* a worker *leases* pending units — one lease file per unit, created with an
  atomic hard link so exactly one worker wins each unit;
* the worker *heartbeats* its leases while executing (atomic rewrite extending
  ``expires_at``);
* any broker client sweeps *expired* leases during :meth:`FileBroker.lease`
  — the unit requeues and the sweep is journaled as a ``requeue`` event (the
  ``/metrics`` requeue counter);
* *completion* happens under an exclusive ``flock`` on ``journal.lock``: the
  journal is re-read inside the lock and the outcome appended only if the
  unit's key is still absent, so two workers racing a requeued unit yield
  exactly one journal record.  (Verdicts are deterministic and
  content-addressed, so the loser's discarded verdict is identical anyway.)

Everything is stdlib-only.  ``fcntl`` is used for the completion lock where
available (POSIX); elsewhere completion degrades to lease-holder discipline
plus the journal's load-time key dedup — still at-least-once-safe, no longer
exactly-one-line.
"""

from __future__ import annotations

import json
import os
import time
import uuid
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterator, Mapping

try:  # POSIX-only; the completion lock degrades gracefully without it.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]

from ..bench.jobs import CheckOutcome
from ..runs.manifest import RunManifest, WorkUnit
from ..runs.resolve import ManifestResolver
from ..runs.store import RunStore

#: Environment variable naming the default broker directory.
BROKER_DIR_ENV = "REPRO_BROKER_DIR"

UNITS_FILENAME = "units.json"
EVENTS_FILENAME = "events.jsonl"
LOCK_FILENAME = "journal.lock"


class BrokerError(RuntimeError):
    """Raised on broker misuse (unknown run, corrupt run directory, ...)."""


class AdmissionError(BrokerError):
    """Raised when a submission would exceed the queued-unit admission limit."""

    def __init__(self, message: str, *, queued: int, incoming: int, limit: int):
        super().__init__(message)
        self.queued = queued
        self.incoming = incoming
        self.limit = limit


@dataclass(frozen=True)
class SubmitReceipt:
    """What :meth:`FileBroker.submit` did."""

    run_id: str
    total_units: int
    created: bool  # False when the manifest was already queued (idempotent)


@dataclass
class Lease:
    """One worker's claim on one work unit, valid until ``expires_at``."""

    run_id: str
    unit: WorkUnit
    worker_id: str
    expires_at: float
    path: Path


@dataclass(frozen=True)
class RunStatus:
    """Point-in-time accounting of one run's units."""

    run_id: str
    name: str
    experiment: str
    total: int
    completed: int  # scored units in the journal
    quarantined: int
    leased: int  # live (unexpired) leases on un-journaled units
    requeues: int  # lease-expiry requeue events so far

    @property
    def accounted(self) -> int:
        return self.completed + self.quarantined

    @property
    def pending(self) -> int:
        """Units neither journaled nor under a live lease (the queue depth)."""
        return max(0, self.total - self.accounted - self.leased)

    @property
    def complete(self) -> bool:
        return self.accounted >= self.total

    @property
    def healthy(self) -> bool:
        return self.complete and self.quarantined == 0

    @property
    def percent(self) -> float:
        return 100.0 * self.accounted / self.total if self.total else 100.0

    @property
    def exit_code(self) -> int:
        """The ``python -m repro.runs status`` exit-code semantics."""
        if self.quarantined:
            return 4
        if not self.complete:
            return 3
        return 0

    def to_dict(self) -> dict:
        return {
            "run_id": self.run_id,
            "name": self.name,
            "experiment": self.experiment,
            "total_units": self.total,
            "completed_units": self.completed,
            "quarantined_units": self.quarantined,
            "leased_units": self.leased,
            "pending_units": self.pending,
            "requeues": self.requeues,
            "percent_complete": round(self.percent, 1),
            "complete": self.complete,
            "healthy": self.healthy,
            "exit_code": self.exit_code,
        }


class FileBroker:
    """Durable broker over a directory tree; safe for concurrent processes."""

    def __init__(
        self,
        directory: str | Path | None = None,
        *,
        lease_ttl_s: float = 10.0,
        clock: Callable[[], float] = time.time,
    ):
        directory = directory or os.environ.get(BROKER_DIR_ENV)
        if not directory:
            raise BrokerError(
                f"no broker directory given and {BROKER_DIR_ENV} is not set"
            )
        self.directory = Path(directory)
        self.lease_ttl_s = float(lease_ttl_s)
        self._clock = clock
        (self.directory / "runs").mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------ paths
    def _run_dir(self, run_id: str) -> Path:
        return self.directory / "runs" / run_id

    def store_dir(self, run_id: str) -> Path:
        """The run's :class:`RunStore` directory (journal + manifest)."""
        return self._run_dir(run_id) / "store"

    def _leases_dir(self, run_id: str) -> Path:
        return self._run_dir(run_id) / "leases"

    def _units_path(self, run_id: str) -> Path:
        return self._run_dir(run_id) / UNITS_FILENAME

    def _events_path(self, run_id: str) -> Path:
        return self._run_dir(run_id) / EVENTS_FILENAME

    # ------------------------------------------------------------------ submission
    def submit(
        self, manifest: RunManifest, *, admission_limit: int | None = None
    ) -> SubmitReceipt:
        """Queue a manifest's work units; idempotent per manifest hash.

        ``admission_limit`` caps the broker's total queued (pending) units:
        a *new* submission that would push the backlog past the limit raises
        :class:`AdmissionError` before anything is written.  Resubmission of
        an already-queued manifest is always admitted (it adds no work).
        """
        run_id = manifest.manifest_hash
        units_path = self._units_path(run_id)
        if units_path.exists():
            units = self.units(run_id)
            return SubmitReceipt(run_id=run_id, total_units=len(units), created=False)

        resolver = ManifestResolver(manifest)
        units = manifest.expand(resolver.suite_task_ids())
        if admission_limit is not None:
            queued = self.queue_depth()
            if queued + len(units) > admission_limit:
                raise AdmissionError(
                    f"queue full: {queued} unit(s) pending + {len(units)} submitted"
                    f" exceeds the {admission_limit}-unit admission limit",
                    queued=queued,
                    incoming=len(units),
                    limit=admission_limit,
                )

        run_dir = self._run_dir(run_id)
        self._leases_dir(run_id).mkdir(parents=True, exist_ok=True)
        RunStore(self.store_dir(run_id)).write_manifest(manifest)
        payload = [unit.to_dict() for unit in units]
        tmp = run_dir / f".{UNITS_FILENAME}.{uuid.uuid4().hex}.tmp"
        tmp.write_text(json.dumps(payload, sort_keys=True) + "\n")
        os.replace(tmp, units_path)  # atomic: units.json is never half-written
        self._event(run_id, "submit", units=len(units))
        return SubmitReceipt(run_id=run_id, total_units=len(units), created=True)

    # ------------------------------------------------------------------ introspection
    def run_ids(self) -> list[str]:
        """Queued run ids, oldest submission first (stable tiebreak by id)."""
        runs_dir = self.directory / "runs"
        entries = [
            path
            for path in runs_dir.iterdir()
            if path.is_dir() and (path / UNITS_FILENAME).exists()
        ]
        entries.sort(key=lambda path: (path.stat().st_mtime, path.name))
        return [path.name for path in entries]

    def manifest(self, run_id: str) -> RunManifest:
        manifest = RunStore(self.store_dir(run_id)).load_manifest()
        if manifest is None:
            raise BrokerError(f"unknown run {run_id!r}")
        return manifest

    def units(self, run_id: str) -> list[WorkUnit]:
        """The run's unit expansion, in deterministic expansion order."""
        path = self._units_path(run_id)
        if not path.exists():
            raise BrokerError(f"unknown run {run_id!r}")
        return [WorkUnit.from_dict(entry) for entry in json.loads(path.read_text())]

    def store(self, run_id: str) -> RunStore:
        """A fresh view of the run's journal (re-read from disk)."""
        if not self._units_path(run_id).exists():
            raise BrokerError(f"unknown run {run_id!r}")
        return RunStore(self.store_dir(run_id))

    # ------------------------------------------------------------------ leases
    def _read_lease(self, path: Path) -> dict | None:
        try:
            return json.loads(path.read_text())
        except (OSError, ValueError):
            return None

    def _live_leases(self, run_id: str) -> dict[str, dict]:
        """unit key → lease payload, for unexpired lease files."""
        now = self._clock()
        live: dict[str, dict] = {}
        leases_dir = self._leases_dir(run_id)
        if not leases_dir.exists():
            return live
        for path in leases_dir.iterdir():
            payload = self._read_lease(path)
            if payload is None:
                continue
            if payload.get("expires_at", 0.0) > now:
                live[path.name] = payload
        return live

    def sweep_expired(self, run_id: str, store: RunStore | None = None) -> int:
        """Requeue expired leases; returns how many units were requeued.

        Lease files for already-journaled units are reaped silently (the
        normal end of a lease whose completion raced the sweep); expired
        leases on un-journaled units are deleted *and* journaled as
        ``requeue`` events — that unit goes back on the queue.
        """
        store = store if store is not None else self.store(run_id)
        now = self._clock()
        requeued = 0
        leases_dir = self._leases_dir(run_id)
        if not leases_dir.exists():
            return 0
        for path in list(leases_dir.iterdir()):
            payload = self._read_lease(path)
            if payload is None:
                self._unlink(path)
                continue
            if path.name in store:
                self._unlink(path)
                continue
            if payload.get("expires_at", 0.0) <= now:
                self._unlink(path)
                self._event(
                    run_id,
                    "requeue",
                    key=path.name,
                    worker=payload.get("worker", ""),
                )
                requeued += 1
        return requeued

    def lease(self, run_id: str, worker_id: str, limit: int = 1) -> list[Lease]:
        """Claim up to ``limit`` pending units for ``worker_id``.

        Pending = expanded units minus journaled (scored or quarantined)
        minus live-leased, in expansion order.  Expired leases are swept
        (requeued) first.  Claiming is an atomic hard link per unit, so
        concurrent workers never double-claim.
        """
        if limit < 1:
            return []
        store = self.store(run_id)
        self.sweep_expired(run_id, store)
        held = set(self._live_leases(run_id))
        leases_dir = self._leases_dir(run_id)
        leases_dir.mkdir(parents=True, exist_ok=True)
        expires_at = self._clock() + self.lease_ttl_s
        leases: list[Lease] = []
        for unit in self.units(run_id):
            if len(leases) >= limit:
                break
            if unit.key in store or unit.key in held:
                continue
            path = leases_dir / unit.key
            payload = {
                "unit": unit.to_dict(),
                "worker": worker_id,
                "expires_at": expires_at,
            }
            tmp = leases_dir / f".{uuid.uuid4().hex}.tmp"
            tmp.write_text(json.dumps(payload, sort_keys=True))
            try:
                os.link(tmp, path)  # atomic claim: EEXIST → another worker won
            except FileExistsError:
                continue
            except OSError:
                continue
            finally:
                self._unlink(tmp)
            leases.append(
                Lease(
                    run_id=run_id,
                    unit=unit,
                    worker_id=worker_id,
                    expires_at=expires_at,
                    path=path,
                )
            )
        return leases

    def heartbeat(self, lease: Lease) -> bool:
        """Extend a lease's TTL; returns False when the lease was lost.

        A lost lease (expired and swept, or re-claimed by another worker)
        tells the holder to abandon the unit: whoever holds the journal lock
        at completion time still wins exactly once, so continuing is merely
        wasted work, not a correctness hazard.
        """
        payload = self._read_lease(lease.path)
        if payload is None or payload.get("worker") != lease.worker_id:
            return False
        payload["expires_at"] = self._clock() + self.lease_ttl_s
        tmp = lease.path.parent / f".{uuid.uuid4().hex}.tmp"
        tmp.write_text(json.dumps(payload, sort_keys=True))
        os.replace(tmp, lease.path)
        lease.expires_at = payload["expires_at"]
        return True

    def release(self, lease: Lease) -> None:
        """Drop a lease without completing it (the unit requeues immediately)."""
        self._unlink(lease.path)

    # ------------------------------------------------------------------ completion
    @contextmanager
    def _journal_lock(self, run_id: str) -> Iterator[None]:
        path = self._run_dir(run_id) / LOCK_FILENAME
        fd = os.open(path, os.O_CREAT | os.O_RDWR, 0o644)
        try:
            if fcntl is not None:
                fcntl.flock(fd, fcntl.LOCK_EX)
            yield
        finally:
            if fcntl is not None:
                fcntl.flock(fd, fcntl.LOCK_UN)
            os.close(fd)

    def complete(self, lease: Lease, outcome: CheckOutcome) -> bool:
        """Journal a leased unit's verdict exactly once; release the lease.

        Returns False when another worker already journaled the unit (its
        record wins; verdicts are deterministic so nothing is lost).
        """
        with self._journal_lock(lease.run_id):
            store = self.store(lease.run_id)  # fresh read inside the lock
            recorded = store.record(lease.unit, outcome)
        self._unlink(lease.path)
        if recorded:
            self._event(
                lease.run_id,
                "complete",
                key=lease.unit.key,
                worker=lease.worker_id,
                duration_s=outcome.duration_s,
            )
        return recorded

    def complete_quarantine(
        self,
        lease: Lease,
        *,
        attempts: int,
        error: str,
        degradation: tuple[str, ...] = (),
    ) -> bool:
        """Journal a leased unit as poison exactly once; release the lease."""
        with self._journal_lock(lease.run_id):
            store = self.store(lease.run_id)
            recorded = store.record_quarantine(
                lease.unit, attempts=attempts, error=error, degradation=degradation
            )
        self._unlink(lease.path)
        if recorded:
            self._event(
                lease.run_id, "quarantine", key=lease.unit.key, worker=lease.worker_id
            )
        return recorded

    def record_warning(
        self, run_id: str, category: str, message: str, detail: Mapping | None = None
    ) -> bool:
        """Journal a degraded-execution warning under the completion lock."""
        with self._journal_lock(run_id):
            return self.store(run_id).record_warning(category, message, detail)

    # ------------------------------------------------------------------ events
    def _event(self, run_id: str, kind: str, **payload) -> None:
        record = {"event": kind, "ts": self._clock(), **payload}
        line = json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
        fd = os.open(
            self._events_path(run_id), os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
        )
        try:
            os.write(fd, line.encode("utf-8"))
        finally:
            os.close(fd)

    def events(self, run_id: str) -> list[dict]:
        """The run's event log in append order (torn lines dropped)."""
        path = self._events_path(run_id)
        if not path.exists():
            return []
        events: list[dict] = []
        for line in path.read_text(errors="replace").split("\n"):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue
            if isinstance(record, dict) and "event" in record:
                events.append(record)
        return events

    # ------------------------------------------------------------------ status
    def run_status(self, run_id: str) -> RunStatus:
        """Read-only accounting of one run (does not sweep leases)."""
        manifest = self.manifest(run_id)
        store = self.store(run_id)
        units = self.units(run_id)
        quarantined = sum(
            1
            for record in store.quarantined_records()
            if record.get("manifest") == manifest.manifest_hash
        )
        completed = sum(1 for unit in units if unit.key in store) - quarantined
        live = self._live_leases(run_id)
        leased = sum(1 for key in live if key not in store)
        requeues = sum(1 for event in self.events(run_id) if event["event"] == "requeue")
        return RunStatus(
            run_id=run_id,
            name=manifest.name,
            experiment=manifest.experiment,
            total=len(units),
            completed=max(0, completed),
            quarantined=quarantined,
            leased=leased,
            requeues=requeues,
        )

    def queue_depth(self) -> int:
        """Pending (neither journaled nor live-leased) units across all runs."""
        return sum(self.run_status(run_id).pending for run_id in self.run_ids())

    # ------------------------------------------------------------------ helpers
    @staticmethod
    def _unlink(path: Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass
