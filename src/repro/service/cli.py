"""``python -m repro.service`` — serve, work, submit, status.

Subcommands::

    serve    boot the HTTP API over a broker directory
    worker   run one fleet member (lease → execute → journal)
    submit   queue a manifest directly into the broker (no HTTP hop)
    status   print every queued run's status (``--json`` for machines)

All subcommands take ``--broker DIR`` or fall back to ``$REPRO_BROKER_DIR``.
A complete local deployment is three terminals::

    python -m repro.service serve  --broker /tmp/fleet --port 8080
    python -m repro.service worker --broker /tmp/fleet
    python -m repro.service submit --broker /tmp/fleet --experiment table4 --scale tiny

``status`` exits with the worst run's ``repro.runs status`` code
(0 complete+healthy, 3 incomplete, 4 quarantined) so scripts can gate on it.
"""

from __future__ import annotations

import argparse
import json

from .broker import BROKER_DIR_ENV, FileBroker


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Evaluation-as-a-service: HTTP API, durable broker, worker fleet.",
    )
    parser.add_argument(
        "--broker",
        default=None,
        help=f"broker directory (default: ${BROKER_DIR_ENV})",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    serve = commands.add_parser("serve", help="boot the HTTP API over the broker")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=0, help="0 picks a free port")
    serve.add_argument(
        "--max-queued-units",
        type=int,
        default=10_000,
        help="admission control: reject submissions past this backlog (503)",
    )
    serve.add_argument(
        "--rate", type=float, default=10.0, help="per-client requests/second"
    )
    serve.add_argument(
        "--burst", type=float, default=20.0, help="per-client burst capacity"
    )
    serve.add_argument(
        "--lease-ttl", type=float, default=10.0, help="seconds before a silent lease expires"
    )

    worker = commands.add_parser("worker", help="run one fleet member")
    worker.add_argument("--worker-id", default=None, help="stable id (default: generated)")
    worker.add_argument(
        "--lease-ttl", type=float, default=10.0, help="must match the fleet's TTL"
    )
    worker.add_argument(
        "--lease-limit", type=int, default=4, help="units leased per batch"
    )
    worker.add_argument(
        "--poll", type=float, default=0.2, help="idle sleep between queue polls"
    )
    worker.add_argument(
        "--exit-when-idle",
        action="store_true",
        help="exit once every queued run is complete (for scripts and CI)",
    )

    submit = commands.add_parser("submit", help="queue a preset manifest (no HTTP)")
    submit.add_argument("--experiment", required=True, help="preset name, e.g. table4")
    submit.add_argument("--scale", default="tiny", choices=("tiny", "quick", "paper"))

    status = commands.add_parser("status", help="status of every queued run")
    status.add_argument("--json", action="store_true", help="machine-readable output")
    status.add_argument("--lease-ttl", type=float, default=10.0)
    return parser


def _broker(args, *, lease_ttl_s: float = 10.0) -> FileBroker:
    return FileBroker(args.broker, lease_ttl_s=lease_ttl_s)


def _cmd_serve(args) -> int:
    from .api import ReproServiceServer, ServiceConfig

    broker = _broker(args, lease_ttl_s=args.lease_ttl)
    config = ServiceConfig(
        host=args.host,
        port=args.port,
        max_queued_units=args.max_queued_units,
        rate_per_s=args.rate,
        burst=args.burst,
    )
    server = ReproServiceServer(config, broker)
    print(f"listening on {server.url}", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
    return 0


def _cmd_worker(args) -> int:
    from .worker import ServiceWorker

    broker = _broker(args, lease_ttl_s=args.lease_ttl)
    worker = ServiceWorker(
        broker,
        args.worker_id,
        lease_limit=args.lease_limit,
        poll_s=args.poll,
        exit_when_idle=args.exit_when_idle,
    )
    print(f"worker {worker.worker_id} polling {broker.directory}", flush=True)
    try:
        stats = worker.run_forever()
    except KeyboardInterrupt:
        stats = worker.stats
    print(
        f"worker {worker.worker_id}: leased={stats.leased} completed={stats.completed}"
        f" duplicates={stats.duplicates} quarantined={stats.quarantined}",
        flush=True,
    )
    return 0


def _cmd_submit(args) -> int:
    from ..runs.cli import _scale_for
    from ..runs.presets import EXPERIMENT_MANIFESTS

    builder = EXPERIMENT_MANIFESTS.get(args.experiment)
    if builder is None:
        known = ", ".join(sorted(EXPERIMENT_MANIFESTS))
        print(f"unknown experiment {args.experiment!r} (known: {known})")
        return 2
    manifest = builder(_scale_for(args.scale))
    receipt = _broker(args).submit(manifest)
    verb = "queued" if receipt.created else "already queued"
    print(f"{verb} run {receipt.run_id} ({receipt.total_units} units)")
    return 0


def _cmd_status(args) -> int:
    broker = _broker(args, lease_ttl_s=args.lease_ttl)
    statuses = [broker.run_status(run_id) for run_id in broker.run_ids()]
    if args.json:
        print(json.dumps({"runs": [status.to_dict() for status in statuses]}, indent=2))
    elif not statuses:
        print("no runs queued")
    else:
        for status in statuses:
            health = "healthy" if status.healthy else (
                "quarantined" if status.quarantined else "incomplete"
            )
            print(
                f"{status.run_id[:12]}  {status.name}: "
                f"{status.accounted}/{status.total} units"
                f" ({status.percent:.1f}%), {status.leased} leased,"
                f" {status.requeues} requeues — {health}"
            )
    return max((status.exit_code for status in statuses), default=0)


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "serve": _cmd_serve,
        "worker": _cmd_worker,
        "submit": _cmd_submit,
        "status": _cmd_status,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
