"""Prometheus text-format metrics for the evaluation service.

Everything durable is derived on scrape from the broker's on-disk state —
journals (units completed, quarantines, per-check latency via
``CheckOutcome.duration_s``), event logs (lease requeues, completion
timestamps for the units/s gauge) and lease files (in-flight units, queue
depth) — so the numbers survive server restarts and reflect the whole fleet,
not one process.  Process-local sources (HTTP request counters, rate-limit
rejections, the design-database cache) come from the server's in-memory
:class:`HttpCounters` and the process-wide
:class:`~repro.verilog.design.DesignDatabase` stats.

The exposition format is the Prometheus text format, version 0.0.4:
``# HELP`` / ``# TYPE`` headers followed by ``name{labels} value`` samples.
Latency quantiles use the summary convention
(``name{quantile="0.5"}`` + ``_sum`` + ``_count``).
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Iterable, Mapping

from ..bench.jobs import percentile
from .broker import FileBroker

#: Trailing window (seconds) for the units/s throughput gauge.
RATE_WINDOW_S = 60.0

#: Latency quantiles exported by the check-latency summary.
LATENCY_QUANTILES = (0.5, 0.9, 0.99)


def escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def format_sample(name: str, labels: Mapping[str, str], value: float) -> str:
    """One exposition line: ``name{k="v",...} value``."""
    if labels:
        inner = ",".join(
            f'{key}="{escape_label_value(str(val))}"' for key, val in labels.items()
        )
        return f"{name}{{{inner}}} {_format_value(value)}"
    return f"{name} {_format_value(value)}"


def _format_value(value: float) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int) or float(value).is_integer():
        return str(int(value))
    return repr(float(value))


class MetricFamily:
    """One named metric: HELP/TYPE header plus its samples."""

    def __init__(self, name: str, kind: str, help_text: str):
        self.name = name
        self.kind = kind  # counter | gauge | summary
        self.help_text = help_text
        self.samples: list[str] = []

    def add(
        self,
        value: float,
        labels: Mapping[str, str] | None = None,
        *,
        suffix: str = "",
    ) -> "MetricFamily":
        self.samples.append(format_sample(self.name + suffix, labels or {}, value))
        return self

    def render(self) -> str:
        lines = [
            f"# HELP {self.name} {self.help_text}",
            f"# TYPE {self.name} {self.kind}",
        ]
        lines.extend(self.samples)
        return "\n".join(lines)


def render_families(families: Iterable[MetricFamily]) -> str:
    body = "\n".join(family.render() for family in families if family.samples)
    return body + "\n" if body else ""


class HttpCounters:
    """Thread-safe request/rejection counters for the HTTP layer."""

    def __init__(self):
        self._lock = threading.Lock()
        self.requests: dict[tuple[str, str, int], int] = {}
        self.rate_limited = 0
        self.admission_rejected = 0

    def observe(self, method: str, route: str, code: int) -> None:
        with self._lock:
            key = (method, route, int(code))
            self.requests[key] = self.requests.get(key, 0) + 1
            if code == 429:
                self.rate_limited += 1
            if code == 503:
                self.admission_rejected += 1

    def snapshot(self) -> tuple[dict[tuple[str, str, int], int], int, int]:
        with self._lock:
            return dict(self.requests), self.rate_limited, self.admission_rejected


class ServiceMetrics:
    """Scrape-time metric assembly over a broker plus server-local counters."""

    def __init__(
        self,
        broker: FileBroker,
        http: HttpCounters | None = None,
        *,
        clock: Callable[[], float] = time.time,
        rate_window_s: float = RATE_WINDOW_S,
    ):
        self.broker = broker
        self.http = http or HttpCounters()
        self._clock = clock
        self.rate_window_s = float(rate_window_s)
        self._started = clock()

    # ------------------------------------------------------------------ assembly
    def render(self) -> str:
        families = [self._service_info()]
        families.extend(self._broker_families())
        families.extend(self._cache_families())
        families.extend(self._codegen_families())
        families.extend(self._formal_families())
        families.extend(self._http_families())
        return render_families(families)

    def _service_info(self) -> MetricFamily:
        uptime = MetricFamily(
            "repro_service_uptime_seconds",
            "gauge",
            "Seconds since this service process started.",
        )
        uptime.add(max(0.0, self._clock() - self._started))
        return uptime

    def _broker_families(self) -> list[MetricFamily]:
        completed = MetricFamily(
            "repro_units_completed_total",
            "counter",
            "Work units scored into the journal, per run.",
        )
        quarantined = MetricFamily(
            "repro_units_quarantined_total",
            "counter",
            "Work units journaled as poison after burning every attempt.",
        )
        requeues = MetricFamily(
            "repro_lease_requeues_total",
            "counter",
            "Leases that expired (dead or stalled worker) and were requeued.",
        )
        leased = MetricFamily(
            "repro_leases_active",
            "gauge",
            "Units currently under a live worker lease.",
        )
        pending = MetricFamily(
            "repro_run_pending_units",
            "gauge",
            "Units neither journaled nor leased, per run.",
        )
        depth = MetricFamily(
            "repro_queue_depth",
            "gauge",
            "Pending units across every queued run (admission-control input).",
        )
        rate = MetricFamily(
            "repro_units_per_second",
            "gauge",
            f"Unit completions over the trailing {int(self.rate_window_s)}s window.",
        )
        latency = MetricFamily(
            "repro_check_latency_seconds",
            "summary",
            "Settling check-attempt latency of journaled units (p50/p90/p99).",
        )

        now = self._clock()
        total_depth = 0
        recent = 0
        latencies: list[float] = []
        for run_id in self.broker.run_ids():
            status = self.broker.run_status(run_id)
            labels = {"run": run_id[:12]}
            completed.add(status.completed, labels)
            quarantined.add(status.quarantined, labels)
            requeues.add(status.requeues, labels)
            leased.add(status.leased, labels)
            pending.add(status.pending, labels)
            total_depth += status.pending
            for event in self.broker.events(run_id):
                if event["event"] != "complete":
                    continue
                if now - float(event.get("ts", 0.0)) <= self.rate_window_s:
                    recent += 1
            store = self.broker.store(run_id)
            for record in store.records():
                if record.get("kind", "unit") != "unit":
                    continue
                duration = record.get("outcome", {}).get("duration_s")
                if duration:
                    latencies.append(float(duration))
        depth.add(total_depth)
        rate.add(recent / self.rate_window_s if self.rate_window_s else 0.0)

        if latencies:
            latencies.sort()
            for quantile in LATENCY_QUANTILES:
                latency.add(
                    percentile(latencies, quantile), {"quantile": str(quantile)}
                )
            latency.add(sum(latencies), suffix="_sum")
            latency.add(len(latencies), suffix="_count")
        return [completed, quarantined, requeues, leased, pending, depth, rate, latency]

    def _cache_families(self) -> list[MetricFamily]:
        from ..verilog.design import get_default_database

        stats = get_default_database().stats.as_dict()
        hits = MetricFamily(
            "repro_design_cache_events_total",
            "counter",
            "Process-wide DesignDatabase cache events by tier.",
        )
        for tier, value in sorted(stats.items()):
            hits.add(int(value), {"tier": tier})
        ratio = MetricFamily(
            "repro_design_cache_hit_ratio",
            "gauge",
            "Warm-tier hit ratio of the process-wide DesignDatabase.",
        )
        warm = stats.get("hits", 0) + stats.get("disk_hits", 0)
        lookups = warm + stats.get("misses", 0)
        if lookups:
            ratio.add(warm / lookups)
        return [hits, ratio]

    def _codegen_families(self) -> list[MetricFamily]:
        from ..verilog import codegen

        stats = codegen.fallback_stats()
        total = MetricFamily(
            "repro_codegen_fallback_total",
            "counter",
            "Simulations that fell back to the AST interpreter, by reason.",
        )
        if stats["total"]:
            for reason, count in sorted(stats["reasons"].items()):
                total.add(int(count), {"reason": reason})
        else:
            total.add(0)
        designs = MetricFamily(
            "repro_codegen_design_fallback_total",
            "counter",
            "Interpreter fallbacks per design label and reason (codegen coverage).",
        )
        for design, reasons in sorted(stats["designs"].items()):
            for reason, count in sorted(reasons.items()):
                designs.add(int(count), {"design": design, "reason": reason})
        return [total, designs]

    def _formal_families(self) -> list[MetricFamily]:
        from ..formal import proof_stats

        stats = proof_stats()
        proofs = MetricFamily(
            "repro_formal_proofs_total",
            "counter",
            "Formal equivalence proofs attempted in this process, by verdict.",
        )
        if stats["total"]:
            for result, count in sorted(stats["results"].items()):
                proofs.add(int(count), {"result": result})
        else:
            proofs.add(0)
        conflicts = MetricFamily(
            "repro_formal_conflicts_total",
            "counter",
            "SAT conflicts burned across every formal proof in this process.",
        )
        conflicts.add(int(stats["conflicts"]))
        return [proofs, conflicts]

    def _http_families(self) -> list[MetricFamily]:
        requests, rate_limited, admission = self.http.snapshot()
        http = MetricFamily(
            "repro_http_requests_total",
            "counter",
            "HTTP requests served, by method, route template and status code.",
        )
        for (method, route, code), count in sorted(requests.items()):
            http.add(count, {"method": method, "route": route, "code": str(code)})
        limited = MetricFamily(
            "repro_http_rate_limited_total",
            "counter",
            "Requests rejected by the per-client token bucket (HTTP 429).",
        )
        limited.add(rate_limited)
        rejected = MetricFamily(
            "repro_admission_rejected_total",
            "counter",
            "Submissions rejected by queue admission control (HTTP 503).",
        )
        rejected.add(admission)
        return [http, limited, rejected]
