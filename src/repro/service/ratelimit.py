"""Per-client token-bucket rate limiting for the submission API.

Classic token bucket: each client key (the ``X-Client-Id`` header when given,
the peer address otherwise) gets a bucket of ``burst`` tokens refilled at
``rate_per_s``.  A request spends one token; an empty bucket means HTTP 429
with a ``Retry-After`` derived from the refill rate.  The clock is injectable
so tests are deterministic, and stale buckets are pruned so one server can
meet an unbounded client population without unbounded memory.
"""

from __future__ import annotations

import threading
import time
from typing import Callable


class TokenBucket:
    """One client's budget: ``burst`` capacity refilled at ``rate_per_s``."""

    def __init__(
        self,
        rate_per_s: float,
        burst: float,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.rate_per_s = float(rate_per_s)
        self.burst = float(burst)
        self._clock = clock
        self.tokens = self.burst
        self.updated = clock()

    def _refill(self) -> None:
        now = self._clock()
        elapsed = max(0.0, now - self.updated)
        self.updated = now
        self.tokens = min(self.burst, self.tokens + elapsed * self.rate_per_s)

    def allow(self, cost: float = 1.0) -> bool:
        self._refill()
        if self.tokens >= cost:
            self.tokens -= cost
            return True
        return False

    def retry_after_s(self, cost: float = 1.0) -> float:
        """Seconds until ``cost`` tokens will have refilled (0 when ready)."""
        self._refill()
        missing = cost - self.tokens
        if missing <= 0:
            return 0.0
        if self.rate_per_s <= 0:
            return float("inf")
        return missing / self.rate_per_s


class RateLimiter:
    """Thread-safe bucket table keyed by client id."""

    #: Buckets idle longer than this are pruned on the next acquire.
    PRUNE_IDLE_S = 300.0
    #: Table size that triggers a prune pass.
    PRUNE_THRESHOLD = 1024

    def __init__(
        self,
        rate_per_s: float = 10.0,
        burst: float = 20.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.rate_per_s = float(rate_per_s)
        self.burst = float(burst)
        self._clock = clock
        self._buckets: dict[str, TokenBucket] = {}
        self._lock = threading.Lock()

    def _bucket(self, key: str) -> TokenBucket:
        bucket = self._buckets.get(key)
        if bucket is None:
            if len(self._buckets) >= self.PRUNE_THRESHOLD:
                self._prune()
            bucket = TokenBucket(self.rate_per_s, self.burst, self._clock)
            self._buckets[key] = bucket
        return bucket

    def _prune(self) -> None:
        now = self._clock()
        stale = [
            key
            for key, bucket in self._buckets.items()
            if now - bucket.updated > self.PRUNE_IDLE_S
        ]
        for key in stale:
            del self._buckets[key]

    def allow(self, key: str, cost: float = 1.0) -> bool:
        with self._lock:
            return self._bucket(key).allow(cost)

    def retry_after_s(self, key: str, cost: float = 1.0) -> float:
        with self._lock:
            return self._bucket(key).retry_after_s(cost)
