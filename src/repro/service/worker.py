"""The worker fleet: lease → execute → journal, heartbeating all the while.

A :class:`ServiceWorker` is one member of the fleet (``python -m repro.service
worker`` runs one per process).  Its loop:

1. walk the broker's queued runs and :meth:`~repro.service.broker.FileBroker.lease`
   up to ``lease_limit`` pending units (expired leases from dead workers are
   swept and requeued as a side effect);
2. execute the leased units through the shared
   :meth:`~repro.runs.engine.RunEngine.execute_units` core — the PR 6
   fault-tolerance layer (deadlines, retries, degradation, quarantine)
   applies exactly as in a local ``repro.runs run``;
3. while executing, a daemon thread heartbeats the held leases every
   ``ttl / 3`` seconds so a slow check does not look like a dead worker;
4. journal each result through the broker's completion lock —
   at-least-once delivery with exactly-one journal record per unit.

A worker that dies mid-lease (``SIGKILL``, OOM, power loss) simply stops
heartbeating; its leases expire and the units requeue to the surviving fleet.
Nothing is lost and nothing double-counts: completion is idempotent per
content-addressed unit key.

Fault-injection hook: ``REPRO_SERVICE_STALL_S=<seconds>`` makes the worker
sleep *after* acquiring leases and *before* heartbeating or executing — a
deterministic way for tests and the CI smoke job to freeze a worker mid-lease
and SIGKILL it while it provably holds work.
"""

from __future__ import annotations

import os
import threading
import time
import uuid
from dataclasses import dataclass, field

from ..runs.engine import RunEngine, UnitResult
from .broker import FileBroker, Lease

#: Fault-injection hook: seconds to play dead after leasing (see module doc).
STALL_ENV = "REPRO_SERVICE_STALL_S"


@dataclass
class WorkerStats:
    """What one worker did over its lifetime."""

    leased: int = 0
    completed: int = 0
    duplicates: int = 0  # completions another worker journaled first
    quarantined: int = 0
    lost_leases: int = 0  # leases that expired under us mid-execution
    runs_seen: set = field(default_factory=set)


class ServiceWorker:
    """One fleet member: leases units from a broker and journals verdicts."""

    def __init__(
        self,
        broker: FileBroker,
        worker_id: str | None = None,
        *,
        lease_limit: int = 4,
        poll_s: float = 0.2,
        exit_when_idle: bool = False,
        max_loops: int | None = None,
    ):
        self.broker = broker
        self.worker_id = worker_id or f"worker-{os.getpid()}-{uuid.uuid4().hex[:8]}"
        self.lease_limit = max(1, int(lease_limit))
        self.poll_s = float(poll_s)
        self.exit_when_idle = exit_when_idle
        self.max_loops = max_loops
        self.stats = WorkerStats()
        self._engines: dict[str, RunEngine] = {}
        self._stopped = threading.Event()

    # ------------------------------------------------------------------ lifecycle
    def stop(self) -> None:
        """Ask the loop to exit after the current batch."""
        self._stopped.set()

    def run_forever(self) -> WorkerStats:
        """Pull leases until stopped (or idle, with ``exit_when_idle``)."""
        loops = 0
        while not self._stopped.is_set():
            loops += 1
            if self.max_loops is not None and loops > self.max_loops:
                break
            worked = False
            for run_id in self.broker.run_ids():
                if self._stopped.is_set():
                    break
                self.stats.runs_seen.add(run_id)
                leases = self.broker.lease(run_id, self.worker_id, self.lease_limit)
                if leases:
                    worked = True
                    self._execute_leases(run_id, leases)
            if worked:
                continue
            if self.exit_when_idle and self._all_complete():
                break
            self._stopped.wait(self.poll_s)
        return self.stats

    def _all_complete(self) -> bool:
        run_ids = self.broker.run_ids()
        return all(self.broker.run_status(run_id).complete for run_id in run_ids)

    # ------------------------------------------------------------------ execution
    def _engine(self, run_id: str) -> RunEngine:
        engine = self._engines.get(run_id)
        if engine is None:
            manifest = self.broker.manifest(run_id)
            engine = RunEngine(manifest, self.broker.store(run_id))
            self._engines[run_id] = engine
        return engine

    def _execute_leases(self, run_id: str, leases: list[Lease]) -> None:
        self.stats.leased += len(leases)
        stall = float(os.environ.get(STALL_ENV, "0") or 0.0)
        if stall > 0:
            # Deliberately *before* the heartbeat starts: the worker plays
            # dead while provably holding leases (see module docstring).
            time.sleep(stall)

        stop_beat = threading.Event()
        beat_every = max(0.05, self.broker.lease_ttl_s / 3.0)

        def beat() -> None:
            while not stop_beat.wait(beat_every):
                for lease in leases:
                    self.broker.heartbeat(lease)

        beater = threading.Thread(target=beat, daemon=True)
        beater.start()
        try:
            results = self._engine(run_id).execute_units(
                [lease.unit for lease in leases],
                warning_sink=lambda category, message, detail: (
                    self.broker.record_warning(run_id, category, message, detail)
                ),
            )
        finally:
            stop_beat.set()
            beater.join()

        by_key = {lease.unit.key: lease for lease in leases}
        for result in results:
            lease = by_key.pop(result.unit.key)
            self._journal(lease, result)
        # Anything the engine did not return a result for (should not happen)
        # is released so it requeues rather than dangling until expiry.
        for lease in by_key.values():
            self.broker.release(lease)
            self.stats.lost_leases += 1

    def _journal(self, lease: Lease, result: UnitResult) -> None:
        if result.quarantine is not None:
            recorded = self.broker.complete_quarantine(
                lease,
                attempts=result.quarantine.attempts,
                error=result.quarantine.error,
                degradation=result.quarantine.degradation,
            )
            if recorded:
                self.stats.quarantined += 1
            else:
                self.stats.duplicates += 1
            return
        if self.broker.complete(lease, result.outcome):
            self.stats.completed += 1
        else:
            self.stats.duplicates += 1
