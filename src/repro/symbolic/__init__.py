"""Symbolic modalities: truth tables, waveform charts, state diagrams, detection."""

from .detector import (
    DetectionResult,
    SymbolicComponent,
    SymbolicDetector,
    SymbolicModality,
    detect_symbolic,
)
from .state_diagram import (
    FSMGoldenModel,
    StateDiagram,
    StateDiagramError,
    Transition,
    looks_like_state_diagram,
    parse_state_diagram,
    random_state_diagram,
)
from .truth_table import TruthTable, TruthTableError, looks_like_truth_table, parse_truth_table
from .waveform import Waveform, WaveformError, looks_like_waveform, parse_waveform

__all__ = [
    "DetectionResult",
    "SymbolicComponent",
    "SymbolicDetector",
    "SymbolicModality",
    "detect_symbolic",
    "FSMGoldenModel",
    "StateDiagram",
    "StateDiagramError",
    "Transition",
    "looks_like_state_diagram",
    "parse_state_diagram",
    "random_state_diagram",
    "TruthTable",
    "TruthTableError",
    "looks_like_truth_table",
    "parse_truth_table",
    "Waveform",
    "WaveformError",
    "looks_like_waveform",
    "parse_waveform",
]
