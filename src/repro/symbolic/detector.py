"""Detection of symbolic components inside natural-language prompts.

This is step 1 of the SI-CoT flow ("Identify Symbolic Components"): given a user
prompt, decide whether it embeds a truth table, waveform chart or state diagram,
and split the prompt into its prose part and its symbolic block(s).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from .state_diagram import looks_like_state_diagram, parse_state_diagram
from .truth_table import looks_like_truth_table, parse_truth_table
from .waveform import looks_like_waveform, parse_waveform


class SymbolicModality(enum.Enum):
    """The kind of symbolic component found in a prompt."""

    TRUTH_TABLE = "truth_table"
    WAVEFORM = "waveform"
    STATE_DIAGRAM = "state_diagram"
    NONE = "none"


@dataclass
class SymbolicComponent:
    """One symbolic block extracted from a prompt."""

    modality: SymbolicModality
    text: str
    parsed: object | None = None


@dataclass
class DetectionResult:
    """Outcome of analysing a prompt for symbolic components."""

    modality: SymbolicModality
    components: list[SymbolicComponent] = field(default_factory=list)
    prose: str = ""

    @property
    def has_symbolic_content(self) -> bool:
        return self.modality is not SymbolicModality.NONE


class SymbolicDetector:
    """Identify and extract symbolic components from prompt text."""

    def detect(self, prompt: str) -> DetectionResult:
        """Detect the (dominant) symbolic modality in ``prompt`` and parse it.

        Detection is ordered state diagram → truth table → waveform, because a
        state-diagram line can superficially look like a waveform line ("A: ...").
        """
        if looks_like_state_diagram(prompt):
            return self._build_result(prompt, SymbolicModality.STATE_DIAGRAM)
        if looks_like_truth_table(prompt):
            return self._build_result(prompt, SymbolicModality.TRUTH_TABLE)
        if looks_like_waveform(prompt):
            return self._build_result(prompt, SymbolicModality.WAVEFORM)
        return DetectionResult(modality=SymbolicModality.NONE, prose=prompt)

    def _build_result(self, prompt: str, modality: SymbolicModality) -> DetectionResult:
        symbolic_lines, prose_lines = self._split_lines(prompt, modality)
        block = "\n".join(symbolic_lines)
        parsed: object | None = None
        try:
            if modality is SymbolicModality.STATE_DIAGRAM:
                parsed = parse_state_diagram(block)
            elif modality is SymbolicModality.TRUTH_TABLE:
                parsed = parse_truth_table(block)
            elif modality is SymbolicModality.WAVEFORM:
                parsed = parse_waveform(block)
        except ValueError:
            parsed = None
        component = SymbolicComponent(modality=modality, text=block, parsed=parsed)
        return DetectionResult(
            modality=modality if parsed is not None else SymbolicModality.NONE,
            components=[component] if parsed is not None else [],
            prose="\n".join(prose_lines) if parsed is not None else prompt,
        )

    def _split_lines(self, prompt: str, modality: SymbolicModality) -> tuple[list[str], list[str]]:
        symbolic: list[str] = []
        prose: list[str] = []
        for line in prompt.splitlines():
            stripped = line.strip()
            if not stripped:
                prose.append(line)
                continue
            if modality is SymbolicModality.STATE_DIAGRAM and looks_like_state_diagram(stripped + "\n" + stripped):
                symbolic.append(stripped)
            elif modality is SymbolicModality.TRUTH_TABLE and "|" in stripped:
                symbolic.append(stripped)
            elif modality is SymbolicModality.WAVEFORM and ":" in stripped and (
                looks_like_waveform(stripped + "\n" + stripped) or stripped.lower().startswith("time")
            ):
                symbolic.append(stripped)
            else:
                prose.append(line)
        return symbolic, prose


def detect_symbolic(prompt: str) -> DetectionResult:
    """Module-level convenience wrapper around :class:`SymbolicDetector`."""
    return SymbolicDetector().detect(prompt)
