"""State-diagram modality: representation, parsing, interpretation and FSM model.

State diagrams are the symbolic modality the paper handles with the *CoT prompting
model* rather than a plain parser (step 2 of Fig. 1), because their textual form
is less regular.  The notation used in the paper's prompts is::

    A[out=0]--[x=0]->B
    A[out=0]--[x=1]->A
    B[out=1]--[x=0]->A
    B[out=1]--[x=1]->B

i.e. ``<state>[<output assignments>]--[<input conditions>]-><next state>``, for a
Moore machine whose outputs depend only on the current state.

Besides parsing and rendering, this module provides:

* :meth:`StateDiagram.interpret` — the Table III natural-language description;
* :meth:`StateDiagram.to_golden_model` — an executable reference model for the
  testbench runner;
* :meth:`StateDiagram.to_verilog` — a conventional three-block FSM implementation
  (state register, next-state logic, output logic) used by exemplars and the
  simulated CodeGen-LLM.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Mapping, Sequence


class StateDiagramError(ValueError):
    """Raised when a state-diagram block cannot be parsed."""


@dataclass(frozen=True)
class Transition:
    """A single FSM transition edge."""

    source: str
    target: str
    conditions: tuple[tuple[str, int], ...]

    def matches(self, inputs: Mapping[str, int]) -> bool:
        """Whether the transition's input conditions hold for ``inputs``."""
        return all(int(inputs.get(name, 0)) == value for name, value in self.conditions)

    def condition_text(self) -> str:
        """Render the conditions as ``x=0, y=1`` (empty string when unconditional)."""
        return ", ".join(f"{name}={value}" for name, value in self.conditions)


@dataclass
class StateDiagram:
    """A Moore-style finite state machine described by a state diagram.

    Attributes:
        states: mapping from state name to its output assignments.
        transitions: transition edges in listing order.
        reset_state: the initial state (defaults to the first state listed).
        input_names: FSM input signal names (derived from transition conditions).
        output_names: FSM output signal names (derived from state outputs).
    """

    states: dict[str, dict[str, int]] = field(default_factory=dict)
    transitions: list[Transition] = field(default_factory=list)
    reset_state: str | None = None

    def __post_init__(self) -> None:
        if self.reset_state is None and self.states:
            self.reset_state = next(iter(self.states))

    # ------------------------------------------------------------------ queries
    @property
    def input_names(self) -> list[str]:
        names: list[str] = []
        for transition in self.transitions:
            for name, _ in transition.conditions:
                if name not in names:
                    names.append(name)
        return names

    @property
    def output_names(self) -> list[str]:
        names: list[str] = []
        for outputs in self.states.values():
            for name in outputs:
                if name not in names:
                    names.append(name)
        return names

    @property
    def state_names(self) -> list[str]:
        return list(self.states)

    def next_state(self, current: str, inputs: Mapping[str, int]) -> str:
        """Return the successor of ``current`` under ``inputs`` (self-loop if none match)."""
        for transition in self.transitions:
            if transition.source == current and transition.matches(inputs):
                return transition.target
        return current

    def outputs_of(self, state: str) -> dict[str, int]:
        """Moore outputs of a state (missing outputs default to 0)."""
        outputs = dict.fromkeys(self.output_names, 0)
        outputs.update(self.states.get(state, {}))
        return outputs

    def is_complete(self) -> bool:
        """Whether every state has a transition for every input combination."""
        import itertools

        inputs = self.input_names
        for state in self.states:
            for bits in itertools.product((0, 1), repeat=len(inputs)):
                assignment = dict(zip(inputs, bits))
                if not any(
                    t.source == state and t.matches(assignment) for t in self.transitions
                ):
                    return False
        return True

    # ------------------------------------------------------------------ rendering
    def to_prompt_text(self) -> str:
        """Render in the arrow notation used by prompts."""
        lines = []
        for transition in self.transitions:
            outputs = self.states.get(transition.source, {})
            output_text = ",".join(f"{name}={value}" for name, value in outputs.items())
            condition_text = ",".join(f"{name}={value}" for name, value in transition.conditions)
            lines.append(
                f"{transition.source}[{output_text}]--[{condition_text}]->{transition.target}"
            )
        return "\n".join(lines)

    def interpret(self) -> str:
        """Produce the Table III natural-language description."""
        state_lines = []
        for index, (state, outputs) in enumerate(self.states.items(), start=1):
            output_text = ", ".join(f"{name}={value}" for name, value in outputs.items())
            state_lines.append(f"{index}. state {state}({output_text})")
        lines = ["States&Outputs: " + "; ".join(state_lines), "State transition:"]
        for index, state in enumerate(self.states, start=1):
            outgoing = [t for t in self.transitions if t.source == state]
            if not outgoing:
                lines.append(f"{index}. From state {state}: no outgoing transitions")
                continue
            clauses = []
            for transition in outgoing:
                condition = transition.condition_text() or "always"
                clauses.append(f"If {condition}, then transit to state {transition.target}")
            lines.append(f"{index}. From state {state}: " + "; ".join(clauses))
        if self.reset_state is not None:
            lines.append(f"Reset state: {self.reset_state}")
        return "\n".join(lines)

    # ------------------------------------------------------------------ executable models
    def to_golden_model(self) -> "FSMGoldenModel":
        """Return an executable reference model for the testbench runner."""
        return FSMGoldenModel(self)

    def to_verilog(
        self,
        module_name: str = "fsm",
        clock: str = "clk",
        reset: str = "rst",
        async_reset: bool = True,
        swap_states: tuple[str, str] | None = None,
    ) -> str:
        """Emit a conventional three-block FSM implementation.

        Args:
            module_name: generated module name.
            clock: clock signal name.
            reset: reset signal name (active high).
            async_reset: include the reset edge in the sensitivity list.
            swap_states: when given, the two named states are swapped in the
                next-state logic — used by the corruption injector to model the
                "state diagram misinterpretation" hallucination of Table II.
        """
        states = self.state_names
        width = max(1, (len(states) - 1).bit_length())
        inputs = self.input_names
        outputs = self.output_names

        def encoded(name: str) -> str:
            return f"{width}'d{states.index(name)}"

        remap = {}
        if swap_states is not None:
            first, second = swap_states
            remap = {first: second, second: first}

        lines = [f"module {module_name} ("]
        lines.append(f"    input {clock},")
        lines.append(f"    input {reset},")
        for name in inputs:
            lines.append(f"    input {name},")
        for index, name in enumerate(outputs):
            comma = "," if index < len(outputs) - 1 else ""
            lines.append(f"    output reg {name}{comma}")
        lines.append(");")
        for index, state in enumerate(states):
            lines.append(f"    localparam {state} = {width}'d{index};")
        lines.append(f"    reg [{width - 1}:0] state, next_state;")
        lines.append("")
        sensitivity = f"posedge {clock} or posedge {reset}" if async_reset else f"posedge {clock}"
        lines.append(f"    always @({sensitivity}) begin")
        lines.append(f"        if ({reset})")
        lines.append(f"            state <= {self.reset_state};")
        lines.append("        else")
        lines.append("            state <= next_state;")
        lines.append("    end")
        lines.append("")
        lines.append("    always @(*) begin")
        lines.append("        next_state = state;")
        lines.append("        case (state)")
        for state in states:
            outgoing = [t for t in self.transitions if t.source == state]
            lines.append(f"            {state}: begin")
            for transition in outgoing:
                target = remap.get(transition.target, transition.target)
                if transition.conditions:
                    condition = " && ".join(
                        f"{name} == 1'b{value}" for name, value in transition.conditions
                    )
                    lines.append(f"                if ({condition}) next_state = {target};")
                else:
                    lines.append(f"                next_state = {target};")
            lines.append("            end")
        lines.append("            default: next_state = " + str(self.reset_state) + ";")
        lines.append("        endcase")
        lines.append("    end")
        lines.append("")
        lines.append("    always @(*) begin")
        for name in outputs:
            lines.append(f"        {name} = 1'b0;")
        lines.append("        case (state)")
        for state in states:
            assignments = self.outputs_of(state)
            lines.append(f"            {state}: begin")
            for name in outputs:
                lines.append(f"                {name} = 1'b{assignments.get(name, 0)};")
            lines.append("            end")
        lines.append("            default: begin")
        for name in outputs:
            lines.append(f"                {name} = 1'b0;")
        lines.append("            end")
        lines.append("        endcase")
        lines.append("    end")
        lines.append("endmodule")
        return "\n".join(lines) + "\n"


class FSMGoldenModel:
    """Executable golden model for a :class:`StateDiagram` (Moore semantics)."""

    is_sequential = True

    def __init__(self, diagram: StateDiagram):
        self.diagram = diagram
        self.state = diagram.reset_state

    def reset(self) -> None:
        """Return to the diagram's reset state."""
        self.state = self.diagram.reset_state

    def step(self, inputs: Mapping[str, int]) -> dict[str, int]:
        """Advance one clock cycle and return the post-edge Moore outputs."""
        if self.state is None:
            raise StateDiagramError("state diagram has no states")
        self.state = self.diagram.next_state(self.state, inputs)
        return self.diagram.outputs_of(self.state)

    def eval(self, inputs: Mapping[str, int]) -> dict[str, int]:
        """Combinational view (outputs of the current state); provided for protocol compatibility."""
        if self.state is None:
            raise StateDiagramError("state diagram has no states")
        return self.diagram.outputs_of(self.state)


# --------------------------------------------------------------------------- parsing
_EDGE_PATTERN = re.compile(
    r"""^\s*
    (?P<source>\w+)\s*
    (?:\[(?P<outputs>[^\]]*)\])?\s*
    [-–—]+\s*
    (?:\[(?P<conditions>[^\]]*)\])?\s*
    [-–—]*>\s*
    (?P<target>\w+)\s*$""",
    re.VERBOSE,
)


def looks_like_state_diagram(text: str) -> bool:
    """Cheap check used by the symbolic detector."""
    count = 0
    for line in text.splitlines():
        if _EDGE_PATTERN.match(line.strip()):
            count += 1
    return count >= 2


def _parse_assignments(text: str | None) -> list[tuple[str, int]]:
    assignments: list[tuple[str, int]] = []
    if not text:
        return assignments
    for clause in re.split(r"[,;]", text):
        clause = clause.strip()
        if not clause:
            continue
        match = re.match(r"(\w+)\s*=+\s*(\d+)", clause)
        if match:
            assignments.append((match.group(1), int(match.group(2))))
    return assignments


def parse_state_diagram(text: str) -> StateDiagram:
    """Parse the arrow notation into a :class:`StateDiagram`.

    Raises:
        StateDiagramError: if fewer than two transition edges are found.
    """
    diagram = StateDiagram()
    for raw_line in text.splitlines():
        line = raw_line.strip().rstrip(".")
        if not line:
            continue
        match = _EDGE_PATTERN.match(line)
        if not match:
            continue
        source = match.group("source")
        target = match.group("target")
        outputs = dict(_parse_assignments(match.group("outputs")))
        conditions = tuple(_parse_assignments(match.group("conditions")))
        if source not in diagram.states:
            diagram.states[source] = {}
        diagram.states[source].update(outputs)
        if target not in diagram.states:
            diagram.states[target] = {}
        diagram.transitions.append(Transition(source=source, target=target, conditions=conditions))
    if len(diagram.transitions) < 2:
        raise StateDiagramError("no state diagram found in text")
    if diagram.reset_state is None:
        diagram.reset_state = next(iter(diagram.states))
    return diagram


def random_state_diagram(
    num_states: int = 3,
    inputs: Sequence[str] = ("x",),
    outputs: Sequence[str] = ("out",),
    seed: int = 0,
) -> StateDiagram:
    """Generate a random complete Moore FSM (used by benchmark/dataset generators)."""
    import itertools
    import random as _random

    rng = _random.Random(seed)
    names = [chr(ord("A") + index) for index in range(num_states)]
    diagram = StateDiagram()
    for name in names:
        diagram.states[name] = {output: rng.randint(0, 1) for output in outputs}
    # Avoid the degenerate all-same-output machine.
    if len({tuple(sorted(v.items())) for v in diagram.states.values()}) == 1:
        first_output = outputs[0]
        diagram.states[names[-1]][first_output] = 1 - diagram.states[names[0]][first_output]
    for name in names:
        for bits in itertools.product((0, 1), repeat=len(inputs)):
            conditions = tuple(zip(inputs, bits))
            target = rng.choice(names)
            diagram.transitions.append(Transition(source=name, target=target, conditions=conditions))
    diagram.reset_state = names[0]
    return diagram
