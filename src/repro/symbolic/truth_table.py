"""Truth-table modality: representation, parsing and interpretation.

A truth table is one of the three "regular modalities" the paper's SI-CoT stage
handles with a deterministic parser (step 2 of Fig. 1).  This module provides:

* :class:`TruthTable` — the semantic object (input names, output names, rows);
* :func:`parse_truth_table` — parse the pipe-separated textual format used in
  prompts (``a | b | out`` followed by value rows);
* :meth:`TruthTable.to_prompt_text` — render back into prompt form;
* :meth:`TruthTable.interpret` — produce the uniform natural-language instruction
  format of Table III ("Variables: ... Rules: If a=0, b=0, then out=0; ...").
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from ..logic.bittable import BitTable
from ..logic.expr import BoolExpr, expr_from_minterms
from ..logic.minimize import minimize_minterms


class TruthTableError(ValueError):
    """Raised when a truth-table block cannot be parsed."""


@dataclass
class TruthTable:
    """A complete or partial truth table over single-bit signals.

    Attributes:
        inputs: input column names, in column order.
        outputs: output column names, in column order.
        rows: one entry per table row, mapping column name to its 0/1 value.
    """

    inputs: list[str]
    outputs: list[str]
    rows: list[dict[str, int]] = field(default_factory=list)

    # ------------------------------------------------------------------ construction
    @classmethod
    def from_function(
        cls,
        inputs: Sequence[str],
        output: str,
        function: Mapping[int, int] | None = None,
        expression: BoolExpr | None = None,
    ) -> "TruthTable":
        """Build a complete table from an index→value map or a boolean expression."""
        table = cls(inputs=list(inputs), outputs=[output])
        values: list[int] | None = None
        if expression is not None:
            # One bit-parallel compile instead of one tree walk per row.
            values = BitTable.from_expr(expression, variables=list(inputs)).values()
        elif function is None:
            raise TruthTableError("either function or expression must be provided")
        for index, bits in enumerate(itertools.product((0, 1), repeat=len(inputs))):
            row = dict(zip(inputs, bits))
            if values is not None:
                row[output] = values[index]
            else:
                row[output] = function.get(index, 0)
            table.rows.append(row)
        return table

    # ------------------------------------------------------------------ queries
    def is_complete(self) -> bool:
        """Whether every input combination appears exactly once."""
        seen = {tuple(row[name] for name in self.inputs) for row in self.rows}
        return len(seen) == 2 ** len(self.inputs) and len(self.rows) == len(seen)

    def output_for(self, assignment: Mapping[str, int], output: str | None = None) -> int | None:
        """Look up the output value for an input assignment (``None`` if absent)."""
        output = output or self.outputs[0]
        key = tuple(int(assignment[name]) for name in self.inputs)
        for row in self.rows:
            if tuple(row[name] for name in self.inputs) == key:
                return row[output]
        return None

    def minterms(self, output: str | None = None) -> list[int]:
        """Minterm indices (first input is the most-significant bit)."""
        output = output or self.outputs[0]
        result: list[int] = []
        for row in self.rows:
            if row[output]:
                index = 0
                for name in self.inputs:
                    index = (index << 1) | row[name]
                result.append(index)
        return sorted(result)

    def to_expression(self, output: str | None = None, minimize: bool = True) -> BoolExpr:
        """Convert one output column into a boolean expression."""
        terms = self.minterms(output)
        if minimize:
            return minimize_minterms(self.inputs, terms)
        return expr_from_minterms(self.inputs, terms)

    # ------------------------------------------------------------------ rendering
    def to_prompt_text(self) -> str:
        """Render in the pipe-separated prompt format."""
        header = " | ".join(self.inputs + self.outputs)
        lines = [header]
        for row in self.rows:
            lines.append(" | ".join(str(row[name]) for name in self.inputs + self.outputs))
        return "\n".join(lines)

    def interpret(self) -> str:
        """Produce the uniform instruction format of Table III."""
        variable_lines = [
            f"{index + 1}. {name}(input)" for index, name in enumerate(self.inputs)
        ] + [
            f"{len(self.inputs) + index + 1}. {name}(output)"
            for index, name in enumerate(self.outputs)
        ]
        lines = ["Variables: " + "; ".join(variable_lines), "Rules:"]
        for number, row in enumerate(self.rows, start=1):
            conditions = ", ".join(f"{name}={row[name]}" for name in self.inputs)
            results = ", ".join(f"{name}={row[name]}" for name in self.outputs)
            lines.append(f"{number}. If {conditions}, then {results};")
        return "\n".join(lines)


def looks_like_truth_table(text: str) -> bool:
    """Cheap check used by the symbolic detector."""
    lines = [line.strip() for line in text.splitlines() if line.strip()]
    piped = [line for line in lines if "|" in line and "->" not in line and "--" not in line]
    if len(piped) < 3:
        return False
    value_rows = 0
    for line in piped[1:]:
        cells = [cell.strip() for cell in line.split("|")]
        if cells and all(cell in {"0", "1", "x", "X", "-", "d"} for cell in cells if cell):
            value_rows += 1
    return value_rows >= 2


def parse_truth_table(text: str) -> TruthTable:
    """Parse the pipe-separated truth-table format.

    The first pipe-containing line is the header; the remaining pipe lines are
    value rows.  Columns whose header name starts with ``out``, ``y``, ``q``, ``f``
    or ``z`` are treated as outputs (with at least the last column always an
    output), matching how benchmark prompts write tables.

    Raises:
        TruthTableError: if no plausible table is present.
    """
    lines = [line.strip() for line in text.splitlines() if line.strip()]
    piped = [line for line in lines if "|" in line]
    if len(piped) < 2:
        raise TruthTableError("no truth table found in text")
    header_cells = [cell.strip() for cell in piped[0].split("|") if cell.strip()]
    if not header_cells:
        raise TruthTableError("truth table header is empty")

    output_markers = ("out", "y", "q", "f", "z")
    outputs = [
        name
        for name in header_cells
        if name.lower().startswith(output_markers)
    ]
    if not outputs:
        outputs = [header_cells[-1]]
    inputs = [name for name in header_cells if name not in outputs]
    if not inputs:
        raise TruthTableError("truth table has no input columns")

    table = TruthTable(inputs=inputs, outputs=outputs)
    for line in piped[1:]:
        cells = [cell.strip() for cell in line.split("|")]
        cells = [cell for cell in cells if cell != ""]
        if len(cells) != len(header_cells):
            continue
        try:
            values = [int(cell) for cell in cells]
        except ValueError:
            continue
        table.rows.append(dict(zip(header_cells, values)))
    if not table.rows:
        raise TruthTableError("truth table has no value rows")
    return table
