"""Waveform-chart modality: representation, parsing and interpretation.

Waveform charts are the second "regular modality" handled by a deterministic
parser in the SI-CoT stage.  A chart lists one line per signal with its sampled
values over time, optionally followed by a ``time(ns):`` line giving the sample
instants:

.. code-block:: text

    a:    0 1 1 0
    b:    1 0 1 0
    out:  1 0 0 1
    time(ns): 0 10 20 30
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..logic.expr import BoolExpr
from .truth_table import TruthTable


class WaveformError(ValueError):
    """Raised when a waveform block cannot be parsed."""


@dataclass
class Waveform:
    """A sampled waveform chart.

    Attributes:
        signals: mapping from signal name to its sample values, in listing order.
        times: sample instants in nanoseconds (generated as 0, 10, 20... when the
            prompt omits the time line).
        output_names: names treated as outputs (defaults to names starting with
            ``out``/``y``/``q``/``f``, else the last listed signal).
    """

    signals: dict[str, list[int]] = field(default_factory=dict)
    times: list[int] = field(default_factory=list)
    output_names: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.signals and not self.times:
            length = len(next(iter(self.signals.values())))
            self.times = [10 * index for index in range(length)]
        if self.signals and not self.output_names:
            markers = ("out", "y", "q", "f")
            detected = [name for name in self.signals if name.lower().startswith(markers)]
            self.output_names = detected or [list(self.signals)[-1]]

    # ------------------------------------------------------------------ construction
    @classmethod
    def from_expression(
        cls,
        expression: BoolExpr,
        output: str = "out",
        samples: Sequence[dict[str, int]] | None = None,
        num_samples: int = 8,
        seed: int = 0,
    ) -> "Waveform":
        """Build a waveform by sampling a combinational expression."""
        import random as _random

        rng = _random.Random(seed)
        inputs = expression.variables()
        if samples is None:
            samples = [
                {name: rng.randint(0, 1) for name in inputs} for _ in range(num_samples)
            ]
        signals: dict[str, list[int]] = {name: [] for name in inputs}
        signals[output] = []
        for sample in samples:
            for name in inputs:
                signals[name].append(sample[name])
            signals[output].append(expression.evaluate(sample))
        return cls(signals=signals, output_names=[output])

    # ------------------------------------------------------------------ queries
    @property
    def input_names(self) -> list[str]:
        return [name for name in self.signals if name not in self.output_names]

    @property
    def num_samples(self) -> int:
        if not self.signals:
            return 0
        return min(len(values) for values in self.signals.values())

    def sample(self, index: int) -> dict[str, int]:
        """Return all signal values at sample ``index``."""
        return {name: values[index] for name, values in self.signals.items()}

    def to_truth_table(self) -> TruthTable:
        """Collapse the samples into a (possibly partial) truth table.

        Conflicting samples (same inputs, different output) keep the first
        occurrence, which mirrors how an engineer would read the chart.
        """
        inputs = self.input_names
        outputs = self.output_names
        table = TruthTable(inputs=inputs, outputs=outputs)
        seen: set[tuple[int, ...]] = set()
        for index in range(self.num_samples):
            sample = self.sample(index)
            key = tuple(sample[name] for name in inputs)
            if key in seen:
                continue
            seen.add(key)
            table.rows.append({name: sample[name] for name in inputs + outputs})
        return table

    # ------------------------------------------------------------------ rendering
    def to_prompt_text(self, include_time: bool = True) -> str:
        """Render in the prompt format (one line per signal)."""
        lines = [
            f"{name}: " + " ".join(str(value) for value in values)
            for name, values in self.signals.items()
        ]
        if include_time:
            lines.append("time(ns): " + " ".join(str(time) for time in self.times[: self.num_samples]))
        return "\n".join(lines)

    def interpret(self) -> str:
        """Produce the uniform instruction format of Table III."""
        inputs = self.input_names
        outputs = self.output_names
        variable_lines = [f"{index + 1}. {name}(input)" for index, name in enumerate(inputs)]
        variable_lines += [
            f"{len(inputs) + index + 1}. {name}(output)" for index, name in enumerate(outputs)
        ]
        lines = ["Variables: " + "; ".join(variable_lines), "Rules:"]
        for index in range(self.num_samples):
            sample = self.sample(index)
            time = self.times[index] if index < len(self.times) else 10 * index
            values = ", ".join(f"{name}={sample[name]}" for name in inputs + outputs)
            lines.append(f"When time is {time}ns, {values};")
        return "\n".join(lines)


def looks_like_waveform(text: str) -> bool:
    """Cheap check used by the symbolic detector."""
    lines = [line.strip() for line in text.splitlines() if line.strip()]
    signal_lines = 0
    for line in lines:
        if ":" not in line or "->" in line:
            continue
        name, _, rest = line.partition(":")
        samples = rest.split()
        if (
            name.strip()
            and len(samples) >= 3
            and all(sample in {"0", "1", "x", "z"} for sample in samples)
        ):
            signal_lines += 1
    return signal_lines >= 2


def parse_waveform(text: str) -> Waveform:
    """Parse the one-line-per-signal waveform format.

    Raises:
        WaveformError: if fewer than two signal lines are present.
    """
    signals: dict[str, list[int]] = {}
    times: list[int] = []
    for raw_line in text.splitlines():
        line = raw_line.strip()
        if ":" not in line or "->" in line:
            continue
        name, _, rest = line.partition(":")
        name = name.strip()
        samples = rest.replace("...", " ").split()
        if not name or not samples:
            continue
        if name.lower().startswith("time"):
            try:
                times = [int(sample) for sample in samples]
            except ValueError:
                continue
            continue
        try:
            values = [int(sample) for sample in samples]
        except ValueError:
            continue
        if all(value in (0, 1) for value in values):
            signals[name] = values
    if len(signals) < 2:
        raise WaveformError("no waveform chart found in text")
    length = min(len(values) for values in signals.values())
    signals = {name: values[:length] for name, values in signals.items()}
    return Waveform(signals=signals, times=times[:length] if times else [])
