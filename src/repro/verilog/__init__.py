"""Verilog language substrate: lexer, parser, AST, checker, analyzer, simulator.

This package is the reproduction's stand-in for the external HDL tooling the paper
relies on (the ``slang`` parser for topic matching and an industry-standard
compiler/simulator for verification and pass@k scoring).
"""

from . import ast_nodes
from .analyzer import AnalysisResult, Attribute, ModuleAnalyzer, Topic, analyze_module, analyze_source
from .design import (
    CacheStats,
    CompiledDesign,
    DesignDatabase,
    DesignKey,
    compile_design,
    get_default_database,
    set_default_database,
)
from .errors import (
    ElaborationError,
    LexerError,
    ParseError,
    SemanticError,
    SimulationError,
    VerilogError,
)
from .lexer import Lexer, tokenize
from .parser import Parser, parse_module, parse_source
from .syntax_checker import CompileResult, Diagnostic, SyntaxChecker, check_source, compiles
from .writer import VerilogWriter, write_module, write_source

__all__ = [
    "ast_nodes",
    "AnalysisResult",
    "Attribute",
    "ModuleAnalyzer",
    "Topic",
    "analyze_module",
    "analyze_source",
    "CacheStats",
    "CompiledDesign",
    "DesignDatabase",
    "DesignKey",
    "compile_design",
    "get_default_database",
    "set_default_database",
    "ElaborationError",
    "LexerError",
    "ParseError",
    "SemanticError",
    "SimulationError",
    "VerilogError",
    "Lexer",
    "tokenize",
    "Parser",
    "parse_module",
    "parse_source",
    "CompileResult",
    "Diagnostic",
    "SyntaxChecker",
    "check_source",
    "compiles",
    "VerilogWriter",
    "write_module",
    "write_source",
]
