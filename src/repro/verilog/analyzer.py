"""Topic and attribute analysis of Verilog modules.

This module stands in for ``slang`` in step 6 of the K-dataset generation flow
(Fig. 2 of the paper): given a Verilog module it identifies *topics* (the class of
hardware the module implements — FSM, counter, shift register, ALU, clock divider,
multiplexer, …) and *attributes* (Verilog-specific design features — synchronous vs
asynchronous reset, clock edge, enable polarity, combinational vs sequential).

Topics and attributes are matched against the curated exemplar library
(:mod:`repro.core.exemplars`) to decide which exemplar should guide the rewriting
of a vanilla instruction.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from . import ast_nodes as ast
from .parser import parse_module


class Topic(enum.Enum):
    """Hardware design topic detected in a module."""

    FSM = "fsm"
    COUNTER = "counter"
    SHIFT_REGISTER = "shift_register"
    ALU = "alu"
    CLOCK_DIVIDER = "clock_divider"
    MULTIPLEXER = "multiplexer"
    DECODER = "decoder"
    ENCODER = "encoder"
    ADDER = "adder"
    COMPARATOR = "comparator"
    REGISTER = "register"
    MEMORY = "memory"
    COMBINATIONAL = "combinational"


class Attribute(enum.Enum):
    """Verilog-specific design attribute detected in a module."""

    SYNC_RESET = "sync_reset"
    ASYNC_RESET = "async_reset"
    POSEDGE_CLOCK = "posedge_clock"
    NEGEDGE_CLOCK = "negedge_clock"
    ACTIVE_HIGH_ENABLE = "active_high_enable"
    ACTIVE_LOW_ENABLE = "active_low_enable"
    SEQUENTIAL = "sequential"
    COMBINATIONAL_ONLY = "combinational_only"
    PARAMETERIZED = "parameterized"


_CLOCK_NAMES = {"clk", "clock", "clk_in", "sysclk", "clk_i"}
_RESET_NAMES = {"rst", "reset", "rst_n", "reset_n", "arst", "arst_n", "nrst", "resetn", "rst_i"}
_ENABLE_NAMES = {"en", "enable", "ce", "en_i", "wen", "ren", "load_en"}

_TOPIC_NAME_HINTS: dict[Topic, tuple[str, ...]] = {
    Topic.FSM: ("fsm", "state_machine", "statemachine", "moore", "mealy", "sequencer"),
    Topic.COUNTER: ("counter", "count", "cnt"),
    Topic.SHIFT_REGISTER: ("shift", "shifter", "sipo", "piso", "lfsr"),
    Topic.ALU: ("alu", "arith_logic"),
    Topic.CLOCK_DIVIDER: ("clk_div", "clock_div", "divider", "clkdiv", "prescaler"),
    Topic.MULTIPLEXER: ("mux", "multiplexer", "selector"),
    Topic.DECODER: ("decoder", "decode", "demux"),
    Topic.ENCODER: ("encoder", "encode", "priority_enc"),
    Topic.ADDER: ("adder", "add", "sum", "subtractor"),
    Topic.COMPARATOR: ("comparator", "compare", "cmp"),
    Topic.REGISTER: ("register", "regfile", "dff", "flipflop", "flip_flop", "latch"),
    Topic.MEMORY: ("memory", "ram", "rom", "fifo"),
}


@dataclass
class AnalysisResult:
    """Topics and attributes extracted from a module."""

    module_name: str
    topics: set[Topic] = field(default_factory=set)
    attributes: set[Attribute] = field(default_factory=set)
    state_signals: list[str] = field(default_factory=list)
    clock_signals: list[str] = field(default_factory=list)
    reset_signals: list[str] = field(default_factory=list)
    enable_signals: list[str] = field(default_factory=list)

    @property
    def primary_topic(self) -> Topic:
        """The most specific detected topic, falling back to combinational logic."""
        priority = [
            Topic.FSM,
            Topic.ALU,
            Topic.SHIFT_REGISTER,
            Topic.CLOCK_DIVIDER,
            Topic.COUNTER,
            Topic.MEMORY,
            Topic.REGISTER,
            Topic.MULTIPLEXER,
            Topic.DECODER,
            Topic.ENCODER,
            Topic.ADDER,
            Topic.COMPARATOR,
            Topic.COMBINATIONAL,
        ]
        for topic in priority:
            if topic in self.topics:
                return topic
        return Topic.COMBINATIONAL

    def has_identifiable_topic(self) -> bool:
        """Whether a topic other than generic combinational logic was detected."""
        return bool(self.topics - {Topic.COMBINATIONAL})


class ModuleAnalyzer:
    """Analyze a parsed module for topics and attributes."""

    def analyze(self, module: ast.Module) -> AnalysisResult:
        """Analyze a module AST and return the detected topics and attributes."""
        result = AnalysisResult(module_name=module.name)
        names = self._gather_identifier_names(module)
        lowered_names = {name.lower() for name in names}
        lowered_module = module.name.lower()

        self._detect_clock_reset_enable(module, result)
        self._detect_structural_attributes(module, result)
        self._detect_topics_by_name(lowered_module, lowered_names, result)
        self._detect_topics_by_structure(module, result)
        if not result.topics:
            result.topics.add(Topic.COMBINATIONAL)
        return result

    def analyze_source(self, source: str, name: str | None = None) -> AnalysisResult:
        """Parse ``source`` and analyze the selected (or first) module."""
        return self.analyze(parse_module(source, name))

    # ------------------------------------------------------------------ helpers
    def _gather_identifier_names(self, module: ast.Module) -> set[str]:
        names: set[str] = set(module.port_names())
        for item in module.items:
            if isinstance(item, ast.NetDeclaration):
                names.update(item.names)
            elif isinstance(item, ast.ParameterDeclaration):
                names.update(item.names.keys())
        names.update(module.parameters.keys())
        return names

    def _detect_clock_reset_enable(self, module: ast.Module, result: AnalysisResult) -> None:
        for port in module.ports:
            lowered = port.name.lower()
            if lowered in _CLOCK_NAMES or lowered.startswith("clk"):
                result.clock_signals.append(port.name)
            elif lowered in _RESET_NAMES or "rst" in lowered or "reset" in lowered:
                result.reset_signals.append(port.name)
            elif lowered in _ENABLE_NAMES or lowered.endswith("_en") or lowered.startswith("en_"):
                result.enable_signals.append(port.name)

    def _detect_structural_attributes(self, module: ast.Module, result: AnalysisResult) -> None:
        has_sequential = False
        reset_in_sensitivity = False
        for item in module.items:
            if not isinstance(item, ast.AlwaysBlock):
                continue
            for entry in item.sensitivity:
                if entry.edge is ast.EdgeKind.POSEDGE:
                    name = _signal_name(entry.signal)
                    if name is not None and name in result.clock_signals:
                        result.attributes.add(Attribute.POSEDGE_CLOCK)
                        has_sequential = True
                    elif name is not None and (name in result.reset_signals):
                        reset_in_sensitivity = True
                elif entry.edge is ast.EdgeKind.NEGEDGE:
                    name = _signal_name(entry.signal)
                    if name is not None and name in result.clock_signals:
                        result.attributes.add(Attribute.NEGEDGE_CLOCK)
                        has_sequential = True
                    elif name is not None and name in result.reset_signals:
                        reset_in_sensitivity = True
        if has_sequential:
            result.attributes.add(Attribute.SEQUENTIAL)
            if result.reset_signals:
                if reset_in_sensitivity:
                    result.attributes.add(Attribute.ASYNC_RESET)
                else:
                    result.attributes.add(Attribute.SYNC_RESET)
        else:
            result.attributes.add(Attribute.COMBINATIONAL_ONLY)
        if result.enable_signals:
            active_low = any(name.lower().endswith("_n") or name.lower().startswith("n") for name in result.enable_signals)
            result.attributes.add(
                Attribute.ACTIVE_LOW_ENABLE if active_low else Attribute.ACTIVE_HIGH_ENABLE
            )
        if module.parameters:
            result.attributes.add(Attribute.PARAMETERIZED)

    def _detect_topics_by_name(
        self, module_name: str, identifier_names: set[str], result: AnalysisResult
    ) -> None:
        searchable = {module_name} | identifier_names
        for topic, hints in _TOPIC_NAME_HINTS.items():
            for hint in hints:
                if any(hint in name for name in searchable):
                    result.topics.add(topic)
                    break

    def _detect_topics_by_structure(self, module: ast.Module, result: AnalysisResult) -> None:
        state_like = [
            name
            for name in self._gather_identifier_names(module)
            if "state" in name.lower() or name.lower() in {"ps", "ns", "cs"}
        ]
        result.state_signals = sorted(state_like)
        has_case = _contains_case(module)
        if state_like and has_case:
            result.topics.add(Topic.FSM)
        if self._looks_like_counter(module):
            result.topics.add(Topic.COUNTER)
        if self._looks_like_shift_register(module):
            result.topics.add(Topic.SHIFT_REGISTER)
        if has_case and not state_like and len(module.ports) >= 3:
            # A case over an opcode-like input with arithmetic in the arms is ALU-like.
            if _case_contains_arithmetic(module):
                result.topics.add(Topic.ALU)

    def _looks_like_counter(self, module: ast.Module) -> bool:
        for item in module.items:
            if not isinstance(item, ast.AlwaysBlock):
                continue
            if not any(entry.edge in (ast.EdgeKind.POSEDGE, ast.EdgeKind.NEGEDGE) for entry in item.sensitivity):
                continue
            for assign in _iter_assignments(item.body):
                target = _signal_name(assign.target)
                value = assign.value
                if (
                    target is not None
                    and isinstance(value, ast.BinaryOp)
                    and value.op in ("+", "-")
                    and isinstance(value.left, ast.Identifier)
                    and value.left.name == target
                    and isinstance(value.right, ast.Number)
                ):
                    return True
        return False

    def _looks_like_shift_register(self, module: ast.Module) -> bool:
        for item in module.items:
            if not isinstance(item, ast.AlwaysBlock):
                continue
            for assign in _iter_assignments(item.body):
                target = _signal_name(assign.target)
                value = assign.value
                if target is None:
                    continue
                if isinstance(value, ast.Concat) and any(
                    isinstance(part, ast.PartSelect) and _signal_name(part.target) == target
                    for part in value.parts
                ):
                    return True
                if (
                    isinstance(value, ast.BinaryOp)
                    and value.op in ("<<", ">>", "<<<", ">>>")
                    and isinstance(value.left, ast.Identifier)
                    and value.left.name == target
                ):
                    return True
        return False


def _signal_name(expression: ast.Expression | None) -> str | None:
    if isinstance(expression, ast.Identifier):
        return expression.name
    if isinstance(expression, (ast.BitSelect, ast.PartSelect)):
        return _signal_name(expression.target)
    return None


def _iter_assignments(statement: ast.Statement | None):
    """Yield every blocking/non-blocking assignment below ``statement``."""
    if statement is None:
        return
    if isinstance(statement, (ast.BlockingAssign, ast.NonBlockingAssign)):
        yield statement
    elif isinstance(statement, ast.Block):
        for inner in statement.statements:
            yield from _iter_assignments(inner)
    elif isinstance(statement, ast.IfStatement):
        yield from _iter_assignments(statement.then_branch)
        yield from _iter_assignments(statement.else_branch)
    elif isinstance(statement, ast.CaseStatement):
        for item in statement.items:
            yield from _iter_assignments(item.body)
    elif isinstance(statement, (ast.ForLoop, ast.WhileLoop, ast.RepeatLoop)):
        yield from _iter_assignments(statement.body)
    elif isinstance(statement, (ast.DelayStatement, ast.EventWait)):
        yield from _iter_assignments(statement.body)


def _contains_case(module: ast.Module) -> bool:
    def statement_has_case(statement: ast.Statement | None) -> bool:
        if statement is None:
            return False
        if isinstance(statement, ast.CaseStatement):
            return True
        if isinstance(statement, ast.Block):
            return any(statement_has_case(inner) for inner in statement.statements)
        if isinstance(statement, ast.IfStatement):
            return statement_has_case(statement.then_branch) or statement_has_case(statement.else_branch)
        if isinstance(statement, (ast.ForLoop, ast.WhileLoop, ast.RepeatLoop, ast.DelayStatement, ast.EventWait)):
            return statement_has_case(statement.body)
        return False

    for item in module.items:
        if isinstance(item, (ast.AlwaysBlock, ast.InitialBlock)) and statement_has_case(item.body):
            return True
    return False


def _case_contains_arithmetic(module: ast.Module) -> bool:
    arithmetic_ops = {"+", "-", "*", "/", "%", "<<", ">>", "&", "|", "^"}

    def check_statement(statement: ast.Statement | None) -> bool:
        if statement is None:
            return False
        if isinstance(statement, ast.CaseStatement):
            count = 0
            for item in statement.items:
                for assign in _iter_assignments(item.body):
                    if isinstance(assign.value, ast.BinaryOp) and assign.value.op in arithmetic_ops:
                        count += 1
            return count >= 2
        if isinstance(statement, ast.Block):
            return any(check_statement(inner) for inner in statement.statements)
        if isinstance(statement, ast.IfStatement):
            return check_statement(statement.then_branch) or check_statement(statement.else_branch)
        return False

    for item in module.items:
        if isinstance(item, (ast.AlwaysBlock, ast.InitialBlock)) and check_statement(item.body):
            return True
    return False


def analyze_source(source: str, name: str | None = None) -> AnalysisResult:
    """Analyze the first (or named) module in ``source``."""
    return ModuleAnalyzer().analyze_source(source, name)


def analyze_module(module: ast.Module) -> AnalysisResult:
    """Analyze an already-parsed module."""
    return ModuleAnalyzer().analyze(module)
