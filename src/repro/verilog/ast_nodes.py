"""Typed AST node definitions for the Verilog-2001 subset.

All nodes are plain dataclasses.  The AST is intentionally close to the concrete
syntax so that :mod:`repro.verilog.writer` can regenerate readable source and the
analyzer/simulator can walk it without a lowering pass.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


# --------------------------------------------------------------------------- misc
class PortDirection(enum.Enum):
    """Direction of a module port."""

    INPUT = "input"
    OUTPUT = "output"
    INOUT = "inout"


class NetType(enum.Enum):
    """Data type of a declared net or variable."""

    WIRE = "wire"
    REG = "reg"
    INTEGER = "integer"


class EdgeKind(enum.Enum):
    """Edge qualifier inside a sensitivity list."""

    POSEDGE = "posedge"
    NEGEDGE = "negedge"
    LEVEL = "level"
    ANY = "any"  # ``always @(*)``


# --------------------------------------------------------------------------- expressions
@dataclass
class Expression:
    """Base class for all expression nodes."""


@dataclass
class Identifier(Expression):
    """A reference to a net, variable, parameter or genvar."""

    name: str


@dataclass
class Number(Expression):
    """A literal number.

    Attributes:
        value: integer value with ``x``/``z`` digits treated as 0 (``xz_mask`` records them).
        width: declared width, or ``None`` for unsized literals.
        base: one of ``b``, ``o``, ``d``, ``h`` or ``None`` for plain decimals.
        signed: whether the literal carries the ``s`` marker.
        xz_mask: bitmask of positions holding ``x``/``z`` digits.
        text: original literal text (used for faithful re-emission).
    """

    value: int
    width: int | None = None
    base: str | None = None
    signed: bool = False
    xz_mask: int = 0
    text: str | None = None


@dataclass
class StringLiteral(Expression):
    """A string literal (testbench/system-task contexts only)."""

    value: str


@dataclass
class UnaryOp(Expression):
    """A prefix unary operation such as ``~a`` or the reduction ``|bus``."""

    op: str
    operand: Expression


@dataclass
class BinaryOp(Expression):
    """A binary operation such as ``a + b`` or ``sel && en``."""

    op: str
    left: Expression
    right: Expression


@dataclass
class Ternary(Expression):
    """The conditional operator ``cond ? a : b``."""

    condition: Expression
    if_true: Expression
    if_false: Expression


@dataclass
class Concat(Expression):
    """A concatenation ``{a, b, c}``."""

    parts: list[Expression]


@dataclass
class Replication(Expression):
    """A replication ``{4{bit}}``."""

    count: Expression
    value: Expression


@dataclass
class BitSelect(Expression):
    """A single-bit select ``bus[i]``."""

    target: Expression
    index: Expression


@dataclass
class PartSelect(Expression):
    """A constant part select ``bus[msb:lsb]`` or indexed ``bus[i +: w]``."""

    target: Expression
    msb: Expression
    lsb: Expression
    mode: str = ":"  # ":", "+:", "-:"


@dataclass
class FunctionCall(Expression):
    """A call to a user function or system function (``$signed`` etc.)."""

    name: str
    args: list[Expression] = field(default_factory=list)


# --------------------------------------------------------------------------- statements
@dataclass
class Statement:
    """Base class for procedural statements."""


@dataclass
class Block(Statement):
    """A ``begin ... end`` block, optionally named."""

    statements: list[Statement] = field(default_factory=list)
    name: str | None = None


@dataclass
class BlockingAssign(Statement):
    """A blocking assignment ``lhs = rhs;``."""

    target: Expression
    value: Expression


@dataclass
class NonBlockingAssign(Statement):
    """A non-blocking assignment ``lhs <= rhs;``."""

    target: Expression
    value: Expression


@dataclass
class IfStatement(Statement):
    """An ``if``/``else`` statement."""

    condition: Expression
    then_branch: Statement | None
    else_branch: Statement | None = None


@dataclass
class CaseItem:
    """One arm of a case statement; ``expressions`` empty means ``default``."""

    expressions: list[Expression]
    body: Statement | None
    is_default: bool = False


@dataclass
class CaseStatement(Statement):
    """A ``case``/``casez``/``casex`` statement."""

    kind: str  # "case", "casez", "casex"
    subject: Expression
    items: list[CaseItem] = field(default_factory=list)


@dataclass
class ForLoop(Statement):
    """A procedural ``for`` loop with blocking-assignment init/step."""

    init: BlockingAssign
    condition: Expression
    step: BlockingAssign
    body: Statement | None


@dataclass
class WhileLoop(Statement):
    """A procedural ``while`` loop."""

    condition: Expression
    body: Statement | None


@dataclass
class RepeatLoop(Statement):
    """A ``repeat (n)`` loop."""

    count: Expression
    body: Statement | None


@dataclass
class DelayStatement(Statement):
    """A delayed statement ``#10 body`` (testbench contexts)."""

    delay: Expression
    body: Statement | None


@dataclass
class EventWait(Statement):
    """An event control statement ``@(posedge clk) body``."""

    events: list[SensitivityItem]
    body: Statement | None


@dataclass
class SystemTaskCall(Statement):
    """A system task invocation such as ``$display(...)`` or ``$finish;``."""

    name: str
    args: list[Expression] = field(default_factory=list)


@dataclass
class NullStatement(Statement):
    """An empty statement (bare ``;``)."""


# --------------------------------------------------------------------------- module items
@dataclass
class SensitivityItem:
    """One entry of a sensitivity list."""

    edge: EdgeKind
    signal: Expression | None  # ``None`` for ``@(*)``


@dataclass
class Range:
    """A packed vector range ``[msb:lsb]``."""

    msb: Expression
    lsb: Expression


@dataclass
class ModuleItem:
    """Base class for items appearing directly inside a module body."""


@dataclass
class Port:
    """A module port, possibly with an inline declaration (ANSI style)."""

    name: str
    direction: PortDirection | None = None
    net_type: NetType | None = None
    range: Range | None = None
    signed: bool = False


@dataclass
class NetDeclaration(ModuleItem):
    """A ``wire``/``reg``/``integer`` declaration (possibly with initialiser)."""

    net_type: NetType
    names: list[str]
    range: Range | None = None
    signed: bool = False
    array_range: Range | None = None
    initial_values: dict[str, Expression] = field(default_factory=dict)


@dataclass
class PortDeclaration(ModuleItem):
    """A non-ANSI port direction declaration inside the module body."""

    direction: PortDirection
    names: list[str]
    net_type: NetType | None = None
    range: Range | None = None
    signed: bool = False


@dataclass
class ParameterDeclaration(ModuleItem):
    """A ``parameter`` or ``localparam`` declaration."""

    names: dict[str, Expression]
    local: bool = False
    range: Range | None = None
    signed: bool = False


@dataclass
class ContinuousAssign(ModuleItem):
    """A continuous assignment ``assign lhs = rhs;``."""

    target: Expression
    value: Expression


@dataclass
class AlwaysBlock(ModuleItem):
    """An ``always`` block with its sensitivity list and body."""

    sensitivity: list[SensitivityItem]
    body: Statement | None


@dataclass
class InitialBlock(ModuleItem):
    """An ``initial`` block (used by testbench-style code and initialisation)."""

    body: Statement | None


@dataclass
class PortConnection:
    """A port connection inside a module instantiation."""

    port: str | None  # ``None`` for positional connections
    expression: Expression | None


@dataclass
class ModuleInstance(ModuleItem):
    """A module instantiation."""

    module_name: str
    instance_name: str
    connections: list[PortConnection] = field(default_factory=list)
    parameter_overrides: list[PortConnection] = field(default_factory=list)


@dataclass
class GenvarDeclaration(ModuleItem):
    """A ``genvar`` declaration (kept for syntax acceptance)."""

    names: list[str]


@dataclass
class FunctionDeclaration(ModuleItem):
    """A Verilog ``function`` definition."""

    name: str
    range: Range | None
    inputs: list[PortDeclaration]
    locals: list[NetDeclaration]
    body: Statement | None


@dataclass
class Module:
    """A Verilog module definition."""

    name: str
    ports: list[Port] = field(default_factory=list)
    items: list[ModuleItem] = field(default_factory=list)
    parameters: dict[str, Expression] = field(default_factory=dict)

    def port_names(self) -> list[str]:
        """Return the declared port names in declaration order."""
        return [port.name for port in self.ports]

    def find_items(self, item_type: type) -> list[ModuleItem]:
        """Return all module items of the given type."""
        return [item for item in self.items if isinstance(item, item_type)]


@dataclass
class SourceFile:
    """A parsed source file: an ordered collection of modules."""

    modules: list[Module] = field(default_factory=list)

    def find_module(self, name: str) -> Module | None:
        """Return the module with the given name, or ``None``."""
        for module in self.modules:
            if module.name == name:
                return module
        return None
