"""Straight-line Python code generation for batched Verilog simulation.

The batch interpreter (:mod:`repro.verilog.simulator.batch`) walks AST nodes
per expression per settle iteration and allocates a
:class:`~repro.verilog.simulator.values.BatchVector` per operator.  For the
large class of designs whose constructs all have a straight-line form, this
module lowers the elaborated processes once into a specialised Python
function over bare integer columns — no AST, no objects, no four-state
planes — which ``compile()``s once and is cached process-wide by source text.

Two-state soundness
-------------------

Generated code is *two-state*: it tracks value columns only and assumes every
bit it consumes is 0/1.  That is sound because

* designs whose semantics inherently produce x/z (undef sources, inferred
  latches, x/z literals, out-of-range selects, division) are **rejected at
  generation time** with a recorded reason, and
* at every call the runtime checks a *gate set* — the signals the generated
  code reads from outside its own recomputation, plus every write target
  whose old value can survive a masked merge — and falls back to the
  interpreter for that call while any of them still carries x/z bits.

Under those two conditions the generated settle loop reaches exactly the
fixpoint the interpreter reaches (same process order, same iterate-until-
stable loop, same masked-merge algebra on the value planes), so the
interpreter remains a bit-exact differential oracle.

Fallbacks — both design-level rejections and per-call x/z gates — are
recorded in a process-wide registry (:func:`fallback_stats`) surfaced by the
evaluator and the service ``/metrics`` endpoint.
"""

from __future__ import annotations

import re
import threading
from dataclasses import dataclass

from ..deadline import check_deadline
from . import ast_nodes as ast
from .simulator.eval import EvalContext, ExpressionEvaluator
from .simulator.scheduler import Process, ProcessKind
from .simulator.simulator import (
    MAX_SETTLE_ITERATIONS,
    ElaboratedModule,
    SimulationError,
)
from .simulator.values import BatchVector

__all__ = [
    "CodegenArtifact",
    "CodegenRuntime",
    "UnsupportedConstruct",
    "export_bittables",
    "fallback_stats",
    "generate",
    "record_fallback",
    "reset_fallback_stats",
]

#: Reject designs whose referenced signals are wider than this: the lowering
#: is bit-unrolled, so pathological widths would explode the generated code.
MAX_SIGNAL_WIDTH = 256

#: Reject generated functions longer than this many lines (runaway designs).
MAX_GENERATED_LINES = 40_000

#: Per-call fallback reason recorded when the x/z gate fails.
XZ_STATE = "xz-state"


# ---------------------------------------------------------------------------
# fallback registry (process-wide; mirrored into /metrics)
# ---------------------------------------------------------------------------

_REGISTRY_LOCK = threading.Lock()
_FALLBACK_REASONS: dict[str, int] = {}
_FALLBACK_DESIGNS: dict[str, dict[str, int]] = {}


def record_fallback(design: str, reason: str) -> None:
    """Count one interpreter fallback for ``design`` with ``reason``."""
    with _REGISTRY_LOCK:
        _FALLBACK_REASONS[reason] = _FALLBACK_REASONS.get(reason, 0) + 1
        per_design = _FALLBACK_DESIGNS.setdefault(design, {})
        per_design[reason] = per_design.get(reason, 0) + 1


def fallback_stats() -> dict:
    """Snapshot of recorded fallbacks: total, by reason, and by design."""
    with _REGISTRY_LOCK:
        return {
            "total": sum(_FALLBACK_REASONS.values()),
            "reasons": dict(sorted(_FALLBACK_REASONS.items())),
            "designs": {
                design: dict(sorted(reasons.items()))
                for design, reasons in sorted(_FALLBACK_DESIGNS.items())
            },
        }


def reset_fallback_stats() -> None:
    with _REGISTRY_LOCK:
        _FALLBACK_REASONS.clear()
        _FALLBACK_DESIGNS.clear()


# ---------------------------------------------------------------------------
# compiled-function cache (keyed by source text; artifacts only carry strings)
# ---------------------------------------------------------------------------

_COMPILE_LOCK = threading.Lock()
_COMPILE_CACHE: dict[str, object] = {}


def _compiled_function(source: str, name: str):
    with _COMPILE_LOCK:
        fn = _COMPILE_CACHE.get(source)
    if fn is None:
        namespace: dict = {}
        exec(compile(source, f"<codegen:{name}>", "exec"), namespace)
        fn = namespace[name]
        with _COMPILE_LOCK:
            _COMPILE_CACHE[source] = fn
    return fn


# ---------------------------------------------------------------------------
# artifact
# ---------------------------------------------------------------------------


class UnsupportedConstruct(Exception):
    """Raised during generation when a construct has no straight-line form."""

    def __init__(self, reason: str):
        super().__init__(reason)
        self.reason = reason


@dataclass(frozen=True)
class CodegenArtifact:
    """Picklable result of lowering one elaborated design.

    Only source text and signal lists are stored (code objects do not
    pickle); the compiled functions are cached process-wide by source text.
    A rejected design carries ``reject_reason`` and nothing else.
    """

    reject_reason: str | None = None
    settle_source: str | None = None
    sequential_source: str | None = None
    #: Signals (name, width) flattened into the settle state tuple, in order.
    settle_state: tuple[tuple[str, int], ...] = ()
    #: Signals the settle function may modify (suffix of its return tuple).
    settle_writes: tuple[tuple[str, int], ...] = ()
    #: Signals that must be x/z-free for the settle call to be sound.
    settle_gate: tuple[str, ...] = ()
    seq_state: tuple[tuple[str, int], ...] = ()
    seq_writes: tuple[tuple[str, int], ...] = ()
    seq_gate: tuple[str, ...] = ()

    @property
    def supported(self) -> bool:
        return self.reject_reason is None


def generate(
    design: ElaboratedModule,
    *,
    has_latch_risk: bool = False,
    undef_sources: tuple[str, ...] | frozenset[str] = (),
) -> CodegenArtifact:
    """Lower ``design`` to straight-line Python, or record why it cannot be."""
    try:
        return _Generator(design, has_latch_risk, tuple(undef_sources)).build()
    except UnsupportedConstruct as exc:
        return CodegenArtifact(reject_reason=exc.reason)


# ---------------------------------------------------------------------------
# generation
# ---------------------------------------------------------------------------

_ATOM_RE = re.compile(r"\A[A-Za-z_][A-Za-z0-9_]*\Z")


def _not(a: str) -> str:
    if a == "0":
        return "FULL"
    if a == "FULL":
        return "0"
    return f"({a} ^ FULL)"


def _and(a: str, b: str) -> str:
    if a == "0" or b == "0":
        return "0"
    if a == "FULL":
        return b
    if b == "FULL":
        return a
    return f"({a} & {b})"


def _or(a: str, b: str) -> str:
    if a == "FULL" or b == "FULL":
        return "FULL"
    if a == "0":
        return b
    if b == "0":
        return a
    return f"({a} | {b})"


def _xor(a: str, b: str) -> str:
    if a == "0":
        return b
    if b == "0":
        return a
    if a == "FULL":
        return _not(b)
    if b == "FULL":
        return _not(a)
    return f"({a} ^ {b})"


def _zext(cols: list[str], width: int) -> list[str]:
    if len(cols) >= width:
        return cols[:width]
    return cols + ["0"] * (width - len(cols))


class _Writer:
    """Collects straight-line statements and allocates fresh temporaries."""

    def __init__(self):
        self.lines: list[str] = []
        self._counter = 0

    def fresh(self) -> str:
        self._counter += 1
        return f"_t{self._counter}"

    def emit(self, line: str) -> None:
        self.lines.append(line)
        if len(self.lines) > MAX_GENERATED_LINES:
            raise UnsupportedConstruct("code-size")

    def atom(self, expr: str) -> str:
        """Bind ``expr`` to a temp unless it is already an atom."""
        if expr in ("0", "FULL") or _ATOM_RE.match(expr):
            return expr
        name = self.fresh()
        self.emit(f"{name} = {expr}")
        return name


class _ProcessScan:
    """Read/write analysis of one process (see :meth:`_Generator._scan`)."""

    def __init__(self):
        #: Signals read before being definitely assigned in this process.
        self.external_reads: set[str] = set()
        #: Base names of every assignment target (including partial selects).
        self.writes: set[str] = set()
        #: Signals fully and unconditionally assigned via a plain identifier.
        self.full_defined: set[str] = set()


class _Generator:
    def __init__(
        self,
        design: ElaboratedModule,
        has_latch_risk: bool,
        undef_sources: tuple[str, ...],
    ):
        self.design = design
        self.has_latch_risk = has_latch_risk
        self.undef_sources = undef_sources
        self.widths: dict[str, int] = dict(design.store.widths)
        self.parameters: dict[str, int] = dict(design.parameters)
        self._const_eval = ExpressionEvaluator(
            EvalContext(parameters=self.parameters, functions=dict(design.functions))
        )
        names = sorted(self.widths)
        self.varname = {name: f"s{index}" for index, name in enumerate(names)}
        self.signal_vars = {
            f"{base}_{bit}"
            for name, base in self.varname.items()
            for bit in range(self.widths[name])
        }

    # ------------------------------------------------------------------ public
    def build(self) -> CodegenArtifact:
        if self.has_latch_risk:
            raise UnsupportedConstruct("latch")
        if self.undef_sources:
            raise UnsupportedConstruct("undef-source")
        comb = [p for p in self.design.processes if p.kind is ProcessKind.COMBINATIONAL]
        seq = [p for p in self.design.processes if p.kind is ProcessKind.SEQUENTIAL]

        comb_scans = [self._scan(p, nonblocking_defines=True) for p in comb]
        seq_scans = [self._scan(p, nonblocking_defines=False) for p in seq]
        self._reject_comb_cycles(comb_scans)

        referenced: set[str] = set()
        for scan in comb_scans + seq_scans:
            referenced |= scan.external_reads | scan.writes
        for name in referenced:
            if self.widths[name] > MAX_SIGNAL_WIDTH:
                raise UnsupportedConstruct("wide-signal")

        settle_source, settle_state, settle_writes = self._build_settle(comb, comb_scans)
        seq_source, seq_state, seq_writes = self._build_sequential(seq, seq_scans)

        comb_defined: set[str] = set()
        for scan in comb_scans:
            comb_defined |= scan.full_defined
        settle_gate: set[str] = set()
        for scan in comb_scans:
            settle_gate |= scan.external_reads
            settle_gate |= scan.writes - scan.full_defined
        settle_gate -= comb_defined
        seq_gate: set[str] = set()
        for scan in seq_scans:
            # Old values of sequential targets survive masked merges, so they
            # must be defined too, not just the signals the process reads.
            seq_gate |= scan.external_reads | scan.writes

        return CodegenArtifact(
            settle_source=settle_source,
            sequential_source=seq_source,
            settle_state=settle_state,
            settle_writes=settle_writes,
            settle_gate=tuple(sorted(settle_gate)),
            seq_state=seq_state,
            seq_writes=seq_writes,
            seq_gate=tuple(sorted(seq_gate)),
        )

    # ------------------------------------------------------------------ analysis
    def _scan(self, process: Process, *, nonblocking_defines: bool) -> _ProcessScan:
        scan = _ProcessScan()
        defined = self._scan_statement(
            process.body, set(), scan, nonblocking_defines=nonblocking_defines
        )
        scan.full_defined = defined
        return scan

    def _scan_statement(
        self,
        statement: ast.Statement | None,
        defined: set[str],
        scan: _ProcessScan,
        *,
        nonblocking_defines: bool,
    ) -> set[str]:
        if statement is None or isinstance(statement, ast.NullStatement):
            return defined
        if isinstance(statement, ast.Block):
            for inner in statement.statements:
                defined = self._scan_statement(
                    inner, defined, scan, nonblocking_defines=nonblocking_defines
                )
            return defined
        if isinstance(statement, (ast.BlockingAssign, ast.NonBlockingAssign)):
            self._scan_reads(statement.value, defined, scan)
            self._scan_target(statement.target, defined, scan)
            counts = isinstance(statement, ast.BlockingAssign) or nonblocking_defines
            if counts and isinstance(statement.target, ast.Identifier):
                defined = defined | {statement.target.name}
            return defined
        if isinstance(statement, ast.IfStatement):
            self._scan_reads(statement.condition, defined, scan)
            then_defined = self._scan_statement(
                statement.then_branch, set(defined), scan,
                nonblocking_defines=nonblocking_defines,
            )
            else_defined = self._scan_statement(
                statement.else_branch, set(defined), scan,
                nonblocking_defines=nonblocking_defines,
            )
            return then_defined & else_defined
        if isinstance(statement, ast.CaseStatement):
            self._scan_reads(statement.subject, defined, scan)
            arm_defined: list[set[str]] = []
            has_default = False
            for item in statement.items:
                for expression in item.expressions:
                    self._scan_reads(expression, defined, scan)
                arm_defined.append(
                    self._scan_statement(
                        item.body, set(defined), scan,
                        nonblocking_defines=nonblocking_defines,
                    )
                )
                has_default = has_default or item.is_default
            if has_default and arm_defined:
                result = set(arm_defined[0])
                for other in arm_defined[1:]:
                    result &= other
                return result
            return defined
        if isinstance(statement, (ast.DelayStatement, ast.EventWait)):
            return self._scan_statement(
                statement.body, defined, scan, nonblocking_defines=nonblocking_defines
            )
        if isinstance(statement, (ast.ForLoop, ast.WhileLoop, ast.RepeatLoop)):
            raise UnsupportedConstruct("loop")
        if isinstance(statement, ast.SystemTaskCall):
            raise UnsupportedConstruct("system-task")
        raise UnsupportedConstruct(f"statement:{type(statement).__name__}")

    def _scan_target(
        self, target: ast.Expression, defined: set[str], scan: _ProcessScan
    ) -> None:
        if isinstance(target, ast.Identifier):
            if target.name not in self.widths:
                raise UnsupportedConstruct("unknown-identifier")
            scan.writes.add(target.name)
            return
        if isinstance(target, ast.BitSelect):
            self._scan_reads(target.index, defined, scan)
            self._scan_select_base(target.target, defined, scan)
            return
        if isinstance(target, ast.PartSelect):
            self._scan_reads(target.msb, defined, scan)
            self._scan_reads(target.lsb, defined, scan)
            self._scan_select_base(target.target, defined, scan)
            return
        if isinstance(target, ast.Concat):
            for part in target.parts:
                self._scan_target(part, defined, scan)
            return
        raise UnsupportedConstruct(f"target:{type(target).__name__}")

    def _scan_select_base(
        self, base: ast.Expression, defined: set[str], scan: _ProcessScan
    ) -> None:
        if not isinstance(base, ast.Identifier) or base.name not in self.widths:
            raise UnsupportedConstruct("select-target")
        scan.writes.add(base.name)
        # A partial write merges with the old value, which therefore counts
        # as a read unless the whole signal was already definitely assigned.
        if base.name not in defined:
            scan.external_reads.add(base.name)

    def _scan_reads(
        self, node: ast.Expression | None, defined: set[str], scan: _ProcessScan
    ) -> None:
        if node is None:
            return
        if isinstance(node, ast.Identifier):
            if node.name in self.widths and node.name not in defined:
                scan.external_reads.add(node.name)
            return
        if isinstance(node, (ast.Number, ast.StringLiteral)):
            return
        if isinstance(node, ast.UnaryOp):
            self._scan_reads(node.operand, defined, scan)
            return
        if isinstance(node, ast.BinaryOp):
            self._scan_reads(node.left, defined, scan)
            self._scan_reads(node.right, defined, scan)
            return
        if isinstance(node, ast.Ternary):
            self._scan_reads(node.condition, defined, scan)
            self._scan_reads(node.if_true, defined, scan)
            self._scan_reads(node.if_false, defined, scan)
            return
        if isinstance(node, ast.Concat):
            for part in node.parts:
                self._scan_reads(part, defined, scan)
            return
        if isinstance(node, ast.Replication):
            self._scan_reads(node.count, defined, scan)
            self._scan_reads(node.value, defined, scan)
            return
        if isinstance(node, ast.BitSelect):
            self._scan_reads(node.target, defined, scan)
            self._scan_reads(node.index, defined, scan)
            return
        if isinstance(node, ast.PartSelect):
            self._scan_reads(node.target, defined, scan)
            self._scan_reads(node.msb, defined, scan)
            self._scan_reads(node.lsb, defined, scan)
            return
        if isinstance(node, ast.FunctionCall):
            for argument in node.args:
                self._scan_reads(argument, defined, scan)
            return
        raise UnsupportedConstruct(f"expression:{type(node).__name__}")

    def _reject_comb_cycles(self, scans: list[_ProcessScan]) -> None:
        """Reject combinational feedback: the two-state fixpoint can differ.

        The interpreter leaves a feedback loop at x (no change, settles
        immediately); the value-plane-only generated code would settle it at
        an arbitrary defined value.  Acyclic dataflow converges identically
        in both engines, so only true cycles among comb-written signals need
        rejecting.
        """
        edges: dict[str, set[str]] = {}
        written: set[str] = set()
        for scan in scans:
            written |= scan.writes
        for scan in scans:
            for source in scan.external_reads & written:
                edges.setdefault(source, set()).update(scan.writes)
        state: dict[str, int] = {}  # 1 = on stack, 2 = done

        def visit(node: str) -> None:
            state[node] = 1
            for nxt in edges.get(node, ()):
                mark = state.get(nxt)
                if mark == 1:
                    raise UnsupportedConstruct("comb-cycle")
                if mark is None:
                    visit(nxt)
            state[node] = 2

        for node in sorted(edges):
            if node not in state:
                visit(node)

    # ------------------------------------------------------------------ helpers
    def const_int(self, node: ast.Expression) -> int | None:
        """Evaluate a parameter/number-constant expression, else ``None``."""
        try:
            value = self._const_eval.evaluate(node)
        except SimulationError:
            return None
        if value.has_unknown:
            return None
        return value.to_int()

    def state_vars(self, state: tuple[tuple[str, int], ...]) -> list[str]:
        names = []
        for name, width in state:
            base = self.varname[name]
            names.extend(f"{base}_{bit}" for bit in range(width))
        return names

    # ------------------------------------------------------------------ settle
    def _build_settle(
        self, processes: list[Process], scans: list[_ProcessScan]
    ) -> tuple[str, tuple[tuple[str, int], ...], tuple[tuple[str, int], ...]]:
        referenced: set[str] = set()
        writes: set[str] = set()
        for scan in scans:
            referenced |= scan.external_reads | scan.writes
            writes |= scan.writes
        state = tuple((name, self.widths[name]) for name in sorted(referenced))
        write_state = tuple((name, self.widths[name]) for name in sorted(writes))

        writer = _Writer()
        lowerer = _Lowerer(self, writer)
        for process, scan in zip(processes, scans):
            write_vars = self.state_vars(
                tuple((name, self.widths[name]) for name in sorted(scan.writes))
            )
            saves = [writer.fresh() for _ in write_vars]
            for save, var in zip(saves, write_vars):
                writer.emit(f"{save} = {var}")
            lowerer.statement(process.body, "FULL", nonblocking=False)
            if write_vars:
                comparison = " or ".join(
                    f"{var} != {save}" for var, save in zip(write_vars, saves)
                )
                writer.emit(f"_chg = _chg or {comparison}")

        state_vars = self.state_vars(state)
        return_vars = self.state_vars(write_state)
        lines = ["def codegen_settle(state, FULL, check_deadline, SimulationError):"]
        if state_vars:
            lines.append(f"    ({', '.join(state_vars)},) = state")
        lines.append(f"    for _pass in range({MAX_SETTLE_ITERATIONS}):")
        lines.append('        check_deadline("BatchSimulator.codegen_settle")')
        lines.append("        _chg = False")
        lines.extend(f"        {line}" for line in writer.lines)
        lines.append("        if not _chg:")
        lines.append("            break")
        lines.append("    else:")
        lines.append("        raise SimulationError(")
        lines.append(
            f'            "combinational signals failed to settle after '
            f'{MAX_SETTLE_ITERATIONS} iterations (codegen)")'
        )
        if return_vars:
            lines.append(f"    return ({', '.join(return_vars)},)")
        else:
            lines.append("    return ()")
        return "\n".join(lines) + "\n", state, write_state

    # ------------------------------------------------------------------ sequential
    def _build_sequential(
        self, processes: list[Process], scans: list[_ProcessScan]
    ) -> tuple[str, tuple[tuple[str, int], ...], tuple[tuple[str, int], ...]]:
        referenced: set[str] = set()
        writes: set[str] = set()
        for scan in scans:
            referenced |= scan.external_reads | scan.writes
            writes |= scan.writes
        state = tuple((name, self.widths[name]) for name in sorted(referenced))
        write_state = tuple((name, self.widths[name]) for name in sorted(writes))

        writer = _Writer()
        lowerer = _Lowerer(self, writer)
        for index, process in enumerate(processes):
            writer.emit(f"_m{index} = masks[{index}]")
            lowerer.statement(process.body, f"_m{index}", nonblocking=True)
        lowerer.emit_commits()

        state_vars = self.state_vars(state)
        return_vars = self.state_vars(write_state)
        lines = ["def codegen_sequential(state, masks, FULL):"]
        if state_vars:
            lines.append(f"    ({', '.join(state_vars)},) = state")
        lines.extend(f"    {line}" for line in writer.lines)
        if return_vars:
            lines.append(f"    return ({', '.join(return_vars)},)")
        else:
            lines.append("    return ()")
        return "\n".join(lines) + "\n", state, write_state


# ---------------------------------------------------------------------------
# expression/statement lowering
# ---------------------------------------------------------------------------


class _Lowerer:
    """Lowers statements into a writer as masked two-state column algebra."""

    def __init__(self, gen: _Generator, writer: _Writer):
        self.gen = gen
        self.writer = writer
        self._mask_inv: dict[str, str] = {}
        #: Non-blocking commits: (target, rhs_width, rhs_cols, mask_atom).
        self._commits: list[tuple[ast.Expression, int, list[str], str]] = []

    # -------------------------------------------------------------- expressions
    def lower(self, node: ast.Expression) -> tuple[int, list[str]]:
        if isinstance(node, ast.Number):
            if node.xz_mask:
                raise UnsupportedConstruct("xz-literal")
            width = node.width if node.width is not None else 32
            return width, self._const_cols(node.value, width)
        if isinstance(node, ast.Identifier):
            name = node.name
            if name in self.gen.widths:
                base = self.gen.varname[name]
                width = self.gen.widths[name]
                return width, [f"{base}_{bit}" for bit in range(width)]
            if name in self.gen.parameters:
                return 32, self._const_cols(self.gen.parameters[name], 32)
            raise UnsupportedConstruct("unknown-identifier")
        if isinstance(node, ast.UnaryOp):
            return self._lower_unary(node)
        if isinstance(node, ast.BinaryOp):
            return self._lower_binary(node)
        if isinstance(node, ast.Ternary):
            return self._lower_ternary(node)
        if isinstance(node, ast.Concat):
            parts = [self.lower(part) for part in node.parts]
            cols: list[str] = []
            for _, part_cols in reversed(parts):
                cols.extend(part_cols)
            return sum(width for width, _ in parts), cols
        if isinstance(node, ast.Replication):
            count = self.gen.const_int(node.count)
            if count is None or count <= 0:
                raise UnsupportedConstruct("non-constant-replication")
            width, cols = self.lower(node.value)
            return width * count, cols * count
        if isinstance(node, ast.BitSelect):
            width, cols = self.lower(node.target)
            index = self.gen.const_int(node.index)
            if index is None:
                raise UnsupportedConstruct("non-constant-select")
            if not 0 <= index < width:
                raise UnsupportedConstruct("select-out-of-range")
            return 1, [cols[index]]
        if isinstance(node, ast.PartSelect):
            return self._lower_part_select(node)
        if isinstance(node, ast.FunctionCall):
            return self._lower_call(node)
        raise UnsupportedConstruct(f"expression:{type(node).__name__}")

    def _const_cols(self, value: int, width: int) -> list[str]:
        value &= (1 << width) - 1
        return ["FULL" if (value >> bit) & 1 else "0" for bit in range(width)]

    def _truth(self, cols: list[str]) -> str:
        expr = "0"
        for col in cols:
            expr = _or(expr, col)
        return self.writer.atom(expr)

    def _lower_unary(self, node: ast.UnaryOp) -> tuple[int, list[str]]:
        op = node.op
        width, cols = self.lower(node.operand)
        if op == "+":
            return width, cols
        if op == "-":
            carry = "FULL"
            out: list[str] = []
            for col in cols:
                inverted = self.writer.atom(_not(col))
                out.append(self.writer.atom(_xor(inverted, carry)))
                carry = self.writer.atom(_and(inverted, carry))
            return width, out
        if op == "~":
            return width, [self.writer.atom(_not(col)) for col in cols]
        if op == "!":
            return 1, [self.writer.atom(_not(self._truth(cols)))]
        if op in ("&", "~&", "|", "~|", "^", "~^", "^~"):
            fold = _and if op in ("&", "~&") else _or if op in ("|", "~|") else _xor
            expr = cols[0]
            for col in cols[1:]:
                expr = fold(expr, col)
            if op in ("~&", "~|", "~^", "^~"):
                expr = _not(self.writer.atom(expr))
            return 1, [self.writer.atom(expr)]
        raise UnsupportedConstruct(f"operator:{op}")

    def _lower_binary(self, node: ast.BinaryOp) -> tuple[int, list[str]]:
        op = node.op
        if op in ("*", "/", "%", "**"):
            raise UnsupportedConstruct("mul-div-mod")
        if op in ("<<", ">>", "<<<", ">>>"):
            return self._lower_shift(node)
        left_width, left_cols = self.lower(node.left)
        right_width, right_cols = self.lower(node.right)
        if op in ("&&", "||"):
            fold = _and if op == "&&" else _or
            return 1, [
                self.writer.atom(fold(self._truth(left_cols), self._truth(right_cols)))
            ]
        width = max(left_width, right_width)
        a = _zext(left_cols, width)
        b = _zext(right_cols, width)
        if op in ("==", "!=", "===", "!=="):
            diff = "0"
            for lhs, rhs in zip(a, b):
                diff = _or(diff, self.writer.atom(_xor(lhs, rhs)))
            diff = self.writer.atom(diff)
            return 1, [diff if op in ("!=", "!==") else self.writer.atom(_not(diff))]
        if op in ("<", "<=", ">", ">="):
            if op in (">", ">="):
                a, b = b, a
            lt, eq = "0", "FULL"
            for lhs, rhs in zip(reversed(a), reversed(b)):
                lt = self.writer.atom(_or(lt, _and(eq, _and(_not(lhs), rhs))))
                eq = self.writer.atom(_and(eq, _not(_xor(lhs, rhs))))
            if op in ("<=", ">="):
                return 1, [self.writer.atom(_or(lt, eq))]
            return 1, [lt]
        if op in ("+", "-"):
            result_width = width + 1
            a = _zext(left_cols, result_width)
            b = _zext(right_cols, result_width)
            if op == "-":
                b = [self.writer.atom(_not(col)) for col in b]
            carry = "0" if op == "+" else "FULL"
            out: list[str] = []
            for lhs, rhs in zip(a, b):
                axb = self.writer.atom(_xor(lhs, rhs))
                out.append(self.writer.atom(_xor(axb, carry)))
                carry = self.writer.atom(_or(_and(lhs, rhs), _and(carry, axb)))
            return result_width, out
        if op in ("&", "|", "^", "~^", "^~"):
            fold = _and if op == "&" else _or if op == "|" else _xor
            out = [self.writer.atom(fold(lhs, rhs)) for lhs, rhs in zip(a, b)]
            if op in ("~^", "^~"):
                out = [self.writer.atom(_not(col)) for col in out]
            return width, out
        raise UnsupportedConstruct(f"operator:{op}")

    def _lower_shift(self, node: ast.BinaryOp) -> tuple[int, list[str]]:
        width, cols = self.lower(node.left)
        amount = self.gen.const_int(node.right)
        if amount is None:
            raise UnsupportedConstruct("non-constant-shift")
        if node.op in ("<<", "<<<"):
            shifted = ["0"] * min(amount, width) + cols[: max(0, width - amount)]
        elif node.op == ">>":
            shifted = cols[amount:] + ["0"] * min(amount, width)
        else:  # >>> arithmetic: fill from the sign column
            sign = cols[width - 1]
            shifted = cols[amount:] + [sign] * min(amount, width)
        return width, shifted

    def _lower_ternary(self, node: ast.Ternary) -> tuple[int, list[str]]:
        _, cond_cols = self.lower(node.condition)
        truth = self._truth(cond_cols)
        inverse = self.writer.atom(_not(truth))
        true_width, true_cols = self.lower(node.if_true)
        false_width, false_cols = self.lower(node.if_false)
        width = max(true_width, false_width)
        t = _zext(true_cols, width)
        f = _zext(false_cols, width)
        return width, [
            self.writer.atom(_or(_and(tv, truth), _and(fv, inverse)))
            for tv, fv in zip(t, f)
        ]

    def _lower_part_select(self, node: ast.PartSelect) -> tuple[int, list[str]]:
        width, cols = self.lower(node.target)
        first = self.gen.const_int(node.msb)
        second = self.gen.const_int(node.lsb)
        if first is None or second is None:
            raise UnsupportedConstruct("non-constant-select")
        msb, lsb = _part_bounds(node.mode, first, second)
        if not 0 <= lsb <= msb < width:
            raise UnsupportedConstruct("select-out-of-range")
        return msb - lsb + 1, cols[lsb : msb + 1]

    def _lower_call(self, node: ast.FunctionCall) -> tuple[int, list[str]]:
        name = node.name
        if name in ("$signed", "$unsigned") and len(node.args) == 1:
            return self.lower(node.args[0])
        if name == "$clog2" and len(node.args) == 1:
            value = self.gen.const_int(node.args[0])
            if value is None:
                raise UnsupportedConstruct("system-function")
            return 32, self._const_cols(max(0, (value - 1).bit_length()), 32)
        if name.startswith("$"):
            raise UnsupportedConstruct("system-function")
        raise UnsupportedConstruct("user-function")

    # -------------------------------------------------------------- statements
    def statement(
        self, node: ast.Statement | None, mask: str, *, nonblocking: bool
    ) -> None:
        if node is None or isinstance(node, ast.NullStatement) or mask == "0":
            return
        if isinstance(node, ast.Block):
            for inner in node.statements:
                self.statement(inner, mask, nonblocking=nonblocking)
            return
        if isinstance(node, ast.BlockingAssign):
            width, cols = self.lower(node.value)
            self.assign(node.target, width, cols, mask)
            return
        if isinstance(node, ast.NonBlockingAssign):
            width, cols = self.lower(node.value)
            if not nonblocking:
                self.assign(node.target, width, cols, mask)
                return
            # Snapshot signal columns now: the queue stores values, and a
            # later blocking assign must not leak into the commit.
            cols = [self._shield_col(col) for col in cols]
            self._commits.append((node.target, width, cols, mask))
            return
        if isinstance(node, ast.IfStatement):
            _, cond_cols = self.lower(node.condition)
            truth = self._truth(cond_cols)
            then_mask = self.writer.atom(_and(mask, truth))
            else_mask = self.writer.atom(_and(mask, _not(truth)))
            self.statement(node.then_branch, then_mask, nonblocking=nonblocking)
            self.statement(node.else_branch, else_mask, nonblocking=nonblocking)
            return
        if isinstance(node, ast.CaseStatement):
            self._lower_case(node, mask, nonblocking=nonblocking)
            return
        if isinstance(node, (ast.DelayStatement, ast.EventWait)):
            self.statement(node.body, mask, nonblocking=nonblocking)
            return
        if isinstance(node, (ast.ForLoop, ast.WhileLoop, ast.RepeatLoop)):
            raise UnsupportedConstruct("loop")
        if isinstance(node, ast.SystemTaskCall):
            raise UnsupportedConstruct("system-task")
        raise UnsupportedConstruct(f"statement:{type(node).__name__}")

    def emit_commits(self) -> None:
        """Emit queued non-blocking commits in execution order."""
        for target, width, cols, mask in self._commits:
            self.assign(target, width, cols, mask)
        self._commits.clear()

    def _lower_case(
        self, node: ast.CaseStatement, mask: str, *, nonblocking: bool
    ) -> None:
        subject_width, subject_cols = self.lower(node.subject)
        remaining = mask
        default_item: ast.CaseItem | None = None
        for item in node.items:
            if item.is_default:
                default_item = item
                continue
            for expression in item.expressions:
                match = self._case_match(node.kind, subject_width, subject_cols, expression)
                arm_mask = self.writer.atom(_and(match, remaining))
                self.statement(item.body, arm_mask, nonblocking=nonblocking)
                remaining = self.writer.atom(_and(remaining, _not(match)))
        if default_item is not None:
            self.statement(default_item.body, remaining, nonblocking=nonblocking)

    def _case_match(
        self,
        kind: str,
        subject_width: int,
        subject_cols: list[str],
        candidate: ast.Expression,
    ) -> str:
        """Column expression for lanes where ``candidate`` matches the subject."""
        if isinstance(candidate, ast.Number):
            width = max(subject_width, candidate.width or 32)
            subject = _zext(subject_cols, width)
            match = "FULL"
            for bit in range(width):
                value_bit = (candidate.value >> bit) & 1
                xz_bit = (candidate.xz_mask >> bit) & 1
                if xz_bit:
                    is_z = bool(value_bit)
                    if (kind == "casez" and is_z) or kind == "casex":
                        continue  # wildcard bit
                    return "0"  # x (or any x/z in plain case): never matches
                term = subject[bit] if value_bit else _not(subject[bit])
                match = _and(match, self.writer.atom(term))
            return self.writer.atom(match)
        cand_width, cand_cols = self.lower(candidate)
        width = max(subject_width, cand_width)
        diff = "0"
        for lhs, rhs in zip(_zext(subject_cols, width), _zext(cand_cols, width)):
            diff = _or(diff, self.writer.atom(_xor(lhs, rhs)))
        return self.writer.atom(_not(self.writer.atom(diff)))

    # -------------------------------------------------------------- assignment
    def assign(
        self, target: ast.Expression, width: int, cols: list[str], mask: str
    ) -> None:
        if mask == "0":
            return
        written = self._target_vars(target)
        cols = [
            self._shield_col(col) if col in written else col for col in cols
        ]
        self._assign_inner(target, width, cols, mask)

    def _assign_inner(
        self, target: ast.Expression, width: int, cols: list[str], mask: str
    ) -> None:
        if isinstance(target, ast.Identifier):
            name = target.name
            declared = self.gen.widths[name]
            base = self.gen.varname[name]
            resized = _zext(cols, declared)
            self._merge_bits(base, range(declared), resized, mask)
            return
        if isinstance(target, ast.BitSelect):
            name, declared = self._select_base(target.target)
            index = self.gen.const_int(target.index)
            if index is None:
                raise UnsupportedConstruct("non-constant-select")
            if not 0 <= index < declared:
                raise UnsupportedConstruct("select-out-of-range")
            self._merge_bits(self.gen.varname[name], [index], _zext(cols, 1), mask)
            return
        if isinstance(target, ast.PartSelect):
            name, declared = self._select_base(target.target)
            first = self.gen.const_int(target.msb)
            second = self.gen.const_int(target.lsb)
            if first is None or second is None:
                raise UnsupportedConstruct("non-constant-select")
            msb, lsb = _part_bounds(target.mode, first, second)
            if not 0 <= lsb <= msb < declared:
                raise UnsupportedConstruct("select-out-of-range")
            self._merge_bits(
                self.gen.varname[name],
                range(lsb, msb + 1),
                _zext(cols, msb - lsb + 1),
                mask,
            )
            return
        if isinstance(target, ast.Concat):
            widths = [self._target_width(part) for part in target.parts]
            total = sum(widths)
            resized = _zext(cols, total)
            offset = total
            for part, part_width in zip(target.parts, widths):
                offset -= part_width
                self._assign_inner(
                    part, part_width, resized[offset : offset + part_width], mask
                )
            return
        raise UnsupportedConstruct(f"target:{type(target).__name__}")

    def _merge_bits(self, base, positions, cols, mask: str) -> None:
        if mask == "FULL":
            for position, col in zip(positions, cols):
                var = f"{base}_{position}"
                if col != var:
                    self.writer.emit(f"{var} = {col}")
            return
        inverse = self._mask_inv.get(mask)
        if inverse is None:
            inverse = self.writer.atom(_not(mask))
            self._mask_inv[mask] = inverse
        for position, col in zip(positions, cols):
            var = f"{base}_{position}"
            self.writer.emit(f"{var} = {_or(_and(col, mask), _and(var, inverse))}")

    def _select_base(self, base: ast.Expression) -> tuple[str, int]:
        if not isinstance(base, ast.Identifier) or base.name not in self.gen.widths:
            raise UnsupportedConstruct("select-target")
        return base.name, self.gen.widths[base.name]

    def _target_width(self, target: ast.Expression) -> int:
        if isinstance(target, ast.Identifier):
            return self.gen.widths.get(target.name, 1)
        if isinstance(target, ast.BitSelect):
            return 1
        if isinstance(target, ast.PartSelect):
            if target.mode == ":":
                first = self.gen.const_int(target.msb)
                second = self.gen.const_int(target.lsb)
                if first is None or second is None:
                    raise UnsupportedConstruct("non-constant-select")
                return abs(first - second) + 1
            second = self.gen.const_int(target.lsb)
            if second is None:
                raise UnsupportedConstruct("non-constant-select")
            return second
        if isinstance(target, ast.Concat):
            return sum(self._target_width(part) for part in target.parts)
        raise UnsupportedConstruct(f"target:{type(target).__name__}")

    def _target_vars(self, target: ast.Expression) -> set[str]:
        names: set[str] = set()

        def collect(node: ast.Expression) -> None:
            if isinstance(node, ast.Identifier):
                names.add(node.name)
            elif isinstance(node, (ast.BitSelect, ast.PartSelect)):
                if isinstance(node.target, ast.Identifier):
                    names.add(node.target.name)
            elif isinstance(node, ast.Concat):
                for part in node.parts:
                    collect(part)

        collect(target)
        variables: set[str] = set()
        for name in names:
            if name in self.gen.widths:
                base = self.gen.varname[name]
                variables |= {
                    f"{base}_{bit}" for bit in range(self.gen.widths[name])
                }
        return variables

    def _shield_col(self, col: str) -> str:
        """Copy a raw signal column into a temp (value snapshot)."""
        if col not in self.gen.signal_vars:
            return col
        temp = self.writer.fresh()
        self.writer.emit(f"{temp} = {col}")
        return temp


def _part_bounds(mode: str, first: int, second: int) -> tuple[int, int]:
    if mode == ":":
        return first, second
    if mode == "+:":
        return first + second - 1, first
    return first, first - second + 1  # "-:"


# ---------------------------------------------------------------------------
# runtime
# ---------------------------------------------------------------------------


class CodegenRuntime:
    """Per-simulator executor for a supported :class:`CodegenArtifact`.

    Holds the compiled functions plus the design's gate/state signal lists
    and marshals between the simulator's :class:`BatchSignalStore` (the
    source of truth) and the flat column tuples the generated code consumes.
    """

    __slots__ = ("artifact", "label", "lanes", "_settle_fn", "_sequential_fn")

    def __init__(self, artifact: CodegenArtifact, lanes: int, label: str):
        if not artifact.supported:
            raise ValueError(f"design rejected by codegen: {artifact.reject_reason}")
        self.artifact = artifact
        self.label = label
        self.lanes = lanes
        self._settle_fn = _compiled_function(artifact.settle_source, "codegen_settle")
        self._sequential_fn = _compiled_function(
            artifact.sequential_source, "codegen_sequential"
        )

    def _gate_ok(self, values: dict, gate: tuple[str, ...]) -> bool:
        for name in gate:
            for column in values[name].xz_cols:
                if column:
                    record_fallback(self.label, XZ_STATE)
                    return False
        return True

    def _extract(self, values: dict, state: tuple[tuple[str, int], ...]) -> tuple:
        flat: list[int] = []
        for name, _ in state:
            flat.extend(values[name].value_cols)
        return tuple(flat)

    def _write_back(
        self, values: dict, writes: tuple[tuple[str, int], ...], out: tuple
    ) -> None:
        position = 0
        for name, width in writes:
            cols = out[position : position + width]
            position += width
            current = values[name]
            if current.value_cols != cols or any(current.xz_cols):
                values[name] = BatchVector(width, self.lanes, cols, (0,) * width)

    def try_settle(self, store, full_mask: int) -> bool:
        """Run the generated settle; ``False`` means caller must interpret."""
        artifact = self.artifact
        values = store.values
        if not self._gate_ok(values, artifact.settle_gate):
            return False
        state = self._extract(values, artifact.settle_state)
        out = self._settle_fn(state, full_mask, check_deadline, SimulationError)
        self._write_back(values, artifact.settle_writes, out)
        return True

    def try_sequential(self, store, masks: list[int], full_mask: int) -> bool:
        """Run the generated edge-triggered pass; ``False`` → interpret."""
        artifact = self.artifact
        values = store.values
        if not self._gate_ok(values, artifact.seq_gate):
            return False
        state = self._extract(values, artifact.seq_state)
        out = self._sequential_fn(state, masks, full_mask)
        self._write_back(values, artifact.seq_writes, out)
        return True


# ---------------------------------------------------------------------------
# BitTable export for pure-combinational cones
# ---------------------------------------------------------------------------


def export_bittables(
    compiled, *, max_input_bits: int = 12
) -> dict[str, list] | None:
    """Exhaustively evaluate a pure-combinational design into ``BitTable``s.

    Returns ``{output_name: [BitTable for bit 0 (LSB), bit 1, ...]}`` or
    ``None`` when the design is sequential, too wide, or produced x/z.  The
    table variable names follow the input ports in declaration order, each
    expanded MSB-first (``name`` for 1-bit ports, ``name[i]`` otherwise), so
    the first name is the most significant minterm index bit — the
    :class:`~repro.logic.bittable.BitTable` convention.
    """
    from ..logic.bittable import BitTable
    from .design import coerce_compiled
    from .simulator.batch import BatchSimulator

    design = coerce_compiled(compiled)
    if design.has_sequential_processes:
        return None
    template = design.template
    inputs = template.input_ports()
    total = sum(port.width for port in inputs)
    if total == 0 or total > max_input_bits:
        return None
    lanes = 1 << total

    def pattern(bit: int) -> int:
        # Lane j carries bit ((j >> bit) & 1): the classic truth-table column.
        block = (1 << (1 << bit)) - 1
        period = 1 << (bit + 1)
        out = 0
        for start in range(1 << bit, lanes, period):
            out |= block << start
        return out

    names: list[str] = []
    vectors: dict[str, BatchVector] = {}
    cursor = 0
    for port in inputs:
        cols: list[int] = [0] * port.width
        for bit in range(port.width - 1, -1, -1):
            names.append(port.name if port.width == 1 else f"{port.name}[{bit}]")
            cols[bit] = pattern(total - 1 - cursor)
            cursor += 1
        vectors[port.name] = BatchVector(
            port.width, lanes, tuple(cols), (0,) * port.width
        )

    simulator = BatchSimulator(design, lanes=lanes)
    simulator.apply_inputs(vectors)
    tables: dict[str, list] = {}
    for port in template.output_ports():
        vector = simulator.store.get(port.name)
        if any(vector.xz_cols):
            return None
        tables[port.name] = [BitTable(names, column) for column in vector.value_cols]
    return tables
