"""Compile-once design database: the shared Verilog front end.

Every engine in this repository — the scalar
:class:`~repro.verilog.simulator.simulator.ModuleSimulator`, the batched
:class:`~repro.verilog.simulator.batch.BatchSimulator`, the symbolic front end
in :mod:`repro.formal.cone`, Verilog-backed golden models and the benchmark
evaluator — consumes the same pipeline: lex → parse → select module →
elaborate (resolve parameters, widths, processes).  Before this module each of
them re-ran that pipeline per call, so a pass@k sweep paid the front-end cost
``N × k`` times per task.

:class:`DesignDatabase` runs the front end **once** per
``(source_hash, module_name, parameter_overrides)`` key and hands out a
:class:`CompiledDesign` artifact:

* the parsed module AST (treated as immutable by every consumer);
* the elaborated *template* design — resolved parameters, port map, initial
  signal values, process list;
* derived analyses computed once: sequential/latch-risk classification,
  undef-source taint, clock/reset inference;
* :meth:`CompiledDesign.elaborate` clones the template's signal store in O(#
  signals) dict copies, so each simulator instance gets private mutable state
  without re-running constant evaluation.

Caching tiers:

* an in-memory LRU (``max_entries``; ``0`` disables caching entirely, which is
  how the differential tests obtain a guaranteed-cold path);
* an optional on-disk content-addressed tier (``cache_dir``): compiled designs
  are pickled under their key digest, so a fresh process skips lexing,
  parsing *and* elaboration for sources it has seen before.  The directory is
  a trusted local cache — entries are unpickled without verification;
* a negative cache: parse and elaboration errors are remembered per key and
  re-raised as equivalent exceptions, so repeatedly scoring the same broken
  candidate costs one dict lookup.

The parse tier (source hash → :class:`~repro.verilog.ast_nodes.SourceFile`)
is shared with :class:`~repro.verilog.syntax_checker.SyntaxChecker`, which
also memoises full compile-check results here.

A process-wide default instance is available via :func:`get_default_database`;
``ModuleSimulator.from_source`` and friends route through it, so existing
call sites get compile-once behaviour without signature changes.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import threading
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path

from . import ast_nodes as ast
from . import errors as _errors
from .errors import ParseError, VerilogError
from .parser import parse_source
from .codegen import CodegenArtifact
from .codegen import generate as _generate_codegen
from .simulator.scheduler import ProcessKind, SignalStore
from .simulator.simulator import ElaboratedModule, PortInfo, elaborate_module

#: Bump when the pickled on-disk layout changes; stale entries are recompiled.
#: The version is embedded in the on-disk *file name* (see ``_disk_path``), so
#: a layout change — like v2's codegen artifact — invalidates old entries by
#: key rather than surfacing as unpickle errors or silently missing fields.
DISK_FORMAT_VERSION = 2

#: Conventional clock/reset input names used by the inference analyses (the
#: same conventions :mod:`repro.verilog.analyzer` and the bench families use).
CLOCK_NAMES = ("clk", "clock", "clk_in", "sysclk", "clk_i")
RESET_NAMES = ("rst", "reset", "rst_n", "reset_n", "arst", "arst_n", "nrst", "resetn", "rst_i")
_ACTIVE_LOW_RESETS = frozenset({"rst_n", "reset_n", "arst_n", "nrst", "resetn"})


def source_hash(source: str) -> str:
    """Content hash of a Verilog source text (the cache's address space)."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class DesignKey:
    """Cache key of one compiled design: content hash + selection + overrides."""

    source_hash: str
    module_name: str | None
    parameter_overrides: tuple[tuple[str, int], ...] = ()

    def digest(self) -> str:
        """Stable hex digest naming this key in the on-disk tier."""
        text = f"{self.source_hash}|{self.module_name!r}|{self.parameter_overrides!r}"
        return hashlib.sha256(text.encode("utf-8")).hexdigest()


@dataclass
class CompiledDesign:
    """One fully front-ended design: AST, elaborated template, analyses.

    The ``template`` holds the elaborated signal store *before* any initial
    block ran; simulators must never execute against it directly — call
    :meth:`elaborate` for a private copy.  The AST and the template's process
    list are shared by every simulator built from this artifact and are
    treated as immutable throughout the codebase.
    """

    key: DesignKey
    module: ast.Module
    parameter_overrides: dict[str, int]
    template: ElaboratedModule
    has_sequential_processes: bool
    has_latch_risk: bool
    undef_sources: frozenset[str]
    clock: str | None
    reset: str | None
    reset_active_low: bool
    #: Straight-line lowering of the design (source text + signal lists), or
    #: a rejection reason.  Generated eagerly so the disk tier carries it;
    #: the compiled functions themselves are cached process-wide by source.
    codegen: CodegenArtifact | None = None

    # ------------------------------------------------------------------ views
    @property
    def name(self) -> str:
        return self.template.name

    @property
    def codegen_label(self) -> str:
        """Stable human-readable label for codegen coverage reporting."""
        return f"{self.template.name}:{self.key.digest()[:12]}"

    @property
    def ports(self) -> list[PortInfo]:
        return self.template.ports

    @property
    def parameters(self) -> dict[str, int]:
        return self.template.parameters

    def input_ports(self) -> list[PortInfo]:
        return self.template.input_ports()

    def output_ports(self) -> list[PortInfo]:
        return self.template.output_ports()

    def input_widths(self) -> dict[str, int]:
        """Input port name → width (stimulus-generation convenience)."""
        return {port.name: port.width for port in self.template.input_ports()}

    # ------------------------------------------------------------------ instantiation
    def elaborate(self) -> ElaboratedModule:
        """A fresh :class:`ElaboratedModule` sharing the immutable pieces.

        The signal store is cloned (values are immutable
        :class:`~repro.verilog.simulator.values.LogicVector` instances, so two
        dict copies suffice); ports, parameters, processes and functions are
        shared read-only.
        """
        template = self.template
        store = SignalStore(
            widths=dict(template.store.widths), values=dict(template.store.values)
        )
        return ElaboratedModule(
            name=template.name,
            ports=template.ports,
            parameters=template.parameters,
            store=store,
            processes=template.processes,
            functions=template.functions,
        )


@dataclass
class CacheStats:
    """Counters exposed for tests, tuning and the perf harness."""

    hits: int = 0
    misses: int = 0
    negative_hits: int = 0
    evictions: int = 0
    disk_hits: int = 0
    disk_writes: int = 0
    parse_hits: int = 0
    check_hits: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "negative_hits": self.negative_hits,
            "evictions": self.evictions,
            "disk_hits": self.disk_hits,
            "disk_writes": self.disk_writes,
            "parse_hits": self.parse_hits,
            "check_hits": self.check_hits,
        }


#: Remembered failure: (exception class name, message, line, column).
_FailureRecord = tuple[str, str, int | None, int | None]


def _record_failure(exc: VerilogError) -> _FailureRecord:
    return (type(exc).__name__, exc.message, exc.line, exc.column)


def _raise_recorded(record: _FailureRecord) -> None:
    name, message, line, column = record
    exc_type = getattr(_errors, name, None)
    if not (isinstance(exc_type, type) and issubclass(exc_type, VerilogError)):
        exc_type = VerilogError
    raise exc_type(message, line, column)


class DesignDatabase:
    """Content-addressed cache over the shared Verilog front end.

    Args:
        max_entries: LRU capacity of each in-memory tier; ``0`` disables
            caching (every call recompiles — the guaranteed-cold path used by
            differential tests and the ``compile_cache`` benchmark).
        cache_dir: optional directory for the on-disk content-addressed tier.
    """

    def __init__(self, max_entries: int = 256, cache_dir: str | Path | None = None):
        self.max_entries = max_entries
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        if self.cache_dir is not None:
            self.cache_dir.mkdir(parents=True, exist_ok=True)
        self.stats = CacheStats()
        self._designs: OrderedDict[DesignKey, CompiledDesign] = OrderedDict()
        self._design_failures: OrderedDict[DesignKey, _FailureRecord] = OrderedDict()
        self._parses: OrderedDict[str, ast.SourceFile] = OrderedDict()
        self._parse_failures: OrderedDict[str, _FailureRecord] = OrderedDict()
        self._checks: OrderedDict[str, object] = OrderedDict()
        self._lock = threading.RLock()

    # ------------------------------------------------------------------ public API
    def compile(
        self,
        source: str,
        module_name: str | None = None,
        parameter_overrides: dict[str, int] | None = None,
    ) -> CompiledDesign:
        """Front-end ``source`` once and return the cached artifact.

        Raises the same :class:`~repro.verilog.errors.VerilogError` subclasses
        as ``parse_module`` + ``elaborate_module`` would; failures are
        negative-cached so repeated compiles of a broken source are one dict
        lookup.
        """
        overrides = dict(parameter_overrides or {})
        key = DesignKey(
            source_hash=source_hash(source),
            module_name=module_name,
            parameter_overrides=tuple(sorted(overrides.items())),
        )
        with self._lock:
            cached = self._designs.get(key)
            if cached is not None:
                self._designs.move_to_end(key)
                self.stats.hits += 1
                return cached
            failure = self._design_failures.get(key)
            if failure is not None:
                self._design_failures.move_to_end(key)
                self.stats.negative_hits += 1
                _raise_recorded(failure)
            from_disk = self._load_from_disk(key)
            if from_disk is not None:
                self.stats.disk_hits += 1
                self._insert(self._designs, key, from_disk)
                return from_disk
            self.stats.misses += 1
            try:
                compiled = self._build(key, source, module_name, overrides)
            except VerilogError as exc:
                self._insert(self._design_failures, key, _record_failure(exc))
                raise
            self._insert(self._designs, key, compiled)
            self._store_to_disk(key, compiled)
            return compiled

    def parse(self, source: str) -> ast.SourceFile:
        """Parse ``source`` through the shared parse tier (negative-cached).

        The returned :class:`~repro.verilog.ast_nodes.SourceFile` is shared —
        callers must not mutate it.
        """
        digest = source_hash(source)
        with self._lock:
            cached = self._parses.get(digest)
            if cached is not None:
                self._parses.move_to_end(digest)
                self.stats.parse_hits += 1
                return cached
            failure = self._parse_failures.get(digest)
            if failure is not None:
                self._parse_failures.move_to_end(digest)
                self.stats.negative_hits += 1
                _raise_recorded(failure)
            try:
                parsed = parse_source(source)
            except VerilogError as exc:
                self._insert(self._parse_failures, digest, _record_failure(exc))
                raise
            self._insert(self._parses, digest, parsed)
            return parsed

    # The syntax checker memoises whole CompileResults here so the *semantic*
    # pass is also run once per distinct source.
    def cached_check(self, source: str) -> object | None:
        with self._lock:
            result = self._checks.get(source_hash(source))
            if result is not None:
                self._checks.move_to_end(source_hash(source))
                self.stats.check_hits += 1
            return result

    def store_check(self, source: str, result: object) -> None:
        with self._lock:
            self._insert(self._checks, source_hash(source), result)

    def clear(self) -> None:
        """Drop every in-memory tier (the disk tier is left untouched)."""
        with self._lock:
            self._designs.clear()
            self._design_failures.clear()
            self._parses.clear()
            self._parse_failures.clear()
            self._checks.clear()

    def __len__(self) -> int:
        return len(self._designs)

    # ------------------------------------------------------------------ build
    def _build(
        self,
        key: DesignKey,
        source: str,
        module_name: str | None,
        overrides: dict[str, int],
    ) -> CompiledDesign:
        design_file = self.parse(source)
        module = _select_module(design_file, module_name)
        return _compile_from_module(key, module, overrides)

    # ------------------------------------------------------------------ LRU plumbing
    def _insert(self, tier: OrderedDict, key, value) -> None:
        if self.max_entries <= 0:
            return
        tier[key] = value
        tier.move_to_end(key)
        while len(tier) > self.max_entries:
            tier.popitem(last=False)
            if tier is self._designs:
                self.stats.evictions += 1

    # ------------------------------------------------------------------ disk tier
    def _disk_path(self, key: DesignKey) -> Path | None:
        if self.cache_dir is None:
            return None
        # The schema version is part of the content address: bumping
        # DISK_FORMAT_VERSION makes every stale entry a clean cache miss.
        return self.cache_dir / f"{key.digest()}-v{DISK_FORMAT_VERSION}.pkl"

    def _load_from_disk(self, key: DesignKey) -> CompiledDesign | None:
        path = self._disk_path(key)
        if path is None or not path.exists():
            return None
        try:
            with path.open("rb") as handle:
                payload = pickle.load(handle)
        except Exception:  # corrupt / stale entry: recompile
            return None
        if (
            not isinstance(payload, dict)
            or payload.get("version") != DISK_FORMAT_VERSION
            or not isinstance(payload.get("design"), CompiledDesign)
        ):
            return None
        design = payload["design"]
        return design if design.key == key else None

    def _store_to_disk(self, key: DesignKey, compiled: CompiledDesign) -> None:
        path = self._disk_path(key)
        if path is None:
            return
        temp = path.with_suffix(f".tmp{os.getpid()}")
        try:
            with temp.open("wb") as handle:
                pickle.dump({"version": DISK_FORMAT_VERSION, "design": compiled}, handle)
            temp.replace(path)
            self.stats.disk_writes += 1
        except Exception:  # best-effort tier: unpicklable / read-only dir
            temp.unlink(missing_ok=True)


# --------------------------------------------------------------------------- building
def _compile_from_module(
    key: DesignKey, module: ast.Module, overrides: dict[str, int]
) -> CompiledDesign:
    """Elaborate + analyse one parsed module into a :class:`CompiledDesign`."""
    template = elaborate_module(module, overrides)
    has_sequential = any(
        process.kind is ProcessKind.SEQUENTIAL for process in template.processes
    )
    reset, reset_active_low = _infer_reset(template)
    latch_risk = _latch_risk(template)
    undef = _undef_sources(template)
    codegen = _generate_codegen(
        template, has_latch_risk=latch_risk, undef_sources=tuple(sorted(undef))
    )
    return CompiledDesign(
        key=key,
        module=module,
        parameter_overrides=overrides,
        template=template,
        has_sequential_processes=has_sequential,
        has_latch_risk=latch_risk,
        undef_sources=undef,
        clock=_infer_clock(template),
        reset=reset,
        reset_active_low=reset_active_low,
        codegen=codegen,
    )


def compile_module_ast(
    module: ast.Module, parameter_overrides: dict[str, int] | None = None
) -> CompiledDesign:
    """Build an *uncached* :class:`CompiledDesign` from an already-parsed module.

    Used when no source text is available to content-address; the synthetic key
    is a label only and never enters a cache tier.
    """
    overrides = dict(parameter_overrides or {})
    key = DesignKey(
        source_hash=f"ast:{id(module):x}",
        module_name=module.name,
        parameter_overrides=tuple(sorted(overrides.items())),
    )
    return _compile_from_module(key, module, overrides)


def coerce_compiled(
    design_like,
    module_name: str | None = None,
    parameter_overrides: dict[str, int] | None = None,
    database: "DesignDatabase | None" = None,
) -> CompiledDesign:
    """Coerce source text / parsed module / compiled design to a :class:`CompiledDesign`.

    Source text goes through the (default) database; a parsed
    :class:`~repro.verilog.ast_nodes.Module` is compiled uncached; an existing
    :class:`CompiledDesign` passes through unless ``parameter_overrides``
    diverge from the ones it was compiled with (then its AST is re-elaborated).
    """
    if isinstance(design_like, CompiledDesign):
        overrides = dict(parameter_overrides or {})
        if not overrides or overrides == design_like.parameter_overrides:
            return design_like
        return compile_module_ast(design_like.module, overrides)
    if isinstance(design_like, str):
        db = database if database is not None else get_default_database()
        return db.compile(design_like, module_name, parameter_overrides)
    return compile_module_ast(design_like, parameter_overrides)


# --------------------------------------------------------------------------- analyses
def _select_module(design_file: ast.SourceFile, name: str | None) -> ast.Module:
    """Module selection with the exact semantics of ``parse_module``."""
    if not design_file.modules:
        raise ParseError("source contains no module definition")
    if name is None:
        return design_file.modules[0]
    module = design_file.find_module(name)
    if module is None:
        raise ParseError(f"module {name!r} not found in source")
    return module


def _latch_risk(template: ElaboratedModule) -> bool:
    """Whether any level-sensitive always block may hold state (inferred latch)."""
    from .simulator.batch import _assignment_sets

    for process in template.processes:
        if process.kind is not ProcessKind.COMBINATIONAL or process.label != "always":
            continue
        maybe, definite = _assignment_sets(process.body)
        if maybe - definite:
            return True
    return False


def _undef_sources(template: ElaboratedModule) -> frozenset[str]:
    """Signals that no process ever assigns and no input or initial value drives.

    These stay ``x`` forever, so any output in their cone is undef-tainted —
    the same signals the formal front end turns into tagged undef inputs.
    """
    from .simulator.batch import _assignment_sets

    assigned: set[str] = set()
    for process in template.processes:
        maybe, _ = _assignment_sets(process.body)
        assigned |= maybe
    inputs = {port.name for port in template.input_ports()}
    undef: set[str] = set()
    for name, value in template.store.values.items():
        if name in inputs or name in assigned:
            continue
        if value.xz_mask:
            undef.add(name)
    return frozenset(undef)


def _sequential_edge_signals(template: ElaboratedModule) -> list[str]:
    ordered: list[str] = []
    for process in template.processes:
        if process.kind is not ProcessKind.SEQUENTIAL:
            continue
        for _, signal in process.edge_signals():
            if signal not in ordered:
                ordered.append(signal)
    return ordered


def _infer_clock(template: ElaboratedModule) -> str | None:
    """Best-effort clock inference: conventional names first, else the sole edge."""
    edge_signals = _sequential_edge_signals(template)
    for name in edge_signals:
        if name in CLOCK_NAMES:
            return name
    inputs = {port.name for port in template.input_ports()}
    for name in CLOCK_NAMES:
        if name in inputs:
            return name
    non_reset = [name for name in edge_signals if name not in RESET_NAMES]
    if len(non_reset) == 1:
        return non_reset[0]
    return None


def _infer_reset(template: ElaboratedModule) -> tuple[str | None, bool]:
    """Best-effort reset inference: ``(name, active_low)`` by naming convention."""
    inputs = [port.name for port in template.input_ports()]
    for name in RESET_NAMES:
        if name in inputs:
            return name, name in _ACTIVE_LOW_RESETS or name.endswith("_n")
    return None, False


# --------------------------------------------------------------------------- default database
_default_database: DesignDatabase | None = None
_default_lock = threading.Lock()


def get_default_database() -> DesignDatabase:
    """The process-wide database every ``from_source`` entry point rides on.

    Created lazily; set ``REPRO_DESIGN_CACHE`` in the environment to also
    enable the on-disk tier for the default instance.
    """
    global _default_database
    with _default_lock:
        if _default_database is None:
            cache_dir = os.environ.get("REPRO_DESIGN_CACHE") or None
            _default_database = DesignDatabase(cache_dir=cache_dir)
        return _default_database


def set_default_database(database: DesignDatabase | None) -> DesignDatabase | None:
    """Swap the process-wide database (``None`` → recreate lazily); returns the old one."""
    global _default_database
    with _default_lock:
        previous = _default_database
        _default_database = database
        return previous


def compile_design(
    source: str,
    module_name: str | None = None,
    parameter_overrides: dict[str, int] | None = None,
) -> CompiledDesign:
    """Compile through the default database (module-level convenience)."""
    return get_default_database().compile(source, module_name, parameter_overrides)
