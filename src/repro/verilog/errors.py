"""Exception hierarchy for the Verilog front-end and simulator."""

from __future__ import annotations


class VerilogError(Exception):
    """Base class for all errors raised by :mod:`repro.verilog`."""

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        self.message = message
        self.line = line
        self.column = column
        location = ""
        if line is not None:
            location = f" (line {line}"
            if column is not None:
                location += f", col {column}"
            location += ")"
        super().__init__(f"{message}{location}")


class LexerError(VerilogError):
    """Raised when the lexer encounters an unrecognisable character sequence."""


class ParseError(VerilogError):
    """Raised when the token stream does not form a valid construct."""


class SemanticError(VerilogError):
    """Raised by the syntax/semantic checker for legal-syntax but illegal programs."""


class ElaborationError(VerilogError):
    """Raised when a design cannot be elaborated (unknown module, port mismatch...)."""


class SimulationError(VerilogError):
    """Raised when the simulator cannot execute a design."""
